// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md and
// microbenchmarks of the core samplers. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benches execute the corresponding experiment (quick
// replication) per iteration and report the headline numbers as custom
// metrics, so `-bench` output doubles as a compact reproduction log;
// cmd/tbsbench prints the full series.
package repro

import (
	"fmt"
	"math"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/manage"
	"repro/internal/ml"
	"repro/internal/xrand"
)

// lastF extracts a float from the last row's given column of a result.
func lastF(b *testing.B, res *experiments.Result, col int) float64 {
	b.Helper()
	row := res.Rows[len(res.Rows)-1]
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		b.Fatalf("parse %q: %v", row[col], err)
	}
	return v
}

func BenchmarkFig1(b *testing.B) {
	for _, variant := range []experiments.Fig1Variant{
		experiments.Fig1Growing, experiments.Fig1StableDet,
		experiments.Fig1StableUnif, experiments.Fig1Decaying,
	} {
		b.Run(string(variant), func(b *testing.B) {
			var tt, rt float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig1(variant, 1000, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				tt, rt = lastF(b, res, 1), lastF(b, res, 2)
			}
			b.ReportMetric(tt, "final-TTBS-size")
			b.ReportMetric(rt, "final-RTBS-size")
		})
	}
}

func BenchmarkFig7(b *testing.B) {
	var rows [][]string
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		rows = res.Rows
	}
	for _, row := range rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		b.ReportMetric(v, "s/"+sanitize(row[0]))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')':
		case ',':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkFig8(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, row := range res.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		b.ReportMetric(v, "s/batch-"+row[0]+"w")
	}
}

func BenchmarkFig9(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, row := range res.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		b.ReportMetric(v, "s/batch-"+row[0])
	}
}

// benchKNNFig wraps the kNN figure experiments; the reported metrics are
// the mean misclassification rate and expected shortfall per scheme.
func benchKNNFig(b *testing.B, run func(runs int, seed uint64) (*experiments.Result, error)) {
	b.Helper()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := run(2, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	reportNotes(b, res)
}

// reportNotes turns "name: mean miss% X, Y% ES Z" notes into metrics.
func reportNotes(b *testing.B, res *experiments.Result) {
	b.Helper()
	for _, n := range res.Notes {
		var name string
		var miss, es float64
		var lvl int
		if c, _ := sscanNote(n, &name, &miss, &lvl, &es); c == 4 {
			b.ReportMetric(miss, "miss%-"+sanitize(name))
			b.ReportMetric(es, "ES-"+sanitize(name))
		}
	}
}

func sscanNote(s string, name *string, miss *float64, lvl *int, es *float64) (int, error) {
	// Format: "NAME: mean miss% M, L% ES E" or "NAME: mean MSE M, L% ES E".
	var rest string
	for i, r := range s {
		if r == ':' {
			*name = s[:i]
			rest = s[i+1:]
			break
		}
	}
	if rest == "" {
		return 0, nil
	}
	if n, err := fscan(rest, " mean miss%% %f, %d%% ES %f", miss, lvl, es); n == 3 {
		return 4, err
	}
	if n, err := fscan(rest, " mean MSE %f, %d%% ES %f", miss, lvl, es); n == 3 {
		return 4, err
	}
	return 0, nil
}

func fscan(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}

func BenchmarkFig10(b *testing.B) {
	b.Run("a-single-event", func(b *testing.B) { benchKNNFig(b, experiments.Fig10a) })
	b.Run("b-periodic-10-10", func(b *testing.B) { benchKNNFig(b, experiments.Fig10b) })
}

func BenchmarkFig11(b *testing.B) {
	b.Run("a-uniform-batches", func(b *testing.B) { benchKNNFig(b, experiments.Fig11a) })
	b.Run("b-growing-batches", func(b *testing.B) { benchKNNFig(b, experiments.Fig11b) })
}

func BenchmarkFig12(b *testing.B) {
	b.Run("a-saturated-1000", func(b *testing.B) { benchKNNFig(b, experiments.Fig12a) })
	b.Run("b-unsaturated-1600", func(b *testing.B) { benchKNNFig(b, experiments.Fig12b) })
	b.Run("c-periodic-16-16", func(b *testing.B) { benchKNNFig(b, experiments.Fig12c) })
}

func BenchmarkFig13(b *testing.B) { benchKNNFig(b, experiments.Fig13) }

func BenchmarkFig14(b *testing.B) {
	b.Run("a-periodic-20-10", func(b *testing.B) { benchKNNFig(b, experiments.Fig14a) })
	b.Run("b-periodic-30-10", func(b *testing.B) { benchKNNFig(b, experiments.Fig14b) })
}

func BenchmarkTable1(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(2, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	// Report the P(10,10) column (columns 3 and 4) for each scheme.
	for _, row := range res.Rows {
		miss, _ := strconv.ParseFloat(row[3], 64)
		es, _ := strconv.ParseFloat(row[4], 64)
		b.ReportMetric(miss, "P10-miss%-"+sanitize(row[0]))
		b.ReportMetric(es, "P10-ES-"+sanitize(row[0]))
	}
}

func BenchmarkChaoViolation(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.ChaoViolation(2000, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	oldest := res.Rows[0]
	rt, _ := strconv.ParseFloat(oldest[2], 64)
	ch, _ := strconv.ParseFloat(oldest[4], 64)
	b.ReportMetric(rt, "oldest-Pr-RTBS")
	b.ReportMetric(ch, "oldest-Pr-Chao")
}

func BenchmarkTTBSLaw(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.TTBSLaw(500, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	emp, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][1], 64)
	b.ReportMetric(emp, "E[C40]")
}

// --- Ablation benches (DESIGN.md section 5) -------------------------------

// BenchmarkAblationRounding compares stochastic rounding against
// independent per-item coin flips for the saturated-case acceptance count:
// the paper's choice minimizes sample-size variance (Theorem 4.4).
func BenchmarkAblationRounding(b *testing.B) {
	const (
		n      = 1000
		batch  = 500.0
		w      = 3000.0
		trials = 10000
	)
	p := batch * float64(n) / w / batch // per-item acceptance probability
	b.Run("stochastic-round", func(b *testing.B) {
		rng := xrand.New(1)
		var variance float64
		for i := 0; i < b.N; i++ {
			var wf metricWelford
			for j := 0; j < trials; j++ {
				wf.add(float64(rng.StochasticRound(batch * float64(n) / w)))
			}
			variance = wf.variance()
		}
		b.ReportMetric(variance, "accept-count-var")
	})
	b.Run("per-item-flips", func(b *testing.B) {
		rng := xrand.New(1)
		var variance float64
		for i := 0; i < b.N; i++ {
			var wf metricWelford
			for j := 0; j < trials; j++ {
				wf.add(float64(rng.Binomial(int(batch), p)))
			}
			variance = wf.variance()
		}
		b.ReportMetric(variance, "accept-count-var")
	})
}

// metricWelford is a tiny local accumulator to keep the bench self-contained.
type metricWelford struct {
	n    int
	mean float64
	m2   float64
}

func (w *metricWelford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *metricWelford) variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// BenchmarkAblationFractional compares the latent fractional sample against
// an integer-truncated reservoir in the unsaturated regime: truncation
// loses expected sample size (Theorem 4.3 optimality).
func BenchmarkAblationFractional(b *testing.B) {
	const lambda, n, batch, steps = 0.3, 10000, 40, 80
	b.Run("fractional", func(b *testing.B) {
		var size float64
		for i := 0; i < b.N; i++ {
			s, err := core.NewRTBS[int](lambda, n, xrand.New(uint64(i)+1))
			if err != nil {
				b.Fatal(err)
			}
			for t := 0; t < steps; t++ {
				s.Advance(make([]int, batch))
			}
			size = s.ExpectedSize()
		}
		b.ReportMetric(size, "E-sample-size")
	})
	b.Run("truncated", func(b *testing.B) {
		// Integer truncation: decay the sample by flooring the decayed
		// weight (losing the fractional mass each step).
		var size float64
		for i := 0; i < b.N; i++ {
			rng := xrand.New(uint64(i) + 1)
			var sample []int
			for t := 0; t < steps; t++ {
				target := int(math.Floor(math.Exp(-lambda) * float64(len(sample))))
				sample = xrand.SampleInPlace(rng, sample, target)
				sample = append(sample, make([]int, batch)...)
			}
			size = float64(len(sample))
		}
		b.ReportMetric(size, "E-sample-size")
	})
}

// BenchmarkAblationBinomial compares simulating per-item coin flips with a
// single binomial draw (the paper's T-TBS optimization, Section 3) against
// literal per-item flips.
func BenchmarkAblationBinomial(b *testing.B) {
	const size, p = 100000, 0.93
	b.Run("binomial-draw", func(b *testing.B) {
		rng := xrand.New(1)
		items := make([]int, size)
		for i := 0; i < b.N; i++ {
			m := rng.Binomial(len(items), p)
			xrand.SampleInPlace(rng, items, m)
		}
	})
	b.Run("per-item-flips", func(b *testing.B) {
		rng := xrand.New(1)
		items := make([]int, size)
		scratch := make([]int, 0, size)
		for i := 0; i < b.N; i++ {
			scratch = scratch[:0]
			for _, it := range items {
				if rng.Bernoulli(p) {
					scratch = append(scratch, it)
				}
			}
		}
	})
}

// BenchmarkAblationRetrainPolicy compares retraining policies end-to-end on
// the kNN workload: accuracy (mean miss%) and retrain counts per policy.
func BenchmarkAblationRetrainPolicy(b *testing.B) {
	policies := []struct {
		name string
		mk   func() manage.Policy
	}{
		{"always", func() manage.Policy { return manage.Always{} }},
		{"every-10", func() manage.Policy { return manage.Every{K: 10} }},
		{"on-drift", func() manage.Policy {
			return &manage.OnDrift{Window: 8, Factor: 2, MinObs: 3, MaxStale: 25}
		}},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			var miss float64
			var retrains int
			for i := 0; i < b.N; i++ {
				gen, err := datagen.NewGMM(datagen.GMMConfig{
					Schedule: datagen.Periodic{Delta: 10, Eta: 10},
					Warmup:   30,
				}, xrand.New(uint64(i)+5))
				if err != nil {
					b.Fatal(err)
				}
				sampler, err := core.NewRTBS[datagen.Point](0.07, 500, xrand.New(uint64(i)+6))
				if err != nil {
					b.Fatal(err)
				}
				mgr, err := manage.New(sampler, trainKNN, evalKNN, pc.mk())
				if err != nil {
					b.Fatal(err)
				}
				var errs []float64
				for t := 1; t <= 110; t++ {
					e, err := mgr.Step(gen.Batch(t, 100))
					if err != nil {
						b.Fatal(err)
					}
					if t > 30 && !math.IsNaN(e) {
						errs = append(errs, e)
					}
				}
				sum := 0.0
				for _, e := range errs {
					sum += e
				}
				miss = sum / float64(len(errs))
				retrains = mgr.Retrains()
			}
			b.ReportMetric(miss, "miss%")
			b.ReportMetric(float64(retrains), "retrains")
		})
	}
}

func trainKNN(sample []datagen.Point) (*ml.KNN, error) {
	m, err := ml.NewKNN(7)
	if err != nil {
		return nil, err
	}
	xs := make([][]float64, len(sample))
	ys := make([]int, len(sample))
	for i, p := range sample {
		xs[i] = []float64{p.X[0], p.X[1]}
		ys[i] = p.Class
	}
	return m, m.Fit(xs, ys)
}

func evalKNN(m *ml.KNN, batch []datagen.Point) float64 {
	wrong := 0
	for _, p := range batch {
		if m.Predict([]float64{p.X[0], p.X[1]}) != p.Class {
			wrong++
		}
	}
	return 100 * float64(wrong) / float64(len(batch))
}

// --- Ingest pipeline microbenchmarks --------------------------------------

// BenchmarkIngestRTBSSteadyState is the acceptance gate of the sharded
// zero-allocation ingest pipeline: a saturated R-TBS reservoir driven with
// Advance + AppendSample into caller-owned buffers must report 0 allocs/op.
// The copy variant shows what the pre-append API paid per call.
func BenchmarkIngestRTBSSteadyState(b *testing.B) {
	const n, lambda, batchSize = 10000, 0.07, 1000
	setup := func(b *testing.B) (*core.RTBS[int], []int) {
		b.Helper()
		s, err := core.NewRTBS[int](lambda, n, xrand.New(1))
		if err != nil {
			b.Fatal(err)
		}
		batch := make([]int, batchSize)
		for i := 0; i < 40; i++ {
			s.Advance(batch)
		}
		if !s.Saturated() {
			b.Fatal("warmup did not saturate the reservoir")
		}
		return s, batch
	}
	b.Run("advance+append", func(b *testing.B) {
		s, batch := setup(b)
		buf := make([]int, 0, n+1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Advance(batch)
			buf = s.AppendSample(buf[:0])
		}
		b.ReportMetric(float64(batchSize), "items/op")
	})
	b.Run("advance+sample-copy", func(b *testing.B) {
		s, batch := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Advance(batch)
			_ = s.Sample()
		}
		b.ReportMetric(float64(batchSize), "items/op")
	})
}

// --- Core sampler microbenchmarks -----------------------------------------

func benchSamplerAdvance(b *testing.B, mk func() core.Sampler[int], batchSize int) {
	b.Helper()
	s := mk()
	batch := make([]int, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance(batch)
	}
	b.ReportMetric(float64(batchSize), "items/batch")
}

func BenchmarkSamplerAdvance(b *testing.B) {
	const n, lambda = 10000, 0.07
	for _, batchSize := range []int{100, 10000} {
		bs := strconv.Itoa(batchSize)
		b.Run("RTBS/"+bs, func(b *testing.B) {
			benchSamplerAdvance(b, func() core.Sampler[int] {
				s, _ := core.NewRTBS[int](lambda, n, xrand.New(1))
				return s
			}, batchSize)
		})
		b.Run("TTBS/"+bs, func(b *testing.B) {
			benchSamplerAdvance(b, func() core.Sampler[int] {
				// b = n keeps q = (1−e^−λ) < 1 valid for any batch size.
				s, err := core.NewTTBS[int](lambda, n, float64(n), xrand.New(1))
				if err != nil {
					b.Fatal(err)
				}
				return s
			}, batchSize)
		})
		b.Run("BRS/"+bs, func(b *testing.B) {
			benchSamplerAdvance(b, func() core.Sampler[int] {
				s, _ := core.NewBRS[int](n, xrand.New(1))
				return s
			}, batchSize)
		})
		b.Run("SW/"+bs, func(b *testing.B) {
			benchSamplerAdvance(b, func() core.Sampler[int] {
				s, _ := core.NewSlidingWindow[int](n)
				return s
			}, batchSize)
		})
		b.Run("BChao/"+bs, func(b *testing.B) {
			benchSamplerAdvance(b, func() core.Sampler[int] {
				s, _ := core.NewBChao[int](lambda, n, xrand.New(1))
				return s
			}, batchSize)
		})
	}
}

func BenchmarkDistProcessBatch(b *testing.B) {
	for _, v := range []struct {
		name string
		dec  dist.Decisions
		st   dist.StoreKind
	}{
		{"Dist-CP", dist.Distributed, dist.CoPartitioned},
		{"Cent-KV", dist.Centralized, dist.KeyValue},
	} {
		b.Run(v.name, func(b *testing.B) {
			d, err := dist.NewDRTBS(dist.Config{
				Workers: 12, Lambda: 0.07, Reservoir: 20000,
				Decisions: v.dec, Store: v.st, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]dist.Item, 10000)
			parts := dist.Partition(batch, 12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.ProcessBatch(parts)
			}
		})
	}
}

// BenchmarkDatagen measures the stream generators feeding the experiments.
func BenchmarkDatagen(b *testing.B) {
	b.Run("GMM", func(b *testing.B) {
		g, err := datagen.NewGMM(datagen.GMMConfig{}, xrand.New(1))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			g.Batch(i+1, 100)
		}
	})
	b.Run("Text", func(b *testing.B) {
		g, err := datagen.NewText(datagen.TextConfig{}, xrand.New(1))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			g.Batch(i+1, 50)
		}
	})
}
