package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("empty accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", w.Mean())
	}
	// Unbiased variance of that classic dataset is 32/7.
	if !almost(w.Var(), 32.0/7, 1e-12) {
		t.Errorf("var = %v", w.Var())
	}
	if !almost(w.Std(), math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("std = %v", w.Std())
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := xrand.New(1)
	f := func(n uint8) bool {
		k := int(n)%50 + 2
		xs := make([]float64, k)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			w.Add(xs[i])
		}
		return almost(w.Mean(), Mean(xs), 1e-9) && almost(w.Var(), Variance(xs), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q > 1 accepted")
	}
}

func TestExpectedShortfall(t *testing.T) {
	xs := []float64{10, 50, 20, 40, 30, 60, 5, 15, 25, 35}
	// Worst 20% of 10 values = top 2 = {60, 50} → mean 55.
	got, err := ExpectedShortfall(xs, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 55, 1e-12) {
		t.Errorf("ES(0.2) = %v, want 55", got)
	}
	// Worst 10% = top 1 = 60.
	got, err = ExpectedShortfall(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 60, 1e-12) {
		t.Errorf("ES(0.1) = %v, want 60", got)
	}
	// z so small it rounds to zero entries still averages one value.
	got, err = ExpectedShortfall(xs, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 60, 1e-12) {
		t.Errorf("tiny-z ES = %v, want 60", got)
	}
	// z = 1 is the overall mean.
	got, err = ExpectedShortfall(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, Mean(xs), 1e-12) {
		t.Errorf("ES(1) = %v, want mean %v", got, Mean(xs))
	}
	if _, err := ExpectedShortfall(nil, 0.1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ExpectedShortfall(xs, 0); err == nil {
		t.Error("z = 0 accepted")
	}
}

func TestESDominatesMean(t *testing.T) {
	rng := xrand.New(2)
	f := func(n uint8) bool {
		k := int(n)%30 + 1
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		es, err := ExpectedShortfall(xs, 0.1)
		if err != nil {
			return false
		}
		return es >= Mean(xs)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, (0.0+1+4)/3, 1e-12) {
		t.Errorf("MSE = %v", got)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMisclassificationRate(t *testing.T) {
	got, err := MisclassificationRate([]int{1, 2, 3, 4}, []int{1, 0, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 50, 1e-12) {
		t.Errorf("rate = %v", got)
	}
	if _, err := MisclassificationRate([]int{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMeanVarianceEdge(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton != 0")
	}
}
