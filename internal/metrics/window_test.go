package metrics

import (
	"testing"
	"time"
)

func TestRotatingWindowRotation(t *testing.T) {
	w := NewRotatingWindow(time.Minute, 10)
	t0 := time.Unix(1000, 0)
	w.Add(t0, 1)
	w.Add(t0.Add(time.Second), 2)
	if got := w.AppendSnapshot(t0.Add(2*time.Second), nil); len(got) != 2 {
		t.Fatalf("fresh window holds %d, want 2", len(got))
	}

	// One interval later: old half retires to prev, still visible.
	w.Add(t0.Add(61*time.Second), 3)
	got := w.AppendSnapshot(t0.Add(62*time.Second), nil)
	if len(got) != 3 {
		t.Fatalf("after one rotation window holds %d, want 3 (prev+cur)", len(got))
	}

	// Two intervals of silence: everything ages out.
	if got := w.AppendSnapshot(t0.Add(200*time.Second), nil); len(got) != 0 {
		t.Fatalf("stale window holds %d, want 0 — idle periods must drain it", len(got))
	}
}

func TestRotatingWindowCapOverwrites(t *testing.T) {
	w := NewRotatingWindow(time.Hour, 4)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		w.Add(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := w.AppendSnapshot(t0.Add(11*time.Second), nil)
	if len(got) != 4 {
		t.Fatalf("capped half holds %d, want 4", len(got))
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	// Cyclic overwrite keeps the newest 4 observations: 6+7+8+9.
	if sum != 30 {
		t.Fatalf("capped half kept sum %g, want 30 (newest observations)", sum)
	}
}

func TestLatencyStatsWindowedQuantiles(t *testing.T) {
	l := NewLatencyStats()
	for i := 0; i < 100; i++ {
		l.Observe(time.Duration(i+1) * time.Millisecond)
	}
	w, win := l.Snapshot()
	if w.N() != 100 {
		t.Fatalf("all-time N = %d, want 100", w.N())
	}
	if len(win) != 100 {
		t.Fatalf("window holds %d, want 100", len(win))
	}
	p50 := QuantileOrZero(win, 0.50)
	if p50 < 0.040 || p50 > 0.060 {
		t.Fatalf("p50 = %g, want ≈ 0.050", p50)
	}
	if QuantileOrZero(nil, 0.5) != 0 {
		t.Fatal("empty window quantile must be 0")
	}
}
