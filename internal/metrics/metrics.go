// Package metrics provides the statistical measures used throughout the
// paper's evaluation (Section 6): misclassification rate, mean squared
// error, and the expected-shortfall (ES) robustness measure, plus running
// moment accumulators and quantiles used by the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a running mean and variance in one pass with
// numerically stable updates.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a value into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of values seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than two values).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Var()
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts the input.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("metrics: quantile level %v out of [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	f := pos - float64(lo)
	return s[lo]*(1-f) + s[hi]*f, nil
}

// ExpectedShortfall returns the z·100% ES of xs: the average of the worst
// (largest) z fraction of the values. This is the downside-risk measure the
// paper uses to quantify robustness (Section 6.2, citing McNeil et al.
// [27]): "the z% ES is the average value of the worst z% of cases". For
// error-rate series, larger is worse, so the worst cases are the largest
// values. At least one value is always averaged.
func ExpectedShortfall(xs []float64, z float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: expected shortfall of empty slice")
	}
	if z <= 0 || z > 1 || math.IsNaN(z) {
		return 0, fmt.Errorf("metrics: shortfall level %v out of (0,1]", z)
	}
	s := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	k := int(math.Round(z * float64(len(s))))
	if k < 1 {
		k = 1
	}
	return Mean(s[:k]), nil
}

// MSE returns the mean squared error between predictions and truths; the
// slices must have equal nonzero length.
func MSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("metrics: MSE needs equal nonzero lengths, got %d and %d", len(pred), len(truth))
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// MisclassificationRate returns the fraction of mismatched labels as a
// percentage in [0, 100], matching the paper's "% incorrect
// classifications" axes.
func MisclassificationRate(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("metrics: rate needs equal nonzero lengths, got %d and %d", len(pred), len(truth))
	}
	wrong := 0
	for i := range pred {
		if pred[i] != truth[i] {
			wrong++
		}
	}
	return 100 * float64(wrong) / float64(len(pred)), nil
}
