package metrics

import (
	"sync"
	"time"
)

// Defaults for the latency windows the server's /metrics quantiles are
// computed over: the reported p50/p95/p99 always reflect roughly the
// last one to two half-intervals of traffic, not the whole process
// lifetime.
const (
	DefaultWindowInterval = 30 * time.Second
	DefaultWindowCap      = 2048
)

// RotatingWindow is a two-bucket rotating reservoir: observations land
// in the current half-window; when it ages past the interval it becomes
// the previous half and a fresh current half starts. A snapshot merges
// both halves, so quantiles cover between one and two intervals of
// recent data and an idle period empties the window instead of pinning
// stale extremes forever (the failure mode of a pure ring buffer under
// low traffic).
//
// Each half is capped; past the cap new observations overwrite the
// oldest in cyclic order. The zero value is not ready — use
// NewRotatingWindow. Not safe for concurrent use; wrap with a lock
// (LatencyStats does).
type RotatingWindow struct {
	interval time.Duration
	capacity int
	cur      []float64
	prev     []float64
	curStart time.Time
	n        int // total adds into cur, for cyclic overwrite
}

// NewRotatingWindow builds a window with the given rotation interval
// and per-half capacity; non-positive arguments take the defaults.
func NewRotatingWindow(interval time.Duration, capPerHalf int) *RotatingWindow {
	if interval <= 0 {
		interval = DefaultWindowInterval
	}
	if capPerHalf <= 0 {
		capPerHalf = DefaultWindowCap
	}
	return &RotatingWindow{interval: interval, capacity: capPerHalf}
}

// rotate ages the halves relative to now.
func (w *RotatingWindow) rotate(now time.Time) {
	if w.curStart.IsZero() {
		w.curStart = now
		return
	}
	age := now.Sub(w.curStart)
	switch {
	case age >= 2*w.interval:
		// Both halves predate the window entirely.
		w.prev = w.prev[:0]
		w.cur = w.cur[:0]
		w.n = 0
		w.curStart = now
	case age >= w.interval:
		// Swap the slices so the retired half's capacity is reused.
		w.prev, w.cur = w.cur, w.prev[:0]
		w.n = 0
		w.curStart = w.curStart.Add(w.interval)
	}
}

// Add records one observation at time now.
func (w *RotatingWindow) Add(now time.Time, x float64) {
	w.rotate(now)
	if len(w.cur) < w.capacity {
		w.cur = append(w.cur, x)
	} else {
		w.cur[w.n%w.capacity] = x
	}
	w.n++
}

// AppendSnapshot appends both halves (oldest half first) to dst and
// returns it — the recent-window sample set quantiles are computed over.
func (w *RotatingWindow) AppendSnapshot(now time.Time, dst []float64) []float64 {
	w.rotate(now)
	dst = append(dst, w.prev...)
	return append(dst, w.cur...)
}

// LatencyStats tracks a latency distribution two ways: an all-time
// Welford accumulator (count, mean, std) and a RotatingWindow of recent
// observations for quantiles. It carries its own mutex so independent
// distributions never contend with each other.
type LatencyStats struct {
	mu  sync.Mutex
	w   Welford
	win *RotatingWindow
}

// NewLatencyStats builds a LatencyStats with the default window shape.
func NewLatencyStats() *LatencyStats {
	return &LatencyStats{win: NewRotatingWindow(0, 0)}
}

// Observe folds one latency into both distributions.
func (l *LatencyStats) Observe(d time.Duration) {
	s := d.Seconds()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Add(s)
	if l.win == nil {
		l.win = NewRotatingWindow(0, 0)
	}
	l.win.Add(time.Now(), s)
}

// Snapshot returns the all-time accumulator and a copy of the recent
// window.
func (l *LatencyStats) Snapshot() (w Welford, window []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.win != nil {
		window = l.win.AppendSnapshot(time.Now(), nil)
	}
	return l.w, window
}

// QuantileOrZero is Quantile over a possibly-empty window.
func QuantileOrZero(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	v, err := Quantile(xs, q)
	if err != nil {
		return 0
	}
	return v
}
