package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Fig1Variant selects one of the four panels of Figure 1 (T-TBS vs R-TBS
// sample-size behaviour).
type Fig1Variant string

// The four panels.
const (
	Fig1Growing    Fig1Variant = "a" // deterministic, ×1.002 from t=200, λ=0.05
	Fig1StableDet  Fig1Variant = "b" // Bₜ ≡ 100, λ=0.1
	Fig1StableUnif Fig1Variant = "c" // Bₜ ~ U[0,200], λ=0.1
	Fig1Decaying   Fig1Variant = "d" // deterministic, ×0.8 from t=200, λ=0.01
)

// Fig1 reproduces one panel of Figure 1: the sample-size trajectories of
// T-TBS and R-TBS over 1000 batches with target/maximum size 1000 and the
// panel's batch-size process. Every `stride`-th point is emitted (stride 1
// gives the full curve).
func Fig1(variant Fig1Variant, stride int, seed uint64) (*Result, error) {
	if stride < 1 {
		stride = 1
	}
	const (
		n       = 1000
		b       = 100.0
		batches = 1000
	)
	var (
		lambda float64
		sizes  stream.SizeProcess
		title  string
	)
	rng := xrand.New(seed)
	switch variant {
	case Fig1Growing:
		lambda = 0.05
		sizes = &stream.Geometric{B0: b, Phi: 1.002, Start: 200}
		title = "Growing batch size (λ=0.05, ϕ=1.002)"
	case Fig1StableDet:
		lambda = 0.1
		sizes = stream.Deterministic{B: int(b)}
		title = "Stable batch size, deterministic (λ=0.1)"
	case Fig1StableUnif:
		lambda = 0.1
		sizes = stream.UniformIID{Lo: 0, Hi: 200, RNG: rng}
		title = "Stable batch size, Uniform[0,200] (λ=0.1)"
	case Fig1Decaying:
		lambda = 0.01
		sizes = &stream.Geometric{B0: b, Phi: 0.8, Start: 200}
		title = "Decaying batch size (λ=0.01, ϕ=0.8)"
	default:
		return nil, fmt.Errorf("experiments: unknown Fig1 variant %q", variant)
	}

	ttbs, err := core.NewTTBS[int](lambda, n, b, xrand.New(seed+1))
	if err != nil {
		return nil, err
	}
	rtbs, err := core.NewRTBS[int](lambda, n, xrand.New(seed+2))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig1" + string(variant),
		Title:  title,
		Header: []string{"batch", "T-TBS", "R-TBS"},
	}
	for t := 1; t <= batches; t++ {
		size := sizes.Next(t)
		if size < 0 {
			size = 0
		}
		batch := make([]int, size)
		ttbs.Advance(batch)
		rtbs.Advance(batch)
		if t%stride == 0 {
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(t),
				fmt.Sprint(ttbs.Size()),
				f1(rtbs.ExpectedSize()),
			})
		}
	}
	return res, nil
}
