package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// SchemeSpec names a sampling scheme and constructs a fresh sampler for a
// run. The standard lineup of the paper's quality experiments is R-TBS
// (one per λ), SW and Unif; see RTBSScheme, SWScheme and UnifScheme.
type SchemeSpec[T any] struct {
	Name string
	New  func(rng *xrand.RNG) (core.Sampler[T], error)
}

// RTBSScheme builds an R-TBS sampler spec with the given decay rate and
// maximum sample size.
func RTBSScheme[T any](name string, lambda float64, n int) SchemeSpec[T] {
	return SchemeSpec[T]{Name: name, New: func(rng *xrand.RNG) (core.Sampler[T], error) {
		return core.NewRTBS[T](lambda, n, rng)
	}}
}

// SWScheme builds a count-based sliding-window spec holding the last n
// items.
func SWScheme[T any](n int) SchemeSpec[T] {
	return SchemeSpec[T]{Name: "SW", New: func(*xrand.RNG) (core.Sampler[T], error) {
		return core.NewSlidingWindow[T](n)
	}}
}

// UnifScheme builds a uniform batched-reservoir spec (the paper's "Unif").
func UnifScheme[T any](n int) SchemeSpec[T] {
	return SchemeSpec[T]{Name: "Unif", New: func(rng *xrand.RNG) (core.Sampler[T], error) {
		return core.NewBRS[T](n, rng)
	}}
}

// SchemeOutcome aggregates one scheme's performance over all runs.
type SchemeOutcome struct {
	Name string
	// Series is the per-step error averaged over runs (misclassification %
	// for classifiers, MSE for regression).
	Series []float64
	// Err is the overall mean error across steps and runs.
	Err float64
	// ES is the expected shortfall of the per-step error (averaged over
	// runs), computed from step ESFrom at level ESLevel.
	ES float64
}

// BatchPattern selects the batch-size process of a quality experiment.
type BatchPattern int

// Batch-size patterns used in Section 6.2's "varying batch size" study.
const (
	// BatchConstant: deterministic batches of the configured mean size.
	BatchConstant BatchPattern = iota
	// BatchUniform: i.i.d. Uniform[0, 2·mean] sizes (Figure 11(a)).
	BatchUniform
	// BatchGrowing: deterministic sizes growing 2% per step after warm-up
	// (Figure 11(b)).
	BatchGrowing
)

// KNNConfig parameterizes the kNN quality experiments (Section 6.2:
// Figures 10, 11, 14 and Table 1).
type KNNConfig struct {
	SampleSize int // reservoir/window size (paper: 1000)
	K          int // neighbours (paper: 7)
	BatchMean  int // mean batch size (paper: 100)
	Pattern    BatchPattern
	Schedule   datagen.Schedule
	Warmup     int // normal-mode batches before evaluation (paper: 100)
	Steps      int // evaluated batches after warm-up
	Runs       int // independent runs to average (paper: 30)
	ESLevel    float64
	ESFrom     int // first step included in the ES computation (paper: 20)
	Seed       uint64
}

func (c *KNNConfig) normalize() error {
	if c.SampleSize == 0 {
		c.SampleSize = 1000
	}
	if c.K == 0 {
		c.K = 7
	}
	if c.BatchMean == 0 {
		c.BatchMean = 100
	}
	if c.Schedule == nil {
		c.Schedule = datagen.Periodic{Delta: 10, Eta: 10}
	}
	if c.Warmup == 0 {
		c.Warmup = 100
	}
	if c.Steps == 0 {
		c.Steps = 50
	}
	if c.Runs == 0 {
		c.Runs = 30
	}
	if c.ESLevel == 0 {
		c.ESLevel = 0.10
	}
	if c.ESFrom == 0 {
		c.ESFrom = 20
	}
	if c.SampleSize < 1 || c.K < 1 || c.BatchMean < 1 || c.Steps < 1 || c.Runs < 1 ||
		c.ESLevel <= 0 || c.ESLevel > 1 || c.ESFrom < 1 || c.ESFrom > c.Steps {
		return fmt.Errorf("experiments: invalid kNN config %+v", *c)
	}
	return nil
}

// sizeProcess builds the batch-size process for one run.
func sizeProcess(pattern BatchPattern, mean, warmup int, rng *xrand.RNG) stream.SizeProcess {
	switch pattern {
	case BatchUniform:
		return stream.UniformIID{Lo: 0, Hi: 2 * mean, RNG: rng}
	case BatchGrowing:
		return &stream.Geometric{B0: float64(mean), Phi: 1.02, Start: warmup + 1}
	default:
		return stream.Deterministic{B: mean}
	}
}

// RunKNN executes the kNN retraining experiment for the given schemes,
// sharing one data stream per run across all schemes so comparisons are
// paired. Each incoming batch is classified with a kNN model over the
// current sample before the sample is updated with the batch, exactly as
// described in Section 6.2.
func RunKNN(cfg KNNConfig, schemes []SchemeSpec[datagen.Point]) ([]SchemeOutcome, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("experiments: no schemes given")
	}
	sum := make([][]float64, len(schemes)) // per scheme per step: summed rates
	cnt := make([][]int, len(schemes))
	for i := range sum {
		sum[i] = make([]float64, cfg.Steps)
		cnt[i] = make([]int, cfg.Steps)
	}
	missPerRun := make([][]float64, len(schemes)) // per scheme: run-mean errors
	esPerRun := make([][]float64, len(schemes))

	for run := 0; run < cfg.Runs; run++ {
		base := cfg.Seed + uint64(run)*1000
		gen, err := datagen.NewGMM(datagen.GMMConfig{
			Schedule: cfg.Schedule,
			Warmup:   cfg.Warmup,
		}, xrand.New(base))
		if err != nil {
			return nil, err
		}
		sizes := sizeProcess(cfg.Pattern, cfg.BatchMean, cfg.Warmup, xrand.New(base+1))
		samplers := make([]core.Sampler[datagen.Point], len(schemes))
		for i, s := range schemes {
			samplers[i], err = s.New(xrand.New(base + 2 + uint64(i)))
			if err != nil {
				return nil, err
			}
		}
		series := make([][]float64, len(schemes))
		for i := range series {
			series[i] = make([]float64, 0, cfg.Steps)
		}
		for t := 1; t <= cfg.Warmup+cfg.Steps; t++ {
			size := sizes.Next(t)
			if size < 0 {
				size = 0
			}
			batch := gen.Batch(t, size)
			if t > cfg.Warmup {
				step := t - cfg.Warmup - 1
				for i, s := range samplers {
					rate := evalKNNBatch(s.Sample(), batch, cfg.K)
					if !math.IsNaN(rate) {
						sum[i][step] += rate
						cnt[i][step]++
						series[i] = append(series[i], rate)
					}
				}
			}
			for _, s := range samplers {
				s.Advance(batch)
			}
		}
		for i := range schemes {
			if len(series[i]) == 0 {
				continue
			}
			missPerRun[i] = append(missPerRun[i], metrics.Mean(series[i]))
			from := cfg.ESFrom - 1
			if from >= len(series[i]) {
				from = 0
			}
			es, err := metrics.ExpectedShortfall(series[i][from:], cfg.ESLevel)
			if err != nil {
				return nil, err
			}
			esPerRun[i] = append(esPerRun[i], es)
		}
	}

	out := make([]SchemeOutcome, len(schemes))
	for i, s := range schemes {
		o := SchemeOutcome{Name: s.Name, Series: make([]float64, cfg.Steps)}
		for step := range o.Series {
			if cnt[i][step] > 0 {
				o.Series[step] = sum[i][step] / float64(cnt[i][step])
			}
		}
		o.Err = metrics.Mean(missPerRun[i])
		o.ES = metrics.Mean(esPerRun[i])
		out[i] = o
	}
	return out, nil
}

// evalKNNBatch classifies every point of the batch with a grid-indexed kNN
// model fit on the sample (equivalent to the exhaustive scan — see
// TestKNNGridAgreesWithExhaustive — but ~10× faster on this workload) and
// returns the misclassification percentage, or NaN if either side is empty.
func evalKNNBatch(sample []datagen.Point, batch []datagen.Point, k int) float64 {
	if len(sample) == 0 || len(batch) == 0 {
		return math.NaN()
	}
	xs := make([][2]float64, len(sample))
	ys := make([]int, len(sample))
	for i, p := range sample {
		xs[i] = p.X
		ys[i] = p.Class
	}
	model, err := ml.NewKNNGrid(k, 0)
	if err != nil {
		return math.NaN()
	}
	if err := model.Fit(xs, ys); err != nil {
		return math.NaN()
	}
	wrong := 0
	for _, p := range batch {
		if model.Predict(p.X[0], p.X[1]) != p.Class {
			wrong++
		}
	}
	return 100 * float64(wrong) / float64(len(batch))
}

// defaultKNNSchemes is the Figure 10/11/14 lineup: R-TBS at λ = 0.07, SW,
// and Unif, all with the same sample budget n.
func defaultKNNSchemes(n int) []SchemeSpec[datagen.Point] {
	return []SchemeSpec[datagen.Point]{
		RTBSScheme[datagen.Point]("R-TBS", 0.07, n),
		SWScheme[datagen.Point](n),
		UnifScheme[datagen.Point](n),
	}
}

// knnSeriesResult renders per-step series for the standard lineup.
func knnSeriesResult(id, title string, cfg KNNConfig) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	outcomes, err := RunKNN(cfg, defaultKNNSchemes(cfg.SampleSize))
	if err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: title, Header: []string{"t"}}
	for _, o := range outcomes {
		res.Header = append(res.Header, o.Name)
	}
	for step := 0; step < cfg.Steps; step++ {
		row := []string{fmt.Sprint(step + 1)}
		for _, o := range outcomes {
			row = append(row, f1(o.Series[step]))
		}
		res.Rows = append(res.Rows, row)
	}
	for _, o := range outcomes {
		res.Notes = append(res.Notes,
			fmt.Sprintf("%s: mean miss%% %.1f, %d%% ES %.1f", o.Name, o.Err, int(cfg.ESLevel*100), o.ES))
	}
	return res, nil
}

// Fig10a reproduces Figure 10(a): kNN misclassification under a single
// event (abnormal for 10 < t ≤ 20).
func Fig10a(runs int, seed uint64) (*Result, error) {
	return knnSeriesResult("fig10a", "kNN misclassification %, single event",
		KNNConfig{SampleSize: 1000, Schedule: datagen.SingleEvent{Start: 10, End: 20}, Steps: 30, Runs: runs, Seed: seed})
}

// Fig10b reproduces Figure 10(b): kNN misclassification under
// Periodic(10, 10).
func Fig10b(runs int, seed uint64) (*Result, error) {
	return knnSeriesResult("fig10b", "kNN misclassification %, Periodic(10,10)",
		KNNConfig{SampleSize: 1000, Schedule: datagen.Periodic{Delta: 10, Eta: 10}, Steps: 50, Runs: runs, Seed: seed})
}

// Fig11a reproduces Figure 11(a): Periodic(10,10) with Uniform(0, 200)
// batch sizes.
func Fig11a(runs int, seed uint64) (*Result, error) {
	return knnSeriesResult("fig11a", "kNN misclassification %, uniform batch sizes, Periodic(10,10)",
		KNNConfig{SampleSize: 1000, Pattern: BatchUniform, Schedule: datagen.Periodic{Delta: 10, Eta: 10}, Steps: 50, Runs: runs, Seed: seed})
}

// Fig11b reproduces Figure 11(b): Periodic(10,10) with batch sizes growing
// 2% per step after warm-up.
func Fig11b(runs int, seed uint64) (*Result, error) {
	return knnSeriesResult("fig11b", "kNN misclassification %, growing batch sizes, Periodic(10,10)",
		KNNConfig{SampleSize: 1000, Pattern: BatchGrowing, Schedule: datagen.Periodic{Delta: 10, Eta: 10}, Steps: 50, Runs: runs, Seed: seed})
}

// Fig14a reproduces Figure 14(a): Periodic(20, 10).
func Fig14a(runs int, seed uint64) (*Result, error) {
	return knnSeriesResult("fig14a", "kNN misclassification %, Periodic(20,10)",
		KNNConfig{SampleSize: 1000, Schedule: datagen.Periodic{Delta: 20, Eta: 10}, Steps: 60, Runs: runs, Seed: seed})
}

// Fig14b reproduces Figure 14(b): Periodic(30, 10).
func Fig14b(runs int, seed uint64) (*Result, error) {
	return knnSeriesResult("fig14b", "kNN misclassification %, Periodic(30,10)",
		KNNConfig{SampleSize: 1000, Schedule: datagen.Periodic{Delta: 30, Eta: 10}, Steps: 70, Runs: runs, Seed: seed})
}

// Table1 reproduces Table 1: accuracy (mean misclassification %) and
// robustness (10% ES from t = 20) of the kNN classifier for R-TBS at
// λ ∈ {0.05, 0.07, 0.10}, SW, and Unif across four temporal patterns,
// averaged over `runs` runs (the paper uses 30).
func Table1(runs int, seed uint64) (*Result, error) {
	patterns := []struct {
		name     string
		schedule datagen.Schedule
		steps    int
	}{
		{"Single", datagen.SingleEvent{Start: 10, End: 20}, 30},
		{"P(10,10)", datagen.Periodic{Delta: 10, Eta: 10}, 50},
		{"P(20,10)", datagen.Periodic{Delta: 20, Eta: 10}, 60},
		{"P(30,10)", datagen.Periodic{Delta: 30, Eta: 10}, 70},
	}
	schemes := []SchemeSpec[datagen.Point]{
		RTBSScheme[datagen.Point]("λ=0.05", 0.05, 1000),
		RTBSScheme[datagen.Point]("λ=0.07", 0.07, 1000),
		RTBSScheme[datagen.Point]("λ=0.10", 0.10, 1000),
		SWScheme[datagen.Point](1000),
		UnifScheme[datagen.Point](1000),
	}
	res := &Result{
		ID:    "table1",
		Title: fmt.Sprintf("kNN accuracy and robustness (%d runs)", runs),
		Header: []string{"scheme",
			"Single Miss%", "Single ES",
			"P(10,10) Miss%", "P(10,10) ES",
			"P(20,10) Miss%", "P(20,10) ES",
			"P(30,10) Miss%", "P(30,10) ES"},
	}
	rows := make([][]string, len(schemes))
	for i, s := range schemes {
		rows[i] = []string{s.Name}
	}
	for pi, p := range patterns {
		outcomes, err := RunKNN(KNNConfig{
			SampleSize: 1000, Schedule: p.schedule, Steps: p.steps,
			Runs: runs, Seed: seed + uint64(pi)*1_000_000,
		}, schemes)
		if err != nil {
			return nil, err
		}
		for i, o := range outcomes {
			rows[i] = append(rows[i], f1(o.Err), f1(o.ES))
		}
	}
	res.Rows = rows
	res.Notes = append(res.Notes,
		"paper (Table 1): Unif worst accuracy by a large margin; SW worst robustness (ES 1.4–2.7× R-TBS)")
	return res, nil
}
