package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/xrand"
)

// NBConfig parameterizes the Naive Bayes experiment on the Usenet2-like
// recurring-context text stream (Section 6.4, Figure 13).
type NBConfig struct {
	SampleSize int     // 300 in the paper
	BatchSize  int     // 50
	Lambda     float64 // 0.3
	Messages   int     // 1500 → 30 batches
	Runs       int
	ESLevel    float64 // 0.20 in the paper ("20% ES for this dataset")
	Seed       uint64
}

func (c *NBConfig) normalize() error {
	if c.SampleSize == 0 {
		c.SampleSize = 300
	}
	if c.BatchSize == 0 {
		c.BatchSize = 50
	}
	if c.Lambda == 0 {
		c.Lambda = 0.3
	}
	if c.Messages == 0 {
		c.Messages = 1500
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.ESLevel == 0 {
		c.ESLevel = 0.20
	}
	if c.SampleSize < 1 || c.BatchSize < 1 || c.Messages < c.BatchSize || c.Runs < 1 ||
		c.ESLevel <= 0 || c.ESLevel > 1 {
		return fmt.Errorf("experiments: invalid NB config %+v", *c)
	}
	return nil
}

// RunNaiveBayes executes the text-classification experiment: a Naive Bayes
// model over the current sample predicts whether the user will find each
// incoming message interesting, then the samplers ingest the batch. There
// is no warm-up ("there is not enough data to warm up the models"), so the
// model performance is reported on all batches, as in the paper.
func RunNaiveBayes(cfg NBConfig, schemes []SchemeSpec[datagen.Doc]) ([]SchemeOutcome, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("experiments: no schemes given")
	}
	steps := cfg.Messages / cfg.BatchSize
	sum := make([][]float64, len(schemes))
	cnt := make([][]int, len(schemes))
	for i := range sum {
		sum[i] = make([]float64, steps)
		cnt[i] = make([]int, steps)
	}
	missPerRun := make([][]float64, len(schemes))
	esPerRun := make([][]float64, len(schemes))

	for run := 0; run < cfg.Runs; run++ {
		base := cfg.Seed + uint64(run)*1000
		gen, err := datagen.NewText(datagen.TextConfig{}, xrand.New(base))
		if err != nil {
			return nil, err
		}
		vocab := gen.VocabSize()
		samplers := make([]core.Sampler[datagen.Doc], len(schemes))
		for i, s := range schemes {
			samplers[i], err = s.New(xrand.New(base + 2 + uint64(i)))
			if err != nil {
				return nil, err
			}
		}
		series := make([][]float64, len(schemes))
		for t := 1; t <= steps; t++ {
			batch := gen.Batch(t, cfg.BatchSize)
			step := t - 1
			for i, s := range samplers {
				rate := evalNBBatch(s.Sample(), batch, vocab)
				if !math.IsNaN(rate) {
					sum[i][step] += rate
					cnt[i][step]++
					series[i] = append(series[i], rate)
				}
			}
			for _, s := range samplers {
				s.Advance(batch)
			}
		}
		for i := range schemes {
			if len(series[i]) == 0 {
				continue
			}
			missPerRun[i] = append(missPerRun[i], metrics.Mean(series[i]))
			es, err := metrics.ExpectedShortfall(series[i], cfg.ESLevel)
			if err != nil {
				return nil, err
			}
			esPerRun[i] = append(esPerRun[i], es)
		}
	}

	out := make([]SchemeOutcome, len(schemes))
	for i, s := range schemes {
		o := SchemeOutcome{Name: s.Name, Series: make([]float64, steps)}
		for step := range o.Series {
			if cnt[i][step] > 0 {
				o.Series[step] = sum[i][step] / float64(cnt[i][step])
			}
		}
		o.Err = metrics.Mean(missPerRun[i])
		o.ES = metrics.Mean(esPerRun[i])
		out[i] = o
	}
	return out, nil
}

// evalNBBatch trains Naive Bayes on the sample and returns the
// misprediction percentage over the batch; an untrainable sample (empty or
// single-class... Naive Bayes handles single-class via smoothing) yields
// NaN only when the sample is empty.
func evalNBBatch(sample []datagen.Doc, batch []datagen.Doc, vocab int) float64 {
	if len(sample) == 0 || len(batch) == 0 {
		return math.NaN()
	}
	docs := make([][]int, len(sample))
	labels := make([]int, len(sample))
	for i, d := range sample {
		docs[i] = d.Words
		labels[i] = d.Label
	}
	model, err := ml.FitNaiveBayes(docs, labels, 2, vocab, 1)
	if err != nil {
		return math.NaN()
	}
	wrong := 0
	for _, d := range batch {
		if model.Predict(d.Words) != d.Label {
			wrong++
		}
	}
	return 100 * float64(wrong) / float64(len(batch))
}

// Fig13 reproduces Figure 13: Naive Bayes misclassification on the
// recurring-context text stream with R-TBS (λ = 0.3, n = 300), SW (last
// 300), and Unif (reservoir 300), batches of 50, 30 batches, 20% ES.
// The paper reports miss rates 26.5 / 30.0 / 29.5 % and 20% ES
// 43.3 / 52.7 / 42.7 % for R-TBS / SW / Unif.
func Fig13(runs int, seed uint64) (*Result, error) {
	cfg := NBConfig{Runs: runs, Seed: seed}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	schemes := []SchemeSpec[datagen.Doc]{
		RTBSScheme[datagen.Doc]("R-TBS", cfg.Lambda, cfg.SampleSize),
		SWScheme[datagen.Doc](cfg.SampleSize),
		UnifScheme[datagen.Doc](cfg.SampleSize),
	}
	outcomes, err := RunNaiveBayes(cfg, schemes)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig13",
		Title:  "Naive Bayes misclassification %, recurring-context text stream",
		Header: []string{"t"},
	}
	for _, o := range outcomes {
		res.Header = append(res.Header, o.Name)
	}
	steps := cfg.Messages / cfg.BatchSize
	for step := 0; step < steps; step++ {
		row := []string{fmt.Sprint(step + 1)}
		for _, o := range outcomes {
			row = append(row, f1(o.Series[step]))
		}
		res.Rows = append(res.Rows, row)
	}
	for _, o := range outcomes {
		res.Notes = append(res.Notes,
			fmt.Sprintf("%s: mean miss%% %.1f, 20%% ES %.1f", o.Name, o.Err, o.ES))
	}
	res.Notes = append(res.Notes,
		"paper (Fig. 13): miss 26.5/30.0/29.5, ES 43.3/52.7/42.7 for R-TBS/SW/Unif")
	return res, nil
}
