package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/xrand"
)

// RegressionConfig parameterizes the linear-regression quality experiments
// (Section 6.3, Figure 12).
type RegressionConfig struct {
	SampleSize int // reservoir/window size (1000 saturated, 1600 unsaturated)
	BatchSize  int // deterministic batch size (paper: 100)
	Lambda     float64
	Schedule   datagen.Schedule
	Warmup     int
	Steps      int
	Runs       int
	ESLevel    float64
	ESFrom     int
	Seed       uint64
}

func (c *RegressionConfig) normalize() error {
	if c.SampleSize == 0 {
		c.SampleSize = 1000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 100
	}
	if c.Lambda == 0 {
		c.Lambda = 0.07
	}
	if c.Schedule == nil {
		c.Schedule = datagen.Periodic{Delta: 10, Eta: 10}
	}
	if c.Warmup == 0 {
		c.Warmup = 100
	}
	if c.Steps == 0 {
		c.Steps = 50
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.ESLevel == 0 {
		c.ESLevel = 0.10
	}
	if c.ESFrom == 0 {
		c.ESFrom = 20
	}
	if c.SampleSize < 1 || c.BatchSize < 1 || c.Steps < 1 || c.Runs < 1 ||
		c.ESLevel <= 0 || c.ESLevel > 1 || c.ESFrom < 1 || c.ESFrom > c.Steps {
		return fmt.Errorf("experiments: invalid regression config %+v", *c)
	}
	return nil
}

// RunRegression executes the linear-regression retraining experiment: each
// incoming batch is scored (MSE of the OLS model fit on the current sample)
// before the samplers are updated.
func RunRegression(cfg RegressionConfig, schemes []SchemeSpec[datagen.Obs]) ([]SchemeOutcome, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(schemes) == 0 {
		return nil, fmt.Errorf("experiments: no schemes given")
	}
	sum := make([][]float64, len(schemes))
	cnt := make([][]int, len(schemes))
	for i := range sum {
		sum[i] = make([]float64, cfg.Steps)
		cnt[i] = make([]int, cfg.Steps)
	}
	msePerRun := make([][]float64, len(schemes))
	esPerRun := make([][]float64, len(schemes))

	for run := 0; run < cfg.Runs; run++ {
		base := cfg.Seed + uint64(run)*1000
		gen, err := datagen.NewRegression(datagen.RegressionConfig{
			Schedule: cfg.Schedule,
			Warmup:   cfg.Warmup,
		}, xrand.New(base))
		if err != nil {
			return nil, err
		}
		samplers := make([]core.Sampler[datagen.Obs], len(schemes))
		for i, s := range schemes {
			samplers[i], err = s.New(xrand.New(base + 2 + uint64(i)))
			if err != nil {
				return nil, err
			}
		}
		series := make([][]float64, len(schemes))
		for t := 1; t <= cfg.Warmup+cfg.Steps; t++ {
			batch := gen.Batch(t, cfg.BatchSize)
			if t > cfg.Warmup {
				step := t - cfg.Warmup - 1
				for i, s := range samplers {
					mse := evalRegressionBatch(s.Sample(), batch)
					if !math.IsNaN(mse) {
						sum[i][step] += mse
						cnt[i][step]++
						series[i] = append(series[i], mse)
					}
				}
			}
			for _, s := range samplers {
				s.Advance(batch)
			}
		}
		for i := range schemes {
			if len(series[i]) == 0 {
				continue
			}
			msePerRun[i] = append(msePerRun[i], metrics.Mean(series[i]))
			from := cfg.ESFrom - 1
			if from >= len(series[i]) {
				from = 0
			}
			es, err := metrics.ExpectedShortfall(series[i][from:], cfg.ESLevel)
			if err != nil {
				return nil, err
			}
			esPerRun[i] = append(esPerRun[i], es)
		}
	}

	out := make([]SchemeOutcome, len(schemes))
	for i, s := range schemes {
		o := SchemeOutcome{Name: s.Name, Series: make([]float64, cfg.Steps)}
		for step := range o.Series {
			if cnt[i][step] > 0 {
				o.Series[step] = sum[i][step] / float64(cnt[i][step])
			}
		}
		o.Err = metrics.Mean(msePerRun[i])
		o.ES = metrics.Mean(esPerRun[i])
		out[i] = o
	}
	return out, nil
}

// evalRegressionBatch fits OLS (no intercept, matching the generating
// model) on the sample and returns the MSE over the batch, or NaN if the
// fit is impossible.
func evalRegressionBatch(sample []datagen.Obs, batch []datagen.Obs) float64 {
	if len(sample) < 3 || len(batch) == 0 {
		return math.NaN()
	}
	xs := make([][]float64, len(sample))
	ys := make([]float64, len(sample))
	for i, o := range sample {
		xs[i] = []float64{o.X[0], o.X[1]}
		ys[i] = o.Y
	}
	model, err := ml.FitOLS(xs, ys, false)
	if err != nil {
		return math.NaN()
	}
	s := 0.0
	q := make([]float64, 2)
	for _, o := range batch {
		q[0], q[1] = o.X[0], o.X[1]
		d := model.Predict(q) - o.Y
		s += d * d
	}
	return s / float64(len(batch))
}

// regressionSchemes is the Figure 12 lineup with sample budget n.
func regressionSchemes(n int) []SchemeSpec[datagen.Obs] {
	return []SchemeSpec[datagen.Obs]{
		RTBSScheme[datagen.Obs]("R-TBS", 0.07, n),
		SWScheme[datagen.Obs](n),
		UnifScheme[datagen.Obs](n),
	}
}

// fig12 renders one panel of Figure 12.
func fig12(id, title string, cfg RegressionConfig) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	outcomes, err := RunRegression(cfg, regressionSchemes(cfg.SampleSize))
	if err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: title, Header: []string{"t"}}
	for _, o := range outcomes {
		res.Header = append(res.Header, o.Name)
	}
	for step := 0; step < cfg.Steps; step++ {
		row := []string{fmt.Sprint(step + 1)}
		for _, o := range outcomes {
			row = append(row, f2(o.Series[step]))
		}
		res.Rows = append(res.Rows, row)
	}
	for _, o := range outcomes {
		res.Notes = append(res.Notes,
			fmt.Sprintf("%s: mean MSE %.2f, %d%% ES %.2f", o.Name, o.Err, int(cfg.ESLevel*100), o.ES))
	}
	return res, nil
}

// Fig12a reproduces Figure 12(a): saturated samples (n = 1000),
// Periodic(10,10). The paper reports MSEs ≈ 3.51 / 4.02 / 4.43 and 10% ES
// ≈ 6.04 / 10.94 / 10.05 for R-TBS / SW / Unif.
func Fig12a(runs int, seed uint64) (*Result, error) {
	return fig12("fig12a", "Linear regression MSE, n=1000, Periodic(10,10)",
		RegressionConfig{SampleSize: 1000, Steps: 50, Runs: runs, Seed: seed})
}

// Fig12b reproduces Figure 12(b): unsaturated R-TBS (n = 1600, where the
// R-TBS reservoir stabilizes around 1479 items while SW and Unif are full).
func Fig12b(runs int, seed uint64) (*Result, error) {
	return fig12("fig12b", "Linear regression MSE, n=1600, Periodic(10,10)",
		RegressionConfig{SampleSize: 1600, Steps: 50, Runs: runs, Seed: seed})
}

// Fig12c reproduces Figure 12(c): n = 1600 under Periodic(16,16), where
// SW's window no longer spans old contexts and its error fluctuates again.
func Fig12c(runs int, seed uint64) (*Result, error) {
	return fig12("fig12c", "Linear regression MSE, n=1600, Periodic(16,16)",
		RegressionConfig{SampleSize: 1600, Schedule: datagen.Periodic{Delta: 16, Eta: 16}, Steps: 80, Runs: runs, Seed: seed})
}
