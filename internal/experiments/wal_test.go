package experiments

import (
	"strconv"
	"testing"
)

// TestWALAppendQuick runs the WAL bench in quick mode and checks its
// structural claims: the off row never fsyncs, the sequential group row
// fsyncs once per record, and the concurrent group-commit row coalesces
// (strictly fewer fsyncs than records).
func TestWALAppendQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := WALAppend(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	get := func(row []string, col string) int {
		t.Helper()
		for i, h := range res.Header {
			if h == col {
				n, err := strconv.Atoi(row[i])
				if err != nil {
					t.Fatalf("row %v column %s: %v", row, col, err)
				}
				return n
			}
		}
		t.Fatalf("no column %s in %v", col, res.Header)
		return 0
	}
	for _, row := range res.Rows {
		records, fsyncs := get(row, "records"), get(row, "fsyncs")
		switch row[0] {
		case "wal append fsync=off":
			if fsyncs != 0 {
				t.Errorf("off row fsynced %d times", fsyncs)
			}
		case "wal append fsync=group seq", "wal append fsync=always":
			if fsyncs < records {
				t.Errorf("%s: %d fsyncs for %d records, want >= one per record", row[0], fsyncs, records)
			}
		case "wal group-commit x8":
			if fsyncs == 0 || fsyncs >= records {
				t.Errorf("group commit did not coalesce: %d fsyncs for %d records", fsyncs, records)
			}
		default:
			t.Errorf("unexpected row %q", row[0])
		}
	}
}
