package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/xrand"
)

// ChaoViolation reproduces the Appendix D analysis empirically: under slow
// arrivals relative to the decay rate, B-Chao pins "overweight" items in
// the sample and violates the relative-inclusion property (1), while R-TBS
// maintains it exactly. The experiment fills both samplers, then feeds
// single-item batches with an aggressive decay rate and measures each
// batch's final inclusion probability over many replicas. The rows list,
// per batch, the empirical inclusion probability under both schemes and the
// theoretical R-TBS value (Cₜ/Wₜ)·e^{−λ·age}.
func ChaoViolation(replicas int, seed uint64) (*Result, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("experiments: replicas must be positive, got %d", replicas)
	}
	const (
		lambda  = 1.0
		n       = 20
		fill    = 20 // batch 1 fills the reservoir exactly
		single  = 8  // then 8 single-item batches
		batches = 1 + single
	)
	rtbsCounts := make([]float64, batches)
	chaoCounts := make([]float64, batches)
	batchSizes := make([]int, batches)
	batchSizes[0] = fill
	for i := 1; i < batches; i++ {
		batchSizes[i] = 1
	}
	var lastC, lastW float64
	for rep := 0; rep < replicas; rep++ {
		r, err := core.NewRTBS[int](lambda, n, xrand.New(seed+uint64(rep)*2))
		if err != nil {
			return nil, err
		}
		c, err := core.NewBChao[int](lambda, n, xrand.New(seed+uint64(rep)*2+1))
		if err != nil {
			return nil, err
		}
		id := 0
		for _, b := range batchSizes {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			r.Advance(batch)
			c.Advance(batch)
		}
		for _, item := range r.Sample() {
			rtbsCounts[batchOf(item, batchSizes)]++
		}
		for _, item := range c.Sample() {
			chaoCounts[batchOf(item, batchSizes)]++
		}
		lastC, lastW = r.ExpectedSize(), r.TotalWeight()
	}
	res := &Result{
		ID:     "chao-violation",
		Title:  "Appendix D: B-Chao violates property (1) under slow arrivals (λ=1, n=20)",
		Header: []string{"batch", "size", "R-TBS Pr", "theory Pr", "B-Chao Pr"},
	}
	for bi, b := range batchSizes {
		age := float64(batches - bi - 1)
		theory := lastC / lastW * math.Exp(-lambda*age)
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(bi + 1),
			fmt.Sprint(b),
			fmt.Sprintf("%.4f", rtbsCounts[bi]/float64(replicas)/float64(b)),
			fmt.Sprintf("%.4f", theory),
			fmt.Sprintf("%.4f", chaoCounts[bi]/float64(replicas)/float64(b)),
		})
	}
	res.Notes = append(res.Notes,
		"R-TBS matches theory for every batch; B-Chao pins recent (overweight) items at Pr≈1 and crushes old ones")
	return res, nil
}

// batchOf maps an item id back to its batch index given the batch sizes.
func batchOf(item int, sizes []int) int {
	for bi, b := range sizes {
		if item < b {
			return bi
		}
		item -= b
	}
	return len(sizes) - 1
}

// TTBSLaw verifies Theorem 3.1(ii) empirically: E[Cₜ] = n + pᵗ(C₀ − n)
// with p = e^−λ, reporting the empirical mean sample size against the
// theoretical law at a range of times.
func TTBSLaw(replicas int, seed uint64) (*Result, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("experiments: replicas must be positive, got %d", replicas)
	}
	const (
		lambda = 0.1
		n      = 100
		b      = 100
		steps  = 40
	)
	p := math.Exp(-lambda)
	sums := make([]float64, steps+1)
	for rep := 0; rep < replicas; rep++ {
		s, err := core.NewTTBS[int](lambda, n, b, xrand.New(seed+uint64(rep)))
		if err != nil {
			return nil, err
		}
		batch := make([]int, b)
		for t := 1; t <= steps; t++ {
			s.Advance(batch)
			sums[t] += float64(s.Size())
		}
	}
	res := &Result{
		ID:     "ttbs-law",
		Title:  "Theorem 3.1(ii): E[Ct] = n + p^t (C0 − n), λ=0.1, n=100, C0=0",
		Header: []string{"t", "empirical E[Ct]", "theory"},
	}
	for _, t := range []int{1, 2, 3, 5, 8, 12, 20, 30, 40} {
		theory := float64(n) + math.Pow(p, float64(t))*(0-float64(n))
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(t),
			f2(sums[t] / float64(replicas)),
			f2(theory),
		})
	}
	return res, nil
}
