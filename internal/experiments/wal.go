package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/wal"
)

// WALAppend is the durability-path benchmark behind the CI fsync gate:
// it measures the write-ahead log's append throughput under each fsync
// policy, plus the group-commit path under concurrency — the
// configuration tbsd actually runs, where one fsync is meant to cover a
// whole batch of concurrent acknowledgements. The committed baseline is
// BENCH_wal.json; cmd/benchguard -id wal fails CI when a path regresses
// (a per-record allocation sneaking into the encode path, an fsync per
// record sneaking into group mode).
func WALAppend(quick bool, seed uint64) (*Result, error) {
	res := &Result{
		ID:     "wal",
		Title:  "WAL append throughput: fsync policies and group commit",
		Header: []string{"path", "records", "items", "elapsed ms", "records/sec", "items/sec", "fsyncs"},
	}
	items := walBenchItems(100, seed)

	// Pure encode+write path: no fsync anywhere, so this row isolates the
	// per-record CPU cost (framing, CRC, the one write syscall) that must
	// stay flat for the zero-alloc ingest contract to mean anything.
	if err := runWALPath(res, "wal append fsync=off", wal.SyncOff, 1, runsFor(quick, 20000, 2000), items); err != nil {
		return nil, err
	}
	// Sequential group mode: every Sync elects itself leader (no
	// concurrency to coalesce with), so this is the worst-case fsync
	// latency per acknowledged request.
	if err := runWALPath(res, "wal append fsync=group seq", wal.SyncGroup, 1, runsFor(quick, 1500, 150), items); err != nil {
		return nil, err
	}
	// Concurrent group commit: 8 appenders share the log; one fsync
	// covers everyone whose record it caught — records/fsync is the
	// headline number.
	if err := runWALPath(res, "wal group-commit x8", wal.SyncGroup, 8, runsFor(quick, 4000, 400), items); err != nil {
		return nil, err
	}
	if err := runWALPath(res, "wal append fsync=always", wal.SyncAlways, 1, runsFor(quick, 1000, 100), items); err != nil {
		return nil, err
	}
	return res, nil
}

// walBenchItems builds one ingest chunk of n ~40-byte JSON items.
func walBenchItems(n int, seed uint64) []json.RawMessage {
	items := make([]json.RawMessage, n)
	for i := range items {
		items[i] = json.RawMessage(fmt.Sprintf(`{"sensor":%d,"v":%d.%03d,"s":%d}`, i%64, i%97, i%1000, seed))
	}
	return items
}

// runWALPath appends `records` item-append records (each followed by the
// ack-side Sync, as a request handler would) across `writers` goroutines
// on a fresh log, and appends the row.
func runWALPath(res *Result, name, fsync string, writers, records int, items []json.RawMessage) error {
	dir, err := os.MkdirTemp("", "walbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: fsync})
	if err != nil {
		return err
	}
	defer l.Close()

	perWriter := records / writers
	errc := make(chan error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("bench-%d", w)
			for i := 0; i < perWriter; i++ {
				lsn, err := wal.AppendItems(l, key, items)
				if err == nil {
					err = l.Sync(lsn)
				}
				if err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			return fmt.Errorf("wal bench %s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	st := l.Stats()
	total := perWriter * writers
	totalItems := total * len(items)
	res.Rows = append(res.Rows, []string{
		name, fmt.Sprint(total), fmt.Sprint(totalItems), f1(elapsed.Seconds() * 1000),
		f0(float64(total) / elapsed.Seconds()),
		f0(float64(totalItems) / elapsed.Seconds()),
		fmt.Sprint(st.Fsyncs),
	})
	if fsync == wal.SyncGroup && writers > 1 && st.Fsyncs > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("group commit x%d: %.1f records per fsync", writers, float64(total)/float64(st.Fsyncs)))
	}
	return nil
}
