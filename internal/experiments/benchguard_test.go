package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name string, jsonRate, ndjsonRate string) string {
	t.Helper()
	body := `[
  {
    "id": "ingest",
    "header": ["path", "items", "elapsed ms", "items/sec", "allocs/item", "B/item"],
    "rows": [
      ["http JSON array", "1000", "400.0", "` + jsonRate + `", "1.0", "100"],
      ["http NDJSON engine", "1000", "150.0", "` + ndjsonRate + `", "0.0", "50"]
    ]
  }
]`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchGuardPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "1000000", "3000000")
	// 25% drop on one path, 10% gain on the other: within a 30% floor.
	cur := writeBench(t, dir, "cur.json", "750000", "3300000")
	lines, err := CompareIngestBaseline(base, cur, 0.30)
	if err != nil {
		t.Fatalf("comparator failed within tolerance: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("report lines = %v", lines)
	}
	for _, l := range lines {
		if strings.Contains(l, "REGRESSION") {
			t.Errorf("spurious regression flag: %s", l)
		}
	}
}

func TestRequireMinRates(t *testing.T) {
	dir := t.TempDir()
	cur := writeBench(t, dir, "cur.json", "1000000", "16000000")
	lines, err := RequireMinRates(cur, "ingest", map[string]float64{"http NDJSON engine": 15_360_000})
	if err != nil {
		t.Fatalf("floor met but gate failed: %v\n%v", err, lines)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "ok") {
		t.Fatalf("report lines = %v", lines)
	}
	// Below the floor → error naming the row.
	if _, err := RequireMinRates(cur, "ingest", map[string]float64{"http NDJSON engine": 20_000_000}); err == nil {
		t.Fatal("rate below floor passed")
	} else if !strings.Contains(err.Error(), "http NDJSON engine") {
		t.Errorf("error does not name the row: %v", err)
	}
	// Missing row → error, not a silent pass.
	if _, err := RequireMinRates(cur, "ingest", map[string]float64{"no such row": 1}); err == nil {
		t.Fatal("missing row passed the floor gate")
	}
}

func TestRequireRowFactor(t *testing.T) {
	dir := t.TempDir()
	cur := writeBench(t, dir, "cur.json", "10000000", "25000000")
	lines, err := RequireRowFactor(cur, "ingest", "http JSON array", "http NDJSON engine", 2.0)
	if err != nil {
		t.Fatalf("2.5x factor failed a 2.0x floor: %v\n%v", err, lines)
	}
	if _, err := RequireRowFactor(cur, "ingest", "http JSON array", "http NDJSON engine", 3.0); err == nil {
		t.Fatal("2.5x factor passed a 3.0x floor")
	}
	if _, err := RequireRowFactor(cur, "ingest", "http JSON array", "no such row", 2.0); err == nil {
		t.Fatal("missing numerator row passed")
	}
	if _, err := RequireRowFactor(cur, "ingest", "no such row", "http NDJSON engine", 2.0); err == nil {
		t.Fatal("missing denominator row passed")
	}
	if _, err := RequireRowFactor(cur, "ingest", "http JSON array", "http NDJSON engine", 0); err == nil {
		t.Fatal("non-positive factor accepted")
	}
}

func TestBenchGuardFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "1000000", "3000000")
	cur := writeBench(t, dir, "cur.json", "1000000", "1500000") // 50% drop
	lines, err := CompareIngestBaseline(base, cur, 0.30)
	if err == nil {
		t.Fatalf("50%% drop passed the 30%% guard: %v", lines)
	}
	if !strings.Contains(err.Error(), "http NDJSON engine") {
		t.Errorf("error does not name the regressed path: %v", err)
	}
}

// TestBenchGuardSkipsSubMillisecondRows: the bare core hot path finishes
// in well under a millisecond, where a single scheduler preemption on a
// shared CI runner swings the measured rate arbitrarily — such rows are
// reported but never gated (the 0-alloc test covers them instead).
func TestBenchGuardSkipsSubMillisecondRows(t *testing.T) {
	dir := t.TempDir()
	write := func(name, rate string) string {
		body := `[{"id":"ingest","header":["path","elapsed ms","items/sec"],
  "rows":[["core advance+append","0.6","` + rate + `"],["http JSON array","400","1000000"]]}]`
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", "900000000")
	cur := write("cur.json", "90000000") // 10× core drop, but sub-ms run
	lines, err := CompareIngestBaseline(base, cur, 0.30)
	if err != nil {
		t.Fatalf("sub-millisecond row was gated: %v", err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "core advance+append") && strings.Contains(l, "skipped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("core row not reported as skipped: %v", lines)
	}
}

func TestBenchGuardFailsOnMissingPath(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "1000000", "3000000")
	curBody := `[{"id":"ingest","header":["path","items/sec"],"rows":[["http JSON array","1000000"]]}]`
	cur := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(cur, []byte(curBody), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareIngestBaseline(base, cur, 0.30); err == nil {
		t.Fatal("missing path accepted")
	}
}

// writeOverheadBench writes one run holding a tracing-off and a
// tracing-on row at the given rates (and an optional elapsed override).
func writeOverheadBench(t *testing.T, dir, name, offRate, onRate, elapsed string) string {
	t.Helper()
	body := `[
  {
    "id": "ingest",
    "header": ["path", "items", "elapsed ms", "items/sec", "allocs/item", "B/item"],
    "rows": [
      ["http NDJSON engine", "1000", "` + elapsed + `", "` + offRate + `", "0.0", "50"],
      ["http NDJSON engine+trace", "1000", "` + elapsed + `", "` + onRate + `", "0.0", "52"]
    ]
  }
]`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareRowOverhead(t *testing.T) {
	dir := t.TempDir()
	const off, on = "http NDJSON engine", "http NDJSON engine+trace"

	// 2% overhead: within the 5% gate.
	cur := writeOverheadBench(t, dir, "ok.json", "3000000", "2940000", "150.0")
	if _, err := CompareRowOverhead(cur, "ingest", off, on, 0.05); err != nil {
		t.Errorf("2%% overhead failed the 5%% gate: %v", err)
	}

	// 10% overhead: beyond the gate, and the error names the row.
	cur = writeOverheadBench(t, dir, "slow.json", "3000000", "2700000", "150.0")
	lines, err := CompareRowOverhead(cur, "ingest", off, on, 0.05)
	if err == nil {
		t.Fatalf("10%% overhead passed the 5%% gate: %v", lines)
	}
	if !strings.Contains(err.Error(), on) {
		t.Errorf("error does not name the instrumented row: %v", err)
	}

	// Sub-millisecond rows: reported but never gated.
	cur = writeOverheadBench(t, dir, "noisy.json", "3000000", "1000000", "0.4")
	if _, err := CompareRowOverhead(cur, "ingest", off, on, 0.05); err != nil {
		t.Errorf("sub-millisecond rows were gated: %v", err)
	}

	// Unknown rows and invalid tolerances are rejected up front.
	if _, err := CompareRowOverhead(cur, "ingest", off, "no such row", 0.05); err == nil {
		t.Error("unknown overhead row accepted")
	}
	if _, err := CompareRowOverhead(cur, "ingest", off, on, 0); err == nil {
		t.Error("maxOverhead 0 accepted")
	}
}

func TestBenchGuardInputValidation(t *testing.T) {
	dir := t.TempDir()
	good := writeBench(t, dir, "base.json", "1", "1")
	if _, err := CompareIngestBaseline(good, good, 0); err == nil {
		t.Error("maxDrop 0 accepted")
	}
	if _, err := CompareIngestBaseline(filepath.Join(dir, "missing.json"), good, 0.3); err == nil {
		t.Error("missing baseline accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"id":"other"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareIngestBaseline(bad, good, 0.3); err == nil {
		t.Error("file without an ingest record accepted")
	}
	// The committed repo baselines must parse — the guards in CI depend
	// on them.
	if _, err := benchRates("../../BENCH_ingest.json", "ingest"); err != nil {
		t.Errorf("committed BENCH_ingest.json unreadable: %v", err)
	}
	if _, err := benchRates("../../BENCH_wal.json", "wal"); err != nil {
		t.Errorf("committed BENCH_wal.json unreadable: %v", err)
	}
}

// TestServeDriftQuick runs the serving-path drift experiment in quick
// mode and checks its Figure-10 shape: the error spikes at the event for
// both policies, and the drift policy retrains substantially less often
// than always while staying scorable.
func TestServeDriftQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := ServeDrift(true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows[0]) != 3 {
		t.Fatalf("unexpected result shape: %v", res.Rows)
	}
	pre := parse(t, res.Rows[4][1])    // t=5, before the event
	spike := parse(t, res.Rows[11][1]) // t=12, inside the event
	if spike < pre+10 {
		t.Errorf("always-policy error should spike during the event: pre %v, event %v", pre, spike)
	}
	var alwaysRetrains, driftRetrains float64
	for _, n := range res.Notes {
		var r float64
		var mean float64
		if _, err := fmtSscanf(n, "always: %f retrains, mean batch err %f", &r, &mean); err == nil {
			alwaysRetrains = r
		}
		if _, err := fmtSscanf(n, "drift: %f retrains, mean batch err %f", &r, &mean); err == nil {
			driftRetrains = r
		}
	}
	if alwaysRetrains == 0 || driftRetrains == 0 {
		t.Fatalf("could not extract retrain counts from notes: %v", res.Notes)
	}
	if driftRetrains >= alwaysRetrains/2 {
		t.Errorf("drift policy should retrain far less: %v vs %v", driftRetrains, alwaysRetrains)
	}
}
