package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/xrand"
	"repro/tbs"
)

// IngestPipeline is the ingest-pipeline benchmark mode: it measures the
// wire→engine→shard→sampler data path end to end (handler-direct, no
// sockets) on both wire formats, plus the core sampler hot path, and
// reports throughput with b.ReportAllocs-equivalent counters. It is the
// measurable form of the sharded zero-allocation refactor: the JSON row
// is the per-request buffered path, the NDJSON row the streaming decoder
// with engine-pipelined batch boundaries.
func IngestPipeline(quick bool, seed uint64) (*Result, error) {
	itemsPerRequest := 2000
	requests := runsFor(quick, 300, 40)

	jsonBody, ndjsonBody := ingestBodies(itemsPerRequest)
	res := &Result{
		ID:     "ingest",
		Title:  "ingest pipeline throughput: buffered JSON vs streaming NDJSON vs core hot path",
		Header: []string{"path", "items", "elapsed ms", "items/sec", "allocs/item", "B/item"},
	}

	jsonRate, err := runIngestPath(res, "http JSON array", seed, requests, itemsPerRequest,
		"/v1/streams/bench/items?advance=true", "", jsonBody, nil)
	if err != nil {
		return nil, err
	}
	ndjsonRate, err := runIngestPath(res, "http NDJSON engine", seed, requests, itemsPerRequest,
		fmt.Sprintf("/v1/streams/bench/items?batch=%d", itemsPerRequest),
		"application/x-ndjson", ndjsonBody, nil)
	if err != nil {
		return nil, err
	}
	// The same streaming path with request tracing on (span per request,
	// chunk-grained stage attribution, ring + histogram filing). CI gates
	// this row against the tracing-off row at a few percent — tracing is
	// designed to be cheap enough to leave on in production.
	traceRate, err := runIngestPath(res, "http NDJSON engine+trace", seed, requests, itemsPerRequest,
		fmt.Sprintf("/v1/streams/bench/items?batch=%d", itemsPerRequest),
		"application/x-ndjson", ndjsonBody, func(o *server.Options) func() {
			o.Trace = obs.NewTracer(obs.DefaultRingSize, nil)
			return nil
		})
	if err != nil {
		return nil, err
	}
	// The same streaming path with the write-ahead log journaling every
	// chunk and boundary (group-commit fsync) — the durability tax the
	// EXPERIMENTS.md WAL table reports. Not gated against the baseline
	// (fsync latency is the CI runner's disk, not our code); the `wal`
	// experiment gates the fsync paths separately.
	walRate, err := runIngestPath(res, "http NDJSON engine+wal", seed, requests, itemsPerRequest,
		fmt.Sprintf("/v1/streams/bench/items?batch=%d", itemsPerRequest),
		"application/x-ndjson", ndjsonBody, withThrowawayWAL)
	if err != nil {
		return nil, err
	}
	if err := runIngestCore(res, seed, requests, itemsPerRequest); err != nil {
		return nil, err
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("NDJSON/JSON speedup: %.2fx items/sec", ndjsonRate/jsonRate),
		fmt.Sprintf("tracing-on/tracing-off NDJSON throughput: %.1f%%", 100*traceRate/ndjsonRate),
		fmt.Sprintf("WAL-on/WAL-off NDJSON throughput: %.0f%%", 100*walRate/ndjsonRate))
	return res, nil
}

// withThrowawayWAL points the server at a temp-dir group-commit WAL and
// returns the cleanup that removes it after the row finishes.
func withThrowawayWAL(o *server.Options) func() {
	dir, err := os.MkdirTemp("", "ingestwal")
	if err != nil {
		return nil
	}
	o.CheckpointDir = dir
	o.CheckpointInterval = time.Hour
	o.WALDir = filepath.Join(dir, "wal")
	o.WALFsync = "group"
	return func() { os.RemoveAll(dir) }
}

func ingestBodies(items int) (jsonBody, ndjsonBody []byte) {
	var j, nd bytes.Buffer
	j.WriteByte('[')
	for i := 0; i < items; i++ {
		item := fmt.Sprintf(`{"sensor":%d,"v":%d.%03d,"tag":"s-%d"}`, i%64, i%97, i%1000, i)
		if i > 0 {
			j.WriteByte(',')
		}
		j.WriteString(item)
		nd.WriteString(item)
		nd.WriteByte('\n')
	}
	j.WriteByte(']')
	return j.Bytes(), nd.Bytes()
}

func ptr[T any](v T) *T { return &v }

// runIngestPath drives one wire format through a fresh server and appends
// its row. mutate, when non-nil, adjusts the server options for the row
// (attach a tracer, point at a throwaway WAL, …) and may return a cleanup
// to run after the row finishes.
func runIngestPath(res *Result, name string, seed uint64, requests, itemsPerRequest int, path, contentType string, body []byte, mutate func(*server.Options) func()) (itemsPerSec float64, err error) {
	lambda, n := 0.07, 1000
	opts := server.Options{
		Sampler: tbs.Config{Scheme: "rtbs", Lambda: &lambda, MaxSize: &n, Seed: ptr(seed)},
	}
	if mutate != nil {
		if cleanup := mutate(&opts); cleanup != nil {
			defer cleanup()
		}
	}
	srv, err := server.New(opts)
	if err != nil {
		return 0, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if serr := srv.Stop(ctx); err == nil {
			err = serr
		}
	}()
	handler := srv.Handler()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < requests; i++ {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			return 0, fmt.Errorf("ingest: %s: status %d: %s", name, rec.Code, rec.Body.String())
		}
	}
	// Drain inside the timed window: the NDJSON path pipelines batch
	// application through the engine, and a synchronous /advance is a
	// FIFO barrier behind every queued boundary — without it the NDJSON
	// row would stop the clock with work still in flight while the JSON
	// row (advanceWait per request) pays for everything in-window.
	drain := httptest.NewRequest("POST", "/v1/streams/bench/advance", nil)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, drain)
	if rec.Code != 200 {
		return 0, fmt.Errorf("ingest: %s: drain status %d: %s", name, rec.Code, rec.Body.String())
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	total := requests * itemsPerRequest
	itemsPerSec = float64(total) / elapsed.Seconds()
	allocsPerItem := float64(after.Mallocs-before.Mallocs) / float64(total)
	bytesPerItem := float64(after.TotalAlloc-before.TotalAlloc) / float64(total)
	res.Rows = append(res.Rows, []string{
		name, fmt.Sprint(total), f1(elapsed.Seconds() * 1000),
		f0(itemsPerSec), f2(allocsPerItem), f1(bytesPerItem),
	})
	return itemsPerSec, nil
}

// runIngestCore measures the bare sampler hot path — saturated R-TBS
// Advance + AppendSample with caller-owned buffers — whose steady-state
// allocation count must be zero.
func runIngestCore(res *Result, seed uint64, requests, itemsPerRequest int) error {
	const n, lambda = 1000, 0.07
	s, err := core.NewRTBS[int](lambda, n, xrand.New(seed))
	if err != nil {
		return err
	}
	batch := make([]int, itemsPerRequest)
	for i := 0; i < 10; i++ {
		s.Advance(batch)
	}
	buf := make([]int, 0, n+1)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < requests; i++ {
		s.Advance(batch)
		buf = s.AppendSample(buf[:0])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	total := requests * itemsPerRequest
	res.Rows = append(res.Rows, []string{
		"core advance+append", fmt.Sprint(total), f1(elapsed.Seconds() * 1000),
		f0(float64(total) / elapsed.Seconds()),
		f2(float64(after.Mallocs-before.Mallocs) / float64(total)),
		f1(float64(after.TotalAlloc-before.TotalAlloc) / float64(total)),
	})
	return nil
}
