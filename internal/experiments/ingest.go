package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/xrand"
	"repro/tbs"
)

// IngestPipeline is the ingest-pipeline benchmark mode: it measures the
// wire→engine→shard→sampler data path end to end (handler-direct, no
// sockets) on both wire formats, plus the core sampler hot path, and
// reports throughput with b.ReportAllocs-equivalent counters. It is the
// measurable form of the sharded zero-allocation refactor: the JSON row
// is the per-request buffered path, the NDJSON row the streaming decoder
// with engine-pipelined batch boundaries.
func IngestPipeline(quick bool, seed uint64) (*Result, error) {
	itemsPerRequest := 2000
	requests := runsFor(quick, 300, 40)

	jsonBody, ndjsonBody := ingestBodies(itemsPerRequest)
	res := &Result{
		ID:     "ingest",
		Title:  "ingest pipeline throughput: buffered JSON vs streaming NDJSON vs core hot path",
		Header: []string{"path", "items", "elapsed ms", "items/sec", "allocs/item", "B/item"},
	}

	jsonRate, err := runIngestPath(res, "http JSON array", seed, requests, itemsPerRequest,
		"/v1/streams/bench/items?advance=true", "", jsonBody, nil)
	if err != nil {
		return nil, err
	}
	ndjsonRate, err := runIngestPath(res, "http NDJSON engine", seed, requests, itemsPerRequest,
		fmt.Sprintf("/v1/streams/bench/items?batch=%d", itemsPerRequest),
		"application/x-ndjson", ndjsonBody, nil)
	if err != nil {
		return nil, err
	}
	// The same streaming path with request tracing on (span per request,
	// chunk-grained stage attribution, ring + histogram filing). CI gates
	// this row against the tracing-off row at a few percent — tracing is
	// designed to be cheap enough to leave on in production.
	traceRate, err := runIngestPath(res, "http NDJSON engine+trace", seed, requests, itemsPerRequest,
		fmt.Sprintf("/v1/streams/bench/items?batch=%d", itemsPerRequest),
		"application/x-ndjson", ndjsonBody, func(o *server.Options) func() {
			o.Trace = obs.NewTracer(obs.DefaultRingSize, nil)
			return nil
		})
	if err != nil {
		return nil, err
	}
	// The same streaming path with the write-ahead log journaling every
	// chunk and boundary (group-commit fsync) — the durability tax the
	// EXPERIMENTS.md WAL table reports. Not gated against the baseline
	// (fsync latency is the CI runner's disk, not our code); the `wal`
	// experiment gates the fsync paths separately.
	walRate, err := runIngestPath(res, "http NDJSON engine+wal", seed, requests, itemsPerRequest,
		fmt.Sprintf("/v1/streams/bench/items?batch=%d", itemsPerRequest),
		"application/x-ndjson", ndjsonBody, withThrowawayWAL)
	if err != nil {
		return nil, err
	}
	// The 1BRC-style byte-level wire rows: canonical `{"v":N}` value rows
	// — the restricted grammar the fast validator fully covers — first as
	// NDJSON text (without and with the WAL journaling every chunk), then
	// as the equivalent x-tbs-bin frames. Requests are larger than the
	// general rows so each row's measured window clears the benchguard
	// noise floor even on the quick CI run.
	fastItems := 5000
	fastRequests := runsFor(quick, 1200, 60)
	fastBody, binBody := fastIngestBodies(fastItems)
	fastRate, binRate, err := runPairedIngestRows(res, seed, fastRequests, fastItems, fastBody, binBody)
	if err != nil {
		return nil, err
	}
	fastWALRate, err := runIngestPath(res, "ndjson fast-path+wal", seed, fastRequests, fastItems,
		fmt.Sprintf("/v1/streams/bench/items?batch=%d", fastItems),
		"application/x-ndjson", fastBody, withThrowawayWAL)
	if err != nil {
		return nil, err
	}
	if err := runIngestCore(res, seed, requests, itemsPerRequest); err != nil {
		return nil, err
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("NDJSON/JSON speedup: %.2fx items/sec", ndjsonRate/jsonRate),
		fmt.Sprintf("tracing-on/tracing-off NDJSON throughput: %.1f%%", 100*traceRate/ndjsonRate),
		fmt.Sprintf("WAL-on/WAL-off NDJSON throughput: %.0f%%", 100*walRate/ndjsonRate),
		fmt.Sprintf("fast-path/general NDJSON speedup: %.2fx items/sec", fastRate/ndjsonRate),
		fmt.Sprintf("WAL-on/WAL-off fast-path throughput: %.0f%%", 100*fastWALRate/fastRate),
		fmt.Sprintf("x-tbs-bin/fast-path NDJSON speedup: %.2fx items/sec", binRate/fastRate))
	return res, nil
}

// withThrowawayWAL points the server at a temp-dir group-commit WAL and
// returns the cleanup that removes it after the row finishes.
func withThrowawayWAL(o *server.Options) func() {
	dir, err := os.MkdirTemp("", "ingestwal")
	if err != nil {
		return nil
	}
	o.CheckpointDir = dir
	o.CheckpointInterval = time.Hour
	o.WALDir = filepath.Join(dir, "wal")
	o.WALFsync = "group"
	return func() { os.RemoveAll(dir) }
}

func ingestBodies(items int) (jsonBody, ndjsonBody []byte) {
	var j, nd bytes.Buffer
	j.WriteByte('[')
	for i := 0; i < items; i++ {
		item := fmt.Sprintf(`{"sensor":%d,"v":%d.%03d,"tag":"s-%d"}`, i%64, i%97, i%1000, i)
		if i > 0 {
			j.WriteByte(',')
		}
		j.WriteString(item)
		nd.WriteString(item)
		nd.WriteByte('\n')
	}
	j.WriteByte(']')
	return j.Bytes(), nd.Bytes()
}

// fastIngestBodies builds the same three-decimal sensor readings —
// 1BRC-style fixed-point quantization in [-100.000, 99.999] — as
// canonical NDJSON value rows and as x-tbs-bin frames, so the two
// fast-path rows measure the same logical stream on both wire formats.
// The binary body chunks rows into 512-row frames: small frames take
// the decoder's zero-copy retained path, and a surviving sample row
// then pins only a few KB of wire buffer rather than the whole request.
func fastIngestBodies(items int) (ndjson, bin []byte) {
	const rowsPerFrame = 512
	rows := make([][]float64, items)
	for i := 0; i < items; i++ {
		v := float64((i*7919)%200000-100000) / 1000
		rows[i] = []float64{v}
		ndjson = wire.AppendRowJSON(ndjson, rows[i])
		ndjson = append(ndjson, '\n')
	}
	for off := 0; off < len(rows); off += rowsPerFrame {
		end := min(off+rowsPerFrame, len(rows))
		bin = wire.AppendFrame(bin, rows[off:end])
	}
	return ndjson, bin
}

func ptr[T any](v T) *T { return &v }

// runPairedIngestRows measures the two ratio-gated fast-path rows —
// "ndjson fast-path" and "x-tbs-bin" — with interleaved timed windows
// on one schedule. benchguard gates their within-run items/sec ratio,
// and back-to-back rows make that ratio hostage to whatever the shared
// runner was doing during one row's seconds: a neighbor's CPU burst or
// a GC pacer mode landing on only one format skews the quotient by 2x.
// Alternating format windows exposes both sides to the same conditions,
// so the best-of-K pair compares like with like. The binary side sends
// twice the requests per window because it clears items in roughly half
// the wall time — windows stay comparable in duration, not item count.
func runPairedIngestRows(res *Result, seed uint64, requests, itemsPerRequest int, ndjsonBody, binBody []byte) (fastRate, binRate float64, err error) {
	const windows = 4
	type side struct {
		name, contentType string
		body              []byte
		requests          int
		handler           http.Handler
		best              time.Duration
		allocs, bytes     uint64
	}
	sides := [2]*side{
		{name: "ndjson fast-path", contentType: "application/x-ndjson", body: ndjsonBody, requests: requests},
		{name: "x-tbs-bin", contentType: wire.BinContentType, body: binBody, requests: 2 * requests},
	}
	path := fmt.Sprintf("/v1/streams/bench/items?batch=%d", itemsPerRequest)
	lambda, n := 0.07, 1000
	for _, sd := range sides {
		srv, serr := server.New(server.Options{
			Sampler: tbs.Config{Scheme: "rtbs", Lambda: &lambda, MaxSize: &n, Seed: ptr(seed)},
		})
		if serr != nil {
			return 0, 0, serr
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if serr := srv.Stop(ctx); err == nil {
				err = serr
			}
		}()
		sd.handler = srv.Handler()
	}

	window := func(sd *side, reqs int, timed bool) error {
		var before, after runtime.MemStats
		if timed {
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		for i := 0; i < reqs; i++ {
			req := httptest.NewRequest("POST", path, bytes.NewReader(sd.body))
			req.Header.Set("Content-Type", sd.contentType)
			rec := httptest.NewRecorder()
			sd.handler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				return fmt.Errorf("ingest: %s: status %d: %s", sd.name, rec.Code, rec.Body.String())
			}
		}
		// Synchronous drain: a FIFO barrier behind every pipelined batch
		// boundary, so the clock never stops with work still in flight.
		drain := httptest.NewRequest("POST", "/v1/streams/bench/advance", nil)
		rec := httptest.NewRecorder()
		sd.handler.ServeHTTP(rec, drain)
		if rec.Code != 200 {
			return fmt.Errorf("ingest: %s: drain status %d: %s", sd.name, rec.Code, rec.Body.String())
		}
		if !timed {
			return nil
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if sd.best == 0 || elapsed < sd.best {
			sd.best = elapsed
		}
		sd.allocs += after.Mallocs - before.Mallocs
		sd.bytes += after.TotalAlloc - before.TotalAlloc
		return nil
	}
	// Untimed warmup for both sides first (reservoir saturation, pool and
	// pacer steady state), then the interleaved timed windows.
	for _, sd := range sides {
		if err := window(sd, max(sd.requests/5, 2), false); err != nil {
			return 0, 0, err
		}
	}
	for w := 0; w < windows; w++ {
		for _, sd := range sides {
			if err := window(sd, sd.requests, true); err != nil {
				return 0, 0, err
			}
		}
	}
	rates := [2]float64{}
	for i, sd := range sides {
		total := sd.requests * itemsPerRequest
		rates[i] = float64(total) / sd.best.Seconds()
		res.Rows = append(res.Rows, []string{
			sd.name, fmt.Sprint(total), f1(sd.best.Seconds() * 1000),
			f0(rates[i]),
			f2(float64(sd.allocs) / float64(windows*total)),
			f1(float64(sd.bytes) / float64(windows*total)),
		})
	}
	return rates[0], rates[1], nil
}

// runIngestPath drives one wire format through a fresh server and appends
// its row. mutate, when non-nil, adjusts the server options for the row
// (attach a tracer, point at a throwaway WAL, …) and may return a cleanup
// to run after the row finishes.
func runIngestPath(res *Result, name string, seed uint64, requests, itemsPerRequest int, path, contentType string, body []byte, mutate func(*server.Options) func()) (itemsPerSec float64, err error) {
	lambda, n := 0.07, 1000
	opts := server.Options{
		Sampler: tbs.Config{Scheme: "rtbs", Lambda: &lambda, MaxSize: &n, Seed: ptr(seed)},
	}
	if mutate != nil {
		if cleanup := mutate(&opts); cleanup != nil {
			defer cleanup()
		}
	}
	srv, err := server.New(opts)
	if err != nil {
		return 0, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if serr := srv.Stop(ctx); err == nil {
			err = serr
		}
	}()
	handler := srv.Handler()

	send := func(i int) error {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			return fmt.Errorf("ingest: %s: request %d: status %d: %s", name, i, rec.Code, rec.Body.String())
		}
		return nil
	}
	// Untimed warmup: saturate the reservoir, grow the arenas and pools,
	// and let the GC pacer find its steady-state heap goal, so the timed
	// window measures sustained throughput rather than the cold-start
	// ramp (on one core the pacer's early cycles otherwise eat 15-25% of
	// a fresh process's first window in mark assists).
	for i := 0; i < max(requests/5, 2); i++ {
		if err := send(i); err != nil {
			return 0, err
		}
	}

	// Three timed windows, best one reported. A window here is only
	// 100-500ms, and on a small runner a single GC mark phase or a
	// scheduler hiccup landing inside it moves the result by double-digit
	// percent; the best of three measures what the path sustains when it
	// gets the machine, which is the quantity the benchguard gates are
	// about. Each window ends with a synchronous /advance drain: the
	// streaming paths pipeline batch application through the engine, and
	// the drain is a FIFO barrier behind every queued boundary — without
	// it a window would stop the clock with work still in flight while
	// the JSON row (advanceWait per request) pays for everything
	// in-window. Allocation counters span all three windows; per-item
	// allocation does not vary window to window.
	const windows = 3
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := time.Duration(0)
	for w := 0; w < windows; w++ {
		start := time.Now()
		for i := 0; i < requests; i++ {
			if err := send(i); err != nil {
				return 0, err
			}
		}
		drain := httptest.NewRequest("POST", "/v1/streams/bench/advance", nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, drain)
		if rec.Code != 200 {
			return 0, fmt.Errorf("ingest: %s: drain status %d: %s", name, rec.Code, rec.Body.String())
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	runtime.ReadMemStats(&after)

	total := requests * itemsPerRequest
	itemsPerSec = float64(total) / best.Seconds()
	allocsPerItem := float64(after.Mallocs-before.Mallocs) / float64(windows*total)
	bytesPerItem := float64(after.TotalAlloc-before.TotalAlloc) / float64(windows*total)
	elapsed := best
	res.Rows = append(res.Rows, []string{
		name, fmt.Sprint(total), f1(elapsed.Seconds() * 1000),
		f0(itemsPerSec), f2(allocsPerItem), f1(bytesPerItem),
	})
	return itemsPerSec, nil
}

// runIngestCore measures the bare sampler hot path — saturated R-TBS
// Advance + AppendSample with caller-owned buffers — whose steady-state
// allocation count must be zero.
func runIngestCore(res *Result, seed uint64, requests, itemsPerRequest int) error {
	const n, lambda = 1000, 0.07
	s, err := core.NewRTBS[int](lambda, n, xrand.New(seed))
	if err != nil {
		return err
	}
	batch := make([]int, itemsPerRequest)
	for i := 0; i < 10; i++ {
		s.Advance(batch)
	}
	buf := make([]int, 0, n+1)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < requests; i++ {
		s.Advance(batch)
		buf = s.AppendSample(buf[:0])
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	total := requests * itemsPerRequest
	res.Rows = append(res.Rows, []string{
		"core advance+append", fmt.Sprint(total), f1(elapsed.Seconds() * 1000),
		f0(float64(total) / elapsed.Seconds()),
		f2(float64(after.Mallocs-before.Mallocs) / float64(total)),
		f1(float64(after.TotalAlloc-before.TotalAlloc) / float64(total)),
	})
	return nil
}
