package experiments

import (
	"strconv"
	"testing"
)

// TestClusterIngestQuick runs the routed-vs-direct bench in quick mode
// and checks its structural claims: both rows see the same item total,
// both paths actually moved data, and the header carries the columns the
// benchguard gate keys on.
func TestClusterIngestQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := ClusterIngest(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (direct, routed)", len(res.Rows))
	}
	col := func(name string) int {
		t.Helper()
		for i, h := range res.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q in %v", name, res.Header)
		return -1
	}
	pathCol, itemsCol, rateCol := col("path"), col("items"), col("items/sec")
	direct, routed := res.Rows[0], res.Rows[1]
	if direct[pathCol] != "direct NDJSON" || routed[pathCol] != "routed NDJSON" {
		t.Fatalf("unexpected row order: %q, %q", direct[pathCol], routed[pathCol])
	}
	if direct[itemsCol] != routed[itemsCol] {
		t.Errorf("workloads differ: direct %s items vs routed %s", direct[itemsCol], routed[itemsCol])
	}
	for _, row := range res.Rows {
		rate, err := strconv.ParseFloat(row[rateCol], 64)
		if err != nil || rate <= 0 {
			t.Errorf("%s: items/sec %q not a positive rate (%v)", row[pathCol], row[rateCol], err)
		}
	}
}
