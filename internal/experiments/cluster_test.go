package experiments

import (
	"strconv"
	"testing"
)

// TestClusterIngestQuick runs the routed-vs-direct bench in quick mode
// and checks its structural claims: all rows see the same item total,
// every path actually moved data, and the header carries the columns the
// benchguard gate keys on.
func TestClusterIngestQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := ClusterIngest(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (direct, routed, routed bin)", len(res.Rows))
	}
	col := func(name string) int {
		t.Helper()
		for i, h := range res.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q in %v", name, res.Header)
		return -1
	}
	pathCol, itemsCol, rateCol := col("path"), col("items"), col("items/sec")
	direct, routed, routedBin := res.Rows[0], res.Rows[1], res.Rows[2]
	if direct[pathCol] != "direct NDJSON" || routed[pathCol] != "routed NDJSON" ||
		routedBin[pathCol] != "routed x-tbs-bin" {
		t.Fatalf("unexpected row order: %q, %q, %q",
			direct[pathCol], routed[pathCol], routedBin[pathCol])
	}
	if direct[itemsCol] != routed[itemsCol] || direct[itemsCol] != routedBin[itemsCol] {
		t.Errorf("workloads differ: direct %s items vs routed %s vs routed bin %s",
			direct[itemsCol], routed[itemsCol], routedBin[itemsCol])
	}
	for _, row := range res.Rows {
		rate, err := strconv.ParseFloat(row[rateCol], 64)
		if err != nil || rate <= 0 {
			t.Errorf("%s: items/sec %q not a positive rate (%v)", row[pathCol], row[rateCol], err)
		}
	}
}
