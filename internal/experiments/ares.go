package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/xrand"
)

// AResViolation quantifies the Section 7 argument against A-Res-style
// schemes (Efraimidis–Spirakis weighted reservoir + forward decay, as in
// Cormode et al.): they bias *acceptance* probabilities, so the resulting
// *appearance* probabilities do not follow the exponential-decay law (1).
// The experiment streams equal batches through R-TBS and A-Res with the
// same λ and n and reports, per batch, the empirical inclusion probability
// and the batch-over-batch ratio, whose target value is e^{−λ}.
func AResViolation(replicas int, seed uint64) (*Result, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("experiments: replicas must be positive, got %d", replicas)
	}
	// Regime chosen to expose the gap: with λ = 0.5 and batches of 10, the
	// total decayed weight converges to ≈25.4, below the bound n = 40, so a
	// property-(1) sampler (R-TBS) is permanently unsaturated with
	// inclusion exactly e^{−λ·age} — while A-Res greedily keeps all 40
	// slots filled and over-represents old items.
	const (
		lambda  = 0.5
		n       = 40
		b       = 10
		batches = 8
	)
	rtbsCounts := make([]float64, batches)
	aresCounts := make([]float64, batches)
	for rep := 0; rep < replicas; rep++ {
		r, err := core.NewRTBS[int](lambda, n, xrand.New(seed+uint64(rep)*2))
		if err != nil {
			return nil, err
		}
		a, err := core.NewARes[int](lambda, n, xrand.New(seed+uint64(rep)*2+1))
		if err != nil {
			return nil, err
		}
		id := 0
		for bi := 0; bi < batches; bi++ {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			r.Advance(batch)
			a.Advance(batch)
		}
		for _, item := range r.Sample() {
			rtbsCounts[item/b]++
		}
		for _, item := range a.Sample() {
			aresCounts[item/b]++
		}
	}
	res := &Result{
		ID:     "ares-violation",
		Title:  "Section 7: A-Res biases acceptance, not appearance (λ=0.5, n=40, b=10)",
		Header: []string{"batch", "R-TBS Pr", "R-TBS ratio", "A-Res Pr", "A-Res ratio", "target ratio"},
	}
	norm := float64(replicas) * b
	target := math.Exp(-lambda)
	for bi := 0; bi < batches; bi++ {
		rp := rtbsCounts[bi] / norm
		ap := aresCounts[bi] / norm
		rRatio, aRatio := "-", "-"
		if bi > 0 {
			rRatio = fmt.Sprintf("%.3f", rtbsCounts[bi-1]/rtbsCounts[bi])
			aRatio = fmt.Sprintf("%.3f", aresCounts[bi-1]/aresCounts[bi])
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(bi + 1),
			fmt.Sprintf("%.4f", rp),
			rRatio,
			fmt.Sprintf("%.4f", ap),
			aRatio,
			fmt.Sprintf("%.3f", target),
		})
	}
	res.Notes = append(res.Notes,
		"R-TBS batch-over-batch ratios equal e^{−λ} everywhere; A-Res ratios drift with the fill state")
	return res, nil
}
