package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/tbs"
)

// ClusterIngest measures what the consistent-hash router costs on the
// ingest hot path: the same NDJSON workload is pushed once straight at a
// single tbsd node and once through a tbsrouter fronting three nodes,
// both over real TCP loopback so the comparison includes the hop the
// router adds. The routed row is the scale-out configuration's
// steady-state throughput; the ratio note is the per-request routing tax
// (hash + health check + proxied copy with pooled buffers).
func ClusterIngest(quick bool, seed uint64) (*Result, error) {
	itemsPerRequest := 1000
	rounds := runsFor(quick, 150, 15)

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%02d", i)
	}
	body := clusterNDJSONBody(itemsPerRequest)

	res := &Result{
		ID:     "cluster",
		Title:  "clustered ingest: direct node vs router-forwarded NDJSON over TCP",
		Header: []string{"path", "nodes", "items", "elapsed ms", "items/sec"},
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// Direct path: one node, all keys resident, client → node over TCP.
	directRate, err := func() (float64, error) {
		node, ts, err := newClusterNode(seed)
		if err != nil {
			return 0, err
		}
		defer ts.Close()
		defer stopClusterNode(node)
		return clusterDrive(res, "direct NDJSON", 1, client, ts.URL, keys, rounds, body, "application/x-ndjson", itemsPerRequest)
	}()
	if err != nil {
		return nil, err
	}

	// Routed path: three nodes behind a consistent-hash router, the same
	// workload addressed to the router, which forwards each key to its
	// ring owner. The same topology then carries x-tbs-bin frames — the
	// router forwards request bodies byte-for-byte without inspecting
	// them, so the binary format's wire savings survive the extra hop.
	binBody := clusterBinBody(itemsPerRequest)
	routedRate, routedBinRate, err := func() (float64, float64, error) {
		names := []string{"n0", "n1", "n2"}
		members := make([]cluster.Node, 0, len(names))
		nodes := make([]*server.Server, 0, len(names))
		defer func() {
			for _, n := range nodes {
				stopClusterNode(n)
			}
		}()
		for i, name := range names {
			node, ts, err := newClusterNode(seed + uint64(i))
			if err != nil {
				return 0, 0, err
			}
			defer ts.Close()
			nodes = append(nodes, node)
			members = append(members, cluster.Node{Name: name, Addr: ts.URL[len("http://"):]})
		}
		ring, err := cluster.NewRing(members, 64)
		if err != nil {
			return 0, 0, err
		}
		router, err := cluster.NewRouter(cluster.RouterOptions{
			Ring:          ring,
			ProbeInterval: 50 * time.Millisecond,
			FailThreshold: 3,
		})
		if err != nil {
			return 0, 0, err
		}
		router.Start()
		defer router.Stop()
		rts := httptest.NewServer(router.Handler())
		defer rts.Close()
		nd, err := clusterDrive(res, "routed NDJSON", len(names), client, rts.URL, keys, rounds, body, "application/x-ndjson", itemsPerRequest)
		if err != nil {
			return 0, 0, err
		}
		bin, err := clusterDrive(res, "routed x-tbs-bin", len(names), client, rts.URL, keys, rounds, binBody, wire.BinContentType, itemsPerRequest)
		if err != nil {
			return 0, 0, err
		}
		return nd, bin, nil
	}()
	if err != nil {
		return nil, err
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("router overhead: routed runs at %.0f%% of direct items/sec", 100*routedRate/directRate),
		fmt.Sprintf("routed x-tbs-bin/NDJSON: %.2fx items/sec (bodies forwarded uninspected)", routedBinRate/routedRate),
		fmt.Sprintf("%d keys spread by consistent hash; all paths measured over TCP loopback", len(keys)))
	return res, nil
}

// clusterBinBody frames one-float value rows — the binary equivalent of
// the fast-path workload — in 512-row frames so nodes take the decoder's
// zero-copy retained path.
func clusterBinBody(items int) []byte {
	const rowsPerFrame = 512
	rows := make([][]float64, items)
	for i := 0; i < items; i++ {
		rows[i] = []float64{float64((i*7919)%200000-100000) / 1000}
	}
	var bin []byte
	for off := 0; off < len(rows); off += rowsPerFrame {
		end := min(off+rowsPerFrame, len(rows))
		bin = wire.AppendFrame(bin, rows[off:end])
	}
	return bin
}

func clusterNDJSONBody(items int) []byte {
	var nd bytes.Buffer
	for i := 0; i < items; i++ {
		fmt.Fprintf(&nd, `{"sensor":%d,"v":%d.%03d,"tag":"s-%d"}`+"\n", i%64, i%97, i%1000, i)
	}
	return nd.Bytes()
}

// newClusterNode builds one started tbsd node on a real listener, the
// same sampler configuration as the ingest benchmark.
func newClusterNode(seed uint64) (*server.Server, *httptest.Server, error) {
	lambda, n := 0.07, 1000
	srv, err := server.New(server.Options{
		Sampler: tbs.Config{Scheme: "rtbs", Lambda: &lambda, MaxSize: &n, Seed: ptr(seed)},
	})
	if err != nil {
		return nil, nil, err
	}
	srv.Start()
	return srv, httptest.NewServer(srv.Handler()), nil
}

func stopClusterNode(srv *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Stop(ctx) //nolint:errcheck // benchmark teardown
}

// clusterDrive pushes rounds×keys NDJSON requests at baseURL, drains each
// key's pipelined boundaries inside the timed window, and appends a row.
func clusterDrive(res *Result, name string, nodes int, client *http.Client, baseURL string, keys []string, rounds int, body []byte, contentType string, itemsPerRequest int) (float64, error) {
	post := func(path string, b []byte, contentType string) error {
		req, err := http.NewRequest("POST", baseURL+path, bytes.NewReader(b))
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: %s: %s: %w", name, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			buf := make([]byte, 512)
			k, _ := resp.Body.Read(buf)
			return fmt.Errorf("cluster: %s: %s: status %d: %s", name, path, resp.StatusCode, buf[:k])
		}
		return nil
	}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, key := range keys {
			path := fmt.Sprintf("/v1/streams/%s/items?batch=%d", key, itemsPerRequest)
			if err := post(path, body, contentType); err != nil {
				return 0, err
			}
		}
	}
	// Drain inside the window: batch boundaries are pipelined through the
	// engine, and a synchronous /advance per key is the FIFO barrier that
	// makes both rows pay for all queued work before the clock stops.
	for _, key := range keys {
		if err := post("/v1/streams/"+key+"/advance", nil, ""); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)

	total := rounds * len(keys) * itemsPerRequest
	rate := float64(total) / elapsed.Seconds()
	res.Rows = append(res.Rows, []string{
		name, fmt.Sprint(nodes), fmt.Sprint(total), f1(elapsed.Seconds() * 1000), f0(rate),
	})
	return rate, nil
}
