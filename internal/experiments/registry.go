package experiments

import (
	"fmt"
	"sort"
)

// Spec describes one runnable experiment. Quick mode trades replication for
// speed (used by tests); full mode matches the paper's run counts.
type Spec struct {
	ID    string
	Title string
	Run   func(quick bool, seed uint64) (*Result, error)
}

// runsFor picks the replication level.
func runsFor(quick bool, full, quickRuns int) int {
	if quick {
		return quickRuns
	}
	return full
}

// Registry returns every experiment, sorted by ID. Each entry regenerates
// one of the paper's tables or figures (see DESIGN.md section 4).
func Registry() []Spec {
	specs := []Spec{
		{"fig1a", "T-TBS vs R-TBS sample size, growing batches", func(quick bool, seed uint64) (*Result, error) {
			return Fig1(Fig1Growing, strideFor(quick), seed)
		}},
		{"fig1b", "T-TBS vs R-TBS sample size, stable deterministic batches", func(quick bool, seed uint64) (*Result, error) {
			return Fig1(Fig1StableDet, strideFor(quick), seed)
		}},
		{"fig1c", "T-TBS vs R-TBS sample size, uniform batches", func(quick bool, seed uint64) (*Result, error) {
			return Fig1(Fig1StableUnif, strideFor(quick), seed)
		}},
		{"fig1d", "T-TBS vs R-TBS sample size, decaying batches", func(quick bool, seed uint64) (*Result, error) {
			return Fig1(Fig1Decaying, strideFor(quick), seed)
		}},
		{"fig7", "distributed per-batch runtime, five implementations", func(_ bool, seed uint64) (*Result, error) {
			return Fig7(seed)
		}},
		{"fig8", "D-R-TBS scale-out", func(_ bool, seed uint64) (*Result, error) {
			return Fig8(seed)
		}},
		{"fig9", "D-R-TBS scale-up", func(_ bool, seed uint64) (*Result, error) {
			return Fig9(seed)
		}},
		{"fig10a", "kNN misclassification, single event", func(quick bool, seed uint64) (*Result, error) {
			return Fig10a(runsFor(quick, 30, 3), seed)
		}},
		{"fig10b", "kNN misclassification, Periodic(10,10)", func(quick bool, seed uint64) (*Result, error) {
			return Fig10b(runsFor(quick, 30, 3), seed)
		}},
		{"fig11a", "kNN, uniform batch sizes", func(quick bool, seed uint64) (*Result, error) {
			return Fig11a(runsFor(quick, 30, 3), seed)
		}},
		{"fig11b", "kNN, growing batch sizes", func(quick bool, seed uint64) (*Result, error) {
			return Fig11b(runsFor(quick, 30, 3), seed)
		}},
		{"fig12a", "linear regression, saturated samples", func(quick bool, seed uint64) (*Result, error) {
			return Fig12a(runsFor(quick, 30, 3), seed)
		}},
		{"fig12b", "linear regression, unsaturated, P(10,10)", func(quick bool, seed uint64) (*Result, error) {
			return Fig12b(runsFor(quick, 30, 3), seed)
		}},
		{"fig12c", "linear regression, unsaturated, P(16,16)", func(quick bool, seed uint64) (*Result, error) {
			return Fig12c(runsFor(quick, 30, 3), seed)
		}},
		{"fig13", "Naive Bayes on recurring-context text", func(quick bool, seed uint64) (*Result, error) {
			return Fig13(runsFor(quick, 30, 3), seed)
		}},
		{"fig14a", "kNN, Periodic(20,10)", func(quick bool, seed uint64) (*Result, error) {
			return Fig14a(runsFor(quick, 30, 3), seed)
		}},
		{"fig14b", "kNN, Periodic(30,10)", func(quick bool, seed uint64) (*Result, error) {
			return Fig14b(runsFor(quick, 30, 3), seed)
		}},
		{"table1", "kNN accuracy and robustness grid", func(quick bool, seed uint64) (*Result, error) {
			return Table1(runsFor(quick, 30, 3), seed)
		}},
		{"chao-violation", "Appendix D: B-Chao inclusion-probability violation", func(quick bool, seed uint64) (*Result, error) {
			return ChaoViolation(runsFor(quick, 40000, 4000), seed)
		}},
		{"ares-violation", "Section 7: A-Res acceptance-vs-appearance bias", func(quick bool, seed uint64) (*Result, error) {
			return AResViolation(runsFor(quick, 40000, 4000), seed)
		}},
		{"ttbs-law", "Theorem 3.1(ii): T-TBS mean sample-size law", func(quick bool, seed uint64) (*Result, error) {
			return TTBSLaw(runsFor(quick, 5000, 500), seed)
		}},
		{"cluster", "clustered ingest: direct node vs router-forwarded NDJSON", ClusterIngest},
		{"hibernate", "memory tiering: warm-path overhead and cold-hit hydration latency", Hibernate},
		{"ingest", "ingest pipeline: JSON vs NDJSON+engine vs core hot path", IngestPipeline},
		{"serve-drift", "online model management through the tbsd HTTP path: always vs drift retraining", ServeDrift},
		{"wal", "WAL append throughput: fsync policies and group commit", WALAppend},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	return specs
}

func strideFor(quick bool) int {
	if quick {
		return 100
	}
	return 10
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Spec, error) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
