package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file is the CI bench-regression guard's comparator: it reads two
// tbsbench -json result files — the committed BENCH_ingest.json baseline
// and a freshly measured run — and fails when any shared row's items/sec
// dropped by more than the allowed fraction. It compares rows by their
// path label so adding a new path never breaks the guard, and it reports
// every row's ratio (not just failures) so the CI log doubles as a
// throughput trend record.

// benchRecord mirrors the fields of tbsbench's JSON output the guard
// needs.
type benchRecord struct {
	ID     string     `json:"id"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// pathRate is one measured row: throughput plus, when the record carries
// it, the row's measured duration (the noise floor applies to it).
type pathRate struct {
	rate       float64
	elapsedMS  float64
	hasElapsed bool
}

// minGateElapsedMS is the noise floor: a row whose measured run is
// shorter than this on either side is reported but not gated — at
// sub-millisecond durations (the bare core hot path) a single scheduler
// preemption on a shared CI runner swings the rate past any reasonable
// tolerance. The core path has its own 0-alloc test as a regression gate.
const minGateElapsedMS = 50

// benchRates extracts path → measurement from the record with the given
// experiment id in a tbsbench -json file.
func benchRates(path, id string) (map[string]pathRate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []benchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("benchguard: %s: %w", path, err)
	}
	for _, rec := range records {
		if rec.ID != id {
			continue
		}
		pathCol, rateCol, elapsedCol := -1, -1, -1
		for i, h := range rec.Header {
			switch h {
			case "path":
				pathCol = i
			case "items/sec":
				rateCol = i
			case "elapsed ms":
				elapsedCol = i
			}
		}
		if pathCol < 0 || rateCol < 0 {
			return nil, fmt.Errorf("benchguard: %s: %s record lacks path/items-per-sec columns (header %v)", path, id, rec.Header)
		}
		rates := make(map[string]pathRate, len(rec.Rows))
		for _, row := range rec.Rows {
			if len(row) <= pathCol || len(row) <= rateCol {
				return nil, fmt.Errorf("benchguard: %s: short row %v", path, row)
			}
			v, err := strconv.ParseFloat(strings.ReplaceAll(row[rateCol], ",", ""), 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: %s: rate %q: %w", path, row[rateCol], err)
			}
			pr := pathRate{rate: v}
			if elapsedCol >= 0 && len(row) > elapsedCol {
				if ms, err := strconv.ParseFloat(row[elapsedCol], 64); err == nil {
					pr.elapsedMS, pr.hasElapsed = ms, true
				}
			}
			rates[row[pathCol]] = pr
		}
		if len(rates) == 0 {
			return nil, fmt.Errorf("benchguard: %s: %s record has no rows", path, id)
		}
		return rates, nil
	}
	return nil, fmt.Errorf("benchguard: %s: no %q record found", path, id)
}

// CompareIngestBaseline compares the measured ingest throughput against
// the committed baseline. maxDrop is the tolerated fractional drop per
// path (0.30 = fail below 70%% of baseline). It returns one report line
// per compared path; the error is non-nil when any path regressed beyond
// the tolerance.
func CompareIngestBaseline(baselinePath, currentPath string, maxDrop float64) ([]string, error) {
	return CompareBenchBaseline(baselinePath, currentPath, "ingest", maxDrop)
}

// CompareBenchBaseline is the generic comparator behind the CI guard: it
// gates the record with the given experiment id (ingest pipeline, WAL
// append) from two tbsbench -json files.
func CompareBenchBaseline(baselinePath, currentPath, id string, maxDrop float64) ([]string, error) {
	if maxDrop <= 0 || maxDrop >= 1 {
		return nil, fmt.Errorf("benchguard: max drop must be in (0,1), got %v", maxDrop)
	}
	base, err := benchRates(baselinePath, id)
	if err != nil {
		return nil, err
	}
	cur, err := benchRates(currentPath, id)
	if err != nil {
		return nil, err
	}
	var lines []string
	var failures []string
	for _, path := range sortedKeys(base) {
		b := base[path]
		c, ok := cur[path]
		if !ok {
			failures = append(failures, fmt.Sprintf("path %q present in baseline but missing from current run", path))
			continue
		}
		ratio := c.rate / b.rate
		status := "ok"
		switch {
		case b.hasElapsed && b.elapsedMS < minGateElapsedMS,
			c.hasElapsed && c.elapsedMS < minGateElapsedMS:
			status = fmt.Sprintf("skipped (< %d ms, too noisy to gate)", minGateElapsedMS)
		case ratio < 1-maxDrop:
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("path %q: %.0f items/sec vs baseline %.0f (%.0f%%, floor %.0f%%)",
				path, c.rate, b.rate, 100*ratio, 100*(1-maxDrop)))
		}
		lines = append(lines, fmt.Sprintf("%-24s baseline %12.0f  current %12.0f  ratio %5.1f%%  %s",
			path, b.rate, c.rate, 100*ratio, status))
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("benchguard: %d %s throughput regression(s) beyond %.0f%%:\n  %s",
			len(failures), id, 100*maxDrop, strings.Join(failures, "\n  "))
	}
	return lines, nil
}

// CompareRowOverhead gates an instrumented row against its baseline row
// WITHIN one measured run — both rows came off the same machine seconds
// apart, so a much tighter tolerance than the cross-machine baseline
// comparison is meaningful. It is how CI holds the tracing-on ingest row
// to a few percent of the tracing-off row. The noise floor still
// applies: rows too short to measure are reported but not gated.
func CompareRowOverhead(currentPath, id, baseRow, overheadRow string, maxOverhead float64) ([]string, error) {
	if maxOverhead <= 0 || maxOverhead >= 1 {
		return nil, fmt.Errorf("benchguard: max overhead must be in (0,1), got %v", maxOverhead)
	}
	rates, err := benchRates(currentPath, id)
	if err != nil {
		return nil, err
	}
	b, ok := rates[baseRow]
	if !ok {
		return nil, fmt.Errorf("benchguard: %s: no row %q in %s record", currentPath, baseRow, id)
	}
	c, ok := rates[overheadRow]
	if !ok {
		return nil, fmt.Errorf("benchguard: %s: no row %q in %s record", currentPath, overheadRow, id)
	}
	ratio := c.rate / b.rate
	line := fmt.Sprintf("%-24s vs %-24s ratio %5.1f%% (floor %.0f%%)",
		overheadRow, baseRow, 100*ratio, 100*(1-maxOverhead))
	if (b.hasElapsed && b.elapsedMS < minGateElapsedMS) ||
		(c.hasElapsed && c.elapsedMS < minGateElapsedMS) {
		return []string{line + "  skipped (too noisy to gate)"}, nil
	}
	if ratio < 1-maxOverhead {
		return []string{line + "  REGRESSION"},
			fmt.Errorf("benchguard: %q overhead beyond %.0f%%: %.0f items/sec vs %.0f (%.1f%%)",
				overheadRow, 100*maxOverhead, c.rate, b.rate, 100*ratio)
	}
	return []string{line + "  ok"}, nil
}

// RequireMinRates enforces absolute items/sec floors on rows of the
// current run — the form a "≥ N× the frozen PR-N baseline" acceptance
// gate takes once the committed bench file has itself been refreshed
// past that baseline. No noise-floor skip applies: a row carrying an
// absolute floor must be sized to measure reliably.
func RequireMinRates(currentPath, id string, mins map[string]float64) ([]string, error) {
	rates, err := benchRates(currentPath, id)
	if err != nil {
		return nil, err
	}
	var lines, failures []string
	for _, row := range sortedMinKeys(mins) {
		min := mins[row]
		c, ok := rates[row]
		if !ok {
			failures = append(failures, fmt.Sprintf("row %q missing from %s record", row, id))
			continue
		}
		status := "ok"
		if c.rate < min {
			status = "BELOW FLOOR"
			failures = append(failures, fmt.Sprintf("row %q: %.0f items/sec below required floor %.0f (%.1f%%)",
				row, c.rate, min, 100*c.rate/min))
		}
		lines = append(lines, fmt.Sprintf("%-24s current %12.0f  floor %12.0f  %s", row, c.rate, min, status))
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("benchguard: %d row(s) below absolute floor:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	return lines, nil
}

// RequireRowFactor enforces a minimum speedup of one row over another
// WITHIN the current run (e.g. the binary wire format must stay ≥ 2× the
// fast-path NDJSON row). Both rows share the machine and the moment, so
// the factor gates real relative cost, not runner variance; no
// noise-floor skip applies.
func RequireRowFactor(currentPath, id, baseRow, row string, minFactor float64) ([]string, error) {
	if minFactor <= 0 {
		return nil, fmt.Errorf("benchguard: min factor must be positive, got %v", minFactor)
	}
	rates, err := benchRates(currentPath, id)
	if err != nil {
		return nil, err
	}
	b, ok := rates[baseRow]
	if !ok {
		return nil, fmt.Errorf("benchguard: %s: no row %q in %s record", currentPath, baseRow, id)
	}
	c, ok := rates[row]
	if !ok {
		return nil, fmt.Errorf("benchguard: %s: no row %q in %s record", currentPath, row, id)
	}
	factor := c.rate / b.rate
	line := fmt.Sprintf("%-24s vs %-24s factor %5.2fx (floor %.2fx)", row, baseRow, factor, minFactor)
	if factor < minFactor {
		return []string{line + "  BELOW FLOOR"},
			fmt.Errorf("benchguard: %q is %.2fx of %q, required ≥ %.2fx (%.0f vs %.0f items/sec)",
				row, factor, baseRow, minFactor, c.rate, b.rate)
	}
	return []string{line + "  ok"}, nil
}

func sortedMinKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys(m map[string]pathRate) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
