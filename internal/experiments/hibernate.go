package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/server"
	"repro/tbs"
)

// Hibernate measures the memory-tiering paths end to end (handler-direct,
// no sockets):
//
//   - "warm ingest hib-off" / "warm ingest hib-on": identical round-robin
//     ingest over a working set that fits the resident bound, without and
//     with tiering configured. The delta is the warm-path tax — a pin
//     (atomic add + touch stamp) and one atomic load per request — and CI
//     holds it within 5% via CompareRowOverhead.
//   - "cold-hit hydrate": every stream hibernated, then each touched once;
//     the row's throughput is hydrations/sec and the extra columns report
//     the per-request cold-hit latency distribution (checkpoint read +
//     restore + WAL tail replay + install). This is the restore-latency
//     baseline BENCH_hibernate.json freezes for the CI guard.
func Hibernate(quick bool, seed uint64) (*Result, error) {
	warmKeys := 64
	warmRounds := runsFor(quick, 120, 25)
	warmItems := 200
	coldStreams := runsFor(quick, 4000, 400)

	res := &Result{
		ID:     "hibernate",
		Title:  "memory tiering: warm-path overhead and cold-hit hydration latency",
		Header: []string{"path", "items", "elapsed ms", "items/sec", "p50 us", "p99 us"},
	}

	base, tiered, err := runWarmIngestPair(res, seed, warmKeys, warmRounds, warmItems)
	if err != nil {
		return nil, err
	}
	p50, p99, rate, err := runColdHits(res, seed, coldStreams)
	if err != nil {
		return nil, err
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("hib-on/hib-off warm ingest throughput: %.1f%%", 100*tiered/base),
		fmt.Sprintf("cold-hit hydration: %.0f streams/sec, p50 %.0fus, p99 %.0fus", rate, p50, p99))
	return res, nil
}

// tieredServer builds a server whose checkpoint directory lives in a
// throwaway temp dir, with the WAL on (hydration replays the tail) and
// the background sweeps effectively disabled — the rows drive
// HibernatePass explicitly so the measurement is deterministic.
func tieredServer(seed uint64, maxResident int) (*server.Server, func(), error) {
	dir, err := os.MkdirTemp("", "hibbench")
	if err != nil {
		return nil, nil, err
	}
	lambda, n := 0.07, 1000
	opts := server.Options{
		Sampler:            tbs.Config{Scheme: "rtbs", Lambda: &lambda, MaxSize: &n, Seed: ptr(seed)},
		CheckpointDir:      dir,
		CheckpointInterval: time.Hour,
		WALDir:             filepath.Join(dir, "wal"),
		WALFsync:           "off",
		MaxResident:        maxResident,
		HibernateInterval:  time.Hour,
	}
	// The hib-off row keeps the same checkpoint dir and WAL so the two
	// warm rows do identical work; only the tiering bookkeeping differs.
	srv, err := server.New(opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Stop(ctx)
		os.RemoveAll(dir)
	}
	return srv, cleanup, nil
}

// runWarmIngestPair measures the two ratio-gated warm rows with
// interleaved timed windows on one schedule (same rationale as
// runPairedIngestRows: back-to-back rows make the within-run ratio
// hostage to whatever the shared runner was doing during one row's
// seconds). The hib-on side sets MaxResident well above the working set,
// so nothing ever hibernates and the row isolates the bookkeeping the
// tiering machinery adds to every warm request.
func runWarmIngestPair(res *Result, seed uint64, keys, rounds, itemsPerRequest int) (baseRate, tieredRate float64, err error) {
	type side struct {
		name    string
		handler http.Handler
		best    time.Duration
	}
	sides := [2]*side{
		{name: "warm ingest hib-off"},
		{name: "warm ingest hib-on"},
	}
	for i, maxResident := range [2]int{0, 4 * keys} {
		srv, cleanup, serr := tieredServer(seed, maxResident)
		if serr != nil {
			return 0, 0, serr
		}
		defer cleanup()
		sides[i].handler = srv.Handler()
	}

	body, _ := ingestBodies(itemsPerRequest)
	paths := make([]string, keys)
	for k := range paths {
		paths[k] = fmt.Sprintf("/v1/streams/warm-%d/items?advance=true", k)
	}
	window := func(sd *side, reps int, timed bool) error {
		start := time.Now()
		for i := 0; i < reps; i++ {
			for _, p := range paths {
				req := httptest.NewRequest("POST", p, bytes.NewReader(body))
				rec := httptest.NewRecorder()
				sd.handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					return fmt.Errorf("hibernate: %s: status %d: %s", sd.name, rec.Code, rec.Body.String())
				}
			}
		}
		if timed {
			if elapsed := time.Since(start); sd.best == 0 || elapsed < sd.best {
				sd.best = elapsed
			}
		}
		return nil
	}
	for _, sd := range sides {
		if err := window(sd, max(rounds/5, 2), false); err != nil {
			return 0, 0, err
		}
	}
	const windows = 4
	for w := 0; w < windows; w++ {
		for _, sd := range sides {
			if err := window(sd, rounds, true); err != nil {
				return 0, 0, err
			}
		}
	}
	total := rounds * keys * itemsPerRequest
	rates := [2]float64{}
	for i, sd := range sides {
		rates[i] = float64(total) / sd.best.Seconds()
		res.Rows = append(res.Rows, []string{
			sd.name, fmt.Sprint(total), f1(sd.best.Seconds() * 1000), f0(rates[i]), "", "",
		})
	}
	return rates[0], rates[1], nil
}

// runColdHits hibernates every stream, then touches each exactly once and
// measures the per-request hydration latency.
func runColdHits(res *Result, seed uint64, streams int) (p50us, p99us, streamsPerSec float64, err error) {
	srv, cleanup, err := tieredServer(seed, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cleanup()
	handler := srv.Handler()

	body, _ := ingestBodies(50)
	for i := 0; i < streams; i++ {
		req := httptest.NewRequest("POST", fmt.Sprintf("/v1/streams/cold-%d/items?advance=true", i), bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return 0, 0, 0, fmt.Errorf("hibernate: seed stream %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	// Checkpoint (and thereby compact the WAL) first: in steady state the
	// periodic pass has drained the log before streams go cold, so a cold
	// hit replays a near-empty tail rather than scanning every other
	// tenant's traffic. Eviction then finds the entries clean and skips
	// the per-stream file write.
	if err := srv.CheckpointNow(); err != nil {
		return 0, 0, 0, err
	}
	// Evict everything (MaxResident 1 leaves at most one warm stream).
	for srv.ResidentStreams() > 1 {
		n, err := srv.HibernatePass()
		if err != nil {
			return 0, 0, 0, err
		}
		if n == 0 {
			break
		}
	}

	lats := make([]time.Duration, 0, streams)
	start := time.Now()
	for i := 0; i < streams; i++ {
		req := httptest.NewRequest("GET", fmt.Sprintf("/v1/streams/cold-%d/stats", i), nil)
		rec := httptest.NewRecorder()
		t0 := time.Now()
		handler.ServeHTTP(rec, req)
		lats = append(lats, time.Since(t0))
		if rec.Code != http.StatusOK {
			return 0, 0, 0, fmt.Errorf("hibernate: cold hit %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(lats)-1))
		return float64(lats[idx].Nanoseconds()) / 1e3
	}
	p50us, p99us = quantile(0.50), quantile(0.99)
	streamsPerSec = float64(streams) / elapsed.Seconds()
	res.Rows = append(res.Rows, []string{
		"cold-hit hydrate", fmt.Sprint(streams), f1(elapsed.Seconds() * 1000),
		f0(streamsPerSec), f0(p50us), f0(p99us),
	})
	return p50us, p99us, streamsPerSec, nil
}
