// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 6 plus Figure 1 and the appendices). Each
// driver returns a Result whose rows reproduce the series or table the
// paper reports; cmd/tbsbench prints them and bench_test.go wraps them in
// testing.B benchmarks. DESIGN.md carries the experiment index.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Result is a printable experiment outcome: a header and formatted rows,
// optionally followed by free-form notes (e.g. aggregate statistics).
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format writes the result as an aligned text table.
func (r *Result) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// f2 formats a float with two decimals, f1 with one, f0 as an integer.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
