package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/xrand"
	"repro/tbs"
)

// ServeDrift reproduces a Figure-10-style kNN error curve through the
// tbsd HTTP path instead of the in-process harness: one multi-tenant
// server, two streams fed the identical single-event GMM stream as
// labeled JSON rows, each carrying a managed kNN model over the same
// R-TBS sample — one retrained on every batch (the paper's setting), one
// under the drift-triggered policy. The curves should track each other
// through the event while the drift policy retrains a fraction as often —
// the serving-path form of the paper's claim that sample quality, not
// retraining frequency, is what buys robustness.
func ServeDrift(quick bool, seed uint64) (*Result, error) {
	warmup, steps, batch, sample := 100, 30, 100, 1000
	if quick {
		warmup, steps, batch, sample = 30, 24, 50, 300
	}

	lambda := 0.07
	srv, err := server.New(server.Options{
		Sampler: tbs.Config{Scheme: "rtbs", Lambda: &lambda, MaxSize: &sample, Seed: ptr(seed)},
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Stop(ctx)
	}()
	handler := srv.Handler()

	call := func(method, path string, body any, out any) error {
		var rd *bytes.Reader
		if body != nil {
			data, err := json.Marshal(body)
			if err != nil {
				return err
			}
			rd = bytes.NewReader(data)
		} else {
			rd = bytes.NewReader(nil)
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 200 {
			return fmt.Errorf("serve-drift: %s %s: status %d: %s", method, path, rec.Code, rec.Body.String())
		}
		if out != nil {
			return json.Unmarshal(rec.Body.Bytes(), out)
		}
		return nil
	}

	type streamSpec struct {
		key  string
		spec map[string]any
	}
	streams := []streamSpec{
		{"always", map[string]any{"learner": "knn", "policy": "always"}},
		{"drift", map[string]any{"learner": "knn", "policy": "drift",
			"drift": map[string]any{"window": 10, "factor": 2, "minObs": 3, "maxStale": 20}}},
	}
	for _, st := range streams {
		if err := call("PUT", "/v1/streams/"+st.key+"/model", st.spec, nil); err != nil {
			return nil, err
		}
	}

	// One generator drives both streams, so the comparison is paired —
	// the same points, the same single event (abnormal for 10 < t ≤ 20
	// after warm-up).
	gen, err := datagen.NewGMM(datagen.GMMConfig{
		Schedule: datagen.SingleEvent{Start: 10, End: 20},
		Warmup:   warmup,
	}, xrand.New(seed+1))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "serve-drift",
		Title:  "kNN batch error through the tbsd HTTP path: retrain-always vs drift policy",
		Header: []string{"t", "always err%", "drift err%"},
	}
	type statsResp struct {
		Stats struct {
			LastBatchErr *float64 `json:"lastBatchErr"`
			Retrains     uint64   `json:"retrains"`
			MeanBatchErr *float64 `json:"meanBatchErr"`
		} `json:"stats"`
	}
	for t := 1; t <= warmup+steps; t++ {
		points := gen.Batch(t, batch)
		rows := make([]map[string]any, len(points))
		for i, p := range points {
			rows[i] = map[string]any{"x": []float64{p.X[0], p.X[1]}, "y": p.Class}
		}
		row := []string{fmt.Sprint(t - warmup)}
		for _, st := range streams {
			if err := call("POST", "/v1/streams/"+st.key+"/items", rows, nil); err != nil {
				return nil, err
			}
			if err := call("POST", "/v1/streams/"+st.key+"/advance", nil, nil); err != nil {
				return nil, err
			}
			if t > warmup {
				var sr statsResp
				if err := call("GET", "/v1/streams/"+st.key+"/model/stats", nil, &sr); err != nil {
					return nil, err
				}
				v := 0.0
				if sr.Stats.LastBatchErr != nil {
					v = *sr.Stats.LastBatchErr
				}
				row = append(row, f1(v))
			}
		}
		if t > warmup {
			res.Rows = append(res.Rows, row)
		}
	}

	for _, st := range streams {
		var sr statsResp
		if err := call("GET", "/v1/streams/"+st.key+"/model/stats", nil, &sr); err != nil {
			return nil, err
		}
		mean := 0.0
		if sr.Stats.MeanBatchErr != nil {
			mean = *sr.Stats.MeanBatchErr
		}
		res.Notes = append(res.Notes,
			fmt.Sprintf("%s: %d retrains, mean batch err %.1f%%", st.key, sr.Stats.Retrains, mean))
	}
	return res, nil
}
