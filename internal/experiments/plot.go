package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Plot renders each numeric column of a series-shaped result as an ASCII
// chart (one row of sparkline blocks per column), so `tbsbench -plot`
// shows the *shape* of each figure directly in the terminal. Results with
// fewer than four rows (pure tables) are rendered with Format instead.
func (r *Result) Plot(w io.Writer) error {
	if len(r.Rows) < 4 {
		return r.Format(w)
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	// Column 0 is the x axis; plot every numeric column after it.
	for col := 1; col < len(r.Header); col++ {
		series := make([]float64, 0, len(r.Rows))
		ok := true
		for _, row := range r.Rows {
			if col >= len(row) {
				ok = false
				break
			}
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				ok = false
				break
			}
			series = append(series, v)
		}
		if !ok || len(series) == 0 {
			continue
		}
		lo, hi := series[0], series[0]
		for _, v := range series {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if _, err := fmt.Fprintf(w, "%-8s [%8.2f .. %8.2f]  %s\n",
			r.Header[col], lo, hi, sparkline(series, lo, hi)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// sparkline maps a series onto eight block heights between lo and hi.
func sparkline(xs []float64, lo, hi float64) string {
	const levels = "▁▂▃▄▅▆▇█"
	runes := []rune(levels)
	span := hi - lo
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(runes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(runes) {
			idx = len(runes) - 1
		}
		b.WriteRune(runes[idx])
	}
	return b.String()
}
