package experiments

import (
	"fmt"

	"repro/internal/dist"
)

// distPerBatch runs `rounds` batches through a simulated D-R-TBS cluster
// and returns the steady-state (last-round) per-batch virtual time.
func distPerBatch(cfg dist.Config, realBatch, rounds int) (float64, error) {
	d, err := dist.NewDRTBS(cfg)
	if err != nil {
		return 0, err
	}
	var last float64
	id := 0
	for r := 0; r < rounds; r++ {
		last = d.ProcessBatch(dist.Partition(mkItems(id, realBatch), cfg.Workers))
		id += realBatch
	}
	return last, nil
}

func mkItems(start, n int) []dist.Item {
	out := make([]dist.Item, n)
	for i := range out {
		out[i] = dist.Item(start + i)
	}
	return out
}

// Fig7 reproduces the per-batch runtime comparison of the five distributed
// TBS implementations (Figure 7): batch 10M items, reservoir 20M, λ = 0.07,
// 12 workers. The simulation runs 1:1000 scaled item counts and reports
// full-scale virtual seconds.
func Fig7(seed uint64) (*Result, error) {
	const (
		workers = 12
		lambda  = 0.07
		scale   = 1000.0
		realB   = 10000
		realN   = 20000
		rounds  = 40
	)
	variants := []struct {
		name string
		dec  dist.Decisions
		st   dist.StoreKind
		join dist.JoinKind
	}{
		{"D-R-TBS (Cent,KV,RJ)", dist.Centralized, dist.KeyValue, dist.RepartitionJoin},
		{"D-R-TBS (Cent,KV,CJ)", dist.Centralized, dist.KeyValue, dist.CoLocatedJoin},
		{"D-R-TBS (Cent,CP)", dist.Centralized, dist.CoPartitioned, dist.CoLocatedJoin},
		{"D-R-TBS (Dist,CP)", dist.Distributed, dist.CoPartitioned, dist.CoLocatedJoin},
	}
	res := &Result{
		ID:     "fig7",
		Title:  "Per-batch distributed runtime comparison (virtual s; batch 10M, reservoir 20M, λ=0.07, 12 workers)",
		Header: []string{"implementation", "sec/batch"},
	}
	for i, v := range variants {
		sec, err := distPerBatch(dist.Config{
			Workers: workers, Lambda: lambda, Reservoir: realN,
			Decisions: v.dec, Store: v.st, Join: v.join,
			CostScale: scale, Seed: seed + uint64(i),
		}, realB, rounds)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{v.name, f2(sec)})
	}
	// D-T-TBS (Dist, CP): embarrassingly parallel.
	dt, err := dist.NewDTTBS(dist.Config{
		Workers: workers, Lambda: lambda, Reservoir: realN,
		CostScale: scale, Seed: seed + 100,
	}, realB)
	if err != nil {
		return nil, err
	}
	var last float64
	id := 0
	for r := 0; r < rounds; r++ {
		last = dt.ProcessBatch(dist.Partition(mkItems(id, realB), workers))
		id += realB
	}
	res.Rows = append(res.Rows, []string{"D-T-TBS (Dist,CP)", f2(last)})
	res.Notes = append(res.Notes,
		"paper (Fig. 7): ≈45 / ≈22 / ≈8.5 / ≈5.3 / ≈1.5 s — expect matching ordering and factors")
	return res, nil
}

// Fig8 reproduces the scale-out experiment (Figure 8): per-batch runtime of
// the best D-R-TBS configuration (Dist, CP) with a 100M-item batch as the
// worker count grows.
func Fig8(seed uint64) (*Result, error) {
	const (
		lambda = 0.07
		scale  = 10000.0
		realB  = 10000 // 100M virtual
		realN  = 2000  // 20M virtual
		rounds = 40
	)
	res := &Result{
		ID:     "fig8",
		Title:  "Scale-out of D-R-TBS (virtual s/batch; batch 100M items)",
		Header: []string{"workers", "sec/batch"},
	}
	for _, w := range []int{2, 4, 6, 8, 10, 12, 16, 20, 25} {
		sec, err := distPerBatch(dist.Config{
			Workers: w, Lambda: lambda, Reservoir: realN,
			Decisions: dist.Distributed, Store: dist.CoPartitioned,
			CostScale: scale, Seed: seed + uint64(w),
		}, realB, rounds)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{fmt.Sprint(w), f2(sec)})
	}
	res.Notes = append(res.Notes,
		"paper (Fig. 8): strong speedup up to ~10 workers, then marginal benefit")
	return res, nil
}

// Fig9 reproduces the scale-up experiment (Figure 9): per-batch runtime of
// D-R-TBS (Dist, CP) with 10 workers as the batch size sweeps 10³..10¹⁰
// items. Item counts are scaled so every simulated batch holds at most
// 10k real items while costs reflect the virtual sizes.
func Fig9(seed uint64) (*Result, error) {
	const (
		lambda   = 0.07
		workers  = 10
		virtualN = 2e7
		rounds   = 40
	)
	res := &Result{
		ID:     "fig9",
		Title:  "Scale-up of D-R-TBS (virtual s/batch; 10 workers, reservoir 20M)",
		Header: []string{"batch size", "sec/batch"},
	}
	for _, virtualB := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10} {
		realB := int(virtualB)
		scale := 1.0
		if realB > 10000 {
			realB = 10000
			scale = virtualB / float64(realB)
		}
		realN := int(virtualN / scale)
		if realN < 10 {
			realN = 10
		}
		sec, err := distPerBatch(dist.Config{
			Workers: workers, Lambda: lambda, Reservoir: realN,
			Decisions: dist.Distributed, Store: dist.CoPartitioned,
			CostScale: scale, Seed: seed + uint64(realB),
		}, realB, rounds)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%.0e", virtualB), f2(sec)})
	}
	res.Notes = append(res.Notes,
		"paper (Fig. 9): roughly constant until 10M items, sharp rise at 100M (≈14 s with 10 workers)")
	return res, nil
}
