package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/datagen"
)

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestFig1GrowingShowsTTBSOverflow(t *testing.T) {
	res, err := Fig1(Fig1Growing, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	ttbs, rtbs := parse(t, last[1]), parse(t, last[2])
	if ttbs < 2000 {
		t.Errorf("T-TBS should overflow under growing batches, got %v", ttbs)
	}
	if rtbs > 1000 {
		t.Errorf("R-TBS must stay bounded at 1000, got %v", rtbs)
	}
	// Before growth begins (t=200) both should sit near 1000.
	for _, row := range res.Rows {
		if parse(t, row[0]) == 200 {
			if v := parse(t, row[1]); v < 700 || v > 1400 {
				t.Errorf("T-TBS at t=200 = %v, want ≈ 1000", v)
			}
		}
	}
}

func TestFig1StableKeepsTargets(t *testing.T) {
	res, err := Fig1(Fig1StableDet, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	if v := parse(t, last[1]); v < 700 || v > 1400 {
		t.Errorf("T-TBS stable size = %v, want near 1000 with fluctuation", v)
	}
	if v := parse(t, last[2]); v != 1000 {
		t.Errorf("R-TBS stable size = %v, want exactly 1000 (saturated)", v)
	}
}

func TestFig1DecayingShrinksBoth(t *testing.T) {
	res, err := Fig1(Fig1Decaying, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	if v := parse(t, last[1]); v > 500 {
		t.Errorf("T-TBS should shrink under decaying batches, got %v", v)
	}
	if v := parse(t, last[2]); v > 500 {
		t.Errorf("R-TBS should shrink under decaying batches, got %v", v)
	}
}

func TestFig1Unknown(t *testing.T) {
	if _, err := Fig1(Fig1Variant("z"), 1, 1); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestFig7OrderingAndMagnitudes(t *testing.T) {
	res, err := Fig7(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	vals := make([]float64, 5)
	for i, row := range res.Rows {
		vals[i] = parse(t, row[1])
	}
	for i := 0; i < 4; i++ {
		if vals[i] <= vals[i+1] {
			t.Errorf("Fig7 ordering violated at %d: %v", i, vals)
		}
	}
	// Rough magnitudes from the paper: 45/22/8.5/5.3/1.5 s.
	if vals[0] < 25 || vals[0] > 70 {
		t.Errorf("Cent,KV,RJ = %v, want ≈ 45", vals[0])
	}
	if vals[4] > 5 {
		t.Errorf("D-T-TBS = %v, want ≈ 1.5–2", vals[4])
	}
}

func TestFig8DiminishingReturns(t *testing.T) {
	res, err := Fig8(6)
	if err != nil {
		t.Fatal(err)
	}
	first := parse(t, res.Rows[0][1])
	var w10, w25 float64
	for _, row := range res.Rows {
		switch row[0] {
		case "10":
			w10 = parse(t, row[1])
		case "25":
			w25 = parse(t, row[1])
		}
	}
	if first < 3*w10 {
		t.Errorf("2 workers (%v) should be ≫ 10 workers (%v)", first, w10)
	}
	if w10-w25 > (first-w10)/3 {
		t.Errorf("expected diminishing returns: 2w=%v 10w=%v 25w=%v", first, w10, w25)
	}
}

func TestFig9SharpRise(t *testing.T) {
	res, err := Fig9(7)
	if err != nil {
		t.Fatal(err)
	}
	byB := map[string]float64{}
	for _, row := range res.Rows {
		byB[row[0]] = parse(t, row[1])
	}
	if byB["1e+06"] > 1.5*byB["1e+03"] {
		t.Errorf("runtime should be near-flat to 1e6: %v vs %v", byB["1e+03"], byB["1e+06"])
	}
	if byB["1e+08"] < 2*byB["1e+06"] {
		t.Errorf("runtime should rise sharply at 1e8: %v vs %v", byB["1e+06"], byB["1e+08"])
	}
	if byB["1e+08"] < 8 || byB["1e+08"] > 25 {
		t.Errorf("100M items = %v s, paper says ≈ 14", byB["1e+08"])
	}
	if byB["1e+10"] < byB["1e+09"] {
		t.Error("runtime must keep growing with batch size")
	}
}

func TestKNNSingleEventShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	outcomes, err := RunKNN(KNNConfig{
		SampleSize: 1000,
		Schedule:   datagen.SingleEvent{Start: 10, End: 20},
		Steps:      30,
		Runs:       3,
		Seed:       11,
	}, defaultKNNSchemes(1000))
	if err != nil {
		t.Fatal(err)
	}
	rtbs, sw, unif := outcomes[0], outcomes[1], outcomes[2]
	// During the abnormal period everyone's error spikes; before it,
	// error should be modest (paper: ~18%).
	if rtbs.Series[5] > 35 {
		t.Errorf("R-TBS pre-event error = %v, want ≈ 18", rtbs.Series[5])
	}
	if rtbs.Series[11] < 30 {
		t.Errorf("R-TBS error should spike at event start, got %v", rtbs.Series[11])
	}
	// Unif does not adapt: its error stays high through the event.
	if unif.Series[18] < rtbs.Series[18] {
		t.Errorf("Unif (%v) should adapt worse than R-TBS (%v) late in the event",
			unif.Series[18], rtbs.Series[18])
	}
	// After the snap-back, SW spikes while R-TBS stays low (the paper's
	// headline robustness result).
	swSpike, rtbsSpike := 0.0, 0.0
	for step := 20; step < 26 && step < len(sw.Series); step++ {
		if sw.Series[step] > swSpike {
			swSpike = sw.Series[step]
		}
		if rtbs.Series[step] > rtbsSpike {
			rtbsSpike = rtbs.Series[step]
		}
	}
	if swSpike < rtbsSpike+5 {
		t.Errorf("SW post-event spike (%v) should exceed R-TBS (%v)", swSpike, rtbsSpike)
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := Table1(3, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Index rows by scheme name.
	byName := map[string][]string{}
	for _, row := range res.Rows {
		byName[row[0]] = row
	}
	// For every pattern (column pairs starting at 1): Unif has the worst
	// accuracy; SW has the worst robustness among {R-TBS λ=0.07, SW}.
	for col := 1; col < 9; col += 2 {
		unifMiss := parse(t, byName["Unif"][col])
		rtbsMiss := parse(t, byName["λ=0.07"][col])
		if unifMiss <= rtbsMiss {
			t.Errorf("col %d: Unif miss %v should exceed R-TBS %v", col, unifMiss, rtbsMiss)
		}
		swES := parse(t, byName["SW"][col+1])
		rtbsES := parse(t, byName["λ=0.07"][col+1])
		if swES <= rtbsES {
			t.Errorf("col %d: SW ES %v should exceed R-TBS ES %v", col+1, swES, rtbsES)
		}
	}
}

func TestRegressionSaturatedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	outcomes, err := RunRegression(RegressionConfig{
		SampleSize: 1000, Steps: 50, Runs: 3, Seed: 31,
	}, regressionSchemes(1000))
	if err != nil {
		t.Fatal(err)
	}
	rtbs, sw, unif := outcomes[0], outcomes[1], outcomes[2]
	if rtbs.Err >= unif.Err {
		t.Errorf("R-TBS MSE %v should beat Unif %v", rtbs.Err, unif.Err)
	}
	if rtbs.ES >= sw.ES {
		t.Errorf("R-TBS ES %v should beat SW %v", rtbs.ES, sw.ES)
	}
	// Paper magnitudes: R-TBS MSE ≈ 3.5 with ES ≈ 6.
	if rtbs.Err < 1 || rtbs.Err > 7 {
		t.Errorf("R-TBS MSE = %v, paper reports ≈ 3.5", rtbs.Err)
	}
}

func TestNaiveBayesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := Fig13(3, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Fatalf("rows = %d, want 30 batches", len(res.Rows))
	}
	// Extract aggregates from the notes.
	var rtbsES, swES float64
	for _, n := range res.Notes {
		var miss, es float64
		if _, err := fmtSscanf(n, "R-TBS: mean miss%% %f, 20%% ES %f", &miss, &es); err == nil {
			rtbsES = es
		}
		if _, err := fmtSscanf(n, "SW: mean miss%% %f, 20%% ES %f", &miss, &es); err == nil {
			swES = es
		}
	}
	if rtbsES == 0 || swES == 0 {
		t.Fatalf("could not extract aggregates from notes: %v", res.Notes)
	}
	if swES <= rtbsES {
		t.Errorf("SW 20%% ES (%v) should exceed R-TBS (%v)", swES, rtbsES)
	}
}

func TestChaoViolationResult(t *testing.T) {
	res, err := ChaoViolation(3000, 51)
	if err != nil {
		t.Fatal(err)
	}
	// R-TBS tracks the theoretical inclusion probability for every batch;
	// B-Chao never shrinks its sample, so old items are massively
	// over-represented relative to property (1).
	for _, row := range res.Rows {
		rtbsP, theory := parse(t, row[2]), parse(t, row[3])
		if diff := rtbsP - theory; diff > 0.06 || diff < -0.06 {
			t.Errorf("batch %s: R-TBS Pr %v should match theory %v", row[0], rtbsP, theory)
		}
	}
	oldest := res.Rows[0]
	theory, chaoP := parse(t, oldest[3]), parse(t, oldest[4])
	if chaoP < 10*theory+0.05 {
		t.Errorf("B-Chao should grossly over-represent the oldest batch: Pr %v vs theory %v",
			chaoP, theory)
	}
}

func TestAResViolationResult(t *testing.T) {
	res, err := AResViolation(5000, 71)
	if err != nil {
		t.Fatal(err)
	}
	target := 0.6065 // e^{-0.5}
	// R-TBS ratios track the target for every saturated batch pair; A-Res
	// must deviate visibly somewhere.
	maxARes := 0.0
	for _, row := range res.Rows[1:] {
		rr, ar := parse(t, row[2]), parse(t, row[4])
		if rr < target-0.08 || rr > target+0.08 {
			t.Errorf("batch %s: R-TBS ratio %v strays from %v", row[0], rr, target)
		}
		if d := ar - target; d > maxARes {
			maxARes = d
		}
		if d := target - ar; d > maxARes {
			maxARes = d
		}
	}
	if maxARes < 0.1 {
		t.Errorf("A-Res ratios unexpectedly satisfy property (1): max deviation %v", maxARes)
	}
}

func TestTTBSLawResult(t *testing.T) {
	res, err := TTBSLaw(500, 61)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		emp, theory := parse(t, row[1]), parse(t, row[2])
		if diff := emp - theory; diff > 3 || diff < -3 {
			t.Errorf("t=%s: empirical %v vs theory %v", row[0], emp, theory)
		}
	}
}

func TestRegistryAndLookup(t *testing.T) {
	specs := Registry()
	if len(specs) != 26 {
		t.Fatalf("registry has %d specs, want 26", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.ID == "" || s.Title == "" || s.Run == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate id %q", s.ID)
		}
		seen[s.ID] = true
	}
	if _, err := Lookup("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestResultFormat(t *testing.T) {
	r := &Result{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	if err := r.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "long-column", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigValidationErrors(t *testing.T) {
	if _, err := RunKNN(KNNConfig{ESFrom: 99, Steps: 10}, defaultKNNSchemes(10)); err == nil {
		t.Error("ESFrom > Steps accepted")
	}
	if _, err := RunKNN(KNNConfig{}, nil); err == nil {
		t.Error("no schemes accepted")
	}
	if _, err := RunRegression(RegressionConfig{}, nil); err == nil {
		t.Error("no schemes accepted")
	}
	if _, err := RunNaiveBayes(NBConfig{}, nil); err == nil {
		t.Error("no schemes accepted")
	}
	if _, err := ChaoViolation(0, 1); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := TTBSLaw(0, 1); err == nil {
		t.Error("zero replicas accepted")
	}
}

// fmtSscanf adapts fmt.Sscanf for note parsing.
func fmtSscanf(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}

func TestPlotRendersSparklines(t *testing.T) {
	res, err := Fig1(Fig1StableDet, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Plot(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T-TBS") || !strings.Contains(out, "R-TBS") {
		t.Fatalf("plot missing series labels:\n%s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Fatalf("plot contains no sparkline characters:\n%s", out)
	}
	// A tiny table falls back to the plain format.
	small := &Result{ID: "s", Title: "small", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	buf.Reset()
	if err := small.Plot(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== s: small ==") {
		t.Error("small result did not fall back to Format")
	}
}
