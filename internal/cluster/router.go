package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/obs"
)

// RouterOptions configures the cluster front door.
type RouterOptions struct {
	// Ring is the placement function (required).
	Ring *Ring
	// ProbeInterval / ProbeTimeout / FailThreshold / MaxProbeBackoff tune
	// the health prober; zero values take the prober's defaults.
	ProbeInterval   time.Duration
	ProbeTimeout    time.Duration
	FailThreshold   int
	MaxProbeBackoff time.Duration
	// DialTimeout bounds connecting to a node (default 2s). There is no
	// whole-request timeout: NDJSON ingest bodies stream for as long as
	// the client keeps sending. ResponseHeaderTimeout (default 30s) is
	// what prevents a wedged node from hanging the router — the node must
	// start answering within it.
	DialTimeout           time.Duration
	ResponseHeaderTimeout time.Duration
	// Logger receives router lifecycle and node-transition logs; nil
	// discards them.
	Logger *slog.Logger
	// Trace, when non-nil, traces every forwarded request
	// (route → forward → copy) into its ring and histograms, and stamps a
	// W3C traceparent header on outbound requests so the owning node's
	// trace joins the router's trace ID. Nil disables tracing.
	Trace *obs.Tracer
}

// copyBufPool recycles the 32KB buffers response bodies are pumped
// through, so steady-state forwarding does not allocate per-request copy
// buffers. (Request bodies are not copied at all — the transport streams
// r.Body straight to the node, which is what keeps the NDJSON ingest
// path zero-copy through the router.)
var copyBufPool = sync.Pool{
	New: func() any { b := make([]byte, 32<<10); return &b },
}

// Router terminates client HTTP and forwards each stream request to the
// node the ring places its key on. It is deliberately thin: no caching,
// no retry of non-idempotent requests — a transport failure is surfaced
// as a structured 502 naming the owner, and the prober's health gate
// turns a dead node into fast structured 503s instead of hangs.
type Router struct {
	opts    RouterOptions
	ring    *Ring
	prober  *Prober
	client  *http.Client
	metrics *RouterMetrics
	mux     *http.ServeMux
	logger  *slog.Logger

	// moved overrides ring placement for streams migrated by
	// POST /cluster/handoff: key → node name. In-memory only; a router
	// restart falls back to ring placement and the source node's 421
	// ownership guard redirects the first misrouted request.
	moved sync.Map
}

// NewRouter builds the router; call Start to begin probing and use
// Handler (or ServeHTTP) to serve.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Ring == nil {
		return nil, fmt.Errorf("cluster: router needs a ring")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.ResponseHeaderTimeout <= 0 {
		opts.ResponseHeaderTimeout = 30 * time.Second
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	transport := &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   opts.DialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: opts.ResponseHeaderTimeout,
	}
	client := &http.Client{Transport: transport}
	r := &Router{
		opts: opts,
		ring: opts.Ring,
		prober: NewProber(opts.Ring.Nodes(), ProberOptions{
			Interval:      opts.ProbeInterval,
			Timeout:       opts.ProbeTimeout,
			FailThreshold: opts.FailThreshold,
			MaxBackoff:    opts.MaxProbeBackoff,
			Client:        client,
			Logger:        logger,
		}),
		client:  client,
		metrics: NewRouterMetrics(opts.Ring.Nodes()),
		logger:  logger,
	}
	r.mux = r.buildMux()
	return r, nil
}

// Start launches health probing. Idempotent.
func (rt *Router) Start() { rt.prober.Start() }

// Stop halts probing and drops idle backend connections. Idempotent.
func (rt *Router) Stop() {
	rt.prober.Stop()
	rt.client.CloseIdleConnections()
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// ServeHTTP makes the router itself a handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Prober exposes node health (for tests and tooling).
func (rt *Router) Prober() *Prober { return rt.prober }

func (rt *Router) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	// Every per-stream route — items, advance, sample, stats, model/* —
	// forwards to the key's owner; the router does not enumerate tbsd's
	// API, so new node endpoints route without a router change.
	mux.HandleFunc("/v1/streams/{key}", rt.handleStream)
	mux.HandleFunc("/v1/streams/{key}/{rest...}", rt.handleStream)
	mux.HandleFunc("GET /v1/streams", rt.handleList)
	mux.HandleFunc("GET /cluster/nodes", rt.handleNodes)
	mux.HandleFunc("POST /cluster/handoff", rt.handleHandoff)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	// The router keeps its own trace ring: a forwarded request shows up
	// here under the same trace ID as on the owning node. Nil-safe.
	mux.HandleFunc("GET /debug/trace/recent", rt.opts.Trace.ServeRecent)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", rt.handleReady)
	return mux
}

// ownerOf resolves a key's owner: a recorded migration override first,
// then ring placement.
func (rt *Router) ownerOf(key string) Node {
	if v, ok := rt.moved.Load(key); ok {
		if n, ok := rt.ring.Lookup(v.(string)); ok {
			return n
		}
	}
	return rt.ring.Owner(key)
}

// handleStream forwards one per-stream request to the key's owner.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	rt.metrics.ObserveRequest()
	key := r.PathValue("key")
	if key == "" {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_request", "empty stream key", nil))
		return
	}
	tr := rt.opts.Trace.StartFromRequest(r, obs.KindForward, key)
	routeStart := time.Now()
	owner := rt.ownerOf(key)
	healthy := rt.prober.Healthy(owner.Name)
	tr.StageSince(obs.StageRoute, routeStart)
	if !healthy {
		// Degraded routing: answer immediately with the owner's identity
		// instead of burning a dial timeout per request against a node
		// the prober already knows is down.
		rt.metrics.ObserveUnavailable()
		writeJSON(w, http.StatusServiceUnavailable, errorBody(
			"node_down",
			fmt.Sprintf("node %s (%s) owning stream %q is down", owner.Name, owner.Addr, key),
			map[string]any{"node": owner.Name, "addr": owner.Addr, "key": key},
		))
		tr.Finish(http.StatusServiceUnavailable)
		return
	}
	rt.forward(w, r, owner, tr)
}

// forward proxies one request to a node, streaming both bodies. The
// inbound body is handed to the transport untouched (chunked NDJSON
// ingest flows through without buffering); the response is pumped back
// through a pooled copy buffer.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, owner Node, tr *obs.Trace) {
	start := time.Now()
	// RequestURI (not Path) keeps the client's original encoding and
	// query string intact for the node.
	out, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+owner.Addr+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_request", err.Error(), nil))
		tr.Finish(http.StatusBadRequest)
		return
	}
	// The inbound request is never reused after this, so sharing its
	// header map with the outbound request is safe and saves a copy.
	out.Header = r.Header
	out.ContentLength = r.ContentLength
	// Stamp the trace identity on the outbound request: the node starts
	// its ingest trace from this header, so the same trace ID shows up in
	// both the router's and the node's /debug/trace/recent rings.
	if tp := tr.Traceparent(); tp != "" {
		out.Header.Set("traceparent", tp)
	}

	fwdStart := time.Now()
	resp, err := rt.client.Do(out)
	tr.StageSince(obs.StageForward, fwdStart)
	if err != nil {
		rt.metrics.ObserveForwardError(owner.Name)
		rt.prober.ReportFailure(owner.Name, err)
		writeJSON(w, http.StatusBadGateway, errorBody(
			"node_unreachable",
			fmt.Sprintf("forwarding to node %s (%s): %v", owner.Name, owner.Addr, err),
			map[string]any{"node": owner.Name, "addr": owner.Addr},
		))
		tr.Finish(http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()

	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	copyStart := time.Now()
	bufp := copyBufPool.Get().(*[]byte)
	n, _ := io.CopyBuffer(w, resp.Body, *bufp)
	copyBufPool.Put(bufp)
	tr.StageSince(obs.StageCopy, copyStart)
	tr.Finish(resp.StatusCode)
	rt.metrics.ObserveForward(owner.Name, n, time.Since(start))
}

// handleList fans GET /v1/streams out to every healthy node and merges
// the answers; down nodes are reported, not silently dropped, so a
// partial listing is always visibly partial.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.metrics.ObserveRequest()
	rt.metrics.ObserveFanout()
	type nodeList struct {
		node    Node
		streams []string
		err     error
	}
	nodes := rt.ring.Nodes()
	results := make([]nodeList, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if !rt.prober.Healthy(n.Name) {
			results[i] = nodeList{node: n, err: fmt.Errorf("node down")}
			continue
		}
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			streams, err := rt.fetchStreams(r, n)
			results[i] = nodeList{node: n, streams: streams, err: err}
		}(i, n)
	}
	wg.Wait()

	var all []string
	perNode := make(map[string]any, len(nodes))
	var failed []string
	for _, res := range results {
		if res.err != nil {
			rt.metrics.ObserveForwardError(res.node.Name)
			failed = append(failed, res.node.Name)
			perNode[res.node.Name] = map[string]any{"error": res.err.Error()}
			continue
		}
		all = append(all, res.streams...)
		perNode[res.node.Name] = map[string]any{"count": len(res.streams), "streams": res.streams}
	}
	if all == nil {
		all = []string{}
	}
	resp := map[string]any{
		"count":   len(all),
		"streams": all,
		"nodes":   perNode,
		"partial": len(failed) > 0,
	}
	if len(failed) > 0 {
		resp["failedNodes"] = failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// fetchStreams pulls one node's stream list.
func (rt *Router) fetchStreams(r *http.Request, n Node) ([]string, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, "http://"+n.Addr+"/v1/streams", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.prober.ReportFailure(n.Name, err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Streams []string `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Streams, nil
}

// handleNodes reports membership, placement and health in one view.
func (rt *Router) handleNodes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"vnodes": rt.ring.VirtualNodes(),
		"nodes":  rt.prober.Status(),
	})
}

// handleReady answers 200 once every node has been probed at least once
// and at least one is healthy — "the router knows the cluster's shape
// and can do useful work", not "everything is up".
func (rt *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	status := rt.prober.Status()
	allProbed := true
	healthy := 0
	for _, st := range status {
		if !st.Probed {
			allProbed = false
		}
		if st.Healthy {
			healthy++
		}
	}
	ready := allProbed && healthy > 0
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":   ready,
		"probed":  allProbed,
		"healthy": healthy,
		"nodes":   len(status),
	})
}

// handleHandoff drives a stream migration: POST /cluster/handoff?key=K&to=NODE
// resolves the key's current owner, asks it to hand the stream to the
// target node, and on success records the placement override so the
// router keeps routing the key to its new home.
func (rt *Router) handleHandoff(w http.ResponseWriter, r *http.Request) {
	rt.metrics.ObserveRequest()
	key := r.URL.Query().Get("key")
	toName := r.URL.Query().Get("to")
	if key == "" || toName == "" {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_request", "handoff needs ?key= and ?to=", nil))
		return
	}
	target, ok := rt.ring.Lookup(toName)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorBody("unknown_node",
			fmt.Sprintf("no node named %q in the cluster", toName), nil))
		return
	}
	source := rt.ownerOf(key)
	if source.Name == target.Name {
		writeJSON(w, http.StatusOK, map[string]any{
			"key": key, "node": target.Name, "moved": false,
			"note": "stream already placed on the target node",
		})
		return
	}
	if !rt.prober.Healthy(source.Name) || !rt.prober.Healthy(target.Name) {
		rt.metrics.ObserveHandoff(false)
		writeJSON(w, http.StatusServiceUnavailable, errorBody("node_down",
			"both source and target must be healthy for a handoff",
			map[string]any{"source": source.Name, "target": target.Name}))
		return
	}

	tr := rt.opts.Trace.StartFromRequest(r, obs.KindForward, key)
	u := "http://" + source.Addr + "/v1/streams/" + url.PathEscape(key) + "/handoff?target=" +
		url.QueryEscape("http://"+target.Addr)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody("internal", err.Error(), nil))
		tr.Finish(http.StatusInternalServerError)
		return
	}
	// Propagate the trace so the source node's handoff trace (freeze →
	// capture → ship → commit) joins the router's trace ID.
	if tp := tr.Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	fwdStart := time.Now()
	resp, err := rt.client.Do(req)
	tr.StageSince(obs.StageForward, fwdStart)
	if err != nil {
		rt.metrics.ObserveHandoff(false)
		rt.prober.ReportFailure(source.Name, err)
		writeJSON(w, http.StatusBadGateway, errorBody("node_unreachable",
			fmt.Sprintf("handoff request to source %s: %v", source.Name, err),
			map[string]any{"node": source.Name, "addr": source.Addr}))
		tr.Finish(http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		rt.metrics.ObserveHandoff(false)
		// Relay the source's structured error verbatim — it names the
		// actual failure (frozen stream, unreachable target, …).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
		tr.Finish(resp.StatusCode)
		return
	}
	rt.moved.Store(key, target.Name)
	rt.metrics.ObserveHandoff(true)
	rt.logger.Info("stream handed off",
		"key", key, "from", source.Name, "to", target.Name, "trace", tr.TraceID())
	writeJSON(w, http.StatusOK, map[string]any{
		"key":    key,
		"from":   source.Name,
		"to":     target.Name,
		"moved":  true,
		"source": json.RawMessage(body),
	})
	tr.Finish(http.StatusOK)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = rt.metrics.WriteTo(w, rt.prober.Status())
	_ = rt.opts.Trace.WriteMetrics(w, "tbsrouter")
}

// writeJSON / errorBody mirror internal/server's response helpers so
// router errors and node errors share one envelope shape
// ({"error","code",...}); the router adds owner-identity fields.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func errorBody(code, msg string, extra map[string]any) map[string]any {
	body := map[string]any{"error": msg, "code": code}
	for k, v := range extra {
		body[k] = v
	}
	return body
}
