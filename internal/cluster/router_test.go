package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// echoNode is a fake tbsd node: it records every request body it sees
// and answers JSON naming itself, so tests can assert both placement and
// that bodies stream through the router intact.
type echoNode struct {
	name string
	ts   *httptest.Server

	mu     sync.Mutex
	bodies map[string][]byte // method+path -> last body
	ctypes map[string]string // method+path -> last Content-Type
}

func newEchoNode(t *testing.T, name string) *echoNode {
	t.Helper()
	n := &echoNode{name: name, bodies: make(map[string][]byte), ctypes: make(map[string]string)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/streams", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"streams": []string{name + "-s1", name + "-s2"}})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		n.mu.Lock()
		n.bodies[r.Method+" "+r.URL.RequestURI()] = body
		n.ctypes[r.Method+" "+r.URL.RequestURI()] = r.Header.Get("Content-Type")
		n.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"node": name, "path": r.URL.Path})
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func (n *echoNode) addr() string { return strings.TrimPrefix(n.ts.URL, "http://") }

func (n *echoNode) body(methodAndURI string) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.bodies[methodAndURI]
	return b, ok
}

// testCluster wires three echo nodes behind a router.
type testCluster struct {
	nodes  map[string]*echoNode
	ring   *Ring
	router *Router
	ts     *httptest.Server
}

func newTestCluster(t *testing.T) *testCluster {
	t.Helper()
	c := &testCluster{nodes: make(map[string]*echoNode)}
	var members []Node
	for _, name := range []string{"a", "b", "c"} {
		n := newEchoNode(t, name)
		c.nodes[name] = n
		members = append(members, Node{Name: name, Addr: n.addr()})
	}
	ring, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.ring = ring
	c.router, err = NewRouter(RouterOptions{
		Ring:          ring,
		ProbeInterval: 5 * time.Millisecond,
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.ts = httptest.NewServer(c.router.Handler())
	t.Cleanup(func() { c.ts.Close(); c.router.Stop() })
	return c
}

func (c *testCluster) get(t *testing.T, path string, wantStatus int) map[string]any {
	t.Helper()
	return c.req(t, http.MethodGet, path, "", wantStatus)
}

func (c *testCluster) req(t *testing.T, method, path, body string, wantStatus int) map[string]any {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, c.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, data)
	}
	var out map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
	return out
}

// TestRouterForwardsToOwner: every key's request lands on exactly the
// node the ring places it on, with query string intact.
func TestRouterForwardsToOwner(t *testing.T) {
	c := newTestCluster(t)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%02d", i)
		owner := c.ring.Owner(key).Name
		out := c.req(t, http.MethodPost, "/v1/streams/"+key+"/items?advance=true", `[1,2,3]`, http.StatusOK)
		if got := out["node"]; got != owner {
			t.Fatalf("key %q served by %v, ring owner is %s", key, got, owner)
		}
		uri := "POST /v1/streams/" + key + "/items?advance=true"
		body, ok := c.nodes[owner].body(uri)
		if !ok {
			t.Fatalf("owner %s never saw %s", owner, uri)
		}
		if string(body) != `[1,2,3]` {
			t.Fatalf("body arrived as %q", body)
		}
	}
}

// TestRouterStreamsNDJSON: a multi-line NDJSON body flows through the
// router byte-for-byte.
func TestRouterStreamsNDJSON(t *testing.T) {
	c := newTestCluster(t)
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, `{"v":%d}`+"\n", i)
	}
	key, body := "nd-stream", b.String()
	owner := c.ring.Owner(key).Name
	c.req(t, http.MethodPost, "/v1/streams/"+key+"/items", body, http.StatusOK)
	got, ok := c.nodes[owner].body("POST /v1/streams/" + key + "/items")
	if !ok {
		t.Fatalf("owner %s never saw the ingest", owner)
	}
	if string(got) != body {
		t.Fatalf("NDJSON body corrupted in transit: %d bytes arrived, %d sent", len(got), len(body))
	}
}

// TestRouterForwardsBinaryUninspected: an x-tbs-bin frame body — CRC
// framing, bytes outside ASCII, embedded zeros — reaches the key's owner
// byte-for-byte with its Content-Type intact. The router must never
// sniff, decode, or re-encode ingest bodies; binary clients depend on it.
func TestRouterForwardsBinaryUninspected(t *testing.T) {
	c := newTestCluster(t)
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{float64(i) / 8, -float64(i * 3)}
	}
	body := wire.AppendFrame(nil, rows[:128])
	body = wire.AppendFrame(body, rows[128:])
	key := "bin-stream"
	owner := c.ring.Owner(key).Name
	req, err := http.NewRequest(http.MethodPost, c.ts.URL+"/v1/streams/"+key+"/items?batch=128", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.BinContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	uri := "POST /v1/streams/" + key + "/items?batch=128"
	got, ok := c.nodes[owner].body(uri)
	if !ok {
		t.Fatalf("owner %s never saw the binary ingest", owner)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("binary body corrupted in transit: %d bytes arrived, %d sent", len(got), len(body))
	}
	c.nodes[owner].mu.Lock()
	ct := c.nodes[owner].ctypes[uri]
	c.nodes[owner].mu.Unlock()
	if ct != wire.BinContentType {
		t.Fatalf("Content-Type arrived as %q, want %q", ct, wire.BinContentType)
	}
}

// TestRouterDownNode503: once the prober marks a node down, requests for
// its keys answer a structured 503 naming the owner instead of dialing a
// dead address.
func TestRouterDownNode503(t *testing.T) {
	c := newTestCluster(t)
	c.router.Start()
	// Kill node b and wait for the prober to notice.
	c.nodes["b"].ts.Close()
	waitFor(t, "b marked down", func() bool { return !c.router.Prober().Healthy("b") })

	// Find a key owned by b.
	key := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("find-%d", i)
		if c.ring.Owner(k).Name == "b" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key maps to node b")
	}
	out := c.get(t, "/v1/streams/"+key+"/stats", http.StatusServiceUnavailable)
	if out["code"] != "node_down" {
		t.Errorf("code = %v, want node_down", out["code"])
	}
	if out["node"] != "b" || out["key"] != key {
		t.Errorf("error must name the owner and key, got %v", out)
	}

	// Keys owned by surviving nodes keep working.
	for i := 0; ; i++ {
		k := fmt.Sprintf("alive-%d", i)
		if owner := c.ring.Owner(k).Name; owner != "b" {
			out := c.get(t, "/v1/streams/"+k+"/stats", http.StatusOK)
			if out["node"] != owner {
				t.Errorf("surviving key routed to %v, want %s", out["node"], owner)
			}
			break
		}
	}
}

// TestRouterUnreachable502: a node the prober still trusts but that
// refuses connections yields a structured 502 (and feeds the failure
// back into the prober).
func TestRouterUnreachable502(t *testing.T) {
	ring, err := NewRing([]Node{{Name: "dead", Addr: "127.0.0.1:1"}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterOptions{Ring: ring, FailThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/streams/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["code"] != "node_unreachable" || out["node"] != "dead" {
		t.Errorf("error body %v must carry code node_unreachable and the node name", out)
	}
	// The second failed forward trips FailThreshold via ReportFailure.
	resp2, err := http.Get(ts.URL + "/v1/streams/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if rt.Prober().Healthy("dead") {
		t.Error("forward failures must feed the prober: node should be down now")
	}
	// Third request short-circuits to 503 without dialing.
	resp3, err := http.Get(ts.URL + "/v1/streams/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("down node should answer 503, got %d", resp3.StatusCode)
	}
}

// TestRouterListFanout merges every node's stream list and flags partial
// results when a node is down.
func TestRouterListFanout(t *testing.T) {
	c := newTestCluster(t)
	c.router.Start()
	out := c.get(t, "/v1/streams", http.StatusOK)
	if out["partial"] != false {
		t.Errorf("all nodes up, partial = %v", out["partial"])
	}
	if got := out["count"].(float64); got != 6 {
		t.Errorf("count = %v, want 6 (2 per node)", got)
	}

	c.nodes["c"].ts.Close()
	waitFor(t, "c marked down", func() bool { return !c.router.Prober().Healthy("c") })
	out = c.get(t, "/v1/streams", http.StatusOK)
	if out["partial"] != true {
		t.Errorf("with c down, partial = %v", out["partial"])
	}
	failed, _ := out["failedNodes"].([]any)
	if len(failed) != 1 || failed[0] != "c" {
		t.Errorf("failedNodes = %v, want [c]", failed)
	}
	if got := out["count"].(float64); got != 4 {
		t.Errorf("count = %v, want 4 from the survivors", got)
	}
}

// TestRouterReadyzAndNodes: readyz flips ready once every node has been
// probed; /cluster/nodes reports membership and health.
func TestRouterReadyzAndNodes(t *testing.T) {
	c := newTestCluster(t)
	// Before Start the prober has never probed: 503.
	out := c.get(t, "/readyz", http.StatusServiceUnavailable)
	if out["ready"] != false {
		t.Errorf("unprobed router reports ready = %v", out["ready"])
	}
	c.router.Start()
	waitFor(t, "router ready", func() bool {
		resp, err := http.Get(c.ts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	out = c.get(t, "/cluster/nodes", http.StatusOK)
	nodes, _ := out["nodes"].([]any)
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v, want 3 entries", out["nodes"])
	}

	resp, err := http.Get(c.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200 always", resp.StatusCode)
	}
}

// TestRouterHandoffUpdatesRouting: POST /cluster/handoff drives the
// source node's handoff endpoint and re-routes the key afterwards.
func TestRouterHandoffUpdatesRouting(t *testing.T) {
	c := newTestCluster(t)
	c.router.Start()

	key := "moving-stream"
	source := c.ring.Owner(key).Name
	var target string
	for _, n := range []string{"a", "b", "c"} {
		if n != source {
			target = n
			break
		}
	}
	// The echo node answers 200 to the /handoff POST like a real source.
	out := c.req(t, http.MethodPost, "/cluster/handoff?key="+key+"&to="+target, "", http.StatusOK)
	if out["moved"] != true || out["from"] != source || out["to"] != target {
		t.Fatalf("handoff response %v, want moved from %s to %s", out, source, target)
	}
	// The source must have been asked with the target's advertised URL.
	uri := "POST /v1/streams/" + key + "/handoff?target=" +
		"http%3A%2F%2F" + strings.ReplaceAll(c.nodes[target].addr(), ":", "%3A")
	if _, ok := c.nodes[source].body(uri); !ok {
		t.Errorf("source %s never saw the handoff request %q", source, uri)
	}
	// Requests for the key now route to the target, overriding the ring.
	res := c.get(t, "/v1/streams/"+key+"/stats", http.StatusOK)
	if res["node"] != target {
		t.Errorf("post-handoff request served by %v, want %s", res["node"], target)
	}

	// Handoff to the current owner is a no-op.
	out = c.req(t, http.MethodPost, "/cluster/handoff?key="+key+"&to="+target, "", http.StatusOK)
	if out["moved"] != false {
		t.Errorf("re-handoff to the same node should be moved:false, got %v", out)
	}
	// Unknown target name is a 400.
	out = c.req(t, http.MethodPost, "/cluster/handoff?key="+key+"&to=ghost", "", http.StatusBadRequest)
	if out["code"] != "unknown_node" {
		t.Errorf("code = %v, want unknown_node", out["code"])
	}
}

// TestRouterMetrics: the endpoint renders router counters and per-node
// health gauges.
func TestRouterMetrics(t *testing.T) {
	c := newTestCluster(t)
	c.get(t, "/v1/streams/some-key/stats", http.StatusOK)
	resp, err := http.Get(c.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"tbsrouter_requests_total",
		"tbsrouter_forwarded_total",
		`tbsrouter_node_up{node="a"}`,
		"tbsrouter_forward_latency_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
