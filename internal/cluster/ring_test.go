package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("node-%02d", i), Addr: fmt.Sprintf("10.0.0.%d:8377", i+1)}
	}
	return nodes
}

func mustRing(t *testing.T, nodes []Node, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("stream-%05d", i)
	}
	return keys
}

// TestRingDeterministicPlacement: owners depend only on the node set, not
// on input order — two rings built from shuffled copies of the same
// membership place every key identically. This is what lets a router and
// a node (or two routers) agree without coordination.
func TestRingDeterministicPlacement(t *testing.T) {
	nodes := testNodes(7)
	r1 := mustRing(t, nodes, 0)

	shuffled := append([]Node(nil), nodes...)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	r2 := mustRing(t, shuffled, 0)

	for _, k := range testKeys(2000) {
		if a, b := r1.Owner(k).Name, r2.Owner(k).Name; a != b {
			t.Fatalf("key %q: order-dependent placement (%s vs %s)", k, a, b)
		}
	}
}

// TestRingGoldenOwners pins placement across processes and releases: the
// hash is an internal FNV-1a, so these owners must never change without a
// deliberate (and flagged) placement-breaking release.
func TestRingGoldenOwners(t *testing.T) {
	r := mustRing(t, []Node{
		{Name: "a", Addr: "127.0.0.1:8378"},
		{Name: "b", Addr: "127.0.0.1:8379"},
		{Name: "c", Addr: "127.0.0.1:8380"},
	}, 128)
	golden := map[string]string{
		"":                   "c",
		"alpha":              "b",
		"beta":               "c",
		"gamma":              "b",
		"stream-042":         "b",
		"iot/sensor/17/temp": "b",
	}
	for key, want := range golden {
		if got := r.Owner(key).Name; got != want {
			t.Errorf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

// movement counts keys whose owner differs between two rings.
func movement(keys []string, a, b *Ring) int {
	moved := 0
	for _, k := range keys {
		if a.Owner(k).Name != b.Owner(k).Name {
			moved++
		}
	}
	return moved
}

// TestRingMovementOnJoin: adding one node to an N-node ring must move
// roughly K/(N+1) of K keys — the consistent-hashing contract. The bound
// is 1.6x the ideal to leave room for vnode placement variance without
// letting a mod-N-style rehash (which moves ~N/(N+1) of everything) pass.
func TestRingMovementOnJoin(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{3, 5, 9} {
		nodes := testNodes(n)
		before := mustRing(t, nodes, 0)
		after, err := before.WithNode(Node{Name: "joiner", Addr: "10.0.1.1:8377"})
		if err != nil {
			t.Fatalf("WithNode: %v", err)
		}
		moved := movement(keys, before, after)
		ideal := float64(len(keys)) / float64(n+1)
		if got := float64(moved); got > 1.6*ideal {
			t.Errorf("join on %d nodes moved %d keys, want <= %.0f (1.6x ideal %.0f)", n, moved, 1.6*ideal, ideal)
		}
		if moved == 0 {
			t.Errorf("join on %d nodes moved no keys; the joiner owns nothing", n)
		}
		// Every moved key must have moved TO the joiner — consistent
		// hashing never shuffles keys between surviving nodes.
		for _, k := range keys {
			ob, oa := before.Owner(k).Name, after.Owner(k).Name
			if ob != oa && oa != "joiner" {
				t.Fatalf("key %q moved %s -> %s, not to the joiner", k, ob, oa)
			}
		}
	}
}

// TestRingMovementOnLeave mirrors the join bound: removing one node moves
// only that node's keys, and they scatter across the survivors.
func TestRingMovementOnLeave(t *testing.T) {
	keys := testKeys(20000)
	nodes := testNodes(5)
	before := mustRing(t, nodes, 0)
	victim := nodes[2].Name
	after, err := before.WithoutNode(victim)
	if err != nil {
		t.Fatalf("WithoutNode: %v", err)
	}
	for _, k := range keys {
		ob, oa := before.Owner(k).Name, after.Owner(k).Name
		if ob == victim {
			if oa == victim {
				t.Fatalf("key %q still owned by removed node", k)
			}
		} else if ob != oa {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, ob, oa)
		}
	}
	moved := movement(keys, before, after)
	ideal := float64(len(keys)) / float64(len(nodes))
	if got := float64(moved); got > 1.6*ideal {
		t.Errorf("leave moved %d keys, want <= %.0f", moved, 1.6*ideal)
	}
}

// TestRingBalance: with the default vnode count, no node's share should
// be wildly off the mean — a loose 2x bound that catches degenerate
// placement (all vnodes colliding) without flaking on hash variance.
func TestRingBalance(t *testing.T) {
	keys := testKeys(50000)
	nodes := testNodes(5)
	r := mustRing(t, nodes, 0)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k).Name]++
	}
	mean := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		c := counts[n.Name]
		if float64(c) > 2*mean || float64(c) < mean/2 {
			t.Errorf("node %s owns %d keys, mean %.0f — placement is badly skewed", n.Name, c, mean)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("NewRing(nil) should fail")
	}
	if _, err := NewRing([]Node{{Name: "a", Addr: "x"}, {Name: "a", Addr: "y"}}, 0); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewRing([]Node{{Name: "", Addr: "x"}}, 0); err == nil {
		t.Error("empty name should fail")
	}
	r := mustRing(t, testNodes(3), 0)
	if r.VirtualNodes() != DefaultVirtualNodes {
		t.Errorf("VirtualNodes = %d, want default %d", r.VirtualNodes(), DefaultVirtualNodes)
	}
	if _, ok := r.Lookup("node-01"); !ok {
		t.Error("Lookup(node-01) should find the node")
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Error("Lookup(ghost) should miss")
	}
	if _, err := r.WithoutNode("ghost"); err == nil {
		t.Error("WithoutNode(ghost) should fail")
	}
	if _, err := r.WithNode(Node{Name: "node-01", Addr: "dup"}); err == nil {
		t.Error("WithNode(existing name) should fail")
	}
}

func TestConfigLoadAndRing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	if err := os.WriteFile(path, []byte(`{
		"nodes": [
			{"name": "a", "addr": "127.0.0.1:8378"},
			{"name": "b", "addr": "127.0.0.1:8379"}
		],
		"vnodes": 64
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}
	ring, err := cfg.Ring()
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if got := ring.VirtualNodes(); got != 64 {
		t.Errorf("vnodes = %d, want 64", got)
	}
	if got := len(ring.Nodes()); got != 2 {
		t.Errorf("nodes = %d, want 2", got)
	}

	for _, bad := range []string{
		`{}`,
		`{"nodes": [{"name": "", "addr": "x"}]}`,
		`{"nodes": [{"name": "a", "addr": ""}]}`,
		`{"nodes": [{"name": "a", "addr": "x"}, {"name": "a", "addr": "y"}]}`,
		`{"nodes": [{"name": "a", "addr": "x"}, {"name": "b", "addr": "x"}]}`,
		`{"nodes": [{"name": "a", "addr": "x"}], "vnodes": -1}`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("LoadConfig(%s) should fail", bad)
		}
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadConfig(missing) should fail")
	}
}
