package cluster

import (
	"encoding/json"
	"fmt"
	"os"
)

// Config is the static cluster membership the router (and tooling) loads
// from -cluster-config JSON:
//
//	{
//	  "nodes": [
//	    {"name": "a", "addr": "127.0.0.1:8377"},
//	    {"name": "b", "addr": "127.0.0.1:8378"},
//	    {"name": "c", "addr": "127.0.0.1:8379"}
//	  ],
//	  "vnodes": 128
//	}
//
// Placement depends only on node names and the vnode count, so editing an
// address (a node moved hosts) never migrates a stream; adding or
// removing a node moves ≈K/N of the keys, the consistent-hashing
// guarantee the ring's property test pins down.
type Config struct {
	Nodes []Node `json:"nodes"`
	// VNodes is the virtual-node count per member (default
	// DefaultVirtualNodes). All processes sharing a cluster must agree on
	// it — it is part of the placement function.
	VNodes int `json:"vnodes,omitempty"`
}

// Validate checks the membership for structural errors.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: config has no nodes")
	}
	seenName := make(map[string]bool, len(c.Nodes))
	seenAddr := make(map[string]bool, len(c.Nodes))
	for i, n := range c.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has an empty name", i)
		}
		if n.Addr == "" {
			return fmt.Errorf("cluster: node %q has an empty addr", n.Name)
		}
		if seenName[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		if seenAddr[n.Addr] {
			return fmt.Errorf("cluster: duplicate node addr %q", n.Addr)
		}
		seenName[n.Name] = true
		seenAddr[n.Addr] = true
	}
	if c.VNodes < 0 {
		return fmt.Errorf("cluster: vnodes must be non-negative, got %d", c.VNodes)
	}
	return nil
}

// Ring builds the placement ring the config describes.
func (c Config) Ring() (*Ring, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return NewRing(c.Nodes, c.VNodes)
}

// LoadConfig reads and validates a -cluster-config JSON file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	return c, nil
}
