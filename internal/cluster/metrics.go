package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// nodeCounters is one backend's per-node traffic tally.
type nodeCounters struct {
	forwarded atomic.Uint64
	errors    atomic.Uint64
}

// RouterMetrics aggregates the router's observability counters. All
// counters are atomics so the forward hot path never takes a lock; only
// the latency ring has a (private) mutex.
type RouterMetrics struct {
	requests      atomic.Uint64 // client requests accepted
	forwarded     atomic.Uint64 // successfully proxied to a node
	forwardErrors atomic.Uint64 // transport failures talking to a node
	unavailable   atomic.Uint64 // rejected up front: owner marked down
	fanouts       atomic.Uint64 // cluster-wide fan-out requests (list)
	handoffs      atomic.Uint64 // migrations driven to completion
	handoffErrors atomic.Uint64
	responseBytes atomic.Uint64
	// forwardLat quantiles cover a rotating time window, not all history —
	// after a latency burst subsides the p99 drains back down.
	forwardLat metrics.LatencyStats

	mu     sync.Mutex
	byNode map[string]*nodeCounters
}

// NewRouterMetrics builds the counter set for the given members.
func NewRouterMetrics(nodes []Node) *RouterMetrics {
	m := &RouterMetrics{byNode: make(map[string]*nodeCounters, len(nodes))}
	for _, n := range nodes {
		m.byNode[n.Name] = &nodeCounters{}
	}
	return m
}

// node returns the per-node tally, lazily creating one for names outside
// the initial membership (defensive; override targets are ring members).
func (m *RouterMetrics) node(name string) *nodeCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.byNode[name]
	if c == nil {
		c = &nodeCounters{}
		m.byNode[name] = c
	}
	return c
}

// ObserveRequest records one client request reaching the router.
func (m *RouterMetrics) ObserveRequest() { m.requests.Add(1) }

// ObserveForward records one completed proxy round trip.
func (m *RouterMetrics) ObserveForward(node string, respBytes int64, d time.Duration) {
	m.forwarded.Add(1)
	m.responseBytes.Add(uint64(respBytes))
	m.forwardLat.Observe(d)
	m.node(node).forwarded.Add(1)
}

// ObserveForwardError records a transport failure against a node.
func (m *RouterMetrics) ObserveForwardError(node string) {
	m.forwardErrors.Add(1)
	m.node(node).errors.Add(1)
}

// ObserveUnavailable records one request rejected because its owner is
// marked down (the degraded-routing 503).
func (m *RouterMetrics) ObserveUnavailable() { m.unavailable.Add(1) }

// ObserveFanout records one cluster-wide fan-out request.
func (m *RouterMetrics) ObserveFanout() { m.fanouts.Add(1) }

// ObserveHandoff records one migration attempt driven by the router.
func (m *RouterMetrics) ObserveHandoff(ok bool) {
	if ok {
		m.handoffs.Add(1)
	} else {
		m.handoffErrors.Add(1)
	}
}

// WriteTo renders the counters in Prometheus text format. Node health is
// passed in by the caller (the prober owns it) so RouterMetrics stays a
// pure accumulator.
func (m *RouterMetrics) WriteTo(w io.Writer, status []NodeStatus) error {
	var b []byte
	line := func(format string, args ...any) {
		b = fmt.Appendf(b, format+"\n", args...)
	}

	line("tbsrouter_requests_total %d", m.requests.Load())
	line("tbsrouter_forwarded_total %d", m.forwarded.Load())
	line("tbsrouter_forward_errors_total %d", m.forwardErrors.Load())
	line("tbsrouter_unavailable_total %d", m.unavailable.Load())
	line("tbsrouter_fanouts_total %d", m.fanouts.Load())
	line("tbsrouter_handoffs_total %d", m.handoffs.Load())
	line("tbsrouter_handoff_errors_total %d", m.handoffErrors.Load())
	line("tbsrouter_response_bytes_total %d", m.responseBytes.Load())

	wf, win := m.forwardLat.Snapshot()
	line("tbsrouter_forward_latency_seconds_count %d", wf.N())
	line("tbsrouter_forward_latency_seconds{stat=%q} %g", "mean", wf.Mean())
	line("tbsrouter_forward_latency_seconds{stat=%q} %g", "std", wf.Std())
	line("tbsrouter_forward_latency_seconds{stat=%q} %g", "p50", metrics.QuantileOrZero(win, 0.50))
	line("tbsrouter_forward_latency_seconds{stat=%q} %g", "p95", metrics.QuantileOrZero(win, 0.95))
	line("tbsrouter_forward_latency_seconds{stat=%q} %g", "p99", metrics.QuantileOrZero(win, 0.99))

	line("tbsrouter_nodes %d", len(status))
	for _, st := range status {
		up := 0
		if st.Healthy {
			up = 1
		}
		// Node names come from operator config, so escape them the
		// Prometheus way (%q would produce Go, not Prometheus, escapes).
		name := obs.EscapeLabel(st.Node.Name)
		line(`tbsrouter_node_up{node="%s"} %d`, name, up)
		line(`tbsrouter_node_probes_total{node="%s"} %d`, name, st.Probes)
		line(`tbsrouter_node_probe_failures_total{node="%s"} %d`, name, st.Failures)
		c := m.node(st.Node.Name)
		line(`tbsrouter_node_forwarded_total{node="%s"} %d`, name, c.forwarded.Load())
		line(`tbsrouter_node_forward_errors_total{node="%s"} %d`, name, c.errors.Load())
	}

	_, err := w.Write(b)
	return err
}
