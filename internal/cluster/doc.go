// Package cluster turns a set of independent tbsd nodes into one
// horizontally-scaled sampling service. The paper's Section 5 already
// distributes one sampler's batch across in-process workers
// (internal/dist); this package distributes the *tenants*: stream keys
// are placed on nodes by a consistent-hash ring, a thin router terminates
// client HTTP and forwards each request to the key's owner, and per-node
// health probing keeps the router answering (with structured 503s naming
// the owner) instead of hanging when a node dies.
//
// The pieces:
//
//	Ring    consistent hashing with virtual nodes: stable key→node
//	        placement, deterministic across processes, minimal movement
//	        on membership change (≈K/N keys when one of N nodes joins
//	        or leaves)
//	Config  static membership from -cluster-config JSON
//	Prober  per-node /readyz probing with timeout, retry and backoff;
//	        a node is down after FailThreshold consecutive failures and
//	        up again on the first success
//	Router  the HTTP front door: maps {key} to its owner and forwards
//	        JSON and streaming NDJSON bodies with pooled copy buffers,
//	        fans GET /v1/streams out across nodes, and drives stream
//	        migration (POST /cluster/handoff) with a per-key ownership
//	        override recorded for migrated streams
//
// Migration itself is a tbsd-to-tbsd operation (internal/server):
// POST /v1/streams/{key}/handoff freezes and drains the stream at the
// source, ships its checkpoint envelope plus WAL tail to the target's
// /adopt endpoint, journals a deletion tombstone at the source so a
// restart cannot resurrect the moved stream, and leaves a 421 ownership
// guard behind for misrouted clients.
package cluster
