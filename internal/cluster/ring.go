package cluster

import (
	"fmt"
	"sort"
)

// Node is one tbsd cluster member: a stable name (the identity hashing is
// keyed on) and the HTTP address the router forwards to. Placement
// depends only on names, so a node can change address (restart, new port)
// without moving a single stream.
type Node struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// DefaultVirtualNodes is the ring's default vnode count per node. 128
// points per node keeps the expected per-node load within a few percent
// of uniform at any realistic cluster size while the whole ring stays a
// few KB.
const DefaultVirtualNodes = 128

// point is one position on the ring: the hash of "name#replica" mapping
// to the node that owns the arc ending at it.
type point struct {
	hash uint64
	node int32
}

// Ring is a consistent-hash ring with virtual nodes. It is immutable
// after construction — membership changes build a new Ring (WithNode /
// WithoutNode) — so readers need no lock. Placement is a pure function of
// the member names and the vnode count: two processes building a ring
// from the same config agree on every key's owner.
type Ring struct {
	nodes  []Node // sorted by name
	vnodes int
	points []point // sorted by (hash, owner name)
}

// NewRing builds a ring over the given members. Names must be non-empty
// and unique; the input order does not matter.
func NewRing(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, n := range sorted {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty name", i)
		}
		if i > 0 && sorted[i-1].Name == n.Name {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
	}
	r := &Ring{nodes: sorted, vnodes: vnodes, points: make([]point, 0, len(sorted)*vnodes)}
	for ni, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(n.Name, v), node: int32(ni)})
		}
	}
	// Tie-break equal hashes by owner name so the ring is independent of
	// the order vnodes were generated in (and therefore of input order).
	sort.Slice(r.points, func(i, j int) bool {
		pi, pj := r.points[i], r.points[j]
		if pi.hash != pj.hash {
			return pi.hash < pj.hash
		}
		return r.nodes[pi.node].Name < r.nodes[pj.node].Name
	})
	return r, nil
}

// Owner returns the node that owns key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) Node {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// Lookup returns the member with the given name.
func (r *Ring) Lookup(name string) (Node, bool) {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].Name >= name })
	if i < len(r.nodes) && r.nodes[i].Name == name {
		return r.nodes[i], true
	}
	return Node{}, false
}

// Nodes returns the members, sorted by name.
func (r *Ring) Nodes() []Node {
	return append([]Node(nil), r.nodes...)
}

// VirtualNodes returns the vnode count per member.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// WithNode returns a new ring with one more member.
func (r *Ring) WithNode(n Node) (*Ring, error) {
	return NewRing(append(r.Nodes(), n), r.vnodes)
}

// WithoutNode returns a new ring with the named member removed.
func (r *Ring) WithoutNode(name string) (*Ring, error) {
	var rest []Node
	for _, n := range r.nodes {
		if n.Name != name {
			rest = append(rest, n)
		}
	}
	if len(rest) == len(r.nodes) {
		return nil, fmt.Errorf("cluster: no node named %q in the ring", name)
	}
	return NewRing(rest, r.vnodes)
}

// FNV-1a 64-bit, inlined over string bytes so hashing a key allocates
// nothing on the routing hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mix64 is the murmur3 finalizer. Raw FNV-1a has weak avalanche for
// short inputs that differ only in trailing bytes — a node's vnode
// replicas (and keys with a shared prefix and a trailing counter) land
// within a few multiples of the FNV prime of each other, a vanishing
// fraction of the 64-bit ring, collapsing all of a node's vnodes into
// one arc. The finalizer spreads those nearby values uniformly.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// keyHash positions a stream key on the ring.
func keyHash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// vnodeHash positions one virtual node. The replica ordinal is mixed in
// byte-wise after a separator that cannot appear ambiguously ("\x00"),
// so "node1"#11 and "node11"#1 never collide structurally.
func vnodeHash(name string, replica int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	h ^= 0 // separator byte \x00
	h *= fnvPrime64
	for {
		h ^= uint64(replica & 0xff)
		h *= fnvPrime64
		replica >>= 8
		if replica == 0 {
			break
		}
	}
	return mix64(h)
}
