package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNode is an httptest backend whose /readyz answer can be flipped.
type fakeNode struct {
	ts *httptest.Server
	ok atomic.Bool
}

func newFakeNode(t *testing.T, handler http.Handler) *fakeNode {
	t.Helper()
	f := &fakeNode{}
	f.ok.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if f.ok.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	if handler != nil {
		mux.Handle("/", handler)
	}
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// addr returns the host:port form a Node carries.
func (f *fakeNode) addr() string { return strings.TrimPrefix(f.ts.URL, "http://") }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestProberDownAndRecovery: a node flips down only after FailThreshold
// consecutive failures, and back up on the first success.
func TestProberDownAndRecovery(t *testing.T) {
	f := newFakeNode(t, nil)
	node := Node{Name: "n1", Addr: f.addr()}
	p := NewProber([]Node{node}, ProberOptions{
		Interval:      5 * time.Millisecond,
		Timeout:       time.Second,
		FailThreshold: 2,
	})
	p.Start()
	defer p.Stop()

	if !p.Healthy("n1") {
		t.Fatal("nodes must start optimistic (healthy before the first probe)")
	}
	waitFor(t, "first probe", func() bool { return p.Status()[0].Probed })

	f.ok.Store(false)
	waitFor(t, "node down", func() bool { return !p.Healthy("n1") })
	st := p.Status()[0]
	if st.ConsecutiveFails < 2 {
		t.Errorf("flipped down after %d consecutive fails, threshold is 2", st.ConsecutiveFails)
	}
	if st.LastError == "" {
		t.Error("down node should carry a lastError")
	}

	f.ok.Store(true)
	waitFor(t, "node recovered", func() bool { return p.Healthy("n1") })
}

// TestProberSingleFailureTolerated: one failed probe (below the
// threshold) must not black-hole the node.
func TestProberSingleFailureTolerated(t *testing.T) {
	p := NewProber([]Node{{Name: "n1", Addr: "127.0.0.1:1"}}, ProberOptions{FailThreshold: 2})
	p.observe(p.byName["n1"], errors.New("one blip"))
	if !p.Healthy("n1") {
		t.Error("a single failure below FailThreshold must not mark the node down")
	}
	p.observe(p.byName["n1"], errors.New("second blip"))
	if p.Healthy("n1") {
		t.Error("hitting FailThreshold must mark the node down")
	}
}

// TestProberReportFailure: forwarding failures fold into health exactly
// like failed probes, so a dead node is routed around after
// FailThreshold failed requests without waiting out a probe interval.
func TestProberReportFailure(t *testing.T) {
	p := NewProber([]Node{{Name: "n1", Addr: "127.0.0.1:1"}}, ProberOptions{FailThreshold: 2})
	p.ReportFailure("n1", errors.New("connection refused"))
	p.ReportFailure("n1", errors.New("connection refused"))
	if p.Healthy("n1") {
		t.Error("two reported forward failures must mark the node down")
	}
	p.ReportFailure("ghost", errors.New("ignored")) // unknown names are a no-op
	if p.Healthy("ghost") {
		t.Error("unknown nodes are never healthy")
	}
}

func TestProberStopIdempotent(t *testing.T) {
	f := newFakeNode(t, nil)
	p := NewProber([]Node{{Name: "n1", Addr: f.addr()}}, ProberOptions{Interval: time.Millisecond})
	p.Start()
	p.Start()
	p.Stop()
	p.Stop()
}
