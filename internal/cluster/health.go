package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// ProberOptions tunes the per-node health loop.
type ProberOptions struct {
	// Interval between probes of a healthy node (default 500ms).
	Interval time.Duration
	// Timeout bounds one probe request (default 1s).
	Timeout time.Duration
	// FailThreshold is how many consecutive failures flip a node to down
	// (default 2 — one timeout must not black-hole a node's keys).
	FailThreshold int
	// MaxBackoff caps the probe interval while a node is down; failed
	// probes back off exponentially from Interval up to it (default
	// 8×Interval), so a long-dead node costs little while recovery is
	// still noticed within MaxBackoff.
	MaxBackoff time.Duration
	// Path is probed on each node (default /readyz — a tbsd node that is
	// still restoring, or draining for shutdown, answers 503 there and
	// takes no new traffic).
	Path string
	// Client issues the probes; nil builds one with sane dial timeouts.
	Client *http.Client
	// Logger receives up/down transitions; nil discards them.
	Logger *slog.Logger
}

func (o *ProberOptions) setDefaults() {
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 8 * o.Interval
	}
	if o.Path == "" {
		o.Path = "/readyz"
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
}

// NodeStatus is one member's point-in-time health as the prober sees it.
type NodeStatus struct {
	Node             Node   `json:"node"`
	Healthy          bool   `json:"healthy"`
	Probed           bool   `json:"probed"` // at least one probe completed
	Probes           uint64 `json:"probes"`
	Failures         uint64 `json:"failures"`
	ConsecutiveFails int    `json:"consecutiveFails"`
	LastError        string `json:"lastError,omitempty"`
}

// nodeState is the mutable half of one node's status.
type nodeState struct {
	node Node

	mu         sync.Mutex
	healthy    bool
	probed     bool
	probes     uint64
	failures   uint64
	consecFail int
	lastError  string
}

// Prober runs one health loop per node. Nodes start optimistic (healthy
// until the first probe says otherwise) so a router boot race never
// rejects traffic a node would have served.
type Prober struct {
	opts   ProberOptions
	states []*nodeState
	byName map[string]*nodeState

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewProber builds a prober over the given members (typically
// ring.Nodes()).
func NewProber(nodes []Node, opts ProberOptions) *Prober {
	opts.setDefaults()
	p := &Prober{opts: opts, stop: make(chan struct{}), byName: make(map[string]*nodeState, len(nodes))}
	for _, n := range nodes {
		st := &nodeState{node: n, healthy: true}
		p.states = append(p.states, st)
		p.byName[n.Name] = st
	}
	return p
}

// Start launches the per-node loops. Idempotent.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		for _, st := range p.states {
			p.wg.Add(1)
			go p.run(st)
		}
	})
}

// Stop halts the loops and waits for them. Idempotent.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Healthy reports whether the named node is currently routable. Unknown
// names are unhealthy.
func (p *Prober) Healthy(name string) bool {
	st := p.byName[name]
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.healthy
}

// ReportFailure folds a forwarding failure (connection refused, dial
// timeout) into the node's health, so the router stops routing to a dead
// node after FailThreshold failed requests instead of waiting out the
// probe interval.
func (p *Prober) ReportFailure(name string, err error) {
	st := p.byName[name]
	if st == nil {
		return
	}
	p.observe(st, fmt.Errorf("forward: %w", err))
}

// Status snapshots every node's health, sorted as the nodes were given.
func (p *Prober) Status() []NodeStatus {
	out := make([]NodeStatus, len(p.states))
	for i, st := range p.states {
		st.mu.Lock()
		out[i] = NodeStatus{
			Node:             st.node,
			Healthy:          st.healthy,
			Probed:           st.probed,
			Probes:           st.probes,
			Failures:         st.failures,
			ConsecutiveFails: st.consecFail,
			LastError:        st.lastError,
		}
		st.mu.Unlock()
	}
	return out
}

// run is one node's probe loop: Interval while healthy, exponential
// backoff up to MaxBackoff while down, immediate recovery on the first
// success.
func (p *Prober) run(st *nodeState) {
	defer p.wg.Done()
	delay := p.opts.Interval
	for {
		select {
		case <-p.stop:
			return
		case <-time.After(delay):
		}
		err := p.probe(st.node)
		if err == nil {
			p.observe(st, nil)
			delay = p.opts.Interval
			continue
		}
		p.observe(st, err)
		st.mu.Lock()
		down := !st.healthy
		st.mu.Unlock()
		if down {
			// Dead node: back off so probing costs little, but keep
			// looking — recovery is noticed within MaxBackoff.
			delay *= 2
			if delay > p.opts.MaxBackoff {
				delay = p.opts.MaxBackoff
			}
		} else {
			delay = p.opts.Interval
		}
	}
}

// probe issues one health request; nil means the node answered 200.
func (p *Prober) probe(n Node) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+n.Addr+p.opts.Path, nil)
	if err != nil {
		return err
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", p.opts.Path, resp.StatusCode)
	}
	return nil
}

// observe folds one probe (or forwarding) outcome into the node's state,
// flipping health at the configured threshold and logging transitions.
func (p *Prober) observe(st *nodeState, err error) {
	st.mu.Lock()
	st.probed = true
	st.probes++
	var flipped, nowHealthy bool
	if err == nil {
		st.consecFail = 0
		st.lastError = ""
		if !st.healthy {
			st.healthy = true
			flipped, nowHealthy = true, true
		}
	} else {
		st.failures++
		st.consecFail++
		st.lastError = err.Error()
		if st.healthy && st.consecFail >= p.opts.FailThreshold {
			st.healthy = false
			flipped, nowHealthy = true, false
		}
	}
	st.mu.Unlock()
	if flipped {
		if nowHealthy {
			p.opts.Logger.Info("node is healthy again",
				"node", st.node.Name, "addr", st.node.Addr)
		} else {
			p.opts.Logger.Warn("node marked down",
				"node", st.node.Name, "addr", st.node.Addr, "err", err)
		}
	}
}
