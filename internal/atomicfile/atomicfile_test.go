package atomicfile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("content = %q, want v2", data)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 || des[0].Name() != "out.json" {
		names := make([]string, len(des))
		for i, de := range des {
			names[i] = de.Name()
		}
		t.Fatalf("directory holds %v, want only out.json (no temp leftovers)", names)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o644 {
		t.Fatalf("perm = %v, want 0644", got)
	}
}

func TestWriteFileBadDir(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
