// Package atomicfile holds the one write-temp-then-rename helper shared by
// every checkpoint and results writer in the repo, so the atomicity and
// durability discipline lives in one place.
package atomicfile

import (
	"os"
	"path/filepath"
	"runtime"
)

// WriteFile writes data to path atomically and durably: readers observe
// either the old content or the new, never a partial write, and once
// WriteFile returns the new content survives a power cut — the temp file
// is fsynced before the rename and the directory entry after it. That
// durability is load-bearing for the WAL: compaction deletes log
// segments as soon as a checkpoint covering them has been written, which
// is only sound if the checkpoint really is on stable storage. Each call
// gets a unique temporary file (next to path — rename must not cross
// filesystems), so concurrent writers of the same path cannot corrupt
// each other; the last rename wins.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	// The content must be durable before the rename publishes it: a
	// rename of an unsynced file can survive a crash as an empty or
	// partial file on several filesystems.
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir makes the rename itself durable by fsyncing the directory
// entry. Windows cannot open directories for syncing; there the rename's
// durability is left to the OS (the repo's servers target Linux).
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
