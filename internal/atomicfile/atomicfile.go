// Package atomicfile holds the one write-temp-then-rename helper shared by
// every checkpoint and results writer in the repo, so the atomicity
// discipline (and any future fsync or cleanup fix) lives in one place.
package atomicfile

import (
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically: readers observe either the
// old content or the new, never a partial write. Each call gets a unique
// temporary file (next to path — rename must not cross filesystems), so
// concurrent writers of the same path cannot corrupt each other; the last
// rename wins.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
