package wire

import (
	"bytes"
	"io"
)

// DefaultLineBufSize is the LineReader's initial chunk size: big enough
// that one read syscall covers thousands of typical lines, small enough
// that a pool of readers stays cheap to retain.
const DefaultLineBufSize = 128 << 10

// maxZeroReads bounds consecutive io.Reader calls that return (0, nil)
// before the reader gives up, mirroring bufio's no-progress guard.
const maxZeroReads = 100

// LineReader yields newline-delimited records out of chunked reads. It is
// the streaming half of the fast NDJSON path: one buffer fill per chunk,
// one vectorized IndexByte per line, zero copies (returned lines alias
// the internal buffer and are valid only until the next Next call).
//
// The final line of the input is returned whether or not it carries a
// trailing newline; the call after the last line reports io.EOF. Lines
// longer than the buffer grow it geometrically — oversized buffers are
// the caller's cue not to pool the reader again.
type LineReader struct {
	r     io.Reader
	buf   []byte
	start int   // next unconsumed byte
	end   int   // end of buffered data
	off   int64 // absolute stream offset of buf[start]
	err   error // sticky read error (io.EOF included)
}

// NewLineReader builds a reader with the given buffer size (0 selects
// DefaultLineBufSize). Call Reset before use.
func NewLineReader(size int) *LineReader {
	if size <= 0 {
		size = DefaultLineBufSize
	}
	return &LineReader{buf: make([]byte, size)}
}

// Reset points the reader at a new stream and rewinds all state, so one
// pooled LineReader serves many requests without reallocating.
func (l *LineReader) Reset(r io.Reader) {
	l.r = r
	l.start, l.end = 0, 0
	l.off = 0
	l.err = nil
}

// BufCap reports the current buffer capacity — pools use it to drop
// readers that grew past their retention bound on an oversized line.
func (l *LineReader) BufCap() int { return cap(l.buf) }

// Offset reports the absolute stream offset of the next unreturned byte
// — the position where a mid-stream read error surfaced.
func (l *LineReader) Offset() int64 { return l.off }

// Next returns the next line (newline excluded) and the absolute byte
// offset of its first byte. err is io.EOF once the input is exhausted,
// or the underlying reader's error. The line aliases the internal buffer:
// it is valid only until the next call.
//
//tbs:zeroalloc
func (l *LineReader) Next() (line []byte, offset int64, err error) {
	for {
		if i := bytes.IndexByte(l.buf[l.start:l.end], '\n'); i >= 0 {
			line = l.buf[l.start : l.start+i]
			offset = l.off
			l.start += i + 1
			l.off += int64(i + 1)
			return line, offset, nil
		}
		if l.err != nil {
			if l.start < l.end {
				// Final unterminated line.
				line = l.buf[l.start:l.end]
				offset = l.off
				l.off += int64(len(line))
				l.start = l.end
				return line, offset, nil
			}
			return nil, l.off, l.err
		}
		if err := l.fill(); err != nil {
			l.err = err
		}
	}
}

// fill compacts the unconsumed tail to the front, grows the buffer when a
// line outruns it, and reads one chunk.
func (l *LineReader) fill() error {
	if l.start > 0 {
		n := copy(l.buf, l.buf[l.start:l.end])
		l.start, l.end = 0, n
	}
	if l.end == len(l.buf) {
		grown := make([]byte, 2*len(l.buf))
		copy(grown, l.buf[:l.end])
		l.buf = grown
	}
	for i := 0; i < maxZeroReads; i++ {
		n, err := l.r.Read(l.buf[l.end:])
		l.end += n
		if n > 0 || err != nil {
			return err
		}
	}
	return io.ErrNoProgress
}

// TrimSpace strips leading and trailing JSON whitespace (space, \t, \r,
// \n) in place — the allocation-free subset of bytes.TrimSpace the line
// loop needs (lines never contain \n, but clients do send \r\n).
//
//tbs:zeroalloc
func TrimSpace(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}
