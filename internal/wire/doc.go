// Package wire is the byte-level ingest wire layer: the 1BRC-style
// replacement for encoding/json on the NDJSON hot path, plus the compact
// application/x-tbs-bin binary framing for bulk loaders and node-to-node
// forwarding.
//
// The package trades generality for speed on the restricted grammar that
// real ingest traffic uses — flat JSON values, escape-free strings,
// {"v":N} value rows and {"x":[…],"y":N} labeled rows — and falls back to
// the encoding/json reference path the moment an input leaves that
// subset, so observable semantics never change:
//
//   - LineReader scans chunked reads for newline-delimited records
//     directly (no bufio.ReadSlice per line, no per-line copies), tracking
//     the absolute byte offset of every line for error reporting.
//   - Validate is a hand-rolled validator for the practical JSON subset;
//     it answers Valid or Invalid only when its verdict provably matches
//     json.Valid, and Unknown otherwise (escapes, deep nesting), in which
//     case the caller consults json.Valid. A differential fuzz test holds
//     the two in lockstep.
//   - ParseFloat / ParseLabeledRow decode JSON numbers and labeled rows
//     with hand-rolled int/float-from-bytes on the exactly-representable
//     fast path (mantissa < 2⁵³, |exp10| ≤ 22 — the same fast path
//     strconv itself uses, so results are bit-identical), reporting
//     ok=false whenever the general parser must take over.
//   - AppendFloat / AppendRowJSON render binary f64 rows as canonical
//     JSON text, with a scaled-integer fast path (≤ 6 decimal places)
//     whose output always round-trips to the identical bits.
//   - BinReader / AppendFrame implement the x-tbs-bin framing: CRC-framed
//     little-endian f64 rows reusing the write-ahead log's frame idioms.
//
// Every type holds its scratch internally and is reusable via Reset, so
// steady-state decoding allocates nothing per line, per row or per frame.
package wire
