package wire

import (
	"math"
	"strconv"
	"testing"
)

var numberCases = []string{
	"0", "-0", "1", "-1", "42", "-42", "9007199254740991", "9007199254740992",
	"3.25", "-3.25", "0.001", "123.456", "98.7654321", "-0.0",
	"1e3", "1E3", "1e+3", "1e-3", "2.5e10", "-2.5e-10", "1e22", "1e23",
	"1e-22", "1e-23", "0.1", "0.2", "0.3", "1.7976931348623157e308",
	"5e-324", "1e999", "1e-999", "18446744073709551615",
	"184467440737095516150", "0.000001", "123456789.123456789",
}

func TestParseFloatMatchesStrconv(t *testing.T) {
	for _, tc := range numberCases {
		got, ok := ParseFloat([]byte(tc))
		if !ok {
			continue // fallback path; nothing to compare
		}
		want, err := strconv.ParseFloat(tc, 64)
		if err != nil {
			t.Fatalf("ParseFloat(%q) ok but strconv errs: %v", tc, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("ParseFloat(%q) = %x, strconv = %x", tc, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestParseFloatRejectsNonNumbers(t *testing.T) {
	for _, tc := range []string{"", "-", "+1", "01", "1.", ".5", "1e", "1e+", "NaN", "Inf", "1 ", " 1", "0x10", "1,5"} {
		if _, ok := ParseFloat([]byte(tc)); ok {
			t.Errorf("ParseFloat(%q) ok, want fallback/reject", tc)
		}
	}
}

func TestParseFloatFastRangeBails(t *testing.T) {
	// Outside |exp10| ≤ 22 or mantissa ≥ 2⁵³ the fast path must decline,
	// not guess.
	for _, tc := range []string{"1e23", "1e-23", "9007199254740993", "123456789012345678901"} {
		if _, ok := ParseFloat([]byte(tc)); ok {
			t.Errorf("ParseFloat(%q) ok, want out-of-range bail", tc)
		}
	}
}

func TestAppendFloatRoundTrips(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 42.125, -42.125, 0.1, 0.2, 0.3,
		98.765432, 1e15, -1e15, 1e300, 5e-324, 123456.789012,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 1.0 / 3.0,
	}
	for _, f := range vals {
		s := string(AppendFloat(nil, f))
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("AppendFloat(%v) = %q: not parseable: %v", f, s, err)
		}
		if math.Float64bits(back) != math.Float64bits(f) {
			t.Errorf("AppendFloat(%v) = %q, parses back to %v (bits differ)", f, s, back)
		}
		if v := Validate([]byte(s)); v != Valid {
			t.Errorf("AppendFloat(%v) = %q: not Valid JSON number (verdict %d)", f, s, v)
		}
	}
}

func TestAppendFloatCanonicalForms(t *testing.T) {
	for _, tc := range []struct {
		f    float64
		want string
	}{
		{0, "0"},
		{math.Copysign(0, -1), "-0"},
		{42, "42"},
		{-7, "-7"},
		{3.25, "3.25"},
		{0.001, "0.001"},
		{42.125, "42.125"},
		{-0.5, "-0.5"},
	} {
		if got := string(AppendFloat(nil, tc.f)); got != tc.want {
			t.Errorf("AppendFloat(%v) = %q, want %q", tc.f, got, tc.want)
		}
	}
}
