package wire

// Verdict is Validate's three-way answer. Unknown is not an error: it
// means the input left the fast subset (an escape sequence, extreme
// nesting) and the caller must consult the encoding/json reference
// validator. Valid and Invalid are definitive — the differential fuzz
// test holds them bit-for-bit in lockstep with json.Valid.
type Verdict uint8

const (
	// Unknown: outside the fast subset; fall back to json.Valid.
	Unknown Verdict = iota
	// Valid: json.Valid would return true.
	Valid
	// Invalid: json.Valid would return false.
	Invalid
)

// maxFastDepth bounds recursion. encoding/json accepts nesting to depth
// 10000; anything deeper than this bound answers Unknown so the verdict
// stays exact without a 10000-deep stack.
const maxFastDepth = 64

// Validate scans one JSON value with a hand-rolled validator for the
// practical ingest subset: objects and arrays of numbers, escape-free
// strings and literals — the shapes ingest traffic actually has. No
// reflection, no per-byte state machine dispatch, no allocation.
func Validate(b []byte) Verdict {
	// Canonical value rows {"v":<number>} dominate ingest traffic:
	// recognize the exact shape with one straight-line scan. Anything
	// that fails the match (whitespace, a non-number value) falls
	// through to the general walk, which gives the same exact answer.
	if len(b) >= 7 && b[0] == '{' && b[1] == '"' && b[2] == 'v' && b[3] == '"' && b[4] == ':' {
		if j, v := validateNumber(b, 5); v == Valid && j == len(b)-1 && b[j] == '}' {
			return Valid
		}
	}
	i, v := validateValue(b, skipSpace(b, 0), 0)
	if v != Valid {
		return v
	}
	if skipSpace(b, i) != len(b) {
		// Trailing non-whitespace after a complete value.
		return Invalid
	}
	return Valid
}

func skipSpace(b []byte, i int) int {
	for i < len(b) {
		if c := b[i]; c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			break
		}
		i++
	}
	return i
}

// validateValue consumes one value starting at i (no leading whitespace)
// and returns the position after it.
func validateValue(b []byte, i, depth int) (int, Verdict) {
	if i >= len(b) {
		return i, Invalid
	}
	switch c := b[i]; {
	case c == '{':
		return validateObject(b, i+1, depth+1)
	case c == '[':
		return validateArray(b, i+1, depth+1)
	case c == '"':
		return validateString(b, i+1)
	case c == '-' || ('0' <= c && c <= '9'):
		return validateNumber(b, i)
	case c == 't':
		return validateLiteral(b, i, "true")
	case c == 'f':
		return validateLiteral(b, i, "false")
	case c == 'n':
		return validateLiteral(b, i, "null")
	}
	return i, Invalid
}

func validateLiteral(b []byte, i int, lit string) (int, Verdict) {
	if len(b)-i < len(lit) || string(b[i:i+len(lit)]) != lit {
		return i, Invalid
	}
	return i + len(lit), Valid
}

// validateString consumes string content after the opening quote. Any
// escape sequence bails to Unknown — correctness of \uXXXX handling
// stays encoding/json's job.
func validateString(b []byte, i int) (int, Verdict) {
	for i < len(b) {
		switch c := b[i]; {
		case c == '"':
			return i + 1, Valid
		case c == '\\':
			return i, Unknown
		case c < 0x20:
			// Raw control character: rejected by the JSON grammar.
			return i, Invalid
		}
		// Bytes ≥ 0x20 including non-ASCII pass through verbatim, exactly
		// as encoding/json's scanner treats them (it does not validate
		// UTF-8 during Valid).
		i++
	}
	return i, Invalid // unterminated
}

// validateNumber consumes -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
func validateNumber(b []byte, i int) (int, Verdict) {
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i >= len(b):
		return i, Invalid
	case b[i] == '0':
		i++
	case '1' <= b[i] && b[i] <= '9':
		for i < len(b) && '0' <= b[i] && b[i] <= '9' {
			i++
		}
	default:
		return i, Invalid
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return i, Invalid
		}
		for i < len(b) && '0' <= b[i] && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return i, Invalid
		}
		for i < len(b) && '0' <= b[i] && b[i] <= '9' {
			i++
		}
	}
	return i, Valid
}

func validateObject(b []byte, i, depth int) (int, Verdict) {
	if depth > maxFastDepth {
		return i, Unknown
	}
	i = skipSpace(b, i)
	if i < len(b) && b[i] == '}' {
		return i + 1, Valid
	}
	for {
		if i >= len(b) || b[i] != '"' {
			return i, Invalid
		}
		var v Verdict
		if i, v = validateString(b, i+1); v != Valid {
			return i, v
		}
		i = skipSpace(b, i)
		if i >= len(b) || b[i] != ':' {
			return i, Invalid
		}
		i = skipSpace(b, i+1)
		if i, v = validateValue(b, i, depth); v != Valid {
			return i, v
		}
		i = skipSpace(b, i)
		if i >= len(b) {
			return i, Invalid
		}
		switch b[i] {
		case '}':
			return i + 1, Valid
		case ',':
			i = skipSpace(b, i+1)
		default:
			return i, Invalid
		}
	}
}

func validateArray(b []byte, i, depth int) (int, Verdict) {
	if depth > maxFastDepth {
		return i, Unknown
	}
	i = skipSpace(b, i)
	if i < len(b) && b[i] == ']' {
		return i + 1, Valid
	}
	for {
		var v Verdict
		if i, v = validateValue(b, i, depth); v != Valid {
			return i, v
		}
		i = skipSpace(b, i)
		if i >= len(b) {
			return i, Invalid
		}
		switch b[i] {
		case ']':
			return i + 1, Valid
		case ',':
			i = skipSpace(b, i+1)
		default:
			return i, Invalid
		}
	}
}
