package wire

import (
	"bytes"
	"strings"
	"testing"
)

// TestWireParseZeroAlloc enforces the tentpole's zero-allocation bound:
// the full line loop — chunked scan, validation, row decode — must not
// allocate at steady state. testing.AllocsPerRun warms the function up
// once, which covers the first-use buffer growth.
func TestWireParseZeroAlloc(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 512; i++ {
		sb.WriteString(`{"v":`)
		sb.Write(AppendFloat(nil, float64(i)+0.125))
		sb.WriteString("}\n")
		sb.WriteString(`{"x":[1.5,2.25,3.125],"y":`)
		sb.Write(AppendFloat(nil, float64(i)))
		sb.WriteString("}\n")
	}
	body := []byte(sb.String())

	lr := NewLineReader(0)
	src := bytes.NewReader(body)
	var x []float64
	allocs := testing.AllocsPerRun(20, func() {
		src.Reset(body)
		lr.Reset(src)
		for {
			line, _, err := lr.Next()
			if err != nil {
				break
			}
			line = TrimSpace(line)
			if Validate(line) != Valid {
				t.Fatal("unexpected verdict on canonical line")
			}
			if _, ok := ParseValueRow(line); ok {
				continue
			}
			var lok bool
			if x, _, lok = ParseLabeledRow(line, x); !lok {
				t.Fatal("canonical labeled row declined")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("line parse loop allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestWireBinDecodeZeroAlloc: the binary row decoder is likewise
// allocation-free once its scratch has grown.
func TestWireBinDecodeZeroAlloc(t *testing.T) {
	rows := make([][]float64, 256)
	for i := range rows {
		rows[i] = []float64{float64(i), float64(i) + 0.5, float64(i) * 1.25}
	}
	data := AppendFrame(nil, rows)
	br := NewBinReader()
	src := bytes.NewReader(data)
	allocs := testing.AllocsPerRun(20, func() {
		src.Reset(data)
		br.Reset(src)
		for {
			if _, err := br.NextRow(); err != nil {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("binary decode loop allocates %.2f allocs/op, want 0", allocs)
	}
}
