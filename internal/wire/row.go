package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The row parsers decode the two canonical ingest shapes — value rows
// `{"v":N}` and labeled rows `{"x":[N,…],"y":N}` — without
// encoding/json. They are deliberately strict: keys in canonical order,
// no escapes, no extra members. Anything else reports ok=false, which
// means "fall back to the general decoder", never "the input is bad";
// callers keep exactly the old semantics for the long tail.

// ParseValueRow decodes `{"v":N}` (JSON whitespace allowed anywhere the
// grammar allows it) and returns the value.
//
//tbs:zeroalloc
func ParseValueRow(b []byte) (v float64, ok bool) {
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return 0, false
	}
	i, ok = expectKey(b, i+1, 'v')
	if !ok {
		return 0, false
	}
	v, i, ok = parseNumberAt(b, i)
	if !ok {
		return 0, false
	}
	i = skipSpace(b, i)
	if i >= len(b) || b[i] != '}' || skipSpace(b, i+1) != len(b) {
		return 0, false
	}
	return v, true
}

// ParseLabeledRow decodes `{"x":[N,…],"y":N}`, appending features to x
// (pass a reused x[:0] slice for allocation-free steady state). The
// returned slice replaces the argument, as with append.
//
//tbs:zeroalloc
func ParseLabeledRow(b []byte, x []float64) ([]float64, float64, bool) {
	x = x[:0]
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return x, 0, false
	}
	i, ok := expectKey(b, i+1, 'x')
	if !ok || i >= len(b) || b[i] != '[' {
		return x, 0, false
	}
	i = skipSpace(b, i+1)
	if i < len(b) && b[i] == ']' {
		i++
	} else {
		for {
			var f float64
			if f, i, ok = parseNumberAt(b, i); !ok {
				return x, 0, false
			}
			x = append(x, f)
			i = skipSpace(b, i)
			if i >= len(b) {
				return x, 0, false
			}
			if b[i] == ']' {
				i++
				break
			}
			if b[i] != ',' {
				return x, 0, false
			}
			i = skipSpace(b, i+1)
		}
	}
	i = skipSpace(b, i)
	if i >= len(b) || b[i] != ',' {
		return x, 0, false
	}
	i, ok = expectKey(b, i+1, 'y')
	if !ok {
		return x, 0, false
	}
	var y float64
	if y, i, ok = parseNumberAt(b, i); !ok {
		return x, 0, false
	}
	i = skipSpace(b, i)
	if i >= len(b) || b[i] != '}' || skipSpace(b, i+1) != len(b) {
		return x, 0, false
	}
	return x, y, true
}

// expectKey consumes optional whitespace, the member key `"k"`, optional
// whitespace and the colon, returning the position of the value (after
// its leading whitespace).
//
//tbs:zeroalloc
func expectKey(b []byte, i int, k byte) (int, bool) {
	i = skipSpace(b, i)
	if len(b)-i < 3 || b[i] != '"' || b[i+1] != k || b[i+2] != '"' {
		return i, false
	}
	i = skipSpace(b, i+3)
	if i >= len(b) || b[i] != ':' {
		return i, false
	}
	return skipSpace(b, i+1), true
}

// parseNumberAt scans one JSON number token at i and decodes it on the
// exact fast path.
//
//tbs:zeroalloc
func parseNumberAt(b []byte, i int) (float64, int, bool) {
	j, v := validateNumber(b, i)
	if v != Valid {
		return 0, i, false
	}
	f, ok := ParseFloat(b[i:j])
	if !ok {
		return 0, i, false
	}
	return f, j, true
}

// AppendRowJSON renders a decoded binary row as canonical restricted-
// grammar JSON: one float becomes a value row `{"v":V}`, n ≥ 2 floats
// become a labeled row whose last element is the label. The output is
// valid JSON by construction, so binary and NDJSON ingest produce
// interchangeable stream state (checkpoints, samples, WAL records).
//
//tbs:zeroalloc
func AppendRowJSON(dst []byte, vals []float64) []byte {
	switch len(vals) {
	case 0:
		return dst
	case 1:
		dst = append(dst, `{"v":`...)
		dst = AppendFloat(dst, vals[0])
		return append(dst, '}')
	}
	dst = append(dst, `{"x":[`...)
	for i, v := range vals[:len(vals)-1] {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendFloat(dst, v)
	}
	dst = append(dst, `],"y":`...)
	dst = AppendFloat(dst, vals[len(vals)-1])
	return append(dst, '}')
}

// MaxRowRenderBytes bounds AppendRowRawJSON's output for a raw row of
// len(raw) bytes (n = len(raw)/8 floats): structural bytes plus one
// maximal float rendering per value. strconv's shortest form of any
// float64 fits in 24 bytes; 26 leaves margin for the separator.
func MaxRowRenderBytes(rawLen int) int { return 16 + 26*(rawLen/8) }

// IsBinItem reports whether an item's bytes are a binary row in item
// form rather than JSON text. The two-byte row header's first byte
// always has the high bit set, and the first byte of any valid JSON
// value is ASCII, so the first byte alone decides.
func IsBinItem(item []byte) bool { return len(item) > 0 && item[0] >= 0x80 }

// SplitBinItem validates an item-form binary row — the canonical
// two-byte header plus 8n float bytes, exactly as NextFrameItems
// produced it — and returns the float bytes.
func SplitBinItem(item []byte) (raw []byte, err error) {
	if len(item) < BinRowHeaderSize+8 {
		return nil, fmt.Errorf("wire: binary item too short (%d bytes)", len(item))
	}
	n := uint64(item[0]&0x7f) | uint64(item[1])<<7
	if n == 0 || n > MaxBinRowFloats {
		return nil, fmt.Errorf("wire: binary item float count %d outside [1,%d]", n, MaxBinRowFloats)
	}
	raw = item[BinRowHeaderSize:]
	if uint64(len(raw)) != n*8 {
		return nil, fmt.Errorf("wire: binary item has %d float bytes, header says %d floats", len(raw), n)
	}
	return raw, nil
}

// BinItemJSON renders an item-form binary row as its canonical JSON
// text. This is the deferred half of the binary ingest path: rows are
// stored verbatim off the wire and only pay for JSON rendering here,
// when a consumer (sample read, checkpoint, handoff, model scoring)
// actually needs text — never for the items sampling discards.
func BinItemJSON(item []byte) ([]byte, error) {
	raw, err := SplitBinItem(item)
	if err != nil {
		return nil, err
	}
	return AppendRowRawJSON(make([]byte, 0, MaxRowRenderBytes(len(raw))), raw), nil
}

// BinItemFloats decodes an item-form binary row into floats, appending
// to vals. Consumers that want numbers (model scoring) skip the text
// round-trip entirely.
func BinItemFloats(item []byte, vals []float64) ([]float64, error) {
	raw, err := SplitBinItem(item)
	if err != nil {
		return nil, err
	}
	for i := 0; i+8 <= len(raw); i += 8 {
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
	}
	return vals, nil
}

// AppendRowRawJSON renders a row directly from its wire bytes — 8n
// little-endian float64s as returned by NextRowBytes — with the same
// canonical output as AppendRowJSON. Decoding and rendering fuse into
// one pass so the hot binary ingest loop writes item text exactly once,
// straight into the caller's arena.
func AppendRowRawJSON(dst, raw []byte) []byte {
	switch n := len(raw) / 8; n {
	case 0:
		return dst
	case 1:
		dst = append(dst, `{"v":`...)
		dst = AppendFloat(dst, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		return append(dst, '}')
	default:
		dst = append(dst, `{"x":[`...)
		for i := 0; i < n-1; i++ {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = AppendFloat(dst, math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:])))
		}
		dst = append(dst, `],"y":`...)
		dst = AppendFloat(dst, math.Float64frombits(binary.LittleEndian.Uint64(raw[(n-1)*8:])))
		return append(dst, '}')
	}
}
