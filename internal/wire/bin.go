package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// BinContentType negotiates the compact binary ingest framing.
const BinContentType = "application/x-tbs-bin"

// Frame layout, reusing the write-ahead log's record idiom
// (internal/wal/record.go): an 8-byte header of [4B LE payload length]
// [4B LE CRC-32 (IEEE) of payload], then the payload. The payload is a
// uvarint row count followed by rows, each a 2-byte row header — the
// float count n (1 ≤ n ≤ MaxBinRowFloats) as a CANONICAL two-byte
// uvarint [0x80|n&0x7f, n>>7] — and n little-endian IEEE-754 float64s.
// A one-float row is a value row; n ≥ 2 is a labeled row whose last
// float is the label (see AppendRowJSON). NaN and infinities are
// rejected at decode so every row renders to valid JSON.
//
// The two-byte row header is deliberate, not an encoding accident: its
// first byte always has the high bit set, while the first byte of any
// valid JSON value is ASCII (< 0x80). A row — header plus floats — can
// therefore live verbatim alongside JSON text items and remain
// self-describing from its first byte, which is what lets the server
// store binary rows unrendered and defer all JSON materialization to
// the consumers that actually read them (see BinItemJSON). The decoder
// rejects one-byte row headers to keep that invariant airtight.
const (
	binHeaderSize = 8

	// BinRowHeaderSize is the canonical row header width: the float
	// count as a forced two-byte uvarint whose first byte is ≥ 0x80.
	BinRowHeaderSize = 2

	// MaxBinPayloadBytes bounds a single frame so a corrupt length
	// prefix cannot force a huge allocation.
	MaxBinPayloadBytes = 8 << 20

	// MaxBinRowFloats bounds one row's width (and fits the two-byte
	// header: 4096 < 2¹⁴).
	MaxBinRowFloats = 4096

	// MaxRetainedFrameBytes is the zero-copy cutoff for NextFrameItems:
	// frames with payloads up to this size transfer ownership to the
	// caller, so row slices alias the wire buffer with no copy at all.
	// The bound exists because a surviving sample row pins its whole
	// frame — with 64KB frames a 1000-row reservoir pins at most ~64MB
	// worst case — while oversized frames are decoded into caller-interned
	// copies instead.
	MaxRetainedFrameBytes = 64 << 10
)

var binCRCTable = crc32.MakeTable(crc32.IEEE)

// BinError reports a malformed binary stream with enough position data
// for a structured 400 body: the 1-based frame ordinal and the absolute
// byte offset of that frame's first byte.
type BinError struct {
	Frame  int
	Offset int64
	Reason string
}

func (e *BinError) Error() string {
	return fmt.Sprintf("x-tbs-bin frame %d at offset %d: %s", e.Frame, e.Offset, e.Reason)
}

// AppendFrame encodes rows as one frame. Row widths and NaN/Inf are the
// caller's responsibility on the encode side; the decoder enforces them.
func AppendFrame(dst []byte, rows [][]float64) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, row := range rows {
		n := uint64(len(row))
		dst = append(dst, 0x80|byte(n&0x7f), byte(n>>7))
		for _, v := range row {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	payload := dst[start+binHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, binCRCTable))
	return dst
}

// BinReader decodes a stream of frames row by row. All scratch (payload
// buffer, row slice) is held inside the reader and reused, so after the
// first frames decoding allocates nothing. Reset repoints a pooled
// reader at a new stream.
type BinReader struct {
	r        io.Reader
	payload  []byte
	pos      int
	rowsLeft uint64
	vals     []float64
	frame    int
	frameOff int64
	off      int64
	hdr      [binHeaderSize]byte
}

// NewBinReader builds an empty reader; call Reset before use.
func NewBinReader() *BinReader { return &BinReader{} }

// Reset points the reader at a new stream and rewinds all state.
func (br *BinReader) Reset(r io.Reader) {
	br.r = r
	br.pos, br.rowsLeft = 0, 0
	br.payload = br.payload[:0]
	br.frame, br.frameOff, br.off = 0, 0, 0
}

// Frame reports the 1-based ordinal of the current frame.
func (br *BinReader) Frame() int { return br.frame }

// FrameOffset reports the absolute byte offset of the current frame.
func (br *BinReader) FrameOffset() int64 { return br.frameOff }

// NextRow returns the next row's floats. The slice aliases internal
// scratch and is valid only until the next call. err is io.EOF at a
// clean end of stream, a *BinError for malformed input, or the
// underlying reader's error verbatim (so body-limit errors keep their
// type for HTTP status mapping).
//
//tbs:zeroalloc
func (br *BinReader) NextRow() ([]float64, error) {
	raw, err := br.NextRowBytes()
	if err != nil {
		return nil, err
	}
	n := len(raw) / 8
	if cap(br.vals) < n {
		br.vals = make([]float64, n)
	}
	br.vals = br.vals[:n]
	for i := range br.vals {
		br.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return br.vals, nil
}

// NextRowBytes is the copy-free form of NextRow: it returns the row's
// floats as their raw 8n little-endian bytes, aliasing the frame buffer
// (valid only until the next call). Non-finite floats are rejected here,
// so every returned row renders to valid JSON.
//
//tbs:zeroalloc
func (br *BinReader) NextRowBytes() ([]byte, error) {
	for br.rowsLeft == 0 {
		if err := br.readFrame(); err != nil {
			return nil, err
		}
	}
	br.rowsLeft--
	item, err := br.nextItem()
	if err != nil {
		return nil, err
	}
	return item[BinRowHeaderSize:], nil
}

// nextItem consumes one row and returns it in item form — the canonical
// two-byte header plus the float bytes, aliasing the frame buffer. The
// caller has already accounted rowsLeft.
//
//tbs:zeroalloc
func (br *BinReader) nextItem() ([]byte, error) {
	if len(br.payload)-br.pos < BinRowHeaderSize {
		return nil, br.errf("truncated row header")
	}
	b0 := br.payload[br.pos]
	if b0 < 0x80 {
		// A one-byte varint here would make the row's first byte ASCII
		// and break the binary-vs-JSON first-byte invariant.
		return nil, br.errf("non-canonical row header (first byte %#02x < 0x80)", b0)
	}
	n := uint64(b0&0x7f) | uint64(br.payload[br.pos+1])<<7
	if n == 0 || n > MaxBinRowFloats {
		return nil, br.errf("row float count %d outside [1,%d]", n, MaxBinRowFloats)
	}
	end := br.pos + BinRowHeaderSize + int(n)*8
	if end > len(br.payload) {
		return nil, br.errf("row overruns frame payload")
	}
	item := br.payload[br.pos:end]
	br.pos = end
	for i := BinRowHeaderSize; i < len(item); i += 8 {
		// Exponent bits all set means NaN or ±Inf; neither has a JSON
		// rendering.
		if bits := binary.LittleEndian.Uint64(item[i:]); bits&0x7FF0000000000000 == 0x7FF0000000000000 {
			return nil, br.errf("non-finite float64 in row")
		}
	}
	if br.rowsLeft == 0 && br.pos != len(br.payload) {
		return nil, br.errf("%d trailing bytes after last row", len(br.payload)-br.pos)
	}
	return item, nil
}

// NextFrameItems decodes the next whole frame, appending one sub-slice
// per row to items: the row verbatim in item form (two-byte header plus
// float bytes), aliasing the frame's payload buffer. Every row is fully
// validated (canonical header, width bounds, finiteness, trailing
// bytes). When retained is true — payloads up to MaxRetainedFrameBytes —
// buffer ownership transfers to the caller: the slices stay valid
// forever and the reader allocates afresh for the next frame, so small
// frames decode with zero copies. Otherwise the slices are valid only
// until the next frame and the caller must copy what it keeps. On a
// malformed row the rows appended so far are good — the caller commits
// them and reports the error for the row after. err is io.EOF at a
// clean end of stream.
//
// This is the hot bulk-ingest entry point: because rows arrive already
// in self-describing item form, the server stores these bytes directly
// and never renders JSON for items the sampler will discard.
func NextFrameItems[T ~[]byte](br *BinReader, items []T) (_ []T, retained bool, err error) {
	for br.rowsLeft == 0 {
		if err := br.readFrame(); err != nil {
			return items, false, err
		}
	}
	payload := br.payload
	retained = len(payload) <= MaxRetainedFrameBytes
	if retained {
		// Ownership moves to the returned slices; drop the reader's
		// reference so the next frame gets a fresh buffer.
		br.payload = nil
	}
	// The row loop is nextItem inlined: one bounds check, the canonical
	// two-byte header, and a finiteness pass, with no call per row.
	pos := br.pos
	for br.rowsLeft > 0 {
		br.rowsLeft--
		if len(payload)-pos < BinRowHeaderSize {
			br.pos = pos
			return items, retained, br.errf("truncated row header")
		}
		b0 := payload[pos]
		if b0 < 0x80 {
			br.pos = pos
			return items, retained, br.errf("non-canonical row header (first byte %#02x < 0x80)", b0)
		}
		n := uint64(b0&0x7f) | uint64(payload[pos+1])<<7
		if n == 0 || n > MaxBinRowFloats {
			br.pos = pos
			return items, retained, br.errf("row float count %d outside [1,%d]", n, MaxBinRowFloats)
		}
		end := pos + BinRowHeaderSize + int(n)*8
		if end > len(payload) {
			br.pos = pos
			return items, retained, br.errf("row overruns frame payload")
		}
		for i := pos + BinRowHeaderSize; i < end; i += 8 {
			if bits := binary.LittleEndian.Uint64(payload[i:]); bits&0x7FF0000000000000 == 0x7FF0000000000000 {
				br.pos = pos
				return items, retained, br.errf("non-finite float64 in row")
			}
		}
		items = append(items, T(payload[pos:end:end]))
		pos = end
	}
	br.pos = pos
	if pos != len(payload) {
		return items, retained, br.errf("%d trailing bytes after last row", len(payload)-pos)
	}
	return items, retained, nil
}

func (br *BinReader) readFrame() error {
	br.frameOff = br.off
	n, err := io.ReadFull(br.r, br.hdr[:])
	if n == 0 && err == io.EOF {
		return io.EOF
	}
	br.frame++
	br.off += int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return br.errf("truncated frame header (%d of %d bytes)", n, binHeaderSize)
		}
		return err
	}
	length := binary.LittleEndian.Uint32(br.hdr[:4])
	sum := binary.LittleEndian.Uint32(br.hdr[4:])
	if length == 0 {
		return br.errf("empty frame payload")
	}
	if length > MaxBinPayloadBytes {
		return br.errf("frame payload %d exceeds limit %d", length, MaxBinPayloadBytes)
	}
	if cap(br.payload) < int(length) {
		br.payload = make([]byte, length)
	}
	br.payload = br.payload[:length]
	n, err = io.ReadFull(br.r, br.payload)
	br.off += int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return br.errf("truncated frame payload (%d of %d bytes)", n, length)
		}
		return err
	}
	if got := crc32.Checksum(br.payload, binCRCTable); got != sum {
		return br.errf("payload CRC mismatch (got %08x, want %08x)", got, sum)
	}
	rows, sz := binary.Uvarint(br.payload)
	if sz <= 0 {
		return br.errf("bad row-count varint")
	}
	if rows == 0 {
		return br.errf("frame with zero rows")
	}
	// Each row needs at least one varint byte and one 8-byte float.
	if rows > uint64(len(br.payload)-sz)/9 {
		return br.errf("row count %d impossible for %d payload bytes", rows, length)
	}
	br.pos = sz
	br.rowsLeft = rows
	return nil
}

func (br *BinReader) errf(format string, args ...any) error {
	return &BinError{Frame: br.frame, Offset: br.frameOff, Reason: fmt.Sprintf(format, args...)}
}
