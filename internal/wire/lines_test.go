package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// chunkReader returns at most n bytes per Read to exercise refills.
type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

func TestLineReaderOffsetsAndFinalLine(t *testing.T) {
	input := "alpha\nbeta\n\ngamma" // blank line + unterminated final line
	wantLines := []string{"alpha", "beta", "", "gamma"}
	wantOffs := []int64{0, 6, 11, 12}
	for _, bufSize := range []int{3, 4, 7, 64, DefaultLineBufSize} {
		for _, chunk := range []int{1, 2, 3, 1 << 20} {
			lr := NewLineReader(bufSize)
			lr.Reset(&chunkReader{r: strings.NewReader(input), n: chunk})
			var lines []string
			var offs []int64
			for {
				line, off, err := lr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("buf=%d chunk=%d: Next: %v", bufSize, chunk, err)
				}
				lines = append(lines, string(line))
				offs = append(offs, off)
			}
			if strings.Join(lines, "|") != strings.Join(wantLines, "|") {
				t.Fatalf("buf=%d chunk=%d: lines %q, want %q", bufSize, chunk, lines, wantLines)
			}
			for i := range offs {
				if offs[i] != wantOffs[i] {
					t.Fatalf("buf=%d chunk=%d: offset[%d] = %d, want %d", bufSize, chunk, i, offs[i], wantOffs[i])
				}
			}
		}
	}
}

func TestLineReaderLongLineGrowsBuffer(t *testing.T) {
	long := strings.Repeat("x", 10_000)
	lr := NewLineReader(16)
	lr.Reset(strings.NewReader(long + "\nshort\n"))
	line, off, err := lr.Next()
	if err != nil || off != 0 || string(line) != long {
		t.Fatalf("long line: off=%d err=%v len=%d", off, err, len(line))
	}
	line, off, err = lr.Next()
	if err != nil || string(line) != "short" {
		t.Fatalf("short after long: %q off=%d err=%v", line, off, err)
	}
	if off != int64(len(long)+1) {
		t.Fatalf("short offset = %d, want %d", off, len(long)+1)
	}
	if lr.BufCap() < len(long) {
		t.Fatalf("BufCap() = %d, want ≥ %d after growth", lr.BufCap(), len(long))
	}
}

func TestLineReaderReset(t *testing.T) {
	lr := NewLineReader(8)
	for i := 0; i < 3; i++ {
		lr.Reset(strings.NewReader("one\ntwo\n"))
		for _, want := range []string{"one", "two"} {
			line, _, err := lr.Next()
			if err != nil || string(line) != want {
				t.Fatalf("iter %d: got %q err=%v, want %q", i, line, err, want)
			}
		}
		if _, _, err := lr.Next(); err != io.EOF {
			t.Fatalf("iter %d: want io.EOF, got %v", i, err)
		}
	}
}

func TestLineReaderEmptyInput(t *testing.T) {
	lr := NewLineReader(8)
	lr.Reset(bytes.NewReader(nil))
	if _, _, err := lr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF on empty input, got %v", err)
	}
}

func TestTrimSpace(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""}, {"  ", ""}, {"a", "a"}, {" a\r", "a"},
		{"\t{\"v\":1} \r", `{"v":1}`}, {"a b", "a b"},
	} {
		if got := string(TrimSpace([]byte(tc.in))); got != tc.want {
			t.Errorf("TrimSpace(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
