package wire

import (
	"math"
	"strconv"
)

// exactMantissa is the largest integer count guaranteed exactly
// representable in a float64 (2⁵³); pow10 holds the powers of ten that
// are themselves exact (10²² = 2²²·5²², and 5²² < 2⁵³).
const exactMantissa = 1 << 53

var pow10 = [...]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// ParseFloat decodes a JSON number from the whole of b with hand-rolled
// digit accumulation, on the classic exactly-representable fast path
// (mantissa < 2⁵³, |decimal exponent| ≤ 22): one integer build plus one
// exact multiply or divide, each correctly rounded, so the result is
// bit-identical to strconv.ParseFloat by IEEE-754 construction. ok=false
// means "use the general parser" — the input is outside the fast range
// or not a JSON number — never "the value is X".
//
//tbs:zeroalloc
func ParseFloat(b []byte) (f float64, ok bool) {
	i := 0
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	if i >= len(b) {
		return 0, false
	}
	var mant uint64
	var nd int // digits accumulated into mant (including fraction zeros)
	switch {
	case b[i] == '0':
		i++
	case '1' <= b[i] && b[i] <= '9':
		for i < len(b) && '0' <= b[i] && b[i] <= '9' {
			mant = mant*10 + uint64(b[i]-'0')
			nd++
			i++
		}
	default:
		return 0, false
	}
	exp10 := 0
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for i < len(b) && '0' <= b[i] && b[i] <= '9' {
			mant = mant*10 + uint64(b[i]-'0')
			nd++
			exp10--
			i++
		}
	}
	if nd > 19 {
		// mant may have wrapped past uint64; out of fast range.
		return 0, false
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		esign := 1
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			if b[i] == '-' {
				esign = -1
			}
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		ev := 0
		for i < len(b) && '0' <= b[i] && b[i] <= '9' {
			if ev = ev*10 + int(b[i]-'0'); ev > 1000 {
				// Far outside the fast range either way; a clamp keeps the
				// arithmetic safe and the verdict unchanged.
				ev = 1000
			}
			i++
		}
		exp10 += esign * ev
	}
	if i != len(b) {
		return 0, false
	}
	if mant >= exactMantissa || exp10 < -22 || exp10 > 22 {
		return 0, false
	}
	f = float64(mant)
	if exp10 > 0 {
		f *= pow10[exp10]
	} else if exp10 < 0 {
		f /= pow10[-exp10]
	}
	if neg {
		f = -f
	}
	return f, true
}

// maxDecimalPlaces bounds AppendFloat's scaled-integer search: values
// with at most this many decimal places render without strconv.
const maxDecimalPlaces = 6

// AppendFloat appends the canonical JSON rendering of a finite f. The
// fast path covers integers and short decimals (≤ 6 places) via scaled
// 64-bit integer formatting — the inverse of the 1BRC parse trick — and
// its output always parses back to the identical bits (the candidate is
// accepted only when the exact division float64(r)/10ᵏ reproduces f).
// Everything else falls back to strconv's shortest round-trip form.
// Callers must reject NaN/±Inf first; JSON cannot carry them.
//
//tbs:zeroalloc
func AppendFloat(dst []byte, f float64) []byte {
	if f == 0 {
		if math.Signbit(f) {
			return append(dst, '-', '0')
		}
		return append(dst, '0')
	}
	if f > -exactMantissa && f < exactMantissa {
		if i := int64(f); float64(i) == f {
			return appendScaled(dst, i, 0)
		}
		for k := 1; k <= maxDecimalPlaces; k++ {
			scaled := f * pow10[k]
			if scaled <= -exactMantissa || scaled >= exactMantissa {
				break
			}
			r := int64(math.Round(scaled))
			if float64(r)/pow10[k] == f {
				return appendScaled(dst, r, k)
			}
		}
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

// digits10 counts decimal digits with well-predicted compares instead of
// a multiply loop; values are bounded by exactMantissa (16 digits).
//
//tbs:zeroalloc
func digits10(u uint64) int {
	switch {
	case u < 10:
		return 1
	case u < 100:
		return 2
	case u < 1_000:
		return 3
	case u < 10_000:
		return 4
	case u < 100_000:
		return 5
	case u < 1_000_000:
		return 6
	case u < 10_000_000:
		return 7
	case u < 100_000_000:
		return 8
	case u < 1_000_000_000:
		return 9
	case u < 10_000_000_000:
		return 10
	case u < 100_000_000_000:
		return 11
	case u < 1_000_000_000_000:
		return 12
	case u < 10_000_000_000_000:
		return 13
	case u < 100_000_000_000_000:
		return 14
	case u < 1_000_000_000_000_000:
		return 15
	}
	return 16
}

// smallsString is the classic two-digits-at-a-time table: one division
// emits two digits, halving the divisions on the hottest formatting loop.
const smallsString = "00010203040506070809" +
	"10111213141516171819" +
	"20212223242526272829" +
	"30313233343536373839" +
	"40414243444546474849" +
	"50515253545556575859" +
	"60616263646566676869" +
	"70717273747576777879" +
	"80818283848586878889" +
	"90919293949596979899"

// appendScaled formats n·10⁻ᵏ as a plain decimal ("42.125" for n=42125,
// k=3; k=0 is the integer case). The width is computed up front and the
// digits written backwards in place, so the hot path does one slice
// growth check and no intermediate buffer copy.
//
//tbs:zeroalloc
func appendScaled(dst []byte, n int64, k int) []byte {
	if n < 0 {
		dst = append(dst, '-')
		n = -n
	}
	u := uint64(n)
	// Printed width: the integer part's digit count (at least the single
	// '0'), plus the point and k fraction digits when k > 0.
	intPart := u
	for d := 0; d < k; d++ {
		intPart /= 10
	}
	w := digits10(intPart)
	if k > 0 {
		w += 1 + k
	}
	if cap(dst)-len(dst) < w {
		dst = append(dst, make([]byte, w)...)[:len(dst)]
	}
	dst = dst[:len(dst)+w]
	i := len(dst)
	for d := 0; d < k; d++ {
		i--
		dst[i] = byte('0' + u%10)
		u /= 10
	}
	if k > 0 {
		i--
		dst[i] = '.'
	}
	for u >= 100 {
		q := u / 100
		j := (u - q*100) * 2
		i -= 2
		dst[i] = smallsString[j]
		dst[i+1] = smallsString[j+1]
		u = q
	}
	if u >= 10 {
		j := u * 2
		i -= 2
		dst[i] = smallsString[j]
		dst[i+1] = smallsString[j+1]
	} else if u > 0 || intPart == 0 {
		i--
		dst[i] = byte('0' + u)
	}
	return dst
}
