package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"strconv"
	"testing"
)

// FuzzValidateDifferential holds the fast validator and the fast number
// parsers in lockstep with the encoding/json + strconv reference path.
// The seeded corpus (escapes, exponents, NaN/Inf spellings, truncated
// lines) runs in a normal `go test`; `go test -fuzz=FuzzValidate`
// explores beyond it.
func FuzzValidateDifferential(f *testing.F) {
	for _, tc := range validateCases {
		f.Add([]byte(tc))
	}
	for _, tc := range numberCases {
		f.Add([]byte(tc))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		ref := json.Valid(b)
		switch Validate(b) {
		case Valid:
			if !ref {
				t.Fatalf("Validate(%q) = Valid, json.Valid = false", b)
			}
		case Invalid:
			if ref {
				t.Fatalf("Validate(%q) = Invalid, json.Valid = true", b)
			}
		}

		// Number decode: whenever the fast path answers, it must answer
		// with strconv's exact bits.
		if got, ok := ParseFloat(b); ok {
			want, err := strconv.ParseFloat(string(b), 64)
			if err != nil {
				t.Fatalf("ParseFloat(%q) ok but strconv errs: %v", b, err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("ParseFloat(%q): %x vs strconv %x", b, math.Float64bits(got), math.Float64bits(want))
			}
			// And formatting the value back must round-trip exactly.
			s := AppendFloat(nil, got)
			back, err := strconv.ParseFloat(string(s), 64)
			if err != nil || math.Float64bits(back) != math.Float64bits(got) {
				t.Fatalf("AppendFloat(%v) = %q does not round-trip (err %v)", got, s, err)
			}
		}

		// Value rows: a fast-path answer must match the reference decode
		// of the same bytes.
		if v, ok := ParseValueRow(b); ok {
			var ref struct {
				V float64 `json:"v"`
			}
			if err := json.Unmarshal(b, &ref); err != nil {
				t.Fatalf("ParseValueRow(%q) ok but reference errs: %v", b, err)
			}
			if math.Float64bits(v) != math.Float64bits(ref.V) {
				t.Fatalf("ParseValueRow(%q): %v vs reference %v", b, v, ref.V)
			}
		}
		if x, y, ok := ParseLabeledRow(b, nil); ok {
			var ref struct {
				X []float64 `json:"x"`
				Y float64   `json:"y"`
			}
			if err := json.Unmarshal(b, &ref); err != nil {
				t.Fatalf("ParseLabeledRow(%q) ok but reference errs: %v", b, err)
			}
			if len(x) != len(ref.X) || math.Float64bits(y) != math.Float64bits(ref.Y) {
				t.Fatalf("ParseLabeledRow(%q): (%v,%v) vs reference (%v,%v)", b, x, y, ref.X, ref.Y)
			}
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(ref.X[i]) {
					t.Fatalf("ParseLabeledRow(%q): x[%d] %v vs %v", b, i, x[i], ref.X[i])
				}
			}
		}
	})
}

// FuzzBinReader feeds arbitrary bytes to the frame decoder: it must
// never panic, every failure must be a structured *BinError, and every
// decoded row must be finite and renderable as valid JSON.
func FuzzBinReader(f *testing.F) {
	f.Add(AppendFrame(nil, [][]float64{{1}, {0.1, 0.2, 0.3}}))
	f.Add(AppendFrame(AppendFrame(nil, [][]float64{{42.125}}), [][]float64{{1, 2}}))
	f.Add(AppendFrame(nil, [][]float64{{math.MaxFloat64, 5e-324}}))
	f.Add(AppendFrame(nil, [][]float64{{1}})[:5]) // truncated header
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		br := NewBinReader()
		br.Reset(bytes.NewReader(data))
		var buf []byte
		for {
			row, err := br.NextRow()
			if err == io.EOF {
				return
			}
			if err != nil {
				var be *BinError
				if !errors.As(err, &be) {
					t.Fatalf("non-structured decode error: %v", err)
				}
				if be.Frame < 1 || be.Offset < 0 || be.Offset > int64(len(data)) {
					t.Fatalf("BinError position out of range: %+v", be)
				}
				return
			}
			if len(row) == 0 || len(row) > MaxBinRowFloats {
				t.Fatalf("decoded row width %d out of range", len(row))
			}
			buf = AppendRowJSON(buf[:0], row)
			if !json.Valid(buf) {
				t.Fatalf("decoded row %v renders invalid JSON %q", row, buf)
			}
		}
	})
}
