package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"
)

func decodeAll(t *testing.T, data []byte) ([][]float64, error) {
	t.Helper()
	br := NewBinReader()
	br.Reset(bytes.NewReader(data))
	var rows [][]float64
	for {
		row, err := br.NextRow()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, append([]float64(nil), row...))
	}
}

func TestBinRoundTrip(t *testing.T) {
	want := [][]float64{
		{1},
		{-3.25},
		{0.1, 0.2, 0.3},
		{1, 2, 3, 4},
		{math.Copysign(0, -1)},
	}
	// Split across two frames to exercise frame transitions.
	data := AppendFrame(nil, want[:2])
	data = AppendFrame(data, want[2:])
	got, err := decodeAll(t, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("row %d[%d]: bits differ (%v vs %v)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestBinTruncatedHeader(t *testing.T) {
	data := AppendFrame(nil, [][]float64{{1}})
	_, err := decodeAll(t, data[:5])
	var be *BinError
	if !errors.As(err, &be) || be.Frame != 1 || be.Offset != 0 {
		t.Fatalf("want BinError frame=1 offset=0, got %v", err)
	}
}

func TestBinTruncatedPayload(t *testing.T) {
	data := AppendFrame(nil, [][]float64{{1, 2}})
	_, err := decodeAll(t, data[:len(data)-3])
	var be *BinError
	if !errors.As(err, &be) || be.Frame != 1 {
		t.Fatalf("want BinError frame=1, got %v", err)
	}
}

func TestBinCRCMismatch(t *testing.T) {
	data := AppendFrame(nil, [][]float64{{1, 2}})
	data[len(data)-1] ^= 0xFF
	_, err := decodeAll(t, data)
	var be *BinError
	if !errors.As(err, &be) {
		t.Fatalf("want BinError on CRC mismatch, got %v", err)
	}
}

func TestBinSecondFramePosition(t *testing.T) {
	frame1 := AppendFrame(nil, [][]float64{{1}})
	data := AppendFrame(frame1, [][]float64{{2}})
	data[len(data)-1] ^= 0xFF // corrupt second frame only
	rows, err := decodeAll(t, data)
	var be *BinError
	if !errors.As(err, &be) || be.Frame != 2 || be.Offset != int64(len(frame1)) {
		t.Fatalf("want BinError frame=2 offset=%d, got rows=%d err=%v", len(frame1), len(rows), err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows before corrupt frame = %d, want 1", len(rows))
	}
}

func TestBinRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		data := AppendFrame(nil, [][]float64{{v}})
		if _, err := decodeAll(t, data); err == nil {
			t.Errorf("decode accepted non-finite %v", v)
		}
	}
}

func TestBinRejectsZeroWidthRow(t *testing.T) {
	data := AppendFrame(nil, [][]float64{{}})
	if _, err := decodeAll(t, data); err == nil {
		t.Fatal("decode accepted zero-width row")
	}
}

func TestBinRejectsEmptyFrame(t *testing.T) {
	data := AppendFrame(nil, nil) // zero rows
	if _, err := decodeAll(t, data); err == nil {
		t.Fatal("decode accepted zero-row frame")
	}
}

func TestBinRejectsOversizedLength(t *testing.T) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxBinPayloadBytes+1)
	_, err := decodeAll(t, hdr[:])
	var be *BinError
	if !errors.As(err, &be) {
		t.Fatalf("want BinError on oversized length, got %v", err)
	}
}

// errReader fails after yielding its prefix, simulating a body-limit
// error that must surface verbatim (not wrapped as BinError).
type errReader struct {
	data []byte
	err  error
}

func (e *errReader) Read(p []byte) (int, error) {
	if len(e.data) == 0 {
		return 0, e.err
	}
	n := copy(p, e.data)
	e.data = e.data[:0]
	return n, nil
}

func TestBinPropagatesReaderError(t *testing.T) {
	sentinel := errors.New("body limit")
	br := NewBinReader()
	br.Reset(&errReader{data: AppendFrame(nil, [][]float64{{1}})[:4], err: sentinel})
	_, err := br.NextRow()
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
}

// frameItemsAll drains a stream through NextFrameItems, recording each
// frame's retained flag.
func frameItemsAll(t *testing.T, data []byte) ([][]byte, []bool, error) {
	t.Helper()
	br := NewBinReader()
	br.Reset(bytes.NewReader(data))
	var items [][]byte
	var flags []bool
	for {
		var retained bool
		var err error
		items, retained, err = NextFrameItems(br, items)
		if err == io.EOF {
			return items, flags, nil
		}
		flags = append(flags, retained)
		if err != nil {
			return items, flags, err
		}
	}
}

func TestNextFrameItemsRetainedOwnership(t *testing.T) {
	rows := [][]float64{{1}, {2, 3}, {4, 5, 6}}
	data := AppendFrame(nil, rows[:1])
	data = AppendFrame(data, rows[1:])
	items, flags, err := frameItemsAll(t, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(items) != 3 || len(flags) != 2 {
		t.Fatalf("items=%d flags=%v, want 3 items over 2 frames", len(items), flags)
	}
	for i, retained := range flags {
		if !retained {
			t.Fatalf("frame %d: retained=false for a small frame", i+1)
		}
	}
	// Ownership transferred: items from frame 1 must still hold their
	// original bytes after frame 2 was read into (what would otherwise
	// be) the recycled payload buffer.
	for i, row := range rows {
		want := AppendFrame(nil, rows[i:i+1])[binHeaderSize+1:] // skip header + row-count varint
		if !bytes.Equal(items[i], want) {
			t.Fatalf("item %d = % x, want % x (row %v)", i, items[i], want, row)
		}
	}
	// Each item must be self-describing from its first byte.
	for i, it := range items {
		if it[0] < 0x80 {
			t.Fatalf("item %d first byte %#02x < 0x80", i, it[0])
		}
	}
}

func TestNextFrameItemsLargeFrameNotRetained(t *testing.T) {
	// One frame whose payload exceeds MaxRetainedFrameBytes: rows must
	// still decode, but retained=false tells the caller to copy.
	wide := make([]float64, MaxBinRowFloats)
	rows := make([][]float64, 0, MaxRetainedFrameBytes/(MaxBinRowFloats*8)+2)
	for len(rows)*(BinRowHeaderSize+MaxBinRowFloats*8) <= MaxRetainedFrameBytes {
		rows = append(rows, wide)
	}
	data := AppendFrame(nil, rows)
	items, flags, err := frameItemsAll(t, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(flags) != 1 || flags[0] {
		t.Fatalf("flags=%v, want one non-retained frame", flags)
	}
	if len(items) != len(rows) {
		t.Fatalf("items=%d, want %d", len(items), len(rows))
	}
}

func TestNextFrameItemsMidFrameError(t *testing.T) {
	// Two good rows, then a row whose header claims more floats than the
	// payload holds. The good rows must be returned alongside the error.
	good := AppendFrame(nil, [][]float64{{1}, {2}, {3}})
	// Rewrite the last row's header to overrun: count 0x7f|0x80, 0x01 →
	// 255 floats.
	good[len(good)-10] = 0xff
	good[len(good)-9] = 0x01
	// Fix up the CRC so the frame itself is accepted.
	binary.LittleEndian.PutUint32(good[4:], crc32Of(good[binHeaderSize:]))
	items, _, err := frameItemsAll(t, good)
	var be *BinError
	if !errors.As(err, &be) || be.Frame != 1 {
		t.Fatalf("want BinError frame=1, got %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("good rows before the bad one = %d, want 2", len(items))
	}
}

func crc32Of(p []byte) uint32 { return crc32.Checksum(p, binCRCTable) }

func TestBinReaderReuse(t *testing.T) {
	br := NewBinReader()
	data := AppendFrame(nil, [][]float64{{1, 2, 3}})
	for i := 0; i < 3; i++ {
		br.Reset(bytes.NewReader(data))
		row, err := br.NextRow()
		if err != nil || len(row) != 3 {
			t.Fatalf("iter %d: row=%v err=%v", i, row, err)
		}
		if _, err := br.NextRow(); err != io.EOF {
			t.Fatalf("iter %d: want io.EOF, got %v", i, err)
		}
	}
}
