package wire

import (
	"encoding/json"
	"math"
	"testing"
)

func TestParseValueRow(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{`{"v":1}`, 1, true},
		{`{"v":-3.25}`, -3.25, true},
		{` { "v" : 0.001 } `, 0.001, true},
		{`{"v":0}`, 0, true},
		{`{"v":-0}`, math.Copysign(0, -1), true},
		{`{"v":1,"tag":"a"}`, 0, false}, // extra member → fallback
		{`{"w":1}`, 0, false},
		{`{"v":1e99}`, 0, false}, // out of fast range → fallback
		{`{"v":}`, 0, false},
		{`[1]`, 0, false},
		{``, 0, false},
	} {
		got, ok := ParseValueRow([]byte(tc.in))
		if ok != tc.ok {
			t.Errorf("ParseValueRow(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if ok && math.Float64bits(got) != math.Float64bits(tc.want) {
			t.Errorf("ParseValueRow(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseLabeledRowMatchesJSON(t *testing.T) {
	inputs := []string{
		`{"x":[1,2,3],"y":4}`,
		`{"x":[],"y":0}`,
		`{"x":[-1.5e2, 0.25],"y":-9}`,
		` { "x" : [ 1 , 2 ] , "y" : 3 } `,
		`{"x":[0.001],"y":98.765432}`,
	}
	var scratch []float64
	for _, in := range inputs {
		var x []float64
		var y float64
		var ok bool
		x, y, ok = ParseLabeledRow([]byte(in), scratch)
		scratch = x
		if !ok {
			t.Fatalf("ParseLabeledRow(%q) declined", in)
		}
		var ref struct {
			X []float64 `json:"x"`
			Y float64   `json:"y"`
		}
		if err := json.Unmarshal([]byte(in), &ref); err != nil {
			t.Fatalf("reference unmarshal(%q): %v", in, err)
		}
		if len(x) != len(ref.X) || math.Float64bits(y) != math.Float64bits(ref.Y) {
			t.Fatalf("ParseLabeledRow(%q) = (%v, %v), ref (%v, %v)", in, x, y, ref.X, ref.Y)
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(ref.X[i]) {
				t.Fatalf("ParseLabeledRow(%q) x[%d] = %v, ref %v", in, i, x[i], ref.X[i])
			}
		}
	}
}

func TestParseLabeledRowFallbacks(t *testing.T) {
	for _, in := range []string{
		`{"y":4,"x":[1]}`,         // non-canonical key order
		`{"x":[1],"y":2,"z":3}`,   // extra member
		`{"x":[1],"y":1e99}`,      // out of fast range
		`{"x":[1]}`,               // missing y
		`{"x":[1],"y":}`,          // malformed
		`{"x":1,"y":2}`,           // x not an array
		`{"x":["a"],"y":2}`,       // non-number feature
		`{"x":[1],"y":2} trailer`, // trailing junk
	} {
		if _, _, ok := ParseLabeledRow([]byte(in), nil); ok {
			t.Errorf("ParseLabeledRow(%q) ok, want decline", in)
		}
	}
}

func TestAppendRowJSON(t *testing.T) {
	for _, tc := range []struct {
		vals []float64
		want string
	}{
		{[]float64{7}, `{"v":7}`},
		{[]float64{-3.25}, `{"v":-3.25}`},
		{[]float64{1, 2, 3}, `{"x":[1,2],"y":3}`},
		{[]float64{0.5, 4}, `{"x":[0.5],"y":4}`},
		{nil, ""},
	} {
		if got := string(AppendRowJSON(nil, tc.vals)); got != tc.want {
			t.Errorf("AppendRowJSON(%v) = %q, want %q", tc.vals, got, tc.want)
		}
	}
}

// TestRowJSONRoundTrip closes the loop the binary path relies on:
// rendering a row and re-parsing it must reproduce the floats exactly.
func TestRowJSONRoundTrip(t *testing.T) {
	rows := [][]float64{
		{1}, {-0.001}, {98.765432}, {1e300},
		{1, 2, 3}, {0.1, 0.2, 0.3}, {1.0 / 3.0, math.MaxFloat64, 5e-324},
	}
	var buf []byte
	for _, row := range rows {
		buf = AppendRowJSON(buf[:0], row)
		if !json.Valid(buf) {
			t.Fatalf("AppendRowJSON(%v) = %q: invalid JSON", row, buf)
		}
		var got []float64
		if len(row) == 1 {
			var ref struct {
				V float64 `json:"v"`
			}
			if err := json.Unmarshal(buf, &ref); err != nil {
				t.Fatalf("unmarshal %q: %v", buf, err)
			}
			got = []float64{ref.V}
		} else {
			var ref struct {
				X []float64 `json:"x"`
				Y float64   `json:"y"`
			}
			if err := json.Unmarshal(buf, &ref); err != nil {
				t.Fatalf("unmarshal %q: %v", buf, err)
			}
			got = append(ref.X, ref.Y)
		}
		if len(got) != len(row) {
			t.Fatalf("round trip %v → %q → %v: length", row, buf, got)
		}
		for i := range row {
			if math.Float64bits(got[i]) != math.Float64bits(row[i]) {
				t.Fatalf("round trip %v → %q → %v: bits differ at %d", row, buf, got, i)
			}
		}
	}
}
