package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// All benchmarks here match `-bench=Wire` for the CI micro-bench smoke.

func benchBody(lines int) []byte {
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		sb.WriteString(`{"v":`)
		sb.Write(AppendFloat(nil, float64(i%1000)+0.125))
		sb.WriteString("}\n")
	}
	return []byte(sb.String())
}

func BenchmarkWireValidate(b *testing.B) {
	line := []byte(`{"sensor":12,"v":98.765,"tag":"s-12"}`)
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Validate(line) != Valid {
			b.Fatal("verdict")
		}
	}
}

func BenchmarkWireJSONValidReference(b *testing.B) {
	line := []byte(`{"sensor":12,"v":98.765,"tag":"s-12"}`)
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !json.Valid(line) {
			b.Fatal("verdict")
		}
	}
}

func BenchmarkWireParseValueRow(b *testing.B) {
	line := []byte(`{"v":98.765}`)
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ParseValueRow(line); !ok {
			b.Fatal("declined")
		}
	}
}

func BenchmarkWireParseLabeledRow(b *testing.B) {
	line := []byte(`{"x":[1.5,2.25,3.125,4.5],"y":0.25}`)
	var x []float64
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ok bool
		if x, _, ok = ParseLabeledRow(line, x); !ok {
			b.Fatal("declined")
		}
	}
}

func BenchmarkWireLineScan(b *testing.B) {
	body := benchBody(4096)
	lr := NewLineReader(0)
	src := bytes.NewReader(body)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Reset(body)
		lr.Reset(src)
		for {
			line, _, err := lr.Next()
			if err != nil {
				break
			}
			if Validate(TrimSpace(line)) != Valid {
				b.Fatal("verdict")
			}
		}
	}
}

func BenchmarkWireBinDecode(b *testing.B) {
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = []float64{float64(i) + 0.125}
	}
	data := AppendFrame(nil, rows)
	br := NewBinReader()
	src := bytes.NewReader(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Reset(data)
		br.Reset(src)
		for {
			if _, err := br.NextRow(); err != nil {
				break
			}
		}
	}
}

func BenchmarkWireAppendFloat(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFloat(buf[:0], 98.765432)
	}
	_ = buf
}

func BenchmarkWireAppendRowJSON(b *testing.B) {
	row := []float64{1.5, 2.25, 3.125, 0.25}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRowJSON(buf[:0], row)
	}
	_ = buf
}
