package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

// validateCases is shared with the fuzz seed corpus: every shape the
// fast validator must judge definitively, plus the ones that must bail.
var validateCases = []string{
	// Scalars.
	`1`, `0`, `-0`, `-1`, `3.25`, `-3.25`, `0.001`, `1e3`, `1E+3`, `6.02e-23`,
	`true`, `false`, `null`, `"plain"`, `""`, `"héllo"`,
	// Canonical ingest rows.
	`{"v":1}`, `{"v":-3.25}`, `{"v":1.0e2}`, ` { "v" : 7 } `,
	`{"x":[1,2,3],"y":4}`, `{"x":[],"y":0}`, `{"x":[-1.5e2, 0.25],"y":-9}`,
	// General objects/arrays.
	`{}`, `[]`, `[1,2,3]`, `{"a":{"b":[true,null]}}`, `[[[[1]]]]`,
	`{"sensor":12,"v":0.5,"tag":"s-1"}`,
	// Invalid shapes.
	``, ` `, `{`, `}`, `[1,`, `[1,]`, `{"a":}`, `{"a":1,}`, `{a:1}`, `{"a" 1}`,
	`01`, `1.`, `.5`, `+1`, `1e`, `1e+`, `--1`, `1 2`, `"unterminated`,
	`nul`, `tru`, `falsey`, `NaN`, `Infinity`, `-Infinity`, `nan`,
	`{"v":NaN}`, `{"v":Infinity}`, `{"v":1}}`, `[1,2`, "\"ctrl\x01char\"",
	// Truncations of valid inputs.
	`{"v":`, `{"x":[1,2`, `{"x":[1],"y"`, `{"v`,
	// Escapes and exotica: must be Unknown (fall back), never wrong.
	`"a\nb"`, `"A"`, `"\\"`, `{"k\t":1}`, `{"a":"b\"c"}`, `"bad\q"`,
}

func TestValidateDifferential(t *testing.T) {
	for _, tc := range validateCases {
		b := []byte(tc)
		got := Validate(b)
		want := json.Valid(b)
		switch got {
		case Valid:
			if !want {
				t.Errorf("Validate(%q) = Valid, json.Valid = false", tc)
			}
		case Invalid:
			if want {
				t.Errorf("Validate(%q) = Invalid, json.Valid = true", tc)
			}
		}
	}
}

func TestValidateEscapesAreUnknown(t *testing.T) {
	for _, tc := range []string{`"a\nb"`, `{"k\t":1}`, `"bad\q"`} {
		if got := Validate([]byte(tc)); got != Unknown {
			t.Errorf("Validate(%q) = %d, want Unknown", tc, got)
		}
	}
}

func TestValidateDeepNestingIsUnknown(t *testing.T) {
	deep := strings.Repeat("[", maxFastDepth+1) + strings.Repeat("]", maxFastDepth+1)
	if got := Validate([]byte(deep)); got != Unknown {
		t.Fatalf("Validate(deep) = %d, want Unknown", got)
	}
	shallow := strings.Repeat("[", maxFastDepth) + strings.Repeat("]", maxFastDepth)
	if got := Validate([]byte(shallow)); got != Valid {
		t.Fatalf("Validate(shallow) = %d, want Valid", got)
	}
}
