// Package wal is the per-server write-ahead log closing tbsd's
// crash-window data-loss hole: every acknowledged state transition
// (ingest chunk, batch boundary, model attach/detach, RNG-consuming
// sample read) is appended to an append-only, length-prefixed,
// CRC32-framed segment log and made durable before the acknowledgement,
// so a kill -9 loses at most the last un-fsynced group instead of up to a
// full checkpoint interval.
//
// Layout: the log is a directory of segment files named by the LSN of
// their first record (0000000000000001.wal, …). Records carry explicit,
// strictly sequential LSNs; a torn tail in the newest segment (the
// expected artifact of a crash mid-write) is detected by the framing and
// truncated on open, while corruption anywhere else fails loudly.
//
// Durability is policy-driven: "always" fsyncs every append, "off" never
// fsyncs (the OS page cache still survives a process kill, only power
// loss leaks), and "group" — the default — batches concurrent appenders
// behind one fsync: an appender writes its record under the append lock,
// then waits on the group-commit path where a single leader syncs the
// file and releases every waiter whose record the sync covered. The
// snapshot checkpointer is the log's compaction step: once a stream's
// state through LSN n is durably checkpointed, segments wholly below the
// minimum such n across streams are deleted (streams with no live
// records — snapshot already covering their newest journaled LSN — are
// excluded from that minimum, so idle tenants cannot pin the log).
//
// Besides boot-time Replay, the log serves targeted tails: TailForKey
// collects one stream's records after a given LSN, skipping sealed
// segments wholly below the cutoff. Stream handoff ships such a tail to
// the adopting node, and memory tiering replays one on every cold-hit
// rehydration — which is why compaction hygiene directly bounds cold-hit
// latency.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Fsync policies.
const (
	SyncGroup  = "group"  // one fsync covers every record written since the last
	SyncAlways = "always" // fsync under the append lock, per record
	SyncOff    = "off"    // never fsync; durability = OS page cache
)

// ErrPoisoned is returned by Append/Sync after a write or sync error has
// poisoned the log. Journaling stops at the first error so the log stays
// a consistent prefix of the operation sequence — replay then converges
// to the exact state at the poison point, and the snapshot checkpointer
// remains the backstop for everything after it.
var ErrPoisoned = errors.New("wal: log poisoned by an earlier write error")

const (
	segmentSuffix              = ".wal"
	defaultSegmentBytes        = 64 << 20
	firstLSN            uint64 = 1
)

// Options configures Open.
type Options struct {
	// Dir is the segment directory; created if missing.
	Dir string
	// Fsync is the durability policy: SyncGroup (default), SyncAlways or
	// SyncOff.
	Fsync string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64MB).
	SegmentBytes int64
}

func (o *Options) setDefaults() error {
	if o.Dir == "" {
		return errors.New("wal: Dir is required")
	}
	if o.Fsync == "" {
		o.Fsync = SyncGroup
	}
	switch o.Fsync {
	case SyncGroup, SyncAlways, SyncOff:
	default:
		return fmt.Errorf("wal: unknown fsync policy %q (want group, always or off)", o.Fsync)
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	return nil
}

// segment is one on-disk segment file.
type segment struct {
	path  string
	first uint64 // LSN of the first record (records are sequential)
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Records           uint64 // records appended this process
	Bytes             uint64 // frame bytes appended this process
	Fsyncs            uint64
	AppendErrors      uint64
	Segments          int
	TruncatedSegments uint64 // segments removed by compaction
	LastLSN           uint64
	SyncedLSN         uint64

	FsyncCount int
	FsyncMean  float64
	FsyncStd   float64
	FsyncP50   float64
	FsyncP95   float64
	FsyncP99   float64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	opts Options

	// mu serializes LSN assignment, frame writes and rotation, so the
	// on-disk record order is exactly the order appenders acquired the
	// lock in — which the server aligns with its per-stream apply order.
	mu       sync.Mutex
	f        *os.File
	segments []segment
	segSize  int64
	nextLSN  uint64
	written  uint64 // highest LSN handed to the OS
	poisoned error

	// Group-commit state: syncMu guards syncedLSN and the single-leader
	// flag; waiters park on cond until a leader's fsync covers their LSN.
	syncMu  sync.Mutex
	cond    *sync.Cond
	synced  uint64
	syncing bool

	// Counters (guarded by mu except the fsync ring, under syncMu).
	records      uint64
	bytes        uint64
	fsyncs       uint64
	appendErrors uint64
	truncated    uint64
	fsyncW       metrics.Welford
	fsyncWin     *metrics.RotatingWindow // recent fsync latencies (under syncMu)
}

// Open scans dir, truncates any torn tail off the newest segment, and
// positions the log for appending. Call Replay before the first Append to
// drive recovery.
func Open(opts Options) (*Log, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{opts: opts, segments: segs, nextLSN: firstLSN}
	l.cond = sync.NewCond(&l.syncMu)
	l.fsyncWin = metrics.NewRotatingWindow(0, 0)
	if len(segs) == 0 {
		if err := l.openSegment(firstLSN); err != nil {
			return nil, err
		}
		l.synced = 0
		return l, nil
	}
	last := segs[len(segs)-1]
	validEnd, lastLSN, err := scanSegment(last.path, last.first, true)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if fi.Size() > validEnd {
		// Torn tail from a crash mid-write: drop the partial frame so the
		// next append starts on a clean boundary.
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.segSize = validEnd
	l.nextLSN = lastLSN + 1
	l.written = lastLSN
	// Everything already on disk predates this process; treat it as
	// synced (a crash cannot lose it to our buffers).
	l.synced = lastLSN
	return l, nil
}

func segmentName(first uint64) string {
	return fmt.Sprintf("%016x%s", first, segmentSuffix)
}

func listSegments(dir string) ([]segment, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue // foreign file
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// openSegment creates a fresh active segment whose first record will be
// lsn.
func (l *Log) openSegment(lsn uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(lsn)),
		os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segSize = 0
	l.segments = append(l.segments, segment{path: f.Name(), first: lsn})
	return nil
}

// scanSegment walks a segment's frames, returning the byte offset after
// the last valid record and that record's LSN (first-1 when the segment
// is empty). With tolerateTail true a framing/CRC error is treated as the
// end of the log (the expected crash artifact); otherwise it is returned.
func scanSegment(path string, first uint64, tolerateTail bool) (validEnd int64, lastLSN uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	lastLSN = first - 1
	expect := first
	for {
		payload, frameLen, rerr := readFrame(br)
		if rerr == io.EOF {
			return validEnd, lastLSN, nil
		}
		if rerr != nil {
			if tolerateTail {
				return validEnd, lastLSN, nil
			}
			return validEnd, lastLSN, fmt.Errorf("wal: %s at offset %d: %w", path, validEnd, rerr)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil || rec.LSN != expect {
			if tolerateTail {
				return validEnd, lastLSN, nil
			}
			if derr == nil {
				derr = fmt.Errorf("wal: %s: LSN %d where %d expected", path, rec.LSN, expect)
			}
			return validEnd, lastLSN, derr
		}
		validEnd += frameLen
		lastLSN = rec.LSN
		expect++
	}
}

// readFrame reads one [len][crc][payload] frame. io.EOF means a clean end
// of segment; every other error means a torn or corrupt frame.
func readFrame(br *bufio.Reader) (payload []byte, frameLen int64, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("torn frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxPayloadBytes {
		return nil, 0, fmt.Errorf("implausible frame length %d", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, fmt.Errorf("torn frame payload: %w", err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(hdr[4:]); got != want {
		return nil, 0, fmt.Errorf("frame CRC mismatch (got %08x, want %08x)", got, want)
	}
	return payload, frameHeaderSize + int64(n), nil
}

// Replay streams every record on disk, in LSN order, through fn. It is
// meant to run once, after Open and before the first Append; fn errors
// abort the replay. A torn tail in the newest segment ends the replay
// cleanly; corruption in any older segment (or mid-segment) is an error —
// silently skipping acknowledged records would be worse than failing
// boot.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for i, seg := range segs {
		lastSeg := i == len(segs)-1
		f, err := os.Open(seg.path)
		if err != nil {
			return err
		}
		br := bufio.NewReaderSize(f, 1<<20)
		expect := seg.first
		for {
			payload, _, rerr := readFrame(br)
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				f.Close()
				if lastSeg {
					return nil // torn tail, already truncated by Open
				}
				return fmt.Errorf("wal: %s: %w", seg.path, rerr)
			}
			rec, derr := decodeRecord(payload)
			if derr != nil || rec.LSN != expect {
				f.Close()
				if lastSeg {
					return nil
				}
				if derr == nil {
					derr = fmt.Errorf("LSN %d where %d expected", rec.LSN, expect)
				}
				return fmt.Errorf("wal: %s: %w", seg.path, derr)
			}
			if err := fn(rec); err != nil {
				f.Close()
				return err
			}
			expect++
		}
		f.Close()
	}
	return nil
}

// TailForKey returns every record for key with LSN > afterLSN, in LSN
// order — the migration export: a stream handoff ships the stream's
// checkpoint envelope plus this tail, so the target can replay anything
// the envelope's WalLSN does not cover. Stream rehydration replays the
// same tail on a cold hit, so the scan skips whole segments the afterLSN
// already covers — for a freshly-checkpointed stream only the records
// appended since its eviction are decoded, not the entire log. It scans
// like Replay but may run on a live log; a torn or half-written frame at
// the very tail (a concurrent append in flight) ends the scan cleanly,
// which is safe because the caller has frozen the exported stream —
// records still being written belong to other keys.
func (l *Log) TailForKey(key string, afterLSN uint64) ([]Record, error) {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	newest := l.nextLSN - 1
	l.mu.Unlock()
	if afterLSN >= newest {
		// The caller has already seen every record in the log.
		return nil, nil
	}
	var out []Record
	for i, seg := range segs {
		lastSeg := i == len(segs)-1
		if !lastSeg && segs[i+1].first <= afterLSN+1 {
			// A sealed segment's records end where the next begins; all of
			// this one's LSNs are ≤ afterLSN, so nothing in it can match.
			continue
		}
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, err
		}
		br := bufio.NewReaderSize(f, 1<<20)
		expect := seg.first
		for {
			payload, _, rerr := readFrame(br)
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				f.Close()
				if lastSeg {
					return out, nil
				}
				return nil, fmt.Errorf("wal: %s: %w", seg.path, rerr)
			}
			rec, derr := decodeRecord(payload)
			if derr != nil || rec.LSN != expect {
				f.Close()
				if lastSeg {
					return out, nil
				}
				if derr == nil {
					derr = fmt.Errorf("LSN %d where %d expected", rec.LSN, expect)
				}
				return nil, fmt.Errorf("wal: %s: %w", seg.path, derr)
			}
			if rec.Key == key && rec.LSN > afterLSN {
				out = append(out, rec)
			}
			expect++
		}
		f.Close()
	}
	return out, nil
}

// AppendItems journals one item-append record. The generic item type
// (anything backed by []byte, e.g. json.RawMessage) lets the server pass
// its batch slices without a per-call conversion allocation.
//
//tbs:zeroalloc
func AppendItems[T ~[]byte](l *Log, key string, items []T) (uint64, error) {
	bufp := encBufPool.Get().(*[]byte)
	buf := appendFrameHeader((*bufp)[:0])
	// The LSN is assigned under the append lock, but the varint must be
	// encoded before the frame is finished — so encode the whole payload
	// with a placeholder-free layout by locking first.
	l.mu.Lock()
	if err := l.poisoned; err != nil {
		l.mu.Unlock()
		encBufPool.Put(bufp)
		return 0, err
	}
	lsn := l.nextLSN
	buf = appendPayloadHeader(buf, lsn, TypeItemAppend, key)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(len(it)))
		buf = append(buf, it...)
	}
	buf = finishFrame(buf, 0)
	err := l.appendLocked(buf)
	l.mu.Unlock()
	*bufp = buf[:0]
	encBufPool.Put(bufp)
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendRecord journals one record of any non-item type with an opaque
// body.
//
//tbs:zeroalloc
func (l *Log) AppendRecord(t Type, key string, data []byte) (uint64, error) {
	bufp := encBufPool.Get().(*[]byte)
	buf := appendFrameHeader((*bufp)[:0])
	l.mu.Lock()
	if err := l.poisoned; err != nil {
		l.mu.Unlock()
		encBufPool.Put(bufp)
		return 0, err
	}
	lsn := l.nextLSN
	buf = appendPayloadHeader(buf, lsn, t, key)
	buf = append(buf, data...)
	buf = finishFrame(buf, 0)
	err := l.appendLocked(buf)
	l.mu.Unlock()
	*bufp = buf[:0]
	encBufPool.Put(bufp)
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

// appendLocked writes one finished frame, handling rotation, the
// always-fsync policy and poisoning. Caller holds l.mu.
func (l *Log) appendLocked(frame []byte) error {
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.poison(err)
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		// A short write leaves a torn frame at the tail; poisoning stops
		// all journaling here so the valid prefix stays the recovery
		// point.
		l.poison(err)
		return err
	}
	l.segSize += int64(len(frame))
	l.written = l.nextLSN
	l.nextLSN++
	l.records++
	l.bytes += uint64(len(frame))
	if l.opts.Fsync == SyncAlways {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			l.poison(err)
			return err
		}
		l.observeFsync(time.Since(start), l.written)
	}
	return nil
}

// rotateLocked seals the active segment (fsyncing it unless the policy is
// off — a sealed segment must never lose acknowledged records to a later
// power cut) and opens the next one.
func (l *Log) rotateLocked() error {
	if l.opts.Fsync != SyncOff {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.observeFsync(time.Since(start), l.written)
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(l.nextLSN)
}

// poison records the first fatal error; all later appends fail fast with
// ErrPoisoned so the on-disk log stays a consistent prefix.
func (l *Log) poison(err error) {
	l.appendErrors++
	if l.poisoned == nil {
		l.poisoned = fmt.Errorf("%w (first error: %v)", ErrPoisoned, err)
	}
}

// observeFsync folds one fsync latency into the stats and advances the
// durable watermark.
func (l *Log) observeFsync(d time.Duration, upto uint64) {
	l.syncMu.Lock()
	l.fsyncs++
	s := d.Seconds()
	l.fsyncW.Add(s)
	l.fsyncWin.Add(time.Now(), s)
	if upto > l.synced {
		l.synced = upto
	}
	l.cond.Broadcast()
	l.syncMu.Unlock()
}

// Sync blocks until the record at lsn is durable under the configured
// policy. Under "group" the first waiter becomes the fsync leader for
// everything written so far; concurrent waiters whose records that sync
// covers return without issuing their own — the group commit that keeps
// fsync count per acknowledged request well below one under load.
func (l *Log) Sync(lsn uint64) error {
	if l.opts.Fsync == SyncOff {
		// Never durable beyond the page cache, by configuration.
		return nil
	}
	// Under "always" the append already fsynced, so the loop below returns
	// without electing a leader; only "group" waiters ever sync here.
	l.syncMu.Lock()
	for l.synced < lsn {
		if !l.syncing {
			l.syncing = true
			l.syncMu.Unlock()

			l.mu.Lock()
			err := l.poisoned
			target := l.written
			f := l.f
			l.mu.Unlock()
			if err != nil {
				l.syncMu.Lock()
				l.syncing = false
				l.cond.Broadcast()
				l.syncMu.Unlock()
				return err
			}
			start := time.Now()
			serr := f.Sync()
			if errors.Is(serr, os.ErrClosed) {
				// The handle was captured outside the append lock, and a
				// rotation (or Close) sealed that segment in between.
				// Rotation fsyncs the old file before closing it and
				// advances the durable watermark, so nothing is lost —
				// loop and re-check instead of poisoning on the stale
				// handle (a genuinely closed log surfaces ErrPoisoned at
				// the next leader election).
				l.syncMu.Lock()
				l.syncing = false
				l.cond.Broadcast()
				continue
			}
			if serr != nil {
				l.mu.Lock()
				l.poison(serr)
				l.mu.Unlock()
				l.syncMu.Lock()
				l.syncing = false
				l.cond.Broadcast()
				l.syncMu.Unlock()
				return serr
			}
			l.observeFsync(time.Since(start), target)
			l.syncMu.Lock()
			l.syncing = false
			l.cond.Broadcast()
			continue
		}
		// A leader is in flight: wait it out, then re-check coverage. If
		// the leader failed (poisoned the log), the next trip around the
		// loop elects this waiter leader and it returns the error itself —
		// never touch l.mu here, it is taken while holding syncMu's
		// counterpart on the append path.
		l.cond.Wait()
	}
	l.syncMu.Unlock()
	return nil
}

// LastLSN returns the highest LSN appended (0 before the first append).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// TruncateBefore removes segments every record of which has LSN < lsn —
// the compaction step driven by a completed checkpoint pass. The active
// segment is never removed. Returns the number of segments deleted.
func (l *Log) TruncateBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) > 1 {
		// A segment's records end where the next segment begins.
		if l.segments[1].first > lsn {
			break
		}
		if err := os.Remove(l.segments[0].path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, err
		}
		l.segments = l.segments[1:]
		removed++
		l.truncated++
	}
	// When even the active segment is wholly below the watermark, seal it
	// and drop it too: otherwise a long-lived active segment (64MB by
	// default) pins every compacted record on disk, and tail scans —
	// handoff export, cold-miss rehydration — keep re-decoding traffic
	// that every checkpoint has already made redundant.
	if len(l.segments) == 1 && l.f != nil && l.poisoned == nil &&
		l.nextLSN > l.segments[0].first && l.nextLSN <= lsn {
		if err := l.rotateLocked(); err != nil {
			// Same contract as a rotation failing under append: the log's
			// file state is no longer coherent, so stop journaling here.
			l.poison(err)
			return removed, err
		}
		if err := os.Remove(l.segments[0].path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, err
		}
		l.segments = l.segments[1:]
		removed++
		l.truncated++
	}
	return removed, nil
}

// Close seals the log: a final fsync (per policy) and file close. Appends
// after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.opts.Fsync != SyncOff && l.poisoned == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.poison(errors.New("log closed"))
	return err
}

// Stats snapshots the log's counters, including fsync latency quantiles
// over the recent window.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		Records:           l.records,
		Bytes:             l.bytes,
		AppendErrors:      l.appendErrors,
		Segments:          len(l.segments),
		TruncatedSegments: l.truncated,
		LastLSN:           l.written,
	}
	l.mu.Unlock()
	l.syncMu.Lock()
	st.Fsyncs = l.fsyncs
	st.SyncedLSN = l.synced
	st.FsyncCount = l.fsyncW.N()
	st.FsyncMean = l.fsyncW.Mean()
	st.FsyncStd = l.fsyncW.Std()
	// Quantiles cover a rotating recent window, not process lifetime —
	// a disk that got slow shows up in p99 within a window interval.
	win := l.fsyncWin.AppendSnapshot(time.Now(), nil)
	l.syncMu.Unlock()
	q := func(p float64) float64 {
		if len(win) == 0 {
			return 0
		}
		v, err := metrics.Quantile(win, p)
		if err != nil {
			return 0
		}
		return v
	}
	st.FsyncP50, st.FsyncP95, st.FsyncP99 = q(0.50), q(0.95), q(0.99)
	return st
}
