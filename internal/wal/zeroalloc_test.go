//go:build !race

package wal

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestWALAppendZeroAlloc extends the ingest pipeline's steady-state
// allocation contract (core.TestIngestHotPathZeroAlloc) through the
// journaling stage: encoding and writing an item-append record reuses the
// pooled encode buffer, so a WAL-enabled hot path still costs zero
// allocations per operation once buffers have warmed. (Excluded under
// -race: the detector's instrumentation perturbs allocation accounting.)
func TestWALAppendZeroAlloc(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const batch = 256
	items := make([]json.RawMessage, batch)
	for i := range items {
		items[i] = json.RawMessage(fmt.Sprintf(`{"sensor":%d,"v":%d}`, i%64, i))
	}
	// Warm the pooled encode buffer up to the record size.
	for i := 0; i < 8; i++ {
		if _, err := AppendItems(l, "hot-stream", items); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := AppendItems(l, "hot-stream", items); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state WAL append allocates %.2f times per record, want 0", avg)
	}

	// The boundary record path shares the contract.
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := l.AppendRecord(TypeBatchBoundary, "hot-stream", nil); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state boundary append allocates %.2f times per record, want 0", avg)
	}
}
