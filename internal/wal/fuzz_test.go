package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: it must
// return a record or an error, never panic, and an accepted item-append
// must re-encode to an equivalent record (no silent reinterpretation).
func FuzzDecodeRecord(f *testing.F) {
	// Seed with valid payloads of every type.
	seed := func(lsn uint64, t Type, key string, body func([]byte) []byte) {
		buf := appendPayloadHeader(nil, lsn, t, key)
		if body != nil {
			buf = body(buf)
		}
		f.Add(buf)
	}
	seed(1, TypeItemAppend, "k", func(b []byte) []byte {
		b = binary.AppendUvarint(b, 2)
		for _, it := range [][]byte{[]byte(`{"a":1}`), []byte(`7`)} {
			b = binary.AppendUvarint(b, uint64(len(it)))
			b = append(b, it...)
		}
		return b
	})
	seed(2, TypeBatchBoundary, "stream", nil)
	seed(3, TypeModelAttach, "m", func(b []byte) []byte {
		return append(b, `{"learner":"knn"}`...)
	})
	seed(4, TypeStreamDelete, "gone", nil)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		if rec.Type < TypeItemAppend || rec.Type > TypeSampleRead {
			t.Fatalf("decoder accepted unknown type %d", rec.Type)
		}
		if rec.Type == TypeItemAppend {
			// Accepted records must survive a re-encode/decode round trip.
			buf := appendPayloadHeader(nil, rec.LSN, rec.Type, rec.Key)
			buf = binary.AppendUvarint(buf, uint64(len(rec.Items)))
			for _, it := range rec.Items {
				buf = binary.AppendUvarint(buf, uint64(len(it)))
				buf = append(buf, it...)
			}
			rec2, err := decodeRecord(buf)
			if err != nil {
				t.Fatalf("re-encode of accepted record fails to decode: %v", err)
			}
			if rec2.LSN != rec.LSN || rec2.Key != rec.Key || len(rec2.Items) != len(rec.Items) {
				t.Fatalf("round trip diverged: %+v vs %+v", rec, rec2)
			}
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame scanner: it
// must yield frames or errors, never panic, and must only accept a frame
// whose CRC matches.
func FuzzReadFrame(f *testing.F) {
	valid := appendFrameHeader(nil)
	valid = appendPayloadHeader(valid, 1, TypeBatchBoundary, "k")
	valid = finishFrame(valid, 0)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // torn tail
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		offset := 0
		for {
			payload, n, err := readFrame(br)
			if err != nil {
				return // io.EOF or a framing error; both fine
			}
			// The scanner claimed this frame is intact: verify the CRC
			// really covers what it returned.
			if offset+frameHeaderSize > len(data) {
				t.Fatal("frame accepted beyond the input")
			}
			want := binary.LittleEndian.Uint32(data[offset+4:])
			if crc32.Checksum(payload, crcTable) != want {
				t.Fatal("accepted frame fails its own CRC")
			}
			offset += int(n)
		}
	})
}
