package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// Type tags one WAL record. The set mirrors the server's durable state
// transitions: everything the server acknowledges to a client (or lets a
// client observe, in the case of RNG-consuming sample reads) is journaled
// as exactly one of these before the acknowledgement goes out.
type Type uint8

const (
	// TypeItemAppend carries items accepted into a stream's open batch.
	TypeItemAppend Type = 1
	// TypeBatchBoundary marks one closed batch boundary for a stream; the
	// items of the batch are the item-appends since the previous boundary.
	TypeBatchBoundary Type = 2
	// TypeModelAttach carries the normalized model spec attached to a
	// stream (replacing any previous model).
	TypeModelAttach Type = 3
	// TypeModelDetach marks a model removal.
	TypeModelDetach Type = 4
	// TypeRetrainSwap marks a completed retrain deployment, carrying the
	// stream's retrain ordinal. Replay recomputes retrains
	// deterministically from the boundary sequence, so these records are
	// informational (counted, never applied).
	TypeRetrainSwap Type = 5
	// TypeStreamDelete marks a stream deletion; replay drops the stream
	// and every record journaled for it before this point.
	TypeStreamDelete Type = 6
	// TypeSampleRead marks one realized sample fetch on a scheme whose
	// realization consumes RNG draws (R-TBS); replay re-draws so the
	// stream's stochastic process stays identical.
	TypeSampleRead Type = 7
)

func (t Type) String() string {
	switch t {
	case TypeItemAppend:
		return "item-append"
	case TypeBatchBoundary:
		return "batch-boundary"
	case TypeModelAttach:
		return "model-attach"
	case TypeModelDetach:
		return "model-detach"
	case TypeRetrainSwap:
		return "retrain-swap"
	case TypeStreamDelete:
		return "stream-delete"
	case TypeSampleRead:
		return "sample-read"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is one decoded WAL record.
type Record struct {
	LSN  uint64
	Type Type
	Key  string
	// Items holds the item payloads of a TypeItemAppend record.
	Items [][]byte
	// Data holds the body of every other record type that carries one
	// (model spec JSON for TypeModelAttach, the big-endian retrain ordinal
	// for TypeRetrainSwap).
	Data []byte
}

// Frame layout:
//
//	[4B little-endian payload length][4B CRC32-IEEE of payload][payload]
//
// Payload layout:
//
//	uvarint LSN | 1B type | uvarint keyLen | key |
//	  TypeItemAppend:  uvarint count, then per item: uvarint len | bytes
//	  everything else: remaining payload bytes are Data
const frameHeaderSize = 8

// maxPayloadBytes bounds one record. The largest legitimate record is one
// NDJSON ingest chunk (≤4096 items within a ≤32MB request body), so 64MB
// is far above anything the server writes while still letting the decoder
// reject a garbage length prefix before allocating.
const maxPayloadBytes = 64 << 20

var crcTable = crc32.MakeTable(crc32.IEEE)

// encBufPool recycles record-encode buffers across appends, keeping the
// WAL encode path allocation-free in steady state (the ingest hot path's
// zero-alloc contract extends through journaling).
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 8<<10)
		return &b
	},
}

// appendFrameHeader reserves space for the frame header; the caller fills
// it with finishFrame once the payload is complete.
//
//tbs:zeroalloc
func appendFrameHeader(buf []byte) []byte {
	return append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
}

// finishFrame writes the length and CRC over the payload that follows the
// header at offset start.
//
//tbs:zeroalloc
func finishFrame(buf []byte, start int) []byte {
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// appendPayloadHeader encodes the fields every record shares.
//
//tbs:zeroalloc
func appendPayloadHeader(buf []byte, lsn uint64, t Type, key string) []byte {
	buf = binary.AppendUvarint(buf, lsn)
	buf = append(buf, byte(t))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	return append(buf, key...)
}

// decodeRecord parses one frame payload. It must never panic on arbitrary
// input (the decoder is fuzzed): every length is bounds-checked before
// use.
func decodeRecord(payload []byte) (Record, error) {
	var r Record
	lsn, n := binary.Uvarint(payload)
	if n <= 0 {
		return r, fmt.Errorf("wal: record: bad LSN varint")
	}
	payload = payload[n:]
	if len(payload) < 1 {
		return r, fmt.Errorf("wal: record %d: missing type byte", lsn)
	}
	t := Type(payload[0])
	payload = payload[1:]
	if t < TypeItemAppend || t > TypeSampleRead {
		return r, fmt.Errorf("wal: record %d: unknown type %d", lsn, uint8(t))
	}
	keyLen, n := binary.Uvarint(payload)
	if n <= 0 || keyLen > uint64(len(payload[n:])) {
		return r, fmt.Errorf("wal: record %d: bad key length", lsn)
	}
	payload = payload[n:]
	r.LSN = lsn
	r.Type = t
	r.Key = string(payload[:keyLen])
	payload = payload[keyLen:]

	if t != TypeItemAppend {
		if len(payload) > 0 {
			r.Data = append([]byte(nil), payload...)
		}
		return r, nil
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 || count > uint64(len(payload[n:])) {
		// Each item costs at least one length byte, so count can never
		// exceed the remaining payload size — reject before allocating.
		return r, fmt.Errorf("wal: record %d: bad item count", lsn)
	}
	payload = payload[n:]
	r.Items = make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		itemLen, n := binary.Uvarint(payload)
		if n <= 0 || itemLen > uint64(len(payload[n:])) {
			return r, fmt.Errorf("wal: record %d: bad length for item %d", lsn, i)
		}
		payload = payload[n:]
		r.Items = append(r.Items, append([]byte(nil), payload[:itemLen]...))
		payload = payload[itemLen:]
	}
	if len(payload) != 0 {
		return r, fmt.Errorf("wal: record %d: %d trailing bytes after %d items", lsn, len(payload), count)
	}
	return r, nil
}
