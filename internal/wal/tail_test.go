package wal

import (
	"testing"
)

// TestTailForKey: the export helper returns exactly one key's records
// strictly after the given LSN, in LSN order, from a live log.
func TestTailForKey(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Interleave two keys: a(1), b(2), a(3), b(4), a(5).
	for i, key := range []string{"a", "b", "a", "b", "a"} {
		if _, err := AppendItems(l, key, itemsFor(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AppendRecord(TypeBatchBoundary, "a", nil); err != nil { // LSN 6
		t.Fatal(err)
	}

	recs, err := l.TailForKey("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs := []uint64{1, 3, 5, 6}
	if len(recs) != len(wantLSNs) {
		t.Fatalf("TailForKey(a, 0) returned %d records, want %d", len(recs), len(wantLSNs))
	}
	for i, r := range recs {
		if r.LSN != wantLSNs[i] {
			t.Errorf("record %d has LSN %d, want %d", i, r.LSN, wantLSNs[i])
		}
		if r.Key != "a" {
			t.Errorf("record %d leaked key %q", i, r.Key)
		}
	}
	if recs[3].Type != TypeBatchBoundary {
		t.Errorf("last record type = %v, want boundary", recs[3].Type)
	}
	if string(recs[1].Items[0]) != `{"t":2,"i":0}` {
		t.Errorf("payload corrupted: %q", recs[1].Items[0])
	}

	// afterLSN filters: only records strictly above it.
	recs, err = l.TailForKey("a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].LSN != 5 || recs[1].LSN != 6 {
		t.Fatalf("TailForKey(a, 3) = %v records, want LSNs [5 6]", len(recs))
	}

	// Unknown key and future LSN are empty, not errors.
	if recs, err := l.TailForKey("ghost", 0); err != nil || len(recs) != 0 {
		t.Errorf("TailForKey(ghost) = %d recs, %v", len(recs), err)
	}
	if recs, err := l.TailForKey("a", 99); err != nil || len(recs) != 0 {
		t.Errorf("TailForKey(a, 99) = %d recs, %v", len(recs), err)
	}
}

// TestTailForKeySpansSegments: the tail scan walks sealed segments, not
// just the active one.
func TestTailForKeySpansSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every couple of records.
	l, err := Open(Options{Dir: dir, Fsync: SyncOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := AppendItems(l, "k", itemsFor(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Segments; got < 2 {
		t.Fatalf("test needs multiple segments, got %d", got)
	}
	recs, err := l.TailForKey("k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("TailForKey across segments = %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d (ordered scan)", i, r.LSN, i+1)
		}
	}
}
