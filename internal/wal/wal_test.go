package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func itemsFor(t, n int) [][]byte {
	items := make([][]byte, n)
	for i := range items {
		items[i] = []byte(fmt.Sprintf(`{"t":%d,"i":%d}`, t, i))
	}
	return items
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

// TestAppendReplayRoundTrip: every record type survives the disk format.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	items := itemsFor(1, 3)
	if lsn, err := AppendItems(l, "stream-a", items); err != nil || lsn != 1 {
		t.Fatalf("AppendItems = %d, %v", lsn, err)
	}
	if lsn, err := l.AppendRecord(TypeBatchBoundary, "stream-a", nil); err != nil || lsn != 2 {
		t.Fatalf("boundary = %d, %v", lsn, err)
	}
	spec := []byte(`{"learner":"knn","k":7}`)
	if _, err := l.AppendRecord(TypeModelAttach, "stream-b", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(TypeModelDetach, "stream-b", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(TypeRetrainSwap, "stream-b", []byte{0, 0, 0, 0, 0, 0, 0, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(TypeStreamDelete, "stream-a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendRecord(TypeSampleRead, "stream-b", nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 7 {
		t.Fatalf("replayed %d records, want 7", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Errorf("record %d has LSN %d", i, r.LSN)
		}
	}
	if recs[0].Type != TypeItemAppend || recs[0].Key != "stream-a" || len(recs[0].Items) != 3 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	for i, it := range recs[0].Items {
		if !bytes.Equal(it, items[i]) {
			t.Errorf("item %d = %q, want %q", i, it, items[i])
		}
	}
	if recs[2].Type != TypeModelAttach || !bytes.Equal(recs[2].Data, spec) {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	if recs[5].Type != TypeStreamDelete || recs[5].Key != "stream-a" {
		t.Fatalf("record 5 = %+v", recs[5])
	}
	if l2.LastLSN() != 7 {
		t.Fatalf("LastLSN = %d, want 7", l2.LastLSN())
	}
	// New appends continue the sequence.
	if lsn, err := l2.AppendRecord(TypeBatchBoundary, "x", nil); err != nil || lsn != 8 {
		t.Fatalf("append after reopen = %d, %v", lsn, err)
	}
}

// TestSegmentRotationAndTruncate: small segments rotate; compaction
// removes only fully-covered segments and never the active one.
func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, err := AppendItems(l, "k", itemsFor(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	recs := collect(t, l)
	if len(recs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(recs))
	}

	if _, err := l.TruncateBefore(21); err != nil {
		t.Fatal(err)
	}
	st2 := l.Stats()
	if st2.Segments >= st.Segments {
		t.Fatalf("truncate removed nothing: %d -> %d segments", st.Segments, st2.Segments)
	}
	recs = collect(t, l)
	if len(recs) == 0 || recs[0].LSN > 21 {
		t.Fatalf("truncation cut into live records: first remaining LSN %d", recs[0].LSN)
	}
	if recs[len(recs)-1].LSN != 40 {
		t.Fatalf("lost the tail: last LSN %d", recs[len(recs)-1].LSN)
	}

	// Truncating beyond the end keeps the active segment.
	if _, err := l.TruncateBefore(1 << 60); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("active segment count = %d, want 1", st.Segments)
	}
	if _, err := AppendItems(l, "k", itemsFor(41, 1)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	l.Close()
}

// TestGroupCommitCoalesces: one leader fsync must cover every record
// written before it — the deterministic core of group commit. (How much
// coalescing concurrent load gets depends on fsync latency, so that part
// is exercised as a liveness/race check in TestGroupCommitConcurrent and
// measured by the `wal` experiment.)
func TestGroupCommitCoalesces(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 100
	var last uint64
	for i := 0; i < n; i++ {
		if last, err = AppendItems(l, "k", itemsFor(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != 0 {
		t.Fatalf("append alone fsynced %d times in group mode", st.Fsyncs)
	}
	if err := l.Sync(last); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Fsyncs != 1 {
		t.Fatalf("syncing the newest LSN took %d fsyncs, want 1 covering the whole group", st.Fsyncs)
	}
	if st.SyncedLSN != last {
		t.Fatalf("synced = %d, want %d", st.SyncedLSN, last)
	}
	// Every earlier record is covered; no further fsync may happen.
	for lsn := uint64(1); lsn <= last; lsn++ {
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != 1 {
		t.Fatalf("syncing covered LSNs re-fsynced (%d total)", st.Fsyncs)
	}
	if st.FsyncCount != 1 || st.FsyncP99 < st.FsyncP50 {
		t.Fatalf("fsync latency stats malformed: %+v", st)
	}
}

// TestGroupCommitConcurrent hammers the group path from many goroutines:
// every Sync must return only once its record is durable, with no more
// fsyncs than records (the coalescing factor itself is disk-dependent).
func TestGroupCommitConcurrent(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn, err := AppendItems(l, fmt.Sprintf("g%d", g), itemsFor(i, 1))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.Sync(lsn); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != goroutines*perG {
		t.Fatalf("records = %d, want %d", st.Records, goroutines*perG)
	}
	if st.SyncedLSN != st.LastLSN {
		t.Fatalf("synced %d < written %d after all Syncs returned", st.SyncedLSN, st.LastLSN)
	}
	if st.Fsyncs == 0 || st.Fsyncs > st.Records {
		t.Fatalf("fsyncs = %d for %d records", st.Fsyncs, st.Records)
	}
}

// TestAlwaysFsync: every append is durable before it returns and Sync is
// a no-op.
func TestAlwaysFsync(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		lsn, err := AppendItems(l, "k", itemsFor(i, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Fsyncs < 5 {
		t.Fatalf("fsyncs = %d, want one per append", st.Fsyncs)
	}
	if st.SyncedLSN != 5 {
		t.Fatalf("synced = %d, want 5", st.SyncedLSN)
	}
}

// TestTornTailEveryPrefix: a segment truncated at every possible byte
// offset must reopen cleanly with exactly the records whose frames are
// complete — never an error, never a partial record.
func TestTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64 // valid end offsets after each record
	for i := 1; i <= 4; i++ {
		if _, err := AppendItems(l, "k", itemsFor(i, 2)); err != nil {
			t.Fatal(err)
		}
		l.mu.Lock()
		ends = append(ends, l.segSize)
		l.mu.Unlock()
	}
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(Options{Dir: sub, Fsync: SyncOff})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		recs := collect(t, l2)
		want := 0
		for _, e := range ends {
			if cut >= e {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), want)
		}
		// The log must remain appendable at the truncated point.
		if lsn, err := l2.AppendRecord(TypeBatchBoundary, "k", nil); err != nil || lsn != uint64(want+1) {
			t.Fatalf("cut %d: append after torn tail = %d, %v", cut, lsn, err)
		}
		l2.Close()
	}
}

// TestBitFlipNeverMisReplays: flipping any single byte of a record's
// frame must surface as a shortened replay (tail tolerance) or an Open
// error — never a silently different record.
func TestBitFlipNeverMisReplays(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`), []byte(`{"c":3}`)}
	for _, it := range want {
		if _, err := AppendItems(l, "k", [][]byte{it}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(full); pos++ {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0x40
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, segmentName(1)), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(Options{Dir: sub, Fsync: SyncOff})
		if err != nil {
			continue // rejecting the log outright is acceptable
		}
		var got [][]byte
		err = l2.Replay(func(r Record) error {
			for _, it := range r.Items {
				got = append(got, it)
			}
			return nil
		})
		l2.Close()
		if err != nil {
			continue
		}
		if len(got) > len(want) {
			t.Fatalf("pos %d: replay yielded %d items from a 3-item log", pos, len(got))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("pos %d: flipped byte surfaced as a different record: %q != %q", pos, got[i], want[i])
			}
		}
	}
}

// TestMidSegmentCorruptionFailsReplay: damage in a sealed (non-final)
// segment is not crash debris and must fail replay loudly.
func TestMidSegmentCorruptionFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: SyncOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		if _, err := AppendItems(l, "k", itemsFor(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("need multiple segments, got %d", st.Segments)
	}
	l.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	first[len(first)/2] ^= 0xFF
	if err := os.WriteFile(segs[0].path, first, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir, Fsync: SyncOff})
	if err != nil {
		return // failing at Open is fine too
	}
	defer l2.Close()
	if err := l2.Replay(func(Record) error { return nil }); err == nil {
		t.Fatal("replay over a corrupt sealed segment succeeded silently")
	}
}

// TestPoisonedLogFailsFast: after a write error every append and group
// sync reports ErrPoisoned instead of journaling an inconsistent suffix.
func TestPoisonedLogFailsFast(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendItems(l, "k", itemsFor(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Close the file behind the log's back to force a write error.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	if _, err := AppendItems(l, "k", itemsFor(2, 1)); err == nil {
		t.Fatal("append to a closed file succeeded")
	}
	if _, err := AppendItems(l, "k", itemsFor(3, 1)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison = %v, want ErrPoisoned", err)
	}
	if err := l.Sync(2); err == nil {
		t.Fatal("sync of an unpersisted LSN on a poisoned log succeeded")
	}
	if st := l.Stats(); st.AppendErrors == 0 {
		t.Fatal("append errors not counted")
	}
}
