package dist

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func mkItems(start, n int) []Item {
	out := make([]Item, n)
	for i := range out {
		out[i] = Item(start + i)
	}
	return out
}

func TestPartition(t *testing.T) {
	items := mkItems(0, 103)
	parts := Partition(items, 12)
	if len(parts) != 12 {
		t.Fatalf("got %d partitions, want 12", len(parts))
	}
	var flat []Item
	min, max := len(items), 0
	for _, p := range parts {
		flat = append(flat, p...)
		if len(p) < min {
			min = len(p)
		}
		if len(p) > max {
			max = len(p)
		}
	}
	if !reflect.DeepEqual(flat, items) {
		t.Fatal("partitions do not concatenate back to the input")
	}
	if max-min > 1 {
		t.Fatalf("partition sizes range %d..%d, want spread ≤ 1", min, max)
	}
	if got := Partition(nil, 4); len(got) != 4 {
		t.Fatalf("Partition(nil, 4) gave %d parts", len(got))
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Workers: 4, Lambda: 0.1, Reservoir: 100, Seed: 1}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no workers", func(c *Config) { c.Workers = 0 }, "worker"},
		{"bad lambda", func(c *Config) { c.Lambda = math.NaN() }, "decay rate"},
		{"no reservoir", func(c *Config) { c.Reservoir = 0 }, "reservoir"},
		{"negative scale", func(c *Config) { c.CostScale = -1 }, "CostScale"},
		{"dist needs CP", func(c *Config) { c.Decisions = Distributed; c.Store = KeyValue }, "co-partitioned"},
		{"reservoir under workers", func(c *Config) {
			c.Decisions = Distributed
			c.Store = CoPartitioned
			c.Reservoir = 2
		}, "smaller than worker count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := NewDRTBS(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("NewDRTBS err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	if _, err := NewDTTBS(base, 0); err == nil {
		t.Fatal("NewDTTBS with zero mean batch: want error")
	}
}

// run feeds `rounds` batches of `batch` fresh items and returns the sampler
// plus the last round's virtual cost.
func run(t *testing.T, cfg Config, batch, rounds int) (*DRTBS, float64) {
	t.Helper()
	d, err := NewDRTBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	id := 0
	for r := 0; r < rounds; r++ {
		last = d.ProcessBatch(Partition(mkItems(id, batch), cfg.Workers))
		id += batch
	}
	return d, last
}

// TestDRTBSSampling checks the real sampling behavior underneath the cost
// model: bounded sample, correct steady-state weight, balanced partitions.
func TestDRTBSSampling(t *testing.T) {
	const (
		workers = 4
		lambda  = 0.1
		n       = 400
		batch   = 200
		rounds  = 60
	)
	for _, mode := range []struct {
		name string
		dec  Decisions
		st   StoreKind
	}{
		{"centralized", Centralized, KeyValue},
		{"distributed", Distributed, CoPartitioned},
	} {
		t.Run(mode.name, func(t *testing.T) {
			d, _ := run(t, Config{
				Workers: workers, Lambda: lambda, Reservoir: n,
				Decisions: mode.dec, Store: mode.st, Seed: 5,
			}, batch, rounds)

			if got := len(d.Sample()); got > n || got < n*9/10 {
				t.Fatalf("sample size %d, want saturated near bound %d", got, n)
			}
			// Steady state: W → batch/(1−e^−λ), here ≈ 2101.
			want := batch / (1 - math.Exp(-lambda))
			if got := d.TotalWeight(); math.Abs(got-want) > want*0.05 {
				t.Fatalf("TotalWeight = %.1f, want ≈ %.1f", got, want)
			}
			if c := d.ExpectedSize(); c > float64(n)+1e-9 {
				t.Fatalf("ExpectedSize %.1f exceeds bound %d", c, n)
			}

			counts := d.PartitionCounts()
			if mode.dec == Centralized {
				if counts != nil {
					t.Fatalf("PartitionCounts under centralized decisions = %v, want nil", counts)
				}
				return
			}
			if len(counts) != workers {
				t.Fatalf("got %d partition counts, want %d", len(counts), workers)
			}
			sum := 0
			for _, c := range counts {
				sum += c
				if c < n/workers-1 || c > n/workers+1 {
					t.Fatalf("unbalanced partitions: %v", counts)
				}
			}
			if sum != len(d.Sample()) && sum != len(d.Sample())+1 {
				// Footprint may exceed the realized sample by the partial items.
				t.Logf("footprint %d vs realized %d", sum, len(d.Sample()))
			}
		})
	}
}

func TestDRTBSDeterminism(t *testing.T) {
	cfg := Config{
		Workers: 4, Lambda: 0.1, Reservoir: 200,
		Decisions: Distributed, Store: CoPartitioned, Seed: 9,
	}
	a, _ := run(t, cfg, 100, 20)
	b, _ := run(t, cfg, 100, 20)
	if a.TotalWeight() != b.TotalWeight() {
		t.Fatalf("same seed, different weights: %v vs %v", a.TotalWeight(), b.TotalWeight())
	}
	// Worker-local streams are independent of goroutine scheduling, so the
	// per-partition contents must match exactly.
	if !reflect.DeepEqual(a.PartitionCounts(), b.PartitionCounts()) {
		t.Fatalf("same seed, different partition counts: %v vs %v",
			a.PartitionCounts(), b.PartitionCounts())
	}
}

// TestCostOrdering verifies the Figure 7 headline: the five implementations
// order as Cent,KV,RJ > Cent,KV,CJ > Cent,CP > Dist,CP > D-T-TBS in
// per-batch virtual runtime, with meaningful separation.
func TestCostOrdering(t *testing.T) {
	const (
		workers = 12
		lambda  = 0.07
		batch   = 1000
		n       = 2000
		scale   = 10000
		rounds  = 40
	)
	variants := []struct {
		name string
		dec  Decisions
		st   StoreKind
		join JoinKind
	}{
		{"Cent,KV,RJ", Centralized, KeyValue, RepartitionJoin},
		{"Cent,KV,CJ", Centralized, KeyValue, CoLocatedJoin},
		{"Cent,CP", Centralized, CoPartitioned, CoLocatedJoin},
		{"Dist,CP", Distributed, CoPartitioned, CoLocatedJoin},
	}
	var costs []float64
	for i, v := range variants {
		_, sec := run(t, Config{
			Workers: workers, Lambda: lambda, Reservoir: n,
			Decisions: v.dec, Store: v.st, Join: v.join,
			CostScale: scale, Seed: uint64(i + 1),
		}, batch, rounds)
		costs = append(costs, sec)
	}
	dt, err := NewDTTBS(Config{
		Workers: workers, Lambda: lambda, Reservoir: n,
		CostScale: scale, Seed: 99,
	}, batch)
	if err != nil {
		t.Fatal(err)
	}
	var ttbsSec float64
	for r := 0; r < rounds; r++ {
		ttbsSec = dt.ProcessBatch(Partition(mkItems(r*batch, batch), workers))
	}
	costs = append(costs, ttbsSec)

	for i := 1; i < len(costs); i++ {
		if !(costs[i-1] > costs[i]*1.2) {
			t.Fatalf("cost ordering violated at %d: %v", i, costs)
		}
	}
	// Fig. 7 headline factors: RJ ≈ 30× the D-T-TBS cost, Dist,CP ≈ 3.5×.
	if ratio := costs[0] / costs[4]; ratio < 10 || ratio > 100 {
		t.Fatalf("RJ/T-TBS cost ratio %.1f outside the paper's regime", ratio)
	}
}

func TestDTTBSSize(t *testing.T) {
	const (
		workers = 4
		lambda  = 0.1
		n       = 400
		batch   = 200
	)
	dt, err := NewDTTBS(Config{Workers: workers, Lambda: lambda, Reservoir: n, Seed: 3}, batch)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 120; r++ {
		dt.ProcessBatch(Partition(mkItems(r*batch, batch), workers))
	}
	// E[C] → n; allow generous stochastic slack.
	if got := dt.Size(); got < n*3/4 || got > n*5/4 {
		t.Fatalf("D-T-TBS size %d far from target %d", got, n)
	}
	if got := len(dt.Sample()); got != dt.Size() {
		t.Fatalf("Sample() has %d items but Size() = %d", got, dt.Size())
	}
}

// TestUnsaturatedCost: while the reservoir is filling, the cost model must
// treat every batch item as an insert (appends, not replacements).
func TestUnsaturatedCost(t *testing.T) {
	cfg := Config{
		Workers: 4, Lambda: 0.05, Reservoir: 100000,
		Decisions: Distributed, Store: CoPartitioned, Seed: 2,
	}
	d, err := NewDRTBS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := d.ProcessBatch(Partition(mkItems(0, 1000), cfg.Workers))
	if first <= costFixed {
		t.Fatalf("first-batch cost %v not above the fixed overhead", first)
	}
	if d.TotalWeight() != 1000 {
		t.Fatalf("W after one batch = %v, want 1000", d.TotalWeight())
	}
}
