// Package dist implements the distributed temporally-biased samplers of
// Section 5 of Hentschel, Haas and Tian, "Temporally-Biased Sampling for
// Online Model Management" (EDBT 2018): D-R-TBS and D-T-TBS.
//
// The package simulates a cluster on a single machine. Sampling is real —
// every batch is processed by actual R-TBS/T-TBS samplers, with worker-level
// parallelism via goroutines — while the elapsed time of each batch on the
// paper's cluster is reported as *virtual* seconds computed from a calibrated
// cost model (see cost.go). Config.CostScale maps each real item to that many
// virtual items, so paper-scale experiments (10M-item batches, 20M-item
// reservoirs) run in milliseconds at a 1:1000 item scale and still report
// full-scale runtimes; the figure-7/8/9 experiments rely on this.
//
// The design axes of Section 5 are:
//
//   - Decisions — where the insert/delete choices are made. Centralized
//     gathers batch statistics at a coordinator which selects the entering
//     items and their victims (Section 5.2.1); Distributed makes all choices
//     worker-locally via stratified sampling (Section 5.2.2) and requires the
//     co-partitioned store.
//   - StoreKind — how the reservoir is stored. KeyValue holds items in a
//     distributed key-value store accessed by key; CoPartitioned co-locates
//     each reservoir partition with the worker that owns the corresponding
//     batch partition (Section 5.1).
//   - JoinKind — how selected batch positions are matched with batch items
//     under the key-value store: RepartitionJoin reshuffles the batch by
//     position (the naive plan), CoLocatedJoin ships only the small decision
//     table to the data (Section 5.2.1). With a co-partitioned store the
//     join is always co-located, so JoinKind is ignored.
//
// D-T-TBS needs none of this coordination — Bernoulli thinning is
// embarrassingly parallel — which is exactly the paper's point when
// comparing the two (Figure 7).
package dist
