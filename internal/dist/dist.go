package dist

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/xrand"
)

// Item is the unit flowing through the distributed samplers. The simulation
// only needs item identity, so an integer id stands in for a record.
type Item int64

// Decisions selects where insert/delete decisions are made (Section 5.2).
type Decisions int

const (
	// Centralized gathers per-partition statistics at a coordinator that
	// selects the entering items and their victims (Section 5.2.1).
	Centralized Decisions = iota
	// Distributed makes every choice worker-locally via stratified
	// sampling over the batch partitions (Section 5.2.2). Requires the
	// co-partitioned store.
	Distributed
)

func (d Decisions) String() string {
	switch d {
	case Centralized:
		return "Cent"
	case Distributed:
		return "Dist"
	}
	return fmt.Sprintf("Decisions(%d)", int(d))
}

// StoreKind selects how the reservoir is stored (Section 5.1).
type StoreKind int

const (
	// KeyValue keeps reservoir items in a distributed key-value store,
	// individually addressable by key.
	KeyValue StoreKind = iota
	// CoPartitioned co-locates each reservoir partition with the worker
	// that owns the corresponding batch partition.
	CoPartitioned
)

func (s StoreKind) String() string {
	switch s {
	case KeyValue:
		return "KV"
	case CoPartitioned:
		return "CP"
	}
	return fmt.Sprintf("StoreKind(%d)", int(s))
}

// JoinKind selects how insert decisions are matched with batch items when
// the reservoir lives in a key-value store (Section 5.2.1). It is ignored
// with a co-partitioned store, where the join is co-located by construction.
type JoinKind int

const (
	// RepartitionJoin reshuffles the full batch by position to meet the
	// decision table — the naive plan, and the zero value.
	RepartitionJoin JoinKind = iota
	// CoLocatedJoin ships the small decision table to the batch partitions
	// instead of moving the batch.
	CoLocatedJoin
)

func (j JoinKind) String() string {
	switch j {
	case RepartitionJoin:
		return "RJ"
	case CoLocatedJoin:
		return "CJ"
	}
	return fmt.Sprintf("JoinKind(%d)", int(j))
}

// Config parameterizes a distributed sampler.
type Config struct {
	Workers   int       // cluster size (≥ 1)
	Lambda    float64   // decay rate λ per batch
	Reservoir int       // reservoir capacity n, in real items
	Decisions Decisions // where insert/delete decisions are made (D-R-TBS)
	Store     StoreKind // reservoir storage layout (D-R-TBS)
	Join      JoinKind  // decision↔batch join plan (D-R-TBS with KeyValue)
	CostScale float64   // virtual items per real item; 0 means 1
	Seed      uint64    // RNG seed; worker RNGs are split deterministically
}

func (c *Config) validate() error {
	switch {
	case c.Workers < 1:
		return fmt.Errorf("dist: need at least one worker, got %d", c.Workers)
	case !core.ValidateLambda(c.Lambda):
		return fmt.Errorf("dist: invalid decay rate λ = %v", c.Lambda)
	case c.Reservoir < 1:
		return fmt.Errorf("dist: reservoir capacity must be positive, got %d", c.Reservoir)
	case c.CostScale < 0:
		return fmt.Errorf("dist: CostScale must be nonnegative, got %v", c.CostScale)
	}
	if c.CostScale == 0 {
		c.CostScale = 1
	}
	return nil
}

// Partition splits a batch into `workers` contiguous partitions whose sizes
// differ by at most one item, mirroring how a cluster's ingest layer would
// hand ranges of a batch to workers.
func Partition(items []Item, workers int) [][]Item {
	if workers < 1 {
		workers = 1
	}
	parts := make([][]Item, workers)
	base, extra := len(items)/workers, len(items)%workers
	off := 0
	for i := range parts {
		size := base
		if i < extra {
			size++
		}
		parts[i] = items[off : off+size]
		off += size
	}
	return parts
}

// DRTBS is the distributed R-TBS sampler (Section 5.2). The realized sample
// distribution is exact R-TBS: with centralized decisions a coordinator-side
// sampler processes the merged batch; with distributed decisions each worker
// runs R-TBS over its stratum with a proportional share of the reservoir.
type DRTBS struct {
	cfg     Config
	master  *core.RTBS[Item]   // centralized decisions
	workers []*core.RTBS[Item] // distributed decisions
	cost    costState
	merged  []Item // scratch for merging partitions (centralized)
}

// NewDRTBS returns a distributed R-TBS sampler for the given configuration.
func NewDRTBS(cfg Config) (*DRTBS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &DRTBS{cfg: cfg, cost: costState{
		lambda: cfg.Lambda,
		n:      float64(cfg.Reservoir) * cfg.CostScale,
	}}
	rng := xrand.New(cfg.Seed)
	switch cfg.Decisions {
	case Centralized:
		m, err := core.NewRTBS[Item](cfg.Lambda, cfg.Reservoir, rng)
		if err != nil {
			return nil, err
		}
		d.master = m
	case Distributed:
		if cfg.Store != CoPartitioned {
			return nil, fmt.Errorf("dist: distributed decisions require the co-partitioned store (Section 5.2.2), got %v", cfg.Store)
		}
		if cfg.Reservoir < cfg.Workers {
			return nil, fmt.Errorf("dist: reservoir %d smaller than worker count %d", cfg.Reservoir, cfg.Workers)
		}
		d.workers = make([]*core.RTBS[Item], cfg.Workers)
		base, extra := cfg.Reservoir/cfg.Workers, cfg.Reservoir%cfg.Workers
		for i := range d.workers {
			n := base
			if i < extra {
				n++
			}
			w, err := core.NewRTBS[Item](cfg.Lambda, n, rng.Split())
			if err != nil {
				return nil, err
			}
			d.workers[i] = w
		}
	default:
		return nil, fmt.Errorf("dist: unknown decision mode %v", cfg.Decisions)
	}
	return d, nil
}

// ProcessBatch folds one partitioned batch into the reservoir and returns
// the batch's virtual runtime in seconds on the paper's cluster under the
// configured design (see package doc). Partitions beyond the worker count
// are assigned round-robin.
func (d *DRTBS) ProcessBatch(parts [][]Item) float64 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if d.master != nil {
		d.merged = d.merged[:0]
		for _, p := range parts {
			d.merged = append(d.merged, p...)
		}
		d.master.Advance(d.merged)
	} else {
		// Worker fan-out: each worker folds its stratum into its local
		// reservoir partition in parallel.
		strata := make([][]Item, len(d.workers))
		for i, p := range parts {
			w := i % len(d.workers)
			strata[w] = append(strata[w], p...)
		}
		var wg sync.WaitGroup
		for i, w := range d.workers {
			wg.Add(1)
			go func(w *core.RTBS[Item], stratum []Item) {
				defer wg.Done()
				w.Advance(stratum)
			}(w, strata[i])
		}
		wg.Wait()
	}
	inserts, saturated := d.cost.step(float64(total) * d.cfg.CostScale)
	return drtbsCost(d.cfg, float64(total)*d.cfg.CostScale, inserts, saturated)
}

// Sample returns a freshly realized copy of the current global sample.
func (d *DRTBS) Sample() []Item {
	if d.master != nil {
		return d.master.Sample()
	}
	var out []Item
	for _, w := range d.workers {
		out = append(out, w.Sample()...)
	}
	return out
}

// TotalWeight returns the global decayed weight Wₜ (in real items).
func (d *DRTBS) TotalWeight() float64 {
	if d.master != nil {
		return d.master.TotalWeight()
	}
	sum := 0.0
	for _, w := range d.workers {
		sum += w.TotalWeight()
	}
	return sum
}

// ExpectedSize returns the global sample weight Cₜ = Σᵢ min(nᵢ, Wᵢ).
func (d *DRTBS) ExpectedSize() float64 {
	if d.master != nil {
		return d.master.ExpectedSize()
	}
	sum := 0.0
	for _, w := range d.workers {
		sum += w.ExpectedSize()
	}
	return sum
}

// PartitionCounts returns the number of items physically stored in each
// worker's reservoir partition. It returns nil under centralized decisions,
// where the reservoir has no worker-local structure.
func (d *DRTBS) PartitionCounts() []int {
	if d.workers == nil {
		return nil
	}
	out := make([]int, len(d.workers))
	for i, w := range d.workers {
		out[i] = w.Latent().Footprint()
	}
	return out
}

// DTTBS is the distributed T-TBS sampler (Section 5.3): each worker runs an
// independent T-TBS over its stratum — Bernoulli thinning needs no
// cross-worker coordination at all.
type DTTBS struct {
	cfg     Config
	workers []*core.TTBS[Item]
}

// NewDTTBS returns a distributed T-TBS sampler. meanBatch is the assumed
// mean total batch size (in real items), split evenly across workers; as in
// the sequential scheme it must satisfy meanBatch ≥ Reservoir·(1−e^−λ).
func NewDTTBS(cfg Config, meanBatch int) (*DTTBS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if meanBatch < 1 {
		return nil, fmt.Errorf("dist: mean batch size must be positive, got %d", meanBatch)
	}
	if cfg.Reservoir < cfg.Workers {
		return nil, fmt.Errorf("dist: reservoir %d smaller than worker count %d", cfg.Reservoir, cfg.Workers)
	}
	d := &DTTBS{cfg: cfg, workers: make([]*core.TTBS[Item], cfg.Workers)}
	rng := xrand.New(cfg.Seed)
	base, extra := cfg.Reservoir/cfg.Workers, cfg.Reservoir%cfg.Workers
	for i := range d.workers {
		n := base
		if i < extra {
			n++
		}
		w, err := core.NewTTBS[Item](cfg.Lambda, n, float64(meanBatch)/float64(cfg.Workers), rng.Split())
		if err != nil {
			return nil, err
		}
		d.workers[i] = w
	}
	return d, nil
}

// ProcessBatch folds one partitioned batch into the sample and returns the
// batch's virtual runtime in seconds. Partitions beyond the worker count are
// assigned round-robin.
func (d *DTTBS) ProcessBatch(parts [][]Item) float64 {
	strata := make([][]Item, len(d.workers))
	total := 0
	for i, p := range parts {
		total += len(p)
		w := i % len(d.workers)
		strata[w] = append(strata[w], p...)
	}
	var wg sync.WaitGroup
	for i, w := range d.workers {
		wg.Add(1)
		go func(w *core.TTBS[Item], stratum []Item) {
			defer wg.Done()
			w.Advance(stratum)
		}(w, strata[i])
	}
	wg.Wait()
	return dttbsCost(d.cfg, float64(total)*d.cfg.CostScale)
}

// Sample returns a copy of the current global sample.
func (d *DTTBS) Sample() []Item {
	var out []Item
	for _, w := range d.workers {
		out = append(out, w.Sample()...)
	}
	return out
}

// Size returns the exact current global sample size.
func (d *DTTBS) Size() int {
	sum := 0
	for _, w := range d.workers {
		sum += w.Size()
	}
	return sum
}
