package dist

import "math"

// Virtual per-batch runtime model. Constants are virtual seconds per virtual
// item (or per batch for the fixed terms), calibrated so that the Figure 7
// configuration — 10M-item batches, a 20M reservoir, λ = 0.07, 12 workers —
// reproduces the paper's measured ≈45 / ≈22 / ≈8.5 / ≈5.3 / ≈1.5 s for
// (Cent,KV,RJ) / (Cent,KV,CJ) / (Cent,CP) / (Dist,CP) / D-T-TBS, and the
// Figure 9 configuration (100M-item batches, 10 workers) lands near the
// paper's ≈14 s. The large per-item overheads are real: the paper's cluster
// runs on Spark, whose shuffle and KV-access paths cost microseconds per
// item.
const (
	// costFixed is the per-batch job-scheduling overhead of a distributed
	// R-TBS round (multiple stages); costFixedTTBS is the single-stage
	// overhead of a D-T-TBS round.
	costFixed     = 1.0
	costFixedTTBS = 0.7

	// costScan: scanning a batch item and attaching its uniform variate /
	// weight bookkeeping (parallel across workers).
	costScan = 8.7e-7

	// costFlip: a pure Bernoulli retain/accept coin flip (D-T-TBS's only
	// per-item work; parallel).
	costFlip = 9.6e-7

	// costShuffle: moving one batch item across the network during a
	// repartition join (parallel).
	costShuffle = 2.76e-5

	// costCoord: one insert/delete decision made serially at the
	// coordinator (centralized decisions only; NOT divided by the worker
	// count).
	costCoord = 2.4e-6

	// costKV: one random-access read-modify-write against the distributed
	// key-value store (parallel). Saturated inserts pay it twice: once for
	// the victim delete, once for the insert.
	costKV = 7.6e-5

	// costReplace: replacing a victim in a co-partitioned reservoir
	// partition (local victim selection + overwrite; parallel).
	costReplace = 3.2e-5

	// costAppend: appending to a co-partitioned reservoir partition while
	// unsaturated (no victim needed; parallel).
	costAppend = 2.0e-6
)

// costState tracks the *virtual-scale* weight recursion Wₜ = Wₜ₋₁·e^(−λ) + Bₜ
// so the cost model can derive the expected number of inserts per batch
// without depending on the real-scale samplers' randomness.
type costState struct {
	lambda float64
	n      float64 // virtual reservoir capacity
	w      float64 // virtual total weight Wₜ
}

// step folds a virtual batch of b items into the weight recursion and
// returns the expected number of reservoir inserts and whether the reservoir
// is saturated after the batch.
func (c *costState) step(b float64) (inserts float64, saturated bool) {
	c.w = c.w*math.Exp(-c.lambda) + b
	if c.w <= c.n {
		return b, false // unsaturated: every batch item is accepted
	}
	return b * c.n / c.w, true
}

// drtbsCost returns the virtual per-batch runtime of one D-R-TBS round.
func drtbsCost(cfg Config, virtualBatch, inserts float64, saturated bool) float64 {
	workers := float64(cfg.Workers)
	sec := costFixed + virtualBatch*costScan/workers

	if cfg.Decisions == Centralized {
		sec += inserts * costCoord
	}
	switch cfg.Store {
	case KeyValue:
		ops := inserts
		if saturated {
			ops *= 2 // victim delete + insert
		}
		sec += ops * costKV / workers
		if cfg.Join == RepartitionJoin {
			sec += virtualBatch * costShuffle / workers
		}
	case CoPartitioned:
		per := costAppend
		if saturated {
			per = costReplace
		}
		sec += inserts * per / workers
	}
	return sec
}

// dttbsCost returns the virtual per-batch runtime of one D-T-TBS round.
func dttbsCost(cfg Config, virtualBatch float64) float64 {
	return costFixedTTBS + virtualBatch*costFlip/float64(cfg.Workers)
}
