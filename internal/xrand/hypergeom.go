package xrand

import "math"

// Hypergeometric returns a hypergeometric(k, a, b) variate: the number of
// "successes" when k items are drawn without replacement from a population
// containing a successes and b failures. Its probability mass function is
// p(n) = C(a,n) C(b,k−n) / C(a+b,k) on max(0,k−b) ≤ n ≤ min(a,k).
//
// B-RS (Algorithm 5) draws the number of new-batch items entering the
// reservoir from this distribution, and the distributed decision strategy of
// D-R-TBS (Section 5.3) splits global insert/delete counts across workers
// with its multivariate generalization. The implementation mirrors the
// binomial generator: sequential sampling for tiny draws, otherwise exact
// two-sided mode-centered inversion in expected O(σ) time (cf. [21]).
func (r *RNG) Hypergeometric(k, a, b int) int {
	switch {
	case k < 0 || a < 0 || b < 0:
		panic("xrand: Hypergeometric with negative parameter")
	case k == 0 || a == 0:
		return 0
	case k >= a+b:
		return a
	}
	// Exploit symmetries to shrink the work: drawing k is equivalent to
	// leaving a+b-k behind, and successes/failures are interchangeable.
	if 2*k > a+b {
		return a - r.Hypergeometric(a+b-k, a, b)
	}
	if a > b {
		return k - r.Hypergeometric(k, b, a)
	}
	if k <= 16 {
		return r.hypergeoSequential(k, a, b)
	}
	return r.hypergeoMode(k, a, b)
}

// hypergeoSequential simulates the k draws directly.
func (r *RNG) hypergeoSequential(k, a, b int) int {
	succ := 0
	for i := 0; i < k; i++ {
		if r.Intn(a+b) < a {
			a--
			succ++
		} else {
			b--
		}
		if a == 0 {
			break
		}
	}
	return succ
}

// hypergeoMode draws by two-sided inversion starting at the mode.
func (r *RNG) hypergeoMode(k, a, b int) int {
	lo0 := 0
	if k-b > 0 {
		lo0 = k - b
	}
	hi0 := k
	if a < k {
		hi0 = a
	}
	// Mode of the hypergeometric distribution.
	m := int(math.Floor(float64(k+1) * float64(a+1) / float64(a+b+2)))
	if m < lo0 {
		m = lo0
	}
	if m > hi0 {
		m = hi0
	}
	pm := math.Exp(logHyperPMF(k, a, b, m))
	u := r.Float64()
	if u < pm {
		return m
	}
	u -= pm
	fLo, fHi := pm, pm
	lo, hi := m, m
	for lo > lo0 || hi < hi0 {
		if hi < hi0 {
			// p(n+1)/p(n) = (a-n)(k-n) / ((n+1)(b-k+n+1))
			fHi *= float64(a-hi) * float64(k-hi) / (float64(hi+1) * float64(b-k+hi+1))
			hi++
			if u < fHi {
				return hi
			}
			u -= fHi
		}
		if lo > lo0 {
			// p(n-1)/p(n) = n (b-k+n) / ((a-n+1)(k-n+1))
			fLo *= float64(lo) * float64(b-k+lo) / (float64(a-lo+1) * float64(k-lo+1))
			lo--
			if u < fLo {
				return lo
			}
			u -= fLo
		}
	}
	return m
}

// logHyperPMF returns the log pmf of the hypergeometric(k, a, b)
// distribution at n.
func logHyperPMF(k, a, b, n int) float64 {
	return lchoose(a, n) + lchoose(b, k-n) - lchoose(a+b, k)
}

// MultivariateHypergeometric distributes k draws without replacement across
// colors with the given counts, returning the number drawn of each color.
// The returned slice sums to min(k, sum(counts)). D-R-TBS uses this to let
// the master assign per-worker insert/delete quotas that are exactly
// distributed as if the slots had been drawn centrally (Section 5.3,
// "Distributed decisions").
func (r *RNG) MultivariateHypergeometric(counts []int, k int) []int {
	total := 0
	for _, c := range counts {
		if c < 0 {
			panic("xrand: MultivariateHypergeometric with negative count")
		}
		total += c
	}
	if k > total {
		k = total
	}
	out := make([]int, len(counts))
	remaining := total
	for i, c := range counts {
		if k == 0 {
			break
		}
		if remaining == c {
			// Only this and later colors remain; draw all k from the tail.
			out[i] = k
			k = 0
			break
		}
		n := r.Hypergeometric(k, c, remaining-c)
		out[i] = n
		k -= n
		remaining -= c
	}
	return out
}
