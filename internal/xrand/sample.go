package xrand

// SampleIndices returns m distinct indices drawn uniformly without
// replacement from [0, n), in random order. If m >= n it returns a random
// permutation of all n indices. It runs a partial Fisher–Yates shuffle in
// O(m) time and O(n) space.
//
// This is the Sample(A, m) primitive of the paper's pseudocode: "a uniform
// random sample, without replacement, containing min(m, |A|) elements".
func (r *RNG) SampleIndices(n, m int) []int {
	idx := r.SampleIndicesInto(nil, n, m)
	if idx == nil {
		return nil
	}
	return idx[:len(idx):len(idx)]
}

// SampleIndicesInto is SampleIndices with a caller-owned scratch buffer:
// the returned slice aliases dst's backing array when it has capacity n,
// so a caller that feeds the result back as the next call's dst allocates
// only when n outgrows every previous call. The hot sampler paths (R-TBS
// victim/insert selection) rely on this to stay allocation-free in steady
// state.
func (r *RNG) SampleIndicesInto(dst []int, n, m int) []int {
	if m < 0 {
		panic("xrand: SampleIndicesInto with m < 0")
	}
	if m > n {
		m = n
	}
	if m == 0 {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]int, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = i
	}
	for i := 0; i < m; i++ {
		j := i + r.Intn(n-i)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst[:m]
}

// SampleIndicesSparse returns m distinct indices drawn uniformly without
// replacement from [0, n) using Floyd's algorithm, which needs O(m) space
// regardless of n. Prefer it when m << n (e.g. picking a handful of victims
// from a multi-million item reservoir partition).
func (r *RNG) SampleIndicesSparse(n, m int) []int {
	if m < 0 {
		panic("xrand: SampleIndicesSparse with m < 0")
	}
	if m > n {
		m = n
	}
	if m == 0 {
		return nil
	}
	// Floyd's algorithm produces a set; shuffle to return a uniform ordered
	// sample, matching SampleIndices semantics.
	seen := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for j := n - m; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Sample returns min(m, len(items)) elements of items drawn uniformly
// without replacement. The input slice is not modified.
func Sample[T any](r *RNG, items []T, m int) []T {
	idx := r.SampleIndices(len(items), m)
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = items[j]
	}
	return out
}

// SampleInPlace partitions items so that its first min(m, len(items))
// elements are a uniform random sample without replacement, and returns that
// prefix. It avoids allocation at the cost of reordering items.
func SampleInPlace[T any](r *RNG, items []T, m int) []T {
	n := len(items)
	if m > n {
		m = n
	}
	for i := 0; i < m; i++ {
		j := i + r.Intn(n-i)
		items[i], items[j] = items[j], items[i]
	}
	return items[:m]
}
