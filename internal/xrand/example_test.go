package xrand_test

import (
	"fmt"

	"repro/internal/xrand"
)

// ExampleRNG_Split shows how the distributed algorithms derive independent
// per-worker random streams from one seed: each Split jumps the parent
// 2^128 steps ahead, so the children's outputs never overlap.
func ExampleRNG_Split() {
	master := xrand.New(7)
	w1 := master.Split()
	w2 := master.Split()
	fmt.Println(w1.Uint64() != w2.Uint64())
	// Output:
	// true
}

// ExampleRNG_Binomial shows the O(1)-per-survivor thinning primitive used
// by T-TBS: instead of 1e6 coin flips, draw the survivor count once.
func ExampleRNG_Binomial() {
	rng := xrand.New(42)
	survivors := rng.Binomial(1_000_000, 0.9)
	fmt.Println(survivors > 898_000 && survivors < 902_000)
	// Output:
	// true
}

// ExampleRNG_StochasticRound demonstrates the mean-preserving rounding
// R-TBS uses to minimize sample-size variance.
func ExampleRNG_StochasticRound() {
	rng := xrand.New(1)
	sum := 0
	for i := 0; i < 100000; i++ {
		sum += rng.StochasticRound(2.5)
	}
	mean := float64(sum) / 100000
	fmt.Println(mean > 2.48 && mean < 2.52)
	// Output:
	// true
}
