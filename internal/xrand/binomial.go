package xrand

import "math"

// Binomial returns a binomial(n, p) variate: the number of successes in n
// independent trials each succeeding with probability p. Both T-TBS and
// B-TBS use binomial variates to simulate per-item coin flips in O(1) time
// per retained item rather than O(n) flips (paper Section 3, lines 6 and 8 of
// Algorithm 1; reference [22]).
//
// The implementation uses BINV-style inversion for small n·min(p,1−p) and
// two-sided mode-centered inversion ("chop-down" search from the mode) for
// large parameters, which runs in expected O(σ) time and is exact.
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case n < 0:
		panic("xrand: Binomial with n < 0")
	case n == 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	// Work with q = min(p, 1-p) and flip at the end if needed.
	flip := false
	q := p
	if q > 0.5 {
		q = 1 - q
		flip = true
	}
	var k int
	if float64(n)*q < 30 {
		k = r.binomialInv(n, q)
	} else {
		k = r.binomialMode(n, q)
	}
	if flip {
		k = n - k
	}
	return k
}

// binomialInv is bottom-up inversion, suitable when n*q is small.
func (r *RNG) binomialInv(n int, q float64) int {
	s := q / (1 - q)
	a := float64(n+1) * s
	f := math.Pow(1-q, float64(n)) // pmf at 0
	u := r.Float64()
	for k := 0; ; k++ {
		if u < f {
			return k
		}
		u -= f
		f *= a/float64(k+1) - s
		if f <= 0 || k > n {
			// Floating-point underflow of the tail; clamp.
			return n
		}
	}
}

// binomialMode searches outward from the mode, accumulating pmf mass until
// the uniform draw is covered. Expected number of iterations is O(σ).
func (r *RNG) binomialMode(n int, q float64) int {
	m := int(math.Floor(float64(n+1) * q)) // mode
	if m > n {
		m = n
	}
	logPM := logBinomPMF(n, q, m)
	pm := math.Exp(logPM)
	u := r.Float64()
	if u < pm {
		return m
	}
	u -= pm
	s := q / (1 - q)
	// fLo[k] walking down from the mode, fHi[k] walking up.
	fLo, fHi := pm, pm
	lo, hi := m, m
	for lo > 0 || hi < n {
		if hi < n {
			// p(k+1) = p(k) * (n-k)/(k+1) * s
			fHi *= float64(n-hi) / float64(hi+1) * s
			hi++
			if u < fHi {
				return hi
			}
			u -= fHi
		}
		if lo > 0 {
			// p(k-1) = p(k) * k / ((n-k+1) s)
			fLo *= float64(lo) / (float64(n-lo+1) * s)
			lo--
			if u < fLo {
				return lo
			}
			u -= fLo
		}
	}
	// Numerical leftovers: return the mode.
	return m
}

// logBinomPMF returns log C(n,k) + k log q + (n-k) log(1-q).
func logBinomPMF(n int, q float64, k int) float64 {
	return lchoose(n, k) + float64(k)*math.Log(q) + float64(n-k)*math.Log1p(-q)
}

// lchoose returns log of the binomial coefficient C(n, k).
func lchoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lgamma(float64(n)+1) - lgamma(float64(k)+1) - lgamma(float64(n-k)+1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
