package xrand

import "fmt"

// State is the serializable state of an RNG, used by the samplers'
// checkpoint/restore support (paper Section 5.1: implementations
// "periodically checkpoint the sample as well as other system state
// variables to ensure fault tolerance"). Restoring a state resumes the
// stream bit-for-bit.
type State struct {
	S        [4]uint64
	Spare    float64
	HasSpare bool
}

// State captures the generator's current state.
func (r *RNG) State() State {
	return State{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// Restore overwrites the generator's state with a previously captured one.
func (r *RNG) Restore(st State) error {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return fmt.Errorf("xrand: refusing to restore all-zero state")
	}
	r.s = st.S
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
	return nil
}

// FromState constructs an RNG directly from a saved state.
func FromState(st State) (*RNG, error) {
	r := &RNG{}
	if err := r.Restore(st); err != nil {
		return nil, err
	}
	return r, nil
}
