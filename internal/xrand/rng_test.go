package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed generators coincided %d/1000 times", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Seed did not reset stream: step %d got %d want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(2)
	const n = 1 << 20
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sum2 += u * u
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.002 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	variance := sum2/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.002 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(4)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", k, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	base := New(99)
	a := &RNG{s: base.s}
	b := &RNG{s: base.s}
	b.Jump()
	seen := make(map[uint64]struct{}, 10000)
	for i := 0; i < 10000; i++ {
		seen[a.Uint64()] = struct{}{}
	}
	collisions := 0
	for i := 0; i < 10000; i++ {
		if _, ok := seen[b.Uint64()]; ok {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("jumped stream collided with base stream %d times", collisions)
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	// The two children and the parent must all differ.
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced identical first output")
	}
	var m1, m2 float64
	const n = 1 << 16
	for i := 0; i < n; i++ {
		m1 += c1.Float64()
		m2 += c2.Float64()
	}
	if math.Abs(m1/n-0.5) > 0.01 || math.Abs(m2/n-0.5) > 0.01 {
		t.Error("split children are not uniform")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 1 << 20
	var sum, sum2, sum3 float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
		sum3 += x * x * x
	}
	mean := sum / n
	if math.Abs(mean) > 0.005 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if v := sum2/n - mean*mean; math.Abs(v-1) > 0.01 {
		t.Errorf("normal variance = %v, want ~1", v)
	}
	if skew := sum3 / n; math.Abs(skew) > 0.02 {
		t.Errorf("normal third moment = %v, want ~0", skew)
	}
}

func TestNormalShifted(t *testing.T) {
	r := New(7)
	const n = 1 << 18
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 3)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal(10,3) mean = %v", mean)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(8)
	const n = 1 << 19
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestBernoulliEdge(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(10)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.005 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestStochasticRoundMeanPreserving(t *testing.T) {
	r := New(11)
	for _, x := range []float64{0, 0.25, 1.5, 3.9, 7, 0.001} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.StochasticRound(x)
			if v != int(math.Floor(x)) && v != int(math.Ceil(x)) {
				t.Fatalf("StochasticRound(%v) = %d not in {floor, ceil}", x, v)
			}
			sum += float64(v)
		}
		mean := sum / n
		tol := 4 * math.Sqrt(0.25/n)
		if math.Abs(mean-x) > tol+1e-9 {
			t.Errorf("StochasticRound(%v) mean = %v", x, mean)
		}
	}
}

func TestStochasticRoundProperty(t *testing.T) {
	r := New(12)
	f := func(raw uint32) bool {
		x := float64(raw%100000) / 1000 // [0, 100)
		v := r.StochasticRound(x)
		return v == int(math.Floor(x)) || v == int(math.Ceil(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(14)
	const n, trials = 5, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first-element bucket %d = %d, want ~%v", k, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(15)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}
