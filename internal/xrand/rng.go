// Package xrand provides the pseudo-random substrate for the TBS library:
// a fast, seedable xoshiro256++ generator with SplitMix64 seeding and
// jump-ahead for statistically independent parallel streams (used by the
// distributed algorithms, following Haramoto et al. [20] in the paper), plus
// exact discrete variate generators (binomial, hypergeometric, multivariate
// hypergeometric, Poisson) and the stochastic-rounding primitive that R-TBS
// relies on (paper Section 4.1, line 16 of Algorithm 2).
//
// Everything in this package is deterministic given a seed, which makes every
// experiment in the repository reproducible.
package xrand

import "math"

// RNG is a xoshiro256++ pseudo-random number generator. It is not safe for
// concurrent use; create one RNG per goroutine, deriving independent streams
// with Split or Jump.
type RNG struct {
	s [4]uint64
	// spare holds a cached second normal variate from the polar method.
	spare    float64
	hasSpare bool
}

// New returns an RNG seeded from the given seed using SplitMix64, as
// recommended by the xoshiro authors to avoid correlated low-entropy states.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed via SplitMix64.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.hasSpare = false
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// jumpPoly is the xoshiro256 jump polynomial; Jump advances the state by
// 2^128 steps, yielding 2^128 non-overlapping subsequences.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the generator by 2^128 steps in O(1) amortized work. Calling
// Jump k times on copies of a base generator produces k streams that will not
// overlap for 2^128 outputs each.
func (r *RNG) Jump() {
	var s [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s[0] ^= r.s[0]
				s[1] ^= r.s[1]
				s[2] ^= r.s[2]
				s[3] ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = s
	r.hasSpare = false
}

// Split returns a new RNG whose stream is the current stream jumped ahead by
// 2^128, and advances r past the jump as well, so successive Split calls
// yield mutually non-overlapping generators. This is the parallel
// pseudo-random number generation technique referenced in Section 5.3.
func (r *RNG) Split() *RNG {
	child := &RNG{s: r.s}
	r.Jump()
	return child
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in the open interval (0, 1),
// convenient when the value feeds a logarithm.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Uint64n returns a uniform integer in [0, n) using Lemire's unbiased
// multiply-shift rejection method. n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 computes the 128-bit product of x and y.
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method with a cached spare.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// StochasticRound rounds x to ⌊x⌋ with probability ⌈x⌉−x and to ⌈x⌉ with
// probability x−⌊x⌋, so that the expectation of the result is exactly x.
// This is the StochRound routine of Algorithm 2 (line 16); R-TBS uses it to
// minimize sample-size variance (Theorem 4.4).
func (r *RNG) StochasticRound(x float64) int {
	fl := math.Floor(x)
	frac := x - fl
	n := int(fl)
	if frac > 0 && r.Float64() < frac {
		n++
	}
	return n
}
