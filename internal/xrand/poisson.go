package xrand

import "math"

// Poisson returns a Poisson(mean) variate. Batch-size processes with random
// arrivals (Section 3's i.i.d. batch-size assumption in Theorem 3.1) use
// Poisson batch sizes in several experiments; the generator is exact:
// Knuth multiplication for small means and two-sided mode-centered inversion
// for large means.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic("xrand: Poisson with negative or NaN mean")
	case mean == 0:
		return 0
	case mean < 30:
		return r.poissonKnuth(mean)
	default:
		return r.poissonMode(mean)
	}
}

func (r *RNG) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func (r *RNG) poissonMode(mean float64) int {
	m := int(math.Floor(mean))
	logPM := float64(m)*math.Log(mean) - mean - lgamma(float64(m)+1)
	pm := math.Exp(logPM)
	u := r.Float64()
	if u < pm {
		return m
	}
	u -= pm
	fLo, fHi := pm, pm
	lo, hi := m, m
	// The support is unbounded above; cap the walk generously beyond any
	// realistically reachable tail (20σ) to guarantee termination even under
	// floating-point pathologies.
	maxHi := m + 20*int(math.Sqrt(mean)+1)
	for lo > 0 || hi < maxHi {
		if hi < maxHi {
			fHi *= mean / float64(hi+1)
			hi++
			if u < fHi {
				return hi
			}
			u -= fHi
		}
		if lo > 0 {
			fLo *= float64(lo) / mean
			lo--
			if u < fLo {
				return lo
			}
			u -= fLo
		}
	}
	return m
}
