package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialEdgeCases(t *testing.T) {
	r := New(20)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	if got := r.Binomial(10, -0.1); got != 0 {
		t.Errorf("Binomial(10, -0.1) = %d", got)
	}
	if got := r.Binomial(10, 1.1); got != 10 {
		t.Errorf("Binomial(10, 1.1) = %d", got)
	}
}

func TestBinomialSupportProperty(t *testing.T) {
	r := New(21)
	f := func(rawN uint16, rawP uint16) bool {
		n := int(rawN % 5000)
		p := float64(rawP) / 65535
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3},      // inversion path
		{100, 0.05},    // inversion path
		{1000, 0.5},    // mode path
		{100000, 0.01}, // mode path, large n
		{5000, 0.9},    // flip path
	}
	for _, c := range cases {
		r := New(uint64(c.n))
		const trials = 50000
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			k := float64(r.Binomial(c.n, c.p))
			sum += k
			sum2 += k * k
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		se := math.Sqrt(wantVar / trials)
		if math.Abs(mean-wantMean) > 5*se+1e-9 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		variance := sum2/trials - mean*mean
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.5 {
			t.Errorf("Binomial(%d,%v) variance = %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialExactSmallPMF(t *testing.T) {
	// Compare empirical pmf against exact pmf for n=6, p=0.4.
	r := New(23)
	const n, trials = 6, 300000
	p := 0.4
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[r.Binomial(n, p)]++
	}
	for k := 0; k <= n; k++ {
		want := math.Exp(logBinomPMF(n, p, k))
		got := float64(counts[k]) / trials
		se := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 6*se+1e-6 {
			t.Errorf("pmf(%d): got %v want %v", k, got, want)
		}
	}
}

func TestHypergeometricEdgeCases(t *testing.T) {
	r := New(24)
	if got := r.Hypergeometric(0, 5, 5); got != 0 {
		t.Errorf("k=0: %d", got)
	}
	if got := r.Hypergeometric(5, 0, 5); got != 0 {
		t.Errorf("a=0: %d", got)
	}
	if got := r.Hypergeometric(10, 4, 6); got != 4 {
		t.Errorf("k=a+b: %d", got)
	}
	if got := r.Hypergeometric(12, 4, 6); got != 4 {
		t.Errorf("k>a+b: %d", got)
	}
	// Drawing everything but one: result in {a-1, a}.
	for i := 0; i < 100; i++ {
		got := r.Hypergeometric(9, 4, 6)
		if got != 3 && got != 4 {
			t.Fatalf("k=9,a=4,b=6: %d", got)
		}
	}
}

func TestHypergeometricSupportProperty(t *testing.T) {
	r := New(25)
	f := func(rk, ra, rb uint16) bool {
		k, a, b := int(rk%2000), int(ra%2000), int(rb%2000)
		n := r.Hypergeometric(k, a, b)
		lo := 0
		if k-b > 0 {
			lo = k - b
		}
		hi := k
		if a < hi {
			hi = a
		}
		if k >= a+b {
			return n == a
		}
		return n >= lo && n <= hi
	}
	cfg := &quick.Config{MaxCount: 3000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHypergeometricMoments(t *testing.T) {
	cases := []struct{ k, a, b int }{
		{10, 30, 70},       // sequential path
		{500, 2000, 3000},  // mode path
		{50, 1000, 50},     // a > b symmetry
		{9000, 5000, 5000}, // 2k > a+b symmetry
	}
	for _, c := range cases {
		r := New(uint64(c.k*7 + c.a))
		const trials = 40000
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			n := float64(r.Hypergeometric(c.k, c.a, c.b))
			sum += n
			sum2 += n * n
		}
		N := float64(c.a + c.b)
		wantMean := float64(c.k) * float64(c.a) / N
		wantVar := float64(c.k) * (float64(c.a) / N) * (float64(c.b) / N) * (N - float64(c.k)) / (N - 1)
		mean := sum / trials
		se := math.Sqrt(wantVar/trials) + 1e-9
		if math.Abs(mean-wantMean) > 6*se {
			t.Errorf("HyperGeo(%d,%d,%d) mean = %v, want %v", c.k, c.a, c.b, mean, wantMean)
		}
		variance := sum2/trials - mean*mean
		if wantVar > 0 && math.Abs(variance-wantVar) > 0.1*wantVar+0.5 {
			t.Errorf("HyperGeo(%d,%d,%d) variance = %v, want %v", c.k, c.a, c.b, variance, wantVar)
		}
	}
}

func TestMultivariateHypergeometricSumsAndBounds(t *testing.T) {
	r := New(26)
	counts := []int{100, 0, 250, 50, 600}
	for _, k := range []int{0, 1, 37, 500, 1000, 1500} {
		out := r.MultivariateHypergeometric(counts, k)
		if len(out) != len(counts) {
			t.Fatalf("length mismatch")
		}
		sum := 0
		for i, v := range out {
			if v < 0 || v > counts[i] {
				t.Fatalf("k=%d: color %d drew %d of %d", k, i, v, counts[i])
			}
			sum += v
		}
		want := k
		if want > 1000 {
			want = 1000
		}
		if sum != want {
			t.Fatalf("k=%d: total drawn %d, want %d", k, sum, want)
		}
	}
}

func TestMultivariateHypergeometricMarginals(t *testing.T) {
	r := New(27)
	counts := []int{30, 50, 20}
	const k, trials = 40, 30000
	sums := make([]float64, 3)
	for i := 0; i < trials; i++ {
		out := r.MultivariateHypergeometric(counts, k)
		for j, v := range out {
			sums[j] += float64(v)
		}
	}
	for j, c := range counts {
		wantMean := float64(k) * float64(c) / 100.0
		mean := sums[j] / trials
		if math.Abs(mean-wantMean) > 0.15 {
			t.Errorf("color %d marginal mean = %v, want %v", j, mean, wantMean)
		}
	}
}

func TestPoissonEdgeAndMoments(t *testing.T) {
	r := New(28)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	for _, mean := range []float64{0.5, 3, 25, 100, 10000} {
		const trials = 30000
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			k := float64(r.Poisson(mean))
			if k < 0 {
				t.Fatalf("Poisson(%v) negative", mean)
			}
			sum += k
			sum2 += k * k
		}
		m := sum / trials
		se := math.Sqrt(mean / trials)
		if math.Abs(m-mean) > 6*se {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		v := sum2/trials - m*m
		if math.Abs(v-mean) > 0.1*mean+0.5 {
			t.Errorf("Poisson(%v) variance = %v", mean, v)
		}
	}
}

func TestSampleIndicesBasics(t *testing.T) {
	r := New(29)
	for _, tc := range []struct{ n, m int }{{0, 0}, {5, 0}, {5, 5}, {5, 10}, {100, 7}} {
		got := r.SampleIndices(tc.n, tc.m)
		want := tc.m
		if want > tc.n {
			want = tc.n
		}
		if len(got) != want {
			t.Fatalf("SampleIndices(%d,%d) len = %d, want %d", tc.n, tc.m, len(got), want)
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("SampleIndices(%d,%d) invalid: %v", tc.n, tc.m, got)
			}
			seen[v] = true
		}
	}
}

func TestSampleIndicesUniform(t *testing.T) {
	r := New(30)
	const n, m, trials = 10, 3, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleIndices(n, m) {
			counts[v]++
		}
	}
	want := float64(trials) * m / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("index %d drawn %d times, want ~%v", k, c, want)
		}
	}
}

func TestSampleIndicesSparseMatchesDense(t *testing.T) {
	r := New(31)
	const n, m, trials = 50, 4, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		out := r.SampleIndicesSparse(n, m)
		if len(out) != m {
			t.Fatalf("sparse len %d", len(out))
		}
		seen := make(map[int]bool)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("sparse invalid: %v", out)
			}
			seen[v] = true
			counts[v]++
		}
	}
	want := float64(trials) * m / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("sparse index %d drawn %d times, want ~%v", k, c, want)
		}
	}
}

func TestSampleGeneric(t *testing.T) {
	r := New(32)
	items := []string{"a", "b", "c", "d"}
	got := Sample(r, items, 2)
	if len(got) != 2 {
		t.Fatalf("Sample len = %d", len(got))
	}
	if got[0] == got[1] {
		t.Fatalf("Sample returned duplicate: %v", got)
	}
	if len(Sample(r, items, 0)) != 0 {
		t.Error("Sample(.., 0) not empty")
	}
	if len(Sample(r, items, 9)) != 4 {
		t.Error("Sample(.., 9) should clamp to 4")
	}
}

func TestSampleInPlace(t *testing.T) {
	r := New(33)
	items := []int{1, 2, 3, 4, 5, 6}
	got := SampleInPlace(r, items, 3)
	if len(got) != 3 {
		t.Fatalf("len %d", len(got))
	}
	// The original multiset must be preserved.
	sum := 0
	for _, v := range items {
		sum += v
	}
	if sum != 21 {
		t.Errorf("SampleInPlace corrupted the slice: %v", items)
	}
}
