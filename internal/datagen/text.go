package datagen

import (
	"fmt"

	"repro/internal/xrand"
)

// Doc is one message of the text stream: a bag of word identifiers and a
// binary label (1 = the simulated user finds it interesting).
type Doc struct {
	Words []int
	Label int
}

// Text generates a recurring-context message stream that stands in for the
// Usenet2 dataset of Katakis et al. used in Section 6.4 (the real dataset —
// 1500 messages from the 20 Newsgroups collection with the simulated user's
// interest flipping every 300 messages — is not redistributable, so we
// synthesize a stream with the same structure; see DESIGN.md).
//
// Messages are drawn from NumTopics topic-conditional word distributions
// over a shared vocabulary: each topic owns TopicWords characteristic words
// and all topics share CommonWords background words. A message from topic k
// mixes characteristic and background words; its label is 1 exactly when k
// is the topic the user currently cares about, and the user's interest
// cycles to the next topic every FlipEvery messages — recreating the
// recurring contexts that defeat sliding windows.
type Text struct {
	NumTopics   int
	TopicWords  int
	CommonWords int
	MeanLength  float64
	TopicBias   float64 // probability a word is topic-characteristic
	FlipEvery   int

	rng      *xrand.RNG
	msgCount int
}

// TextConfig collects the parameters; zero values give 3 topics, 150
// characteristic words each, 300 common words, mean length 40, bias 0.35,
// and an interest flip every 300 messages as in the paper. Three topics
// (rather than two) keep a fraction of the labels stable across an interest
// flip, matching the partial concept drift of the real dataset.
type TextConfig struct {
	NumTopics   int
	TopicWords  int
	CommonWords int
	MeanLength  float64
	TopicBias   float64
	FlipEvery   int
}

// NewText returns the stream generator.
func NewText(cfg TextConfig, rng *xrand.RNG) (*Text, error) {
	if rng == nil {
		return nil, fmt.Errorf("datagen: nil RNG")
	}
	if cfg.NumTopics == 0 {
		cfg.NumTopics = 3
	}
	if cfg.TopicWords == 0 {
		cfg.TopicWords = 150
	}
	if cfg.CommonWords == 0 {
		cfg.CommonWords = 300
	}
	if cfg.MeanLength == 0 {
		cfg.MeanLength = 40
	}
	if cfg.TopicBias == 0 {
		cfg.TopicBias = 0.35
	}
	if cfg.FlipEvery == 0 {
		cfg.FlipEvery = 300
	}
	if cfg.NumTopics < 2 || cfg.TopicWords < 1 || cfg.CommonWords < 0 ||
		cfg.MeanLength <= 0 || cfg.TopicBias <= 0 || cfg.TopicBias > 1 || cfg.FlipEvery < 1 {
		return nil, fmt.Errorf("datagen: invalid text config %+v", cfg)
	}
	return &Text{
		NumTopics:   cfg.NumTopics,
		TopicWords:  cfg.TopicWords,
		CommonWords: cfg.CommonWords,
		MeanLength:  cfg.MeanLength,
		TopicBias:   cfg.TopicBias,
		FlipEvery:   cfg.FlipEvery,
		rng:         rng,
	}, nil
}

// VocabSize returns the total number of distinct word identifiers.
func (g *Text) VocabSize() int { return g.NumTopics*g.TopicWords + g.CommonWords }

// InterestAt returns the topic the user is interested in for the i-th
// message of the stream (0-based).
func (g *Text) InterestAt(i int) int { return (i / g.FlipEvery) % g.NumTopics }

// Batch generates the next size messages (the time step is implicit: the
// generator counts messages, matching the dataset's per-message interest
// schedule).
func (g *Text) Batch(_, size int) []Doc {
	out := make([]Doc, size)
	for i := range out {
		out[i] = g.message()
	}
	return out
}

// message draws one labelled message and advances the message counter.
func (g *Text) message() Doc {
	interest := g.InterestAt(g.msgCount)
	g.msgCount++
	topic := g.rng.Intn(g.NumTopics)
	length := g.rng.Poisson(g.MeanLength)
	if length < 5 {
		length = 5
	}
	words := make([]int, length)
	for j := range words {
		if g.rng.Bernoulli(g.TopicBias) {
			// Topic-characteristic word: ids [topic·TopicWords, (topic+1)·TopicWords).
			words[j] = topic*g.TopicWords + g.rng.Intn(g.TopicWords)
		} else {
			// Background word shared by all topics.
			words[j] = g.NumTopics*g.TopicWords + g.rng.Intn(g.CommonWords)
		}
	}
	label := 0
	if topic == interest {
		label = 1
	}
	return Doc{Words: words, Label: label}
}
