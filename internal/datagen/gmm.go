package datagen

import (
	"fmt"

	"repro/internal/xrand"
)

// Point is one item of the kNN classification stream: 2-D coordinates and a
// ground-truth class.
type Point struct {
	X     [2]float64
	Class int
}

// GMM is the Gaussian-mixture classification generator of Section 6.2:
// NumClasses centroids placed uniformly in [0, Side]² at construction; each
// item picks a class according to mode-dependent relative frequencies (the
// first half of the classes is Skew times more frequent in normal mode and
// Skew times less frequent in abnormal mode) and draws coordinates
// independently from N(centroid, Sigma²).
type GMM struct {
	Centroids [][2]float64
	Sigma     float64
	Skew      float64
	Schedule  Schedule
	Warmup    int // batches of forced normal mode before the schedule applies

	rng *xrand.RNG
}

// GMMConfig collects the generator's parameters; zero values select the
// paper's settings (100 classes, side 80, σ = 1, skew 5).
type GMMConfig struct {
	NumClasses int
	Side       float64
	Sigma      float64
	Skew       float64
	Schedule   Schedule
	Warmup     int
}

// NewGMM places the class centroids using rng and returns the generator.
func NewGMM(cfg GMMConfig, rng *xrand.RNG) (*GMM, error) {
	if rng == nil {
		return nil, fmt.Errorf("datagen: nil RNG")
	}
	if cfg.NumClasses == 0 {
		cfg.NumClasses = 100
	}
	if cfg.Side == 0 {
		cfg.Side = 80
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 1
	}
	if cfg.Skew == 0 {
		cfg.Skew = 5
	}
	if cfg.Schedule == nil {
		cfg.Schedule = AlwaysNormal{}
	}
	if cfg.NumClasses < 2 || cfg.Side <= 0 || cfg.Sigma <= 0 || cfg.Skew < 1 {
		return nil, fmt.Errorf("datagen: invalid GMM config %+v", cfg)
	}
	g := &GMM{
		Centroids: make([][2]float64, cfg.NumClasses),
		Sigma:     cfg.Sigma,
		Skew:      cfg.Skew,
		Schedule:  cfg.Schedule,
		Warmup:    cfg.Warmup,
		rng:       rng,
	}
	for i := range g.Centroids {
		g.Centroids[i] = [2]float64{rng.Float64() * cfg.Side, rng.Float64() * cfg.Side}
	}
	return g, nil
}

// Batch generates the batch for driver time t (1-based). Warm-up batches
// (t ≤ Warmup) are always normal; afterwards the schedule is consulted with
// time measured relative to the end of warm-up.
func (g *GMM) Batch(t, size int) []Point {
	mode := ModeNormal
	if t > g.Warmup {
		mode = g.Schedule.ModeAt(t - g.Warmup)
	}
	out := make([]Point, size)
	for i := range out {
		out[i] = g.point(mode)
	}
	return out
}

// point draws one labelled point under the given mode.
func (g *GMM) point(mode Mode) Point {
	half := len(g.Centroids) / 2
	// Relative frequency of the first half vs the second: Skew:1 in normal
	// mode, 1:Skew in abnormal mode.
	heavyFirst := mode == ModeNormal
	pFirst := g.Skew / (g.Skew + 1)
	if !heavyFirst {
		pFirst = 1 / (g.Skew + 1)
	}
	var class int
	if g.rng.Bernoulli(pFirst) {
		class = g.rng.Intn(half)
	} else {
		class = half + g.rng.Intn(len(g.Centroids)-half)
	}
	c := g.Centroids[class]
	return Point{
		X:     [2]float64{g.rng.Normal(c[0], g.Sigma), g.rng.Normal(c[1], g.Sigma)},
		Class: class,
	}
}
