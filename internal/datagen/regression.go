package datagen

import (
	"fmt"

	"repro/internal/xrand"
)

// Obs is one item of the regression stream: a 2-D covariate vector and a
// response.
type Obs struct {
	X [2]float64
	Y float64
}

// Regression generates the linear-regression stream of Section 6.3:
// y = b₁x₁ + b₂x₂ + ε with ε ~ N(0, 1) and x₁, x₂ ~ Uniform(0, 1). The
// coefficient vector is (4.2, −0.4) in normal mode and (−3.6, 3.8) in
// abnormal mode.
type Regression struct {
	NormalCoef   [2]float64
	AbnormalCoef [2]float64
	Noise        float64
	Schedule     Schedule
	Warmup       int

	rng *xrand.RNG
}

// RegressionConfig collects the parameters; zero values select the paper's
// settings.
type RegressionConfig struct {
	NormalCoef   [2]float64
	AbnormalCoef [2]float64
	Noise        float64
	Schedule     Schedule
	Warmup       int
}

// NewRegression returns the stream generator.
func NewRegression(cfg RegressionConfig, rng *xrand.RNG) (*Regression, error) {
	if rng == nil {
		return nil, fmt.Errorf("datagen: nil RNG")
	}
	zero := [2]float64{}
	if cfg.NormalCoef == zero {
		cfg.NormalCoef = [2]float64{4.2, -0.4}
	}
	if cfg.AbnormalCoef == zero {
		cfg.AbnormalCoef = [2]float64{-3.6, 3.8}
	}
	if cfg.Noise == 0 {
		cfg.Noise = 1
	}
	if cfg.Schedule == nil {
		cfg.Schedule = AlwaysNormal{}
	}
	if cfg.Noise < 0 {
		return nil, fmt.Errorf("datagen: negative noise %v", cfg.Noise)
	}
	return &Regression{
		NormalCoef:   cfg.NormalCoef,
		AbnormalCoef: cfg.AbnormalCoef,
		Noise:        cfg.Noise,
		Schedule:     cfg.Schedule,
		Warmup:       cfg.Warmup,
		rng:          rng,
	}, nil
}

// Batch generates the batch for driver time t (1-based).
func (r *Regression) Batch(t, size int) []Obs {
	coef := r.NormalCoef
	if t > r.Warmup && r.Schedule.ModeAt(t-r.Warmup) == ModeAbnormal {
		coef = r.AbnormalCoef
	}
	out := make([]Obs, size)
	for i := range out {
		x1, x2 := r.rng.Float64(), r.rng.Float64()
		out[i] = Obs{
			X: [2]float64{x1, x2},
			Y: coef[0]*x1 + coef[1]*x2 + r.rng.Normal(0, r.Noise),
		}
	}
	return out
}

// TrueCoef returns the active coefficient vector at driver time t; the
// experiment harness uses it to compute out-of-sample MSE against the
// current ground truth.
func (r *Regression) TrueCoef(t int) [2]float64 {
	if t > r.Warmup && r.Schedule.ModeAt(t-r.Warmup) == ModeAbnormal {
		return r.AbnormalCoef
	}
	return r.NormalCoef
}
