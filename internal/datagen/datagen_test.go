package datagen

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestSingleEventSchedule(t *testing.T) {
	s := SingleEvent{Start: 10, End: 20}
	for _, tc := range []struct {
		t    int
		want Mode
	}{
		{-5, ModeNormal}, {0, ModeNormal}, {10, ModeNormal},
		{11, ModeAbnormal}, {20, ModeAbnormal}, {21, ModeNormal}, {100, ModeNormal},
	} {
		if got := s.ModeAt(tc.t); got != tc.want {
			t.Errorf("SingleEvent.ModeAt(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestPeriodicSchedule(t *testing.T) {
	p := Periodic{Delta: 10, Eta: 10}
	// First 30 steps of P(10,10) must match the single-event pattern
	// (paper: "the first 30 batches of Periodic(10, 10) display the same
	// behavior as in the single event experiment").
	se := SingleEvent{Start: 10, End: 20}
	for i := 1; i <= 30; i++ {
		if p.ModeAt(i) != se.ModeAt(i) {
			t.Errorf("P(10,10) and SingleEvent disagree at t=%d", i)
		}
	}
	if p.ModeAt(31) != ModeAbnormal {
		t.Error("P(10,10) should be abnormal at t=31")
	}
	// Asymmetric pattern P(20,10).
	q := Periodic{Delta: 20, Eta: 10}
	for _, tc := range []struct {
		t    int
		want Mode
	}{
		{1, ModeNormal}, {20, ModeNormal}, {21, ModeAbnormal},
		{30, ModeAbnormal}, {31, ModeNormal}, {51, ModeAbnormal},
	} {
		if got := q.ModeAt(tc.t); got != tc.want {
			t.Errorf("P(20,10).ModeAt(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if (Periodic{}).ModeAt(5) != ModeNormal {
		t.Error("degenerate periodic should be normal")
	}
	if ModeNormal.String() != "normal" || ModeAbnormal.String() != "abnormal" {
		t.Error("Mode.String mismatch")
	}
}

func TestGMMDefaultsAndModes(t *testing.T) {
	g, err := NewGMM(GMMConfig{Schedule: SingleEvent{Start: 0, End: 1000}, Warmup: 0}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Centroids) != 100 {
		t.Fatalf("centroids = %d", len(g.Centroids))
	}
	for _, c := range g.Centroids {
		if c[0] < 0 || c[0] > 80 || c[1] < 0 || c[1] > 80 {
			t.Fatalf("centroid out of [0,80]²: %v", c)
		}
	}
	// In abnormal mode the second half of the classes must dominate 5:1.
	batch := g.Batch(1, 60000)
	firstHalf := 0
	for _, p := range batch {
		if p.Class < 50 {
			firstHalf++
		}
		if p.Class < 0 || p.Class > 99 {
			t.Fatalf("class out of range: %d", p.Class)
		}
	}
	frac := float64(firstHalf) / float64(len(batch))
	if math.Abs(frac-1.0/6) > 0.01 {
		t.Errorf("abnormal-mode first-half fraction = %v, want ≈ 1/6", frac)
	}
}

func TestGMMNormalModeSkew(t *testing.T) {
	g, err := NewGMM(GMMConfig{}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	batch := g.Batch(1, 60000)
	firstHalf := 0
	for _, p := range batch {
		if p.Class < 50 {
			firstHalf++
		}
	}
	frac := float64(firstHalf) / float64(len(batch))
	if math.Abs(frac-5.0/6) > 0.01 {
		t.Errorf("normal-mode first-half fraction = %v, want ≈ 5/6", frac)
	}
}

func TestGMMPointsNearCentroid(t *testing.T) {
	g, err := NewGMM(GMMConfig{}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Batch(1, 2000) {
		c := g.Centroids[p.Class]
		dx, dy := p.X[0]-c[0], p.X[1]-c[1]
		if math.Hypot(dx, dy) > 6 { // 6σ
			t.Fatalf("point %v too far from centroid %v of class %d", p.X, c, p.Class)
		}
	}
}

func TestGMMWarmupForcesNormal(t *testing.T) {
	// With warmup 100 and a schedule that is always abnormal, batches
	// during warm-up must still be normal-mode.
	g, err := NewGMM(GMMConfig{Schedule: SingleEvent{Start: 0, End: 1 << 30}, Warmup: 100}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	batch := g.Batch(50, 60000) // t=50 ≤ warmup
	firstHalf := 0
	for _, p := range batch {
		if p.Class < 50 {
			firstHalf++
		}
	}
	frac := float64(firstHalf) / float64(len(batch))
	if math.Abs(frac-5.0/6) > 0.01 {
		t.Errorf("warm-up batch first-half fraction = %v, want ≈ 5/6", frac)
	}
}

func TestGMMValidation(t *testing.T) {
	if _, err := NewGMM(GMMConfig{}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewGMM(GMMConfig{NumClasses: 1}, xrand.New(1)); err == nil {
		t.Error("single class accepted")
	}
	if _, err := NewGMM(GMMConfig{Skew: 0.5}, xrand.New(1)); err == nil {
		t.Error("skew < 1 accepted")
	}
}

func TestRegressionModes(t *testing.T) {
	r, err := NewRegression(RegressionConfig{
		Schedule: SingleEvent{Start: 0, End: 10},
		Warmup:   0,
		Noise:    1e-9, // effectively noiseless for coefficient recovery
	}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// t=1 is abnormal under this schedule.
	if got := r.TrueCoef(1); got != [2]float64{-3.6, 3.8} {
		t.Errorf("TrueCoef(1) = %v", got)
	}
	if got := r.TrueCoef(11); got != [2]float64{4.2, -0.4} {
		t.Errorf("TrueCoef(11) = %v", got)
	}
	for _, o := range r.Batch(11, 500) {
		want := 4.2*o.X[0] - 0.4*o.X[1]
		if math.Abs(o.Y-want) > 1e-6 {
			t.Fatalf("noiseless y = %v, want %v", o.Y, want)
		}
		if o.X[0] < 0 || o.X[0] >= 1 || o.X[1] < 0 || o.X[1] >= 1 {
			t.Fatalf("covariates out of range: %v", o.X)
		}
	}
}

func TestRegressionNoiseLevel(t *testing.T) {
	r, err := NewRegression(RegressionConfig{}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	var w float64
	batch := r.Batch(1, 20000)
	for _, o := range batch {
		resid := o.Y - (4.2*o.X[0] - 0.4*o.X[1])
		w += resid * resid
	}
	if got := w / float64(len(batch)); math.Abs(got-1) > 0.05 {
		t.Errorf("residual variance = %v, want ≈ 1", got)
	}
}

func TestRegressionValidation(t *testing.T) {
	if _, err := NewRegression(RegressionConfig{}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewRegression(RegressionConfig{Noise: -1}, xrand.New(1)); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestTextGeneratorStructure(t *testing.T) {
	g, err := NewText(TextConfig{}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.VocabSize() != 3*150+300 {
		t.Fatalf("vocab = %d", g.VocabSize())
	}
	docs := g.Batch(1, 1500)
	if len(docs) != 1500 {
		t.Fatalf("docs = %d", len(docs))
	}
	positives := 0
	for i, d := range docs {
		if len(d.Words) < 5 {
			t.Fatalf("doc %d too short: %d", i, len(d.Words))
		}
		for _, w := range d.Words {
			if w < 0 || w >= g.VocabSize() {
				t.Fatalf("word id out of range: %d", w)
			}
		}
		if d.Label == 1 {
			positives++
		}
	}
	// Each message's topic is uniform over 3 topics and exactly one topic
	// is interesting at any time, so about a third of labels are positive.
	frac := float64(positives) / float64(len(docs))
	if math.Abs(frac-1.0/3) > 0.05 {
		t.Errorf("positive fraction = %v, want ≈ 1/3", frac)
	}
}

func TestTextInterestFlips(t *testing.T) {
	g, err := NewText(TextConfig{FlipEvery: 300}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if g.InterestAt(0) != 0 || g.InterestAt(299) != 0 {
		t.Error("interest should be topic 0 for the first 300 messages")
	}
	if g.InterestAt(300) != 1 || g.InterestAt(599) != 1 {
		t.Error("interest should flip to topic 1 at message 300")
	}
	if g.InterestAt(600) != 2 {
		t.Error("interest should rotate to topic 2 at message 600")
	}
	if g.InterestAt(900) != 0 {
		t.Error("interest should recur to topic 0 at message 900 (recurring context)")
	}
}

func TestTextLabelConsistency(t *testing.T) {
	// A doc is interesting iff its dominant characteristic words belong to
	// the active interest topic. We verify statistically: among labelled-
	// interesting docs in the first 300, characteristic words of topic 0
	// dominate those of topic 1.
	g, err := NewText(TextConfig{}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	docs := g.Batch(1, 300)
	var topic0Words, topic1Words int
	for _, d := range docs {
		if d.Label != 1 {
			continue
		}
		for _, w := range d.Words {
			switch {
			case w < 150:
				topic0Words++
			case w < 300:
				topic1Words++
			}
		}
	}
	if topic0Words == 0 || topic1Words != 0 {
		t.Errorf("interesting docs in context A: topic0 words %d, topic1 words %d (want >0, 0)",
			topic0Words, topic1Words)
	}
}

func TestTextValidation(t *testing.T) {
	if _, err := NewText(TextConfig{}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := NewText(TextConfig{TopicBias: 2}, xrand.New(1)); err == nil {
		t.Error("bias > 1 accepted")
	}
	if _, err := NewText(TextConfig{NumTopics: 1}, xrand.New(1)); err == nil {
		t.Error("single topic accepted")
	}
}
