// Package datagen generates the synthetic evolving-data streams used in the
// paper's model-quality experiments (Section 6.2–6.4): a Gaussian-mixture
// classification stream with mode-switching class frequencies (kNN), a
// mode-switching linear-regression stream, and a recurring-context text
// stream standing in for the Usenet2 dataset (Naive Bayes).
//
// All generators alternate between a "normal" and an "abnormal" mode
// according to a Schedule; the paper's two temporal patterns — a single
// disruptive event and Periodic(δ, η) — are provided.
package datagen

// Mode identifies which data-generation regime is active.
type Mode int

// The two regimes of Section 6.2: in the abnormal mode the frequent and
// infrequent classes switch roles (kNN), the regression coefficients flip
// (linear regression), and the user's interest changes (text).
const (
	ModeNormal Mode = iota
	ModeAbnormal
)

// String returns "normal" or "abnormal".
func (m Mode) String() string {
	if m == ModeAbnormal {
		return "abnormal"
	}
	return "normal"
}

// Schedule maps a time step (measured in batches after warm-up; values ≤ 0
// denote the warm-up period and are always normal) to a Mode.
type Schedule interface {
	ModeAt(t int) Mode
}

// SingleEvent models a singular disruption (Figure 10(a)): the mode is
// abnormal for Start < t ≤ End and normal otherwise.
type SingleEvent struct {
	Start, End int
}

// ModeAt implements Schedule.
func (s SingleEvent) ModeAt(t int) Mode {
	if t > s.Start && t <= s.End {
		return ModeAbnormal
	}
	return ModeNormal
}

// Periodic alternates Delta normal batches with Eta abnormal batches,
// written Periodic(δ, η) or P(δ, η) in the paper (Figures 10(b), 12, 14).
type Periodic struct {
	Delta, Eta int
}

// ModeAt implements Schedule.
func (p Periodic) ModeAt(t int) Mode {
	if t <= 0 || p.Delta+p.Eta == 0 {
		return ModeNormal
	}
	phase := (t - 1) % (p.Delta + p.Eta)
	if phase >= p.Delta {
		return ModeAbnormal
	}
	return ModeNormal
}

// AlwaysNormal is the degenerate schedule with no abnormal periods.
type AlwaysNormal struct{}

// ModeAt implements Schedule.
func (AlwaysNormal) ModeAt(int) Mode { return ModeNormal }
