package manage_test

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/manage"
	"repro/internal/xrand"
)

// Example wires a trivial "model" (the mean of the sampled values) into
// the management loop with a drift-triggered retraining policy: the model
// is rebuilt when its error on an incoming batch jumps.
func Example() {
	sampler, err := core.NewRTBS[float64](0.2, 100, xrand.New(1))
	if err != nil {
		panic(err)
	}
	train := func(sample []float64) (float64, error) {
		s := 0.0
		for _, x := range sample {
			s += x
		}
		return s / float64(len(sample)), nil
	}
	eval := func(model float64, batch []float64) float64 {
		s := 0.0
		for _, x := range batch {
			s += math.Abs(x - model)
		}
		return s / float64(len(batch))
	}
	mgr, err := manage.New(sampler, train, eval,
		&manage.OnDrift{Window: 5, Factor: 3, MinObs: 2})
	if err != nil {
		panic(err)
	}

	batchAt := func(level float64) []float64 {
		b := make([]float64, 20)
		for i := range b {
			b[i] = level
		}
		return b
	}
	// Ten quiet batches around level 10, then the stream jumps to 50.
	for t := 0; t < 10; t++ {
		if _, err := mgr.Step(batchAt(10)); err != nil {
			panic(err)
		}
	}
	before := mgr.Retrains()
	for t := 0; t < 5; t++ {
		if _, err := mgr.Step(batchAt(50)); err != nil {
			panic(err)
		}
	}
	model, _ := mgr.Model()
	fmt.Printf("retrains before jump: %d, after: %d\n", before, mgr.Retrains())
	// The drift-triggered retrain pulled the model toward the new level
	// (the time-biased sample still holds some pre-jump data by design).
	fmt.Printf("model moved toward the jump: %v\n", model > 15)
	// Output:
	// retrains before jump: 1, after: 2
	// model moved toward the jump: true
}
