// Package manage implements the online model-management loop that
// motivates the paper: maintain a temporally-biased sample, monitor the
// deployed model's error on each incoming batch, and retrain the model
// from the current sample according to a policy. The paper treats "when to
// retrain" as an orthogonal problem (Section 1, citing the concept-drift
// survey [17] and the Velox system [14]); this package provides the three
// standard policies — always, every k batches, and drift-triggered — so the
// samplers can be used end-to-end.
package manage

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Trainer builds a model from the current sample. It is called only with a
// nonempty sample.
type Trainer[T, M any] func(sample []T) (M, error)

// Evaluator scores a model on an incoming batch, returning an error
// measure (e.g. misclassification percentage) where larger means worse.
type Evaluator[T, M any] func(model M, batch []T) float64

// Policy decides, after the model has been scored on a batch, whether to
// retrain. Implementations may be stateful.
type Policy interface {
	// ShouldRetrain receives the batch index (1-based) and the model's
	// error on that batch (NaN when no score was possible) and reports
	// whether to retrain now.
	ShouldRetrain(t int, err float64) bool
}

// PolicyState is the serializable observation state of a retraining
// policy: the trailing error window and the quiet-batch counter. Always
// and Every are pure functions of the batch index and carry none; OnDrift
// exports and re-imports its detector state through it, which is what lets
// a server checkpoint a drift detector mid-stream and restore the exact
// decision process after a restart.
type PolicyState struct {
	Hist  []float64 `json:"hist,omitempty"`
	Quiet int       `json:"quiet,omitempty"`
}

// StatefulPolicy is implemented by policies whose decisions depend on
// accumulated observations. State must capture everything ShouldRetrain
// consults beyond its arguments, and SetState must restore it, so that
// State→SetState round-trips continue the identical decision sequence.
type StatefulPolicy interface {
	Policy
	State() PolicyState
	SetState(PolicyState)
}

// Always retrains after every batch — maximally adaptive, maximally
// expensive.
type Always struct{}

// ShouldRetrain implements Policy.
func (Always) ShouldRetrain(int, float64) bool { return true }

// Every retrains once every K batches.
type Every struct{ K int }

// ShouldRetrain implements Policy.
func (e Every) ShouldRetrain(t int, _ float64) bool {
	if e.K <= 1 {
		return true
	}
	return t%e.K == 0
}

// OnDrift retrains when the latest error exceeds the trailing window's
// mean by Factor standard deviations — a light-weight drift detector in
// the spirit of DDM (the concept-drift literature the paper cites). It
// also retrains unconditionally every MaxStale batches as a safety net.
type OnDrift struct {
	Window   int     // trailing errors considered (default 10)
	Factor   float64 // trigger threshold in standard deviations (default 2)
	MinObs   int     // observations required before triggering (default 3)
	MaxStale int     // force retrain after this many quiet batches (default 0 = never)

	hist  []float64
	quiet int
}

// Validate rejects configurations that would silently misbehave — most
// importantly a negative Factor, which would put the trigger threshold
// *below* the trailing mean and fire a retrain on nearly every batch.
// Manager constructors call this; Factor = 0 still means "default".
func (d *OnDrift) Validate() error {
	switch {
	case d.Factor < 0:
		return fmt.Errorf("manage: OnDrift.Factor must be nonnegative, got %v", d.Factor)
	case math.IsNaN(d.Factor):
		return fmt.Errorf("manage: OnDrift.Factor must not be NaN")
	case d.Window < 0:
		return fmt.Errorf("manage: OnDrift.Window must be nonnegative, got %d", d.Window)
	case d.MinObs < 0:
		return fmt.Errorf("manage: OnDrift.MinObs must be nonnegative, got %d", d.MinObs)
	case d.MaxStale < 0:
		return fmt.Errorf("manage: OnDrift.MaxStale must be nonnegative, got %d", d.MaxStale)
	}
	return nil
}

// ShouldRetrain implements Policy.
func (d *OnDrift) ShouldRetrain(_ int, err float64) bool {
	window := d.Window
	if window <= 0 {
		window = 10
	}
	factor := d.Factor
	if factor <= 0 || math.IsNaN(factor) {
		// 0 selects the default; negative/NaN values are rejected by
		// Validate, and clamped to the default here for callers that use
		// the policy standalone.
		factor = 2
	}
	minObs := d.MinObs
	if minObs <= 0 {
		minObs = 3
	}
	defer func() {
		if !math.IsNaN(err) {
			d.hist = append(d.hist, err)
			if len(d.hist) > window {
				d.hist = d.hist[len(d.hist)-window:]
			}
		}
	}()
	d.quiet++
	if d.MaxStale > 0 && d.quiet >= d.MaxStale {
		d.reset()
		return true
	}
	if math.IsNaN(err) || len(d.hist) < minObs {
		return false
	}
	mean, sd := meanStd(d.hist)
	if err > mean+factor*sd+1e-12 {
		d.reset()
		return true
	}
	return false
}

// reset clears the detector after a retrain so the new model gets a fresh
// baseline.
func (d *OnDrift) reset() {
	d.hist = d.hist[:0]
	d.quiet = 0
}

// State implements StatefulPolicy: it returns a copy of the detector's
// trailing error window and quiet counter.
func (d *OnDrift) State() PolicyState {
	return PolicyState{Hist: append([]float64(nil), d.hist...), Quiet: d.quiet}
}

// SetState implements StatefulPolicy, replacing the detector state with a
// copy of st.
func (d *OnDrift) SetState(st PolicyState) {
	d.hist = append(d.hist[:0], st.Hist...)
	d.quiet = st.Quiet
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	if len(xs) > 1 {
		v /= float64(len(xs) - 1)
	}
	return m, math.Sqrt(v)
}

// Manager runs the predict→sample→maybe-retrain loop over a batch stream.
type Manager[T, M any] struct {
	sampler core.Sampler[T]
	train   Trainer[T, M]
	eval    Evaluator[T, M]
	policy  Policy

	model    M
	hasModel bool
	retrains int
	t        int
}

// New returns a Manager wiring a sampler, a trainer, an evaluator, and a
// retraining policy together.
func New[T, M any](sampler core.Sampler[T], train Trainer[T, M], eval Evaluator[T, M], policy Policy) (*Manager[T, M], error) {
	if sampler == nil || train == nil || eval == nil || policy == nil {
		return nil, fmt.Errorf("manage: nil component")
	}
	if v, ok := policy.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return &Manager[T, M]{sampler: sampler, train: train, eval: eval, policy: policy}, nil
}

// Step processes one incoming batch: it scores the deployed model on the
// batch (returning that error, or NaN if no model exists yet or the batch
// is empty), folds the batch into the sample, and retrains if the policy
// fires (or if no model exists and data is available). Training errors are
// returned; a failed training keeps the previous model deployed.
func (m *Manager[T, M]) Step(batch []T) (float64, error) {
	m.t++
	err := math.NaN()
	if m.hasModel && len(batch) > 0 {
		err = m.eval(m.model, batch)
	}
	m.sampler.Advance(batch)
	if m.policy.ShouldRetrain(m.t, err) || !m.hasModel {
		sample := m.sampler.Sample()
		if len(sample) > 0 {
			model, terr := m.train(sample)
			if terr != nil {
				return err, fmt.Errorf("manage: retrain at t=%d: %w", m.t, terr)
			}
			m.model = model
			m.hasModel = true
			m.retrains++
		}
	}
	return err, nil
}

// Model returns the deployed model and whether one exists.
func (m *Manager[T, M]) Model() (M, bool) { return m.model, m.hasModel }

// Retrains returns how many times a model has been (re)trained.
func (m *Manager[T, M]) Retrains() int { return m.retrains }

// T returns the number of batches processed.
func (m *Manager[T, M]) T() int { return m.t }
