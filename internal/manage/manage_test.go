package manage

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/xrand"
)

func TestEveryPolicy(t *testing.T) {
	e := Every{K: 5}
	fired := 0
	for tt := 1; tt <= 20; tt++ {
		if e.ShouldRetrain(tt, 0) {
			fired++
			if tt%5 != 0 {
				t.Errorf("Every{5} fired at t=%d", tt)
			}
		}
	}
	if fired != 4 {
		t.Errorf("Every{5} fired %d times in 20 steps", fired)
	}
	if !(Every{K: 0}).ShouldRetrain(3, 0) {
		t.Error("Every{0} should behave like Always")
	}
	if !(Always{}).ShouldRetrain(1, math.NaN()) {
		t.Error("Always must always fire")
	}
}

func TestOnDriftTriggersOnSpike(t *testing.T) {
	d := &OnDrift{Window: 10, Factor: 2, MinObs: 3}
	// Stable phase: errors around 10 ± small.
	stable := []float64{10, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9}
	for i, e := range stable {
		if d.ShouldRetrain(i+1, e) {
			t.Fatalf("drift detector fired during stable phase at %d", i)
		}
	}
	// Spike.
	if !d.ShouldRetrain(len(stable)+1, 50) {
		t.Fatal("drift detector missed a 5x error spike")
	}
	// After reset, a normal reading must not re-trigger immediately.
	if d.ShouldRetrain(len(stable)+2, 10) {
		t.Error("drift detector re-fired right after reset")
	}
}

func TestOnDriftIgnoresNaNAndWarmsUp(t *testing.T) {
	d := &OnDrift{MinObs: 3}
	if d.ShouldRetrain(1, math.NaN()) {
		t.Error("fired on NaN")
	}
	if d.ShouldRetrain(2, 100) || d.ShouldRetrain(3, 1) {
		t.Error("fired before MinObs observations")
	}
}

func TestOnDriftMaxStale(t *testing.T) {
	d := &OnDrift{MaxStale: 4}
	fires := 0
	for tt := 1; tt <= 12; tt++ {
		if d.ShouldRetrain(tt, 10) {
			fires++
		}
	}
	if fires != 3 {
		t.Errorf("MaxStale=4 fired %d times in 12 steps, want 3", fires)
	}
}

var _ StatefulPolicy = (*OnDrift)(nil)

// TestOnDriftNaNDoesNotPolluteWindow: NaN scores (no model yet, empty
// batches) must neither enter the trailing window nor reset the quiet
// counter, so a spike right after a NaN gap is still detected against the
// pre-gap baseline.
func TestOnDriftNaNDoesNotPolluteWindow(t *testing.T) {
	d := &OnDrift{Window: 10, Factor: 2, MinObs: 3}
	for i, e := range []float64{10, 10.2, 9.8, 10.1} {
		if d.ShouldRetrain(i+1, e) {
			t.Fatalf("fired during stable phase at t=%d", i+1)
		}
	}
	for i := 0; i < 5; i++ {
		if d.ShouldRetrain(5+i, math.NaN()) {
			t.Fatalf("fired on NaN at t=%d", 5+i)
		}
	}
	if len(d.hist) != 4 {
		t.Errorf("NaN entered the trailing window: len=%d, want 4", len(d.hist))
	}
	if !d.ShouldRetrain(10, 50) {
		t.Error("spike after a NaN gap not detected")
	}
}

// TestOnDriftMinObsBoundary: the detector must stay silent until the
// window holds MinObs observations — the decision at time t sees the
// window *before* t's error is appended, so the first fireable call is the
// (MinObs+1)-th non-NaN observation.
func TestOnDriftMinObsBoundary(t *testing.T) {
	d := &OnDrift{Window: 10, Factor: 2, MinObs: 3}
	d.ShouldRetrain(1, 10)
	d.ShouldRetrain(2, 10.1)
	// Third call: only 2 observations in the window — a huge spike must
	// not fire yet.
	if d.ShouldRetrain(3, 1000) {
		t.Fatal("fired with fewer than MinObs observations in the window")
	}
	// The spike itself entered the window; reset with a fresh detector to
	// test the exact boundary cleanly.
	d = &OnDrift{Window: 10, Factor: 2, MinObs: 3}
	for i, e := range []float64{10, 9.9, 10.1} {
		if d.ShouldRetrain(i+1, e) {
			t.Fatalf("fired during warm-up at t=%d", i+1)
		}
	}
	if !d.ShouldRetrain(4, 60) {
		t.Error("spike on the first post-MinObs call not detected")
	}
}

// TestOnDriftMaxStaleAllNaN: the MaxStale safety net must fire even when
// every score is NaN (e.g. a stream of empty batches) — it is the
// guarantee that a model can never go stale forever just because scoring
// is impossible.
func TestOnDriftMaxStaleAllNaN(t *testing.T) {
	d := &OnDrift{MaxStale: 5}
	fires := 0
	for tt := 1; tt <= 15; tt++ {
		if d.ShouldRetrain(tt, math.NaN()) {
			fires++
			if tt%5 != 0 {
				t.Errorf("MaxStale fired off-schedule at t=%d", tt)
			}
		}
	}
	if fires != 3 {
		t.Errorf("MaxStale=5 fired %d times in 15 all-NaN steps, want 3", fires)
	}
}

// TestOnDriftStateRoundTrip: State→SetState must continue the identical
// decision sequence — the property the server's checkpoint/restore of
// drift detectors depends on.
func TestOnDriftStateRoundTrip(t *testing.T) {
	errs := []float64{10, 10.4, 9.6, math.NaN(), 10.2, 9.9, 30, 10.1, 9.8, 10.0, 45, 10.2}
	fresh := func() *OnDrift { return &OnDrift{Window: 6, Factor: 2, MinObs: 3, MaxStale: 9} }

	reference := fresh()
	var want []bool
	for i, e := range errs {
		want = append(want, reference.ShouldRetrain(i+1, e))
	}

	// Replay the first half, checkpoint, restore into a fresh policy, and
	// replay the rest: decisions must match the uninterrupted run.
	half := len(errs) / 2
	first := fresh()
	for i := 0; i < half; i++ {
		if got := first.ShouldRetrain(i+1, errs[i]); got != want[i] {
			t.Fatalf("pre-checkpoint decision %d = %v, want %v", i, got, want[i])
		}
	}
	st := first.State()
	// Mutating the exported state must not alias the detector.
	if len(st.Hist) > 0 {
		st.Hist[0] = -1
		if first.hist[0] == -1 {
			t.Fatal("State aliases the detector's window")
		}
		st.Hist[0] = first.hist[0]
	}
	second := fresh()
	second.SetState(st)
	for i := half; i < len(errs); i++ {
		if got := second.ShouldRetrain(i+1, errs[i]); got != want[i] {
			t.Fatalf("post-restore decision %d = %v, want %v", i, got, want[i])
		}
	}
}

func TestManagerValidation(t *testing.T) {
	s, _ := core.NewSlidingWindow[int](5)
	tr := func([]int) (int, error) { return 0, nil }
	ev := func(int, []int) float64 { return 0 }
	if _, err := New[int, int](nil, tr, ev, Always{}); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := New[int, int](s, nil, ev, Always{}); err == nil {
		t.Error("nil trainer accepted")
	}
	if _, err := New[int, int](s, tr, nil, Always{}); err == nil {
		t.Error("nil evaluator accepted")
	}
	if _, err := New[int, int](s, tr, ev, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

// Regression test: a negative OnDrift.Factor used to be passed through as
// the trigger threshold, putting it *below* the trailing mean so the policy
// retrained on essentially every batch. It must now be rejected at
// construction and clamped to the default when the policy is used
// standalone.
func TestOnDriftRejectsNegativeFactor(t *testing.T) {
	s, _ := core.NewSlidingWindow[int](5)
	tr := func([]int) (int, error) { return 0, nil }
	ev := func(int, []int) float64 { return 0 }
	for _, bad := range []*OnDrift{
		{Factor: -2},
		{Factor: math.NaN()},
		{Window: -1},
		{MinObs: -1},
		{MaxStale: -1},
	} {
		if _, err := New[int, int](s, tr, ev, bad); err == nil {
			t.Errorf("New accepted invalid policy %+v", bad)
		}
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	if err := (&OnDrift{Window: 8, Factor: 2, MinObs: 3, MaxStale: 25}).Validate(); err != nil {
		t.Errorf("Validate rejected a valid policy: %v", err)
	}

	// Standalone use: steady sub-mean errors must not trigger even with a
	// negative Factor (clamped to the default rather than used as-is).
	d := &OnDrift{Window: 10, Factor: -3, MinObs: 3}
	errs := []float64{10, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.0, 9.7}
	for i, e := range errs {
		if d.ShouldRetrain(i+1, e) {
			t.Fatalf("negative Factor fired on steady error %v at t=%d", e, i+1)
		}
	}
}

func TestManagerBasicLoop(t *testing.T) {
	s, _ := core.NewSlidingWindow[int](100)
	trained := 0
	mgr, err := New(s,
		func(sample []int) (int, error) { trained++; return len(sample), nil },
		func(model int, batch []int) float64 { return float64(model) },
		Every{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// First batch: no model yet → NaN error, then initial training.
	e, err := mgr.Step([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(e) {
		t.Errorf("first step error = %v, want NaN", e)
	}
	if _, ok := mgr.Model(); !ok {
		t.Fatal("no model after first step")
	}
	for i := 0; i < 8; i++ {
		if _, err := mgr.Step([]int{4, 5}); err != nil {
			t.Fatal(err)
		}
	}
	// Initial training + retrains at t=3,6,9.
	if mgr.Retrains() != 4 {
		t.Errorf("retrains = %d, want 4", mgr.Retrains())
	}
	if mgr.T() != 9 {
		t.Errorf("T = %d", mgr.T())
	}
	if trained != mgr.Retrains() {
		t.Errorf("trainer called %d times, retrains %d", trained, mgr.Retrains())
	}
}

func TestManagerTrainFailureKeepsOldModel(t *testing.T) {
	s, _ := core.NewSlidingWindow[int](10)
	calls := 0
	mgr, err := New(s,
		func(sample []int) (int, error) {
			calls++
			if calls > 1 {
				return 0, fmt.Errorf("boom")
			}
			return 42, nil
		},
		func(model int, batch []int) float64 { return 1 },
		Always{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Step([]int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Step([]int{2}); err == nil {
		t.Fatal("training failure not surfaced")
	}
	model, ok := mgr.Model()
	if !ok || model != 42 {
		t.Errorf("old model not retained: %v %v", model, ok)
	}
	if mgr.Retrains() != 1 {
		t.Errorf("retrains = %d", mgr.Retrains())
	}
}

// TestManagerEndToEndKNN runs the full loop on the paper's kNN workload
// and checks that a drift-triggered policy retrains far less often than
// Always while staying in the same accuracy regime.
func TestManagerEndToEndKNN(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	run := func(policy Policy) (avgErr float64, retrains int) {
		gen, err := datagen.NewGMM(datagen.GMMConfig{
			Schedule: datagen.Periodic{Delta: 10, Eta: 10},
			Warmup:   30,
		}, xrand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		sampler, err := core.NewRTBS[datagen.Point](0.07, 500, xrand.New(100))
		if err != nil {
			t.Fatal(err)
		}
		train := func(sample []datagen.Point) (*ml.KNN, error) {
			m, err := ml.NewKNN(7)
			if err != nil {
				return nil, err
			}
			xs := make([][]float64, len(sample))
			ys := make([]int, len(sample))
			for i, p := range sample {
				xs[i] = []float64{p.X[0], p.X[1]}
				ys[i] = p.Class
			}
			if err := m.Fit(xs, ys); err != nil {
				return nil, err
			}
			return m, nil
		}
		eval := func(m *ml.KNN, batch []datagen.Point) float64 {
			wrong := 0
			for _, p := range batch {
				if m.Predict([]float64{p.X[0], p.X[1]}) != p.Class {
					wrong++
				}
			}
			return 100 * float64(wrong) / float64(len(batch))
		}
		mgr, err := New(sampler, train, eval, policy)
		if err != nil {
			t.Fatal(err)
		}
		var errs []float64
		for tt := 1; tt <= 80; tt++ {
			e, err := mgr.Step(gen.Batch(tt, 100))
			if err != nil {
				t.Fatal(err)
			}
			if tt > 30 && !math.IsNaN(e) {
				errs = append(errs, e)
			}
		}
		return metrics.Mean(errs), mgr.Retrains()
	}

	alwaysErr, alwaysRetrains := run(Always{})
	driftErr, driftRetrains := run(&OnDrift{Window: 8, Factor: 2, MinObs: 3, MaxStale: 20})

	if driftRetrains >= alwaysRetrains/2 {
		t.Errorf("drift policy should retrain far less: %d vs %d", driftRetrains, alwaysRetrains)
	}
	if driftRetrains < 2 {
		t.Errorf("drift policy never fired: %d retrains", driftRetrains)
	}
	// Accuracy should be in the same regime (drift-triggered retraining is
	// allowed to be somewhat worse, not catastrophically so).
	if driftErr > alwaysErr*2+10 {
		t.Errorf("drift policy accuracy collapsed: %.1f vs %.1f", driftErr, alwaysErr)
	}
}
