package obs

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// HistFiniteBuckets is the number of finite histogram buckets: upper
// bounds 2^i microseconds for i in [0, HistFiniteBuckets), i.e. 1µs up
// to ~8.4s, followed by one +Inf bucket. Log-spaced powers of two make
// the record path a single bits.Len64 — no search, no float math.
const HistFiniteBuckets = 24

// Histogram is a fixed log-spaced latency histogram with a zero-alloc,
// lock-free record path (one atomic add per bucket/count/sum). The zero
// value is ready to use.
type Histogram struct {
	counts [HistFiniteBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
}

// histBucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 2^i µs, or the +Inf bucket past the last finite bound.
func histBucketIndex(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 1000 {
		return 0
	}
	us := uint64(ns+999) / 1000 // ceil to µs; truncation would under-bucket
	i := bits.Len64(us - 1)
	if i >= HistFiniteBuckets {
		return HistFiniteBuckets
	}
	return i
}

// HistBucketBound returns bucket i's upper bound in seconds
// (math.Inf(1) for the +Inf bucket).
func HistBucketBound(i int) float64 {
	if i >= HistFiniteBuckets {
		return math.Inf(1)
	}
	return math.Ldexp(1e-6, i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// AppendProm renders the histogram in Prometheus text format
// (cumulative _bucket series plus _sum and _count) under the given
// metric name. labels is a pre-escaped label list like
// `kind="ingest",stage="parse"` (empty for none); le is appended to it.
func (h *Histogram) AppendProm(b []byte, name, labels string) []byte {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b = append(b, name...)
		b = append(b, "_bucket{"...)
		b = append(b, labels...)
		b = append(b, sep...)
		b = append(b, `le="`...)
		if i >= HistFiniteBuckets {
			b = append(b, "+Inf"...)
		} else {
			b = strconv.AppendFloat(b, HistBucketBound(i), 'g', -1, 64)
		}
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	braceOpen, braceClose := "", ""
	if labels != "" {
		braceOpen, braceClose = "{", "}"
	}
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = append(b, braceOpen...)
	b = append(b, labels...)
	b = append(b, braceClose...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, float64(h.sumNS.Load())/1e9, 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = append(b, braceOpen...)
	b = append(b, labels...)
	b = append(b, braceClose...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, h.count.Load(), 10)
	b = append(b, '\n')
	return b
}
