package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	rtmetrics "runtime/metrics"
)

// NewDebugMux builds the opt-in debug listener's handler (-debug-addr
// on both daemons): the full net/http/pprof suite, runtime gauges in
// Prometheus text format at /debug/runtime, and the trace ring at
// /debug/trace/recent. It is wired to its own mux (never the API mux),
// so profiling endpoints are reachable only when the operator binds the
// listener.
func NewDebugMux(tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/runtime", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WriteRuntimeMetrics(w)
	})
	mux.HandleFunc("GET /debug/trace/recent", tr.ServeRecent)
	return mux
}

// runtimeGauges maps runtime/metrics samples to exported gauge names.
var runtimeGauges = []struct {
	sample string
	name   string
}{
	{"/sched/goroutines:goroutines", "go_goroutines"},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes"},
	{"/memory/classes/heap/released:bytes", "go_heap_released_bytes"},
	{"/memory/classes/total:bytes", "go_memory_total_bytes"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total"},
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes_total"},
}

// gcPausesSample is rendered as quantile gauges rather than a raw
// histogram dump: the question a scrape answers is "how bad are GC
// pauses right now", not the full shape.
const gcPausesSample = "/gc/pauses:seconds"

// WriteRuntimeMetrics renders runtime/metrics-derived gauges (GC pause
// quantiles, goroutine count, heap and memory byte classes) in
// Prometheus text format.
func WriteRuntimeMetrics(w io.Writer) error {
	samples := make([]rtmetrics.Sample, 0, len(runtimeGauges)+1)
	for _, g := range runtimeGauges {
		samples = append(samples, rtmetrics.Sample{Name: g.sample})
	}
	samples = append(samples, rtmetrics.Sample{Name: gcPausesSample})
	rtmetrics.Read(samples)

	var b []byte
	for i, g := range runtimeGauges {
		switch v := samples[i].Value; v.Kind() {
		case rtmetrics.KindUint64:
			b = fmt.Appendf(b, "%s %d\n", g.name, v.Uint64())
		case rtmetrics.KindFloat64:
			b = fmt.Appendf(b, "%s %g\n", g.name, v.Float64())
		}
	}
	if v := samples[len(samples)-1].Value; v.Kind() == rtmetrics.KindFloat64Histogram {
		h := v.Float64Histogram()
		for _, q := range []struct {
			q     float64
			label string
		}{{0.50, "0.5"}, {0.90, "0.9"}, {0.99, "0.99"}} {
			b = fmt.Appendf(b, "go_gc_pause_seconds{quantile=%q} %g\n", q.label, histogramQuantile(h, q.q))
		}
	}
	_, err := w.Write(b)
	return err
}

// histogramQuantile approximates a quantile from a runtime/metrics
// Float64Histogram by walking the cumulative counts and reporting the
// crossing bucket's upper bound (finite-ward for the ±Inf edges).
func histogramQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				hi = h.Buckets[i]
			}
			if math.IsInf(hi, -1) {
				hi = 0
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
