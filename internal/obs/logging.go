package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemons' structured logger: format "text"
// (default, human-readable key=value) or "json" (one object per line),
// level one of debug|info|warn|error (slog's grammar, so "info+2" style
// offsets work too). An empty format or level takes the default.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if level != "" {
		if err := lvl.UnmarshalText([]byte(level)); err != nil {
			return nil, fmt.Errorf("log level %q: %w", level, err)
		}
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("log format %q: want text or json", format)
	}
}

// NopLogger returns a logger that discards everything — the default
// for library consumers that pass no logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
