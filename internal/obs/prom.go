package obs

import (
	"io"
	"strings"
)

// EscapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote and newline are the only characters
// escaped (as \\, \" and \n). Go's %q is NOT a substitute — it escapes
// tabs, control bytes and non-ASCII as \t/\xNN/\uNNNN, sequences the
// Prometheus parser rejects.
func EscapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WriteMetrics renders the tracer's per-stage and per-trace latency
// histograms in Prometheus text format under the given prefix
// (e.g. "tbsd" → tbsd_trace_stage_duration_seconds_bucket{...}).
// Kinds with no finished traces are skipped to keep scrapes compact.
// Nil-safe: a nil tracer writes nothing.
func (tr *Tracer) WriteMetrics(w io.Writer, prefix string) error {
	if tr == nil {
		return nil
	}
	var b []byte
	for k := Kind(0); k < numKinds; k++ {
		if tr.totalHist[k].Count() == 0 {
			continue
		}
		kindLabel := `kind="` + EscapeLabel(k.String()) + `"`
		b = tr.totalHist[k].AppendProm(b, prefix+"_trace_duration_seconds", kindLabel)
		for i, name := range StageNames(k) {
			if tr.stageHist[k][i].Count() == 0 {
				continue
			}
			b = tr.stageHist[k][i].AppendProm(b,
				prefix+"_trace_stage_duration_seconds", kindLabel+`,stage="`+EscapeLabel(name)+`"`)
		}
	}
	if len(b) == 0 {
		return nil
	}
	_, err := w.Write(b)
	return err
}
