package obs

import "encoding/hex"

// W3C Trace Context "traceparent" header support (the subset tbsd
// needs): version 00, format
//
//	00-{32 hex trace-id}-{16 hex parent-id}-{2 hex flags}
//
// The router starts a trace per proxied request and stamps the header
// on the outbound copy; the owning node continues the trace ID, so one
// ingest shows up in both processes' trace rings under one ID.

// FormatTraceparent renders a version-00 traceparent value with the
// sampled flag set.
func FormatTraceparent(traceID [16]byte, span [8]byte) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, traceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, span[:])
	buf = append(buf, "-01"...)
	return string(buf)
}

// ParseTraceparent extracts the trace ID and parent span ID from a
// traceparent header value. Invalid values — wrong shape, non-hex,
// version ff, all-zero IDs — report ok=false and the caller starts a
// fresh trace, per the spec's "restart the trace" guidance.
func ParseTraceparent(h string) (traceID [16]byte, parent [8]byte, ok bool) {
	// version "00" is 55 bytes exactly; future versions may append
	// fields, so accept a longer value when the next byte is a dash.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return traceID, parent, false
	}
	if len(h) > 55 && h[55] != '-' {
		return traceID, parent, false
	}
	if !isHex(h[:2]) || h[:2] == "ff" {
		return traceID, parent, false
	}
	if _, err := hex.Decode(traceID[:], []byte(h[3:35])); err != nil {
		return traceID, parent, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return traceID, parent, false
	}
	if !isHex(h[53:55]) {
		return traceID, parent, false
	}
	if traceID == [16]byte{} || parent == [8]byte{} {
		return traceID, parent, false
	}
	return traceID, parent, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}
