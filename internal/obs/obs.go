// Package obs is tbsd's observability layer: lightweight span tracing
// over the ingest and batch-boundary pipelines, fixed-bucket latency
// histograms merged into /metrics, W3C traceparent propagation between
// the cluster router and the nodes, structured logging helpers, and the
// opt-in debug listener (pprof + runtime gauges + the trace ring).
//
// The tracing design is allocation-conscious by construction: a Trace
// is a pooled value with fixed-size stage arrays (no per-stage
// allocation), stage durations feed lock-free atomic histograms, and
// the only lock on the record path is the bounded ring buffer's mutex,
// taken once per finished trace — never per stage. A nil *Tracer (and
// the nil *Trace it hands out) disables everything: every method is
// nil-safe, so instrumented code carries no conditionals.
//
// Trace kinds cover the daemon's request-shaped work: "ingest" and
// "boundary" for the sampling pipeline, "forward" for router-proxied
// requests, and "hydrate" for memory-tiering cold hits (stages
// read_ckpt → restore → replay → install), so a latency regression in
// any path is attributable to its stage from /metrics alone. The ring
// (GET /debug/trace/recent) keeps the most recent spans per kind for
// incident forensics without a second telemetry system.
package obs

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Kind identifies which pipeline a trace covers; each kind has its own
// ordered stage set.
type Kind uint8

const (
	// KindIngest covers one ingest request end to end:
	// parse → engine_enqueue → shard_apply → wal_append → fsync_wait → ack.
	KindIngest Kind = iota
	// KindBoundary covers one batch boundary:
	// close_batch → score → policy → retrain → swap.
	KindBoundary
	// KindForward covers one proxied request at the router:
	// route → forward → copy.
	KindForward
	// KindHandoff covers the source side of a stream migration:
	// freeze → capture → ship → commit.
	KindHandoff
	// KindAdopt covers the target side of a stream migration:
	// restore → replay → persist.
	KindAdopt
	// KindHydrate covers one cold-miss rehydration of a hibernated
	// stream: read_ckpt → restore → replay → install.
	KindHydrate

	numKinds
)

// MaxStages is the widest stage set across kinds; Trace stage arrays
// are sized to it.
const MaxStages = 6

// Ingest stage indices (KindIngest).
const (
	StageParse = iota
	StageEnqueue
	StageApply
	StageWALAppend
	StageFsyncWait
	StageAck
)

// Batch-boundary stage indices (KindBoundary).
const (
	StageCloseBatch = iota
	StageScore
	StagePolicy
	StageRetrain
	StageSwap
)

// Router forward stage indices (KindForward).
const (
	StageRoute = iota
	StageForward
	StageCopy
)

// Handoff stage indices (KindHandoff, source side).
const (
	StageFreeze = iota
	StageCapture
	StageShip
	StageCommit
)

// Adopt stage indices (KindAdopt, target side).
const (
	StageRestore = iota
	StageReplay
	StagePersist
)

// Hydrate stage indices (KindHydrate, cold-miss rehydration).
const (
	StageReadCkpt = iota
	StageHydrateRestore
	StageHydrateReplay
	StageInstall
)

var kindNames = [numKinds]string{"ingest", "boundary", "forward", "handoff", "adopt", "hydrate"}

var stageNames = [numKinds][]string{
	KindIngest:   {"parse", "engine_enqueue", "shard_apply", "wal_append", "fsync_wait", "ack"},
	KindBoundary: {"close_batch", "score", "policy", "retrain", "swap"},
	KindForward:  {"route", "forward", "copy"},
	KindHandoff:  {"freeze", "capture", "ship", "commit"},
	KindAdopt:    {"restore", "replay", "persist"},
	KindHydrate:  {"read_ckpt", "restore", "replay", "install"},
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// StageNames returns the ordered stage names for a kind (shared, do not
// mutate).
func StageNames(k Kind) []string {
	if int(k) < len(stageNames) {
		return stageNames[k]
	}
	return nil
}

// DefaultRingSize is the trace ring capacity when the caller passes a
// non-positive size to NewTracer.
const DefaultRingSize = 256

// Record is one finished trace as kept in the ring buffer: a pure value
// (the only pointer is the key string's data), so ring storage is one
// flat slice with no per-record allocation.
type Record struct {
	TraceID [16]byte
	Span    [8]byte
	Parent  [8]byte
	Kind    Kind
	Status  int
	Key     string
	Start   time.Time
	Total   time.Duration
	Off     [MaxStages]int64 // ns offsets from Start
	Dur     [MaxStages]int64 // ns durations
	Set     uint8            // bitmask of recorded stages
}

// Trace is one in-flight span. Obtain from a Tracer, record stages with
// StageSince/StageDur, and call Finish exactly once — it files the
// record and returns the Trace to the pool (the pointer must not be
// used afterwards). All methods are nil-safe no-ops, so disabled
// tracing costs one pointer test per call site.
//
// A Trace is not safe for concurrent stage recording; the pipelines
// hand it between goroutines through channels/queues (happens-before),
// never share it.
type Trace struct {
	tracer  *Tracer
	kind    Kind
	traceID [16]byte
	span    [8]byte
	parent  [8]byte
	key     string
	start   time.Time
	off     [MaxStages]int64
	dur     [MaxStages]int64
	set     uint8
}

// Tracer owns the trace pool, the ring of recent traces and the
// per-stage histograms. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	logger *slog.Logger
	pool   sync.Pool

	stageHist [numKinds][MaxStages]Histogram
	totalHist [numKinds]Histogram
	started   [numKinds]uint64 // guarded by mu; cheap, bumped once per trace

	mu   sync.Mutex
	ring []Record
	next int
	full bool
}

// NewTracer builds a tracer with a bounded ring of the given size
// (DefaultRingSize when non-positive). logger, when non-nil and at
// debug level, receives one structured line per finished trace —
// the per-request log line carrying trace ID, stream key and status.
func NewTracer(ringSize int, logger *slog.Logger) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &Tracer{logger: logger, ring: make([]Record, ringSize)}
	t.pool.New = func() any { return new(Trace) }
	return t
}

// Start begins a trace with fresh IDs.
func (tr *Tracer) Start(kind Kind, key string) *Trace {
	if tr == nil {
		return nil
	}
	var traceID [16]byte
	var parent [8]byte
	fillRandom(traceID[:])
	return tr.start(kind, key, traceID, parent)
}

// StartFromRequest begins a trace, continuing the trace ID (and
// recording the caller's span as parent) from a W3C traceparent header
// when the request carries a valid one.
func (tr *Tracer) StartFromRequest(r *http.Request, kind Kind, key string) *Trace {
	if tr == nil {
		return nil
	}
	if traceID, parent, ok := ParseTraceparent(r.Header.Get("traceparent")); ok {
		return tr.start(kind, key, traceID, parent)
	}
	return tr.Start(kind, key)
}

// StartChild begins a trace under parent's trace ID (fresh IDs when
// parent is nil) — how a batch boundary closed inside an ingest request
// stays correlated with it.
func (tr *Tracer) StartChild(parent *Trace, kind Kind, key string) *Trace {
	if tr == nil {
		return nil
	}
	if parent == nil {
		return tr.Start(kind, key)
	}
	return tr.start(kind, key, parent.traceID, parent.span)
}

func (tr *Tracer) start(kind Kind, key string, traceID [16]byte, parent [8]byte) *Trace {
	t := tr.pool.Get().(*Trace)
	*t = Trace{tracer: tr, kind: kind, traceID: traceID, parent: parent, key: key, start: time.Now()}
	fillRandom(t.span[:])
	return t
}

// fillRandom fills b with non-zero randomness (all-zero IDs are invalid
// in the traceparent grammar). math/rand/v2's global generator is
// cryptographically seeded per process and, unlike crypto/rand, costs
// no syscall on the request path.
func fillRandom(b []byte) {
	for {
		for i := 0; i < len(b); i += 8 {
			v := rand.Uint64()
			for j := i; j < i+8 && j < len(b); j++ {
				b[j] = byte(v)
				v >>= 8
			}
		}
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
}

// StageSince records stage as having started at from and ended now.
func (t *Trace) StageSince(stage int, from time.Time) {
	if t == nil {
		return
	}
	t.StageDur(stage, from, time.Since(from))
}

// StageDur records stage with an explicit duration (for durations
// accumulated piecewise, e.g. per-chunk parse time). Recording the same
// stage again adds to its duration — chunked pipelines call it once per
// chunk — while the offset keeps the first recording's start.
func (t *Trace) StageDur(stage int, from time.Time, d time.Duration) {
	if t == nil || stage < 0 || stage >= MaxStages {
		return
	}
	if d < 0 {
		d = 0
	}
	bit := uint8(1) << stage
	if t.set&bit == 0 {
		t.set |= bit
		// A stage may begin a hair before the trace itself (a boundary
		// trace is created just after its close_batch timer started);
		// clamp so offsets stay non-negative.
		if off := from.Sub(t.start).Nanoseconds(); off > 0 {
			t.off[stage] = off
		}
	}
	t.dur[stage] += d.Nanoseconds()
	t.tracer.stageHist[t.kind][stage].Observe(d)
}

// Traceparent renders the trace's identity as a W3C traceparent header
// value for propagation to a downstream node; empty for a nil trace.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return FormatTraceparent(t.traceID, t.span)
}

// TraceID returns the hex trace ID; empty for a nil trace.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return hex.EncodeToString(t.traceID[:])
}

// Finish completes the trace: the record enters the ring, the total
// duration feeds the kind's histogram, and — when the tracer's logger
// is at debug level — one structured request line is emitted. The
// Trace returns to the pool; the pointer is dead after this call.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	tr := t.tracer
	total := time.Since(t.start)
	tr.totalHist[t.kind].Observe(total)

	rec := Record{
		TraceID: t.traceID, Span: t.span, Parent: t.parent,
		Kind: t.kind, Status: status, Key: t.key,
		Start: t.start, Total: total,
		Off: t.off, Dur: t.dur, Set: t.set,
	}
	tr.mu.Lock()
	tr.started[t.kind]++
	tr.ring[tr.next] = rec
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.full = true
	}
	tr.mu.Unlock()

	if tr.logger != nil && tr.logger.Enabled(context.Background(), slog.LevelDebug) {
		tr.logger.Debug("trace",
			"trace", hex.EncodeToString(rec.TraceID[:]),
			"kind", rec.Kind.String(),
			"key", rec.Key,
			"status", rec.Status,
			"durMicros", total.Microseconds())
	}
	*t = Trace{}
	tr.pool.Put(t)
}

// recent returns the ring's contents newest-first.
func (tr *Tracer) recent() []Record {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.next
	if tr.full {
		n = len(tr.ring)
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		idx := tr.next - 1 - i
		if idx < 0 {
			idx += len(tr.ring)
		}
		out = append(out, tr.ring[idx])
	}
	return out
}

// stageView / traceView are the JSON shape of GET /debug/trace/recent.
type stageView struct {
	Stage        string `json:"stage"`
	OffsetMicros int64  `json:"offsetMicros"`
	DurMicros    int64  `json:"durMicros"`
}

type traceView struct {
	TraceID   string      `json:"traceId"`
	SpanID    string      `json:"spanId"`
	ParentID  string      `json:"parentId,omitempty"`
	Kind      string      `json:"kind"`
	Key       string      `json:"key,omitempty"`
	Status    int         `json:"status,omitempty"`
	Start     time.Time   `json:"start"`
	DurMicros int64       `json:"durMicros"`
	Stages    []stageView `json:"stages"`
}

var zeroSpan [8]byte

func viewOf(r Record) traceView {
	v := traceView{
		TraceID:   hex.EncodeToString(r.TraceID[:]),
		SpanID:    hex.EncodeToString(r.Span[:]),
		Kind:      r.Kind.String(),
		Key:       r.Key,
		Status:    r.Status,
		Start:     r.Start,
		DurMicros: r.Total.Microseconds(),
	}
	if r.Parent != zeroSpan {
		v.ParentID = hex.EncodeToString(r.Parent[:])
	}
	names := StageNames(r.Kind)
	v.Stages = make([]stageView, 0, len(names))
	for i, name := range names {
		if r.Set&(1<<i) == 0 {
			continue
		}
		v.Stages = append(v.Stages, stageView{
			Stage:        name,
			OffsetMicros: r.Off[i] / 1e3,
			DurMicros:    r.Dur[i] / 1e3,
		})
	}
	return v
}

// ServeRecent serves the trace ring as JSON, newest first. Filters:
// ?key= (exact stream key), ?kind=
// (ingest|boundary|forward|handoff|adopt|hydrate),
// ?min_dur= (a Go duration like 5ms — only traces at least that long),
// ?limit= (cap the answer). A nil tracer serves an empty, disabled
// listing rather than 404, so the route is always probeable.
func (tr *Tracer) ServeRecent(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if tr == nil {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"enabled": false, "count": 0, "traces": []traceView{},
		})
		return
	}
	q := r.URL.Query()
	keyFilter := q.Get("key")
	kindFilter := q.Get("kind")
	var minDur time.Duration
	if v := q.Get("min_dur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": "min_dur must be a duration like 5ms", "code": "bad_request",
			})
			return
		}
		minDur = d
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	}

	views := []traceView{}
	for _, rec := range tr.recent() {
		if keyFilter != "" && rec.Key != keyFilter {
			continue
		}
		if kindFilter != "" && rec.Kind.String() != kindFilter {
			continue
		}
		if rec.Total < minDur {
			continue
		}
		views = append(views, viewOf(rec))
		if limit > 0 && len(views) >= limit {
			break
		}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(map[string]any{"enabled": true, "count": len(views), "traces": views})
}
