package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`with"quote`, `with\"quote`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{"tab\tand ünïcode", "tab\tand ünïcode"}, // NOT escaped — prom text allows raw UTF-8
		{`all"three\of
them`, `all\"three\\of\nthem`},
	}
	for _, c := range cases {
		if got := EscapeLabel(c.in); got != c.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHistogramBucketsMonotonicAndPlacement(t *testing.T) {
	var h Histogram
	durs := []time.Duration{
		0, 500 * time.Nanosecond, time.Microsecond, 1500 * time.Nanosecond,
		2 * time.Microsecond, 100 * time.Microsecond, time.Millisecond,
		time.Second, time.Hour, // far past the last finite bound → +Inf
	}
	for _, d := range durs {
		h.Observe(d)
	}
	if got := h.Count(); got != uint64(len(durs)) {
		t.Fatalf("count = %d, want %d", got, len(durs))
	}

	out := string(h.AppendProm(nil, "x_seconds", `k="v"`))
	var prevCum uint64
	var prevBound float64 = -1
	buckets := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket{") {
			continue
		}
		buckets++
		leStart := strings.Index(line, `le="`) + 4
		leEnd := strings.Index(line[leStart:], `"`) + leStart
		boundStr := line[leStart:leEnd]
		bound := math.Inf(1)
		if boundStr != "+Inf" {
			var err error
			bound, err = strconv.ParseFloat(boundStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", boundStr, err)
			}
		}
		cum, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		if err != nil {
			t.Fatalf("bad count in %q: %v", line, err)
		}
		if bound <= prevBound {
			t.Fatalf("bucket bounds not increasing: %g after %g", bound, prevBound)
		}
		if cum < prevCum {
			t.Fatalf("cumulative counts decreased: %d after %d (le=%g)", cum, prevCum, bound)
		}
		prevBound, prevCum = bound, cum
	}
	if buckets != HistFiniteBuckets+1 {
		t.Fatalf("rendered %d buckets, want %d", buckets, HistFiniteBuckets+1)
	}
	if prevCum != uint64(len(durs)) {
		t.Fatalf("+Inf cumulative = %d, want %d (histogram must count everything)", prevCum, len(durs))
	}

	// Placement: 1.5µs must land in the 2µs bucket, not 1µs
	// (ceiling, not truncation, of sub-µs remainders).
	var h2 Histogram
	h2.Observe(1500 * time.Nanosecond)
	if got := h2.counts[0].Load(); got != 0 {
		t.Errorf("1.5µs landed in the ≤1µs bucket")
	}
	if got := h2.counts[1].Load(); got != 1 {
		t.Errorf("1.5µs not in the ≤2µs bucket")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	traceID := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	span := [8]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x01, 0x02}
	h := FormatTraceparent(traceID, span)
	if len(h) != 55 {
		t.Fatalf("header length %d, want 55: %q", len(h), h)
	}
	gotID, gotParent, ok := ParseTraceparent(h)
	if !ok || gotID != traceID || gotParent != span {
		t.Fatalf("round trip failed: %q -> %x %x ok=%v", h, gotID, gotParent, ok)
	}

	bad := []string{
		"",
		"00-abc-def-01",
		"ff-0102030405060708090a0b0c0d0e0f10-aabbccddeeff0102-01",      // version ff
		"00-00000000000000000000000000000000-aabbccddeeff0102-01",      // zero trace id
		"00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01",      // zero span
		"00-0102030405060708090a0b0c0d0e0gg0-aabbccddeeff0102-01",      // non-hex
		"00-0102030405060708090a0b0c0d0e0f10-aabbccddeeff0102-01extra", // trailing junk, no dash
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted invalid input", h)
		}
	}
	// Future-version values with appended fields parse (next byte is a dash).
	if _, _, ok := ParseTraceparent("01-0102030405060708090a0b0c0d0e0f10-aabbccddeeff0102-01-extrafield"); !ok {
		t.Errorf("future-version traceparent with extra field rejected")
	}
}

func TestTracerRingAndFilters(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 6; i++ {
		span := tr.Start(KindIngest, fmt.Sprintf("key-%d", i))
		span.StageDur(StageParse, time.Now(), time.Duration(i+1)*time.Millisecond)
		span.Finish(200)
	}
	recs := tr.recent()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4 (bounded)", len(recs))
	}
	if recs[0].Key != "key-5" || recs[3].Key != "key-2" {
		t.Fatalf("ring order wrong: newest %q oldest %q", recs[0].Key, recs[3].Key)
	}

	get := func(query string) map[string]any {
		req := httptest.NewRequest("GET", "/debug/trace/recent"+query, nil)
		w := httptest.NewRecorder()
		tr.ServeRecent(w, req)
		var body map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return body
	}
	if body := get("?key=key-4"); body["count"].(float64) != 1 {
		t.Errorf("key filter: count = %v, want 1", body["count"])
	}
	if body := get("?min_dur=1h"); body["count"].(float64) != 0 {
		t.Errorf("min_dur filter: count = %v, want 0", body["count"])
	}
	if body := get("?kind=boundary"); body["count"].(float64) != 0 {
		t.Errorf("kind filter: count = %v, want 0", body["count"])
	}

	// Nil tracer: still serves, reports disabled.
	var nilTr *Tracer
	req := httptest.NewRequest("GET", "/debug/trace/recent", nil)
	w := httptest.NewRecorder()
	nilTr.ServeRecent(w, req)
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("nil tracer served bad JSON: %v", err)
	}
	if body["enabled"].(bool) {
		t.Errorf("nil tracer claims enabled")
	}
}

func TestTraceChildSharesTraceID(t *testing.T) {
	tr := NewTracer(8, nil)
	parent := tr.Start(KindIngest, "k")
	child := tr.StartChild(parent, KindBoundary, "k")
	if parent.TraceID() != child.TraceID() {
		t.Fatalf("child trace ID %s != parent %s", child.TraceID(), parent.TraceID())
	}
	if child.parent != parent.span {
		t.Fatalf("child parent span not the parent's span")
	}
	// Continuation via header: the "remote" side picks up the same ID.
	req := httptest.NewRequest("POST", "/v1/streams/k/items", nil)
	req.Header.Set("traceparent", parent.Traceparent())
	remote := tr.StartFromRequest(req, KindIngest, "k")
	if remote.TraceID() != parent.TraceID() {
		t.Fatalf("header continuation trace ID %s != %s", remote.TraceID(), parent.TraceID())
	}
	remote.Finish(200)
	child.Finish(0)
	parent.Finish(200)
}

func TestNilTraceIsSafe(t *testing.T) {
	var span *Trace
	span.StageSince(StageParse, time.Now())
	span.StageDur(StageAck, time.Now(), time.Millisecond)
	span.Finish(200)
	if span.Traceparent() != "" || span.TraceID() != "" {
		t.Fatal("nil trace rendered an identity")
	}
	var tr *Tracer
	if tr.Start(KindIngest, "k") != nil {
		t.Fatal("nil tracer handed out a trace")
	}
	if err := tr.WriteMetrics(nil, "x"); err != nil {
		t.Fatalf("nil tracer WriteMetrics: %v", err)
	}
}

// promSample is one parsed sample from the text exposition format.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText is a minimal Prometheus text-format parser: enough
// grammar (names, escaped label values, float values) to round-trip
// what the server emits. Used by the scrape round-trip tests here and
// in internal/server.
func parsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var out []promSample
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexAny(rest, "{ "); i < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		} else {
			s.name = rest[:i]
			rest = rest[i:]
		}
		if strings.HasPrefix(rest, "{") {
			rest = rest[1:]
			for {
				eq := strings.IndexByte(rest, '=')
				if eq < 0 {
					t.Fatalf("line %d: label without '=': %q", ln+1, line)
				}
				lname := rest[:eq]
				rest = rest[eq+1:]
				if !strings.HasPrefix(rest, `"`) {
					t.Fatalf("line %d: unquoted label value: %q", ln+1, line)
				}
				rest = rest[1:]
				var val strings.Builder
				for {
					if rest == "" {
						t.Fatalf("line %d: unterminated label value: %q", ln+1, line)
					}
					c := rest[0]
					if c == '\\' {
						if len(rest) < 2 {
							t.Fatalf("line %d: dangling escape: %q", ln+1, line)
						}
						switch rest[1] {
						case '\\':
							val.WriteByte('\\')
						case '"':
							val.WriteByte('"')
						case 'n':
							val.WriteByte('\n')
						default:
							t.Fatalf("line %d: invalid escape \\%c: %q", ln+1, rest[1], line)
						}
						rest = rest[2:]
						continue
					}
					if c == '"' {
						rest = rest[1:]
						break
					}
					val.WriteByte(c)
					rest = rest[1:]
				}
				s.labels[lname] = val.String()
				if strings.HasPrefix(rest, ",") {
					rest = rest[1:]
					continue
				}
				if strings.HasPrefix(rest, "}") {
					rest = rest[1:]
					break
				}
				t.Fatalf("line %d: expected ',' or '}': %q", ln+1, line)
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			t.Fatalf("line %d: no value: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, fields[0], err)
		}
		s.value = v
		out = append(out, s)
	}
	return out
}

func TestTracerMetricsScrapeRoundTrip(t *testing.T) {
	tr := NewTracer(8, nil)
	span := tr.Start(KindIngest, "k")
	span.StageDur(StageParse, time.Now(), 3*time.Microsecond)
	span.StageDur(StageAck, time.Now(), 10*time.Millisecond)
	span.Finish(200)

	var sb strings.Builder
	if err := tr.WriteMetrics(&sb, "tbsd"); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, sb.String())
	if len(samples) == 0 {
		t.Fatal("no samples rendered")
	}
	var sawParse, sawTotalCount bool
	for _, s := range samples {
		switch s.name {
		case "tbsd_trace_stage_duration_seconds_count":
			if s.labels["stage"] == "parse" && s.labels["kind"] == "ingest" {
				sawParse = true
				if s.value != 1 {
					t.Errorf("parse stage count = %g, want 1", s.value)
				}
			}
		case "tbsd_trace_duration_seconds_count":
			if s.labels["kind"] == "ingest" && s.value == 1 {
				sawTotalCount = true
			}
		}
	}
	if !sawParse || !sawTotalCount {
		t.Fatalf("missing families: parse=%v total=%v\n%s", sawParse, sawTotalCount, sb.String())
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, sb.String())
	byName := map[string]bool{}
	for _, s := range samples {
		byName[s.name] = true
	}
	for _, want := range []string{"go_goroutines", "go_memory_total_bytes", "go_gc_pause_seconds"} {
		if !byName[want] {
			t.Errorf("runtime metrics missing %s:\n%s", want, sb.String())
		}
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger(&sb, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "k", "v")
	out := sb.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info line not filtered at warn level: %s", out)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &obj); err != nil {
		t.Fatalf("json format produced non-JSON %q: %v", out, err)
	}
	if _, err := NewLogger(&sb, "xml", ""); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&sb, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
}
