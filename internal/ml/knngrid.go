package ml

import (
	"fmt"
	"math"
)

// KNNGrid is a 2-D kNN classifier accelerated by a uniform grid index.
// Training points are bucketed into square cells; a query expands outward
// ring by ring from its cell, stopping once the k-th best distance is
// closer than the nearest unexplored ring. For the paper's workload
// (thousands of points spread over [0,80]², k = 7) this turns the linear
// scan into a handful of cell probes.
//
// It returns exactly the same predictions as the exhaustive KNN (the tests
// verify agreement), so the experiments can use either interchangeably.
type KNNGrid struct {
	k        int
	cell     float64
	minX     float64
	minY     float64
	nx, ny   int
	cells    [][]int // point indices per cell
	xs       [][2]float64
	ys       []int
	trained  bool
	fallback *KNN // used when the training set is tiny
}

// NewKNNGrid returns a grid-indexed classifier using the k nearest
// neighbours. cellSize ≤ 0 selects an automatic cell size at Fit time
// (aiming for ~2 points per cell).
func NewKNNGrid(k int, cellSize float64) (*KNNGrid, error) {
	if k < 1 {
		return nil, fmt.Errorf("ml: k must be positive, got %d", k)
	}
	if math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("ml: invalid cell size %v", cellSize)
	}
	return &KNNGrid{k: k, cell: cellSize}, nil
}

// Fit replaces the training set with 2-D points. Inputs are copied into
// the index.
func (m *KNNGrid) Fit(xs [][2]float64, ys []int) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("ml: KNNGrid.Fit length mismatch: %d points, %d labels", len(xs), len(ys))
	}
	m.xs = append(m.xs[:0], xs...)
	m.ys = append(m.ys[:0], ys...)
	m.trained = true
	m.fallback = nil
	if len(xs) == 0 {
		m.cells = nil
		return nil
	}
	if len(xs) <= 4*m.k {
		// Tiny training sets: exhaustive scan is both faster and simpler.
		fb, err := NewKNN(m.k)
		if err != nil {
			return err
		}
		flat := make([][]float64, len(xs))
		for i := range xs {
			flat[i] = []float64{xs[i][0], xs[i][1]}
		}
		if err := fb.Fit(flat, m.ys); err != nil {
			return err
		}
		m.fallback = fb
		return nil
	}

	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range xs {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	cell := m.cell
	if cell <= 0 {
		// Aim for ~2 points per cell: cell = sqrt(2·area/N).
		area := math.Max(maxX-minX, 1e-9) * math.Max(maxY-minY, 1e-9)
		cell = math.Sqrt(2 * area / float64(len(xs)))
		if cell <= 0 || math.IsNaN(cell) {
			cell = 1
		}
	}
	m.minX, m.minY = minX, minY
	m.nx = int((maxX-minX)/cell) + 1
	m.ny = int((maxY-minY)/cell) + 1
	const maxCells = 1 << 22
	if m.nx*m.ny > maxCells {
		// Degenerate cell size; rescale to the cap.
		scale := math.Sqrt(float64(m.nx*m.ny) / maxCells)
		cell *= scale
		m.nx = int((maxX-minX)/cell) + 1
		m.ny = int((maxY-minY)/cell) + 1
	}
	m.cellsize(cell)
	m.cells = make([][]int, m.nx*m.ny)
	for i, p := range xs {
		c := m.cellOf(p[0], p[1])
		m.cells[c] = append(m.cells[c], i)
	}
	return nil
}

func (m *KNNGrid) cellsize(c float64) { m.cell = c }

// cellOf maps coordinates to a cell id, clamping out-of-range queries to
// the boundary cells.
func (m *KNNGrid) cellOf(x, y float64) int {
	cx := int((x - m.minX) / m.cell)
	cy := int((y - m.minY) / m.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= m.nx {
		cx = m.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= m.ny {
		cy = m.ny - 1
	}
	return cy*m.nx + cx
}

// TrainSize returns the number of stored training points.
func (m *KNNGrid) TrainSize() int { return len(m.xs) }

// Predict returns the majority class among the k nearest training points,
// or -1 if the model has no training data.
func (m *KNNGrid) Predict(x, y float64) int {
	if !m.trained || len(m.xs) == 0 {
		return -1
	}
	if m.fallback != nil {
		return m.fallback.Predict([]float64{x, y})
	}
	k := m.k
	if k > len(m.xs) {
		k = len(m.xs)
	}
	dists := make([]float64, 0, k)
	labels := make([]int, 0, k)
	consider := func(idx int) {
		p := m.xs[idx]
		dx, dy := x-p[0], y-p[1]
		d := dx*dx + dy*dy
		if len(dists) == k && d >= dists[k-1] {
			return
		}
		j := len(dists)
		if j < k {
			dists = append(dists, 0)
			labels = append(labels, 0)
		} else {
			j = k - 1
		}
		for j > 0 && dists[j-1] > d {
			dists[j] = dists[j-1]
			labels[j] = labels[j-1]
			j--
		}
		dists[j] = d
		labels[j] = m.ys[idx]
	}

	qcx := int((x - m.minX) / m.cell)
	qcy := int((y - m.minY) / m.cell)
	maxRing := m.nx
	if m.ny > maxRing {
		maxRing = m.ny
	}
	// Also account for queries far outside the grid.
	maxRing += int(math.Abs(x-m.minX)/m.cell) + int(math.Abs(y-m.minY)/m.cell) + 2
	for ring := 0; ring <= maxRing; ring++ {
		// Once we have k candidates, stop when the nearest possible point
		// in the next unexplored ring cannot beat the current k-th best.
		if len(dists) == k && ring > 0 {
			minPossible := (float64(ring-1) * m.cell)
			if minPossible > 0 && minPossible*minPossible > dists[k-1] {
				break
			}
		}
		m.visitRing(qcx, qcy, ring, consider)
	}
	if len(labels) == 0 {
		return -1
	}
	votes := make(map[int]int, len(labels))
	best, bestVotes := labels[0], 0
	for _, lbl := range labels {
		votes[lbl]++
		if votes[lbl] > bestVotes {
			best, bestVotes = lbl, votes[lbl]
		}
	}
	return best
}

// visitRing applies fn to every point in the square ring of cells at
// Chebyshev distance `ring` from (qcx, qcy).
func (m *KNNGrid) visitRing(qcx, qcy, ring int, fn func(int)) {
	visit := func(cx, cy int) {
		if cx < 0 || cx >= m.nx || cy < 0 || cy >= m.ny {
			return
		}
		for _, idx := range m.cells[cy*m.nx+cx] {
			fn(idx)
		}
	}
	if ring == 0 {
		visit(qcx, qcy)
		return
	}
	for cx := qcx - ring; cx <= qcx+ring; cx++ {
		visit(cx, qcy-ring)
		visit(cx, qcy+ring)
	}
	for cy := qcy - ring + 1; cy <= qcy+ring-1; cy++ {
		visit(qcx-ring, cy)
		visit(qcx+ring, cy)
	}
}
