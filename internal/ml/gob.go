package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file makes the three learners gob-encodable so a deployed model can
// ride inside a server checkpoint and answer predictions again after a
// restart without retraining (training is deterministic, but the sample it
// would retrain from has moved on — the restored process must serve the
// *same* model it served before the kill). Each model round-trips through
// an exported snapshot struct; the structs are versioned implicitly by gob
// field matching, and Decode validates the same invariants the
// constructors enforce.

// knnGob is the wire form of KNN.
type knnGob struct {
	K  int
	Xs [][]float64
	Ys []int
}

// GobEncode implements gob.GobEncoder.
func (m *KNN) GobEncode() ([]byte, error) {
	return gobEncode(knnGob{K: m.k, Xs: m.xs, Ys: m.ys})
}

// GobDecode implements gob.GobDecoder.
func (m *KNN) GobDecode(data []byte) error {
	var g knnGob
	if err := gobDecode(data, &g); err != nil {
		return fmt.Errorf("ml: KNN: %w", err)
	}
	if g.K < 1 {
		return fmt.Errorf("ml: KNN: decoded k %d out of range", g.K)
	}
	if len(g.Xs) != len(g.Ys) {
		return fmt.Errorf("ml: KNN: decoded %d points with %d labels", len(g.Xs), len(g.Ys))
	}
	m.k, m.xs, m.ys = g.K, g.Xs, g.Ys
	return nil
}

// linregGob is the wire form of LinearRegression.
type linregGob struct {
	Coef      []float64
	Intercept float64
	HasIcept  bool
}

// GobEncode implements gob.GobEncoder.
func (m *LinearRegression) GobEncode() ([]byte, error) {
	return gobEncode(linregGob{Coef: m.Coef, Intercept: m.Intercept, HasIcept: m.hasIcept})
}

// GobDecode implements gob.GobDecoder.
func (m *LinearRegression) GobDecode(data []byte) error {
	var g linregGob
	if err := gobDecode(data, &g); err != nil {
		return fmt.Errorf("ml: LinearRegression: %w", err)
	}
	if len(g.Coef) == 0 {
		return fmt.Errorf("ml: LinearRegression: decoded model has no coefficients")
	}
	m.Coef, m.Intercept, m.hasIcept = g.Coef, g.Intercept, g.HasIcept
	return nil
}

// nbGob is the wire form of NaiveBayes.
type nbGob struct {
	NumClasses int
	Vocab      int
	Alpha      float64
	LogPrior   []float64
	LogCond    [][]float64
}

// GobEncode implements gob.GobEncoder.
func (m *NaiveBayes) GobEncode() ([]byte, error) {
	return gobEncode(nbGob{
		NumClasses: m.numClasses, Vocab: m.vocab, Alpha: m.alpha,
		LogPrior: m.logPrior, LogCond: m.logCond,
	})
}

// GobDecode implements gob.GobDecoder.
func (m *NaiveBayes) GobDecode(data []byte) error {
	var g nbGob
	if err := gobDecode(data, &g); err != nil {
		return fmt.Errorf("ml: NaiveBayes: %w", err)
	}
	if g.NumClasses < 2 || g.Vocab < 1 {
		return fmt.Errorf("ml: NaiveBayes: decoded shape %d classes × %d words out of range", g.NumClasses, g.Vocab)
	}
	if len(g.LogPrior) != g.NumClasses || len(g.LogCond) != g.NumClasses {
		return fmt.Errorf("ml: NaiveBayes: decoded tables do not match %d classes", g.NumClasses)
	}
	for c, row := range g.LogCond {
		if len(row) != g.Vocab {
			return fmt.Errorf("ml: NaiveBayes: class %d conditional table has %d entries, want %d", c, len(row), g.Vocab)
		}
	}
	m.numClasses, m.vocab, m.alpha = g.NumClasses, g.Vocab, g.Alpha
	m.logPrior, m.logCond = g.LogPrior, g.LogCond
	return nil
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
