// Package ml implements the three supervised models the paper retrains on
// temporally-biased samples (Section 6): a kNN classifier, ordinary
// least-squares linear regression, and a multinomial Naive Bayes text
// classifier. The implementations are deliberately self-contained — the
// whole point of the sampling-based approach is that static, off-the-shelf
// learners can be reused on streams without re-engineering.
package ml

import (
	"fmt"
	"math"
)

// KNN is a k-nearest-neighbour classifier over d-dimensional points with
// Euclidean distance and majority vote (Section 6.2, k = 7 in the paper).
// Fit stores the training set; Predict scans it with a bounded insertion
// sort over the k best distances, which outperforms a heap for the small k
// used here.
type KNN struct {
	k  int
	xs [][]float64
	ys []int
}

// NewKNN returns a classifier using the k nearest neighbours.
func NewKNN(k int) (*KNN, error) {
	if k < 1 {
		return nil, fmt.Errorf("ml: k must be positive, got %d", k)
	}
	return &KNN{k: k}, nil
}

// Fit replaces the training set. The slices are retained (not copied); they
// must not be mutated while the model is in use, and must have equal length.
func (m *KNN) Fit(xs [][]float64, ys []int) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("ml: KNN.Fit length mismatch: %d points, %d labels", len(xs), len(ys))
	}
	m.xs, m.ys = xs, ys
	return nil
}

// TrainSize returns the number of stored training points.
func (m *KNN) TrainSize() int { return len(m.xs) }

// Predict returns the majority class among the k nearest training points,
// or -1 if the model has no training data. Ties are broken in favour of the
// nearer neighbour set (the class whose closest member is nearest).
func (m *KNN) Predict(x []float64) int {
	if len(m.xs) == 0 {
		return -1
	}
	k := m.k
	if k > len(m.xs) {
		k = len(m.xs)
	}
	// Bounded insertion sort of the k smallest squared distances.
	dists := make([]float64, k)
	labels := make([]int, k)
	filled := 0
	for i, p := range m.xs {
		d := sqDist(x, p)
		if filled == k && d >= dists[k-1] {
			continue
		}
		j := filled
		if j == k {
			j = k - 1
		} else {
			filled++
		}
		for j > 0 && dists[j-1] > d {
			dists[j] = dists[j-1]
			labels[j] = labels[j-1]
			j--
		}
		dists[j] = d
		labels[j] = m.ys[i]
	}
	// Majority vote among labels[:filled]; ties go to the class with the
	// nearest member (first occurrence in the distance-sorted list).
	votes := make(map[int]int, filled)
	best, bestVotes := labels[0], 0
	for _, lbl := range labels[:filled] {
		votes[lbl]++
		if votes[lbl] > bestVotes {
			best, bestVotes = lbl, votes[lbl]
		}
	}
	return best
}

// sqDist returns the squared Euclidean distance, treating missing trailing
// coordinates as zero.
func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	for i := n; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return s
}

// Dist returns the Euclidean distance between two points (exposed for
// tests and examples).
func Dist(a, b []float64) float64 { return math.Sqrt(sqDist(a, b)) }
