package ml

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestKNNGridValidation(t *testing.T) {
	if _, err := NewKNNGrid(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNNGrid(3, mathNaN()); err == nil {
		t.Error("NaN cell accepted")
	}
	m, err := NewKNNGrid(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit([][2]float64{{1, 1}}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if got := m.Predict(0, 0); got != -1 {
		t.Errorf("untrained model predicted %d", got)
	}
	if err := m.Fit(nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(0, 0); got != -1 {
		t.Errorf("empty model predicted %d", got)
	}
}

func mathNaN() float64 { var z float64; return z / z }

func TestKNNGridTinyFallback(t *testing.T) {
	m, err := NewKNNGrid(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit([][2]float64{{0, 0}, {1, 1}}, []int{3, 3}); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(0.5, 0.5); got != 3 {
		t.Errorf("tiny set predicted %d", got)
	}
	if m.TrainSize() != 2 {
		t.Errorf("TrainSize = %d", m.TrainSize())
	}
}

// TestKNNGridAgreesWithExhaustive is the key correctness property: the
// grid-indexed classifier must return the same prediction as the
// exhaustive scan on random instances, including queries far outside the
// training bounding box.
func TestKNNGridAgreesWithExhaustive(t *testing.T) {
	f := func(seed uint16) bool {
		rng := xrand.New(uint64(seed) + 1)
		n := 50 + rng.Intn(300)
		pts := make([][2]float64, n)
		flat := make([][]float64, n)
		ys := make([]int, n)
		for i := range pts {
			pts[i] = [2]float64{rng.Float64() * 80, rng.Float64() * 80}
			flat[i] = []float64{pts[i][0], pts[i][1]}
			ys[i] = rng.Intn(5)
		}
		k := 1 + rng.Intn(7)
		grid, err := NewKNNGrid(k, 0)
		if err != nil {
			return false
		}
		if err := grid.Fit(pts, ys); err != nil {
			return false
		}
		brute, err := NewKNN(k)
		if err != nil {
			return false
		}
		if err := brute.Fit(flat, ys); err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			var qx, qy float64
			switch trial % 3 {
			case 0: // inside
				qx, qy = rng.Float64()*80, rng.Float64()*80
			case 1: // near the boundary
				qx, qy = rng.Float64()*90-5, rng.Float64()*90-5
			default: // far outside
				qx, qy = rng.Float64()*400-160, rng.Float64()*400-160
			}
			if grid.Predict(qx, qy) != brute.Predict([]float64{qx, qy}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestKNNGridClusterAccuracy(t *testing.T) {
	rng := xrand.New(20)
	var pts [][2]float64
	var ys []int
	centers := [][2]float64{{0, 0}, {40, 0}, {0, 40}, {40, 40}}
	for c, ctr := range centers {
		for i := 0; i < 200; i++ {
			pts = append(pts, [2]float64{rng.Normal(ctr[0], 1), rng.Normal(ctr[1], 1)})
			ys = append(ys, c)
		}
	}
	m, err := NewKNNGrid(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(pts, ys); err != nil {
		t.Fatal(err)
	}
	correct := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		c := rng.Intn(4)
		if m.Predict(rng.Normal(centers[c][0], 1), rng.Normal(centers[c][1], 1)) == c {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.98 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestKNNGridExplicitCellSize(t *testing.T) {
	m, err := NewKNNGrid(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([][2]float64, 100)
	ys := make([]int, 100)
	rng := xrand.New(21)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 80, rng.Float64() * 80}
		ys[i] = i % 3
	}
	if err := m.Fit(pts, ys); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(40, 40); got < 0 || got > 2 {
		t.Errorf("prediction out of label range: %d", got)
	}
}

func BenchmarkKNNGridVsBrute(b *testing.B) {
	rng := xrand.New(22)
	const n = 2000
	pts := make([][2]float64, n)
	flat := make([][]float64, n)
	ys := make([]int, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 80, rng.Float64() * 80}
		flat[i] = []float64{pts[i][0], pts[i][1]}
		ys[i] = rng.Intn(100)
	}
	queries := make([][2]float64, 256)
	for i := range queries {
		queries[i] = [2]float64{rng.Float64() * 80, rng.Float64() * 80}
	}
	b.Run("grid", func(b *testing.B) {
		m, _ := NewKNNGrid(7, 0)
		if err := m.Fit(pts, ys); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			m.Predict(q[0], q[1])
		}
	})
	b.Run("brute", func(b *testing.B) {
		m, _ := NewKNN(7)
		if err := m.Fit(flat, ys); err != nil {
			b.Fatal(err)
		}
		q := make([]float64, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qq := queries[i%len(queries)]
			q[0], q[1] = qq[0], qq[1]
			m.Predict(q)
		}
	})
}
