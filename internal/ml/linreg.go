package ml

import (
	"fmt"
	"math"
)

// LinearRegression is an ordinary-least-squares linear model
// y = β·x (+ intercept), fit by solving the normal equations XᵀX β = Xᵀy
// with Gaussian elimination (Section 6.3 retrains exactly this model on
// each sample).
type LinearRegression struct {
	Coef      []float64
	Intercept float64
	hasIcept  bool
}

// FitOLS fits a linear model to the rows of xs against ys. If intercept is
// true a constant column is appended. It returns an error on degenerate
// input (empty data, ragged rows, or a singular normal matrix, e.g. fewer
// observations than parameters).
func FitOLS(xs [][]float64, ys []float64, intercept bool) (*LinearRegression, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("ml: FitOLS needs equal nonzero lengths, got %d rows and %d responses", len(xs), len(ys))
	}
	d := len(xs[0])
	if d == 0 {
		return nil, fmt.Errorf("ml: FitOLS needs at least one feature")
	}
	p := d
	if intercept {
		p++
	}
	// Accumulate XᵀX and Xᵀy in one pass.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	row := make([]float64, p)
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("ml: FitOLS ragged row %d: %d features, want %d", i, len(x), d)
		}
		copy(row, x)
		if intercept {
			row[d] = 1
		}
		for a := 0; a < p; a++ {
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * ys[i]
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	beta, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("ml: FitOLS: %w", err)
	}
	m := &LinearRegression{Coef: beta[:d], hasIcept: intercept}
	if intercept {
		m.Intercept = beta[d]
	}
	return m, nil
}

// Predict returns β·x (+ intercept).
func (m *LinearRegression) Predict(x []float64) float64 {
	s := m.Intercept
	n := len(x)
	if len(m.Coef) < n {
		n = len(m.Coef)
	}
	for i := 0; i < n; i++ {
		s += m.Coef[i] * x[i]
	}
	return s
}

// SolveLinear solves the dense linear system A·x = b using Gaussian
// elimination with partial pivoting, destroying neither input. It returns
// an error if the system is (numerically) singular.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("ml: SolveLinear dimension mismatch: %d×? vs %d", n, len(b))
	}
	// Copy into an augmented working matrix.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("ml: SolveLinear row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("ml: singular system (pivot %d)", col)
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
