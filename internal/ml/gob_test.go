package ml

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func gobRoundTrip[M any](t *testing.T, in M, out M) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestKNNGobRoundTrip: predictions from a decoded model must match the
// original on every query — the checkpoint-restore property the server
// relies on.
func TestKNNGobRoundTrip(t *testing.T) {
	m, err := NewKNN(3)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0, 0}, {1, 1}, {5, 5}, {6, 5}, {0.5, 0.2}}
	ys := []int{0, 0, 1, 1, 0}
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	var got KNN
	gobRoundTrip(t, m, &got)
	if got.TrainSize() != m.TrainSize() {
		t.Fatalf("train size %d, want %d", got.TrainSize(), m.TrainSize())
	}
	for _, q := range [][]float64{{0.1, 0.1}, {5.5, 5.1}, {3, 3}, {-1, 7}} {
		if a, b := got.Predict(q), m.Predict(q); a != b {
			t.Errorf("Predict(%v) = %d after round-trip, want %d", q, a, b)
		}
	}
}

func TestLinearRegressionGobRoundTrip(t *testing.T) {
	xs := [][]float64{{1, 2}, {2, 1}, {3, 4}, {4, 3}, {5, 6}}
	ys := []float64{5.1, 4.2, 11.0, 10.1, 17.2}
	m, err := FitOLS(xs, ys, true)
	if err != nil {
		t.Fatal(err)
	}
	var got LinearRegression
	gobRoundTrip(t, m, &got)
	for _, q := range [][]float64{{1, 1}, {2.5, 3.5}, {0, 0}} {
		if a, b := got.Predict(q), m.Predict(q); math.Abs(a-b) > 1e-12 {
			t.Errorf("Predict(%v) = %v after round-trip, want %v", q, a, b)
		}
	}
	// hasIcept must survive: a zero query exposes it through Intercept use.
	if a, b := got.Predict(nil), m.Predict(nil); a != b {
		t.Errorf("intercept flag lost: %v vs %v", a, b)
	}
}

func TestNaiveBayesGobRoundTrip(t *testing.T) {
	docs := [][]int{{0, 1, 2}, {1, 1, 3}, {4, 5}, {5, 5, 4}, {0, 2}}
	labels := []int{0, 0, 1, 1, 0}
	m, err := FitNaiveBayes(docs, labels, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got NaiveBayes
	gobRoundTrip(t, m, &got)
	if got.NumClasses() != m.NumClasses() {
		t.Fatalf("classes %d, want %d", got.NumClasses(), m.NumClasses())
	}
	for _, q := range [][]int{{0, 1}, {5, 4}, {2, 3, 5}, {}} {
		if a, b := got.Predict(q), m.Predict(q); a != b {
			t.Errorf("Predict(%v) = %d after round-trip, want %d", q, a, b)
		}
	}
}

// TestGobDecodeRejectsCorruptShapes: decoded models must be validated, not
// trusted — a checkpoint forged or torn into an inconsistent shape fails
// loudly instead of panicking at predict time.
func TestGobDecodeRejectsCorruptShapes(t *testing.T) {
	badKNN, err := gobEncode(knnGob{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := new(KNN).GobDecode(badKNN); err == nil {
		t.Error("KNN accepted k=0")
	}
	mismatch, err := gobEncode(knnGob{K: 1, Xs: [][]float64{{1}}, Ys: nil})
	if err != nil {
		t.Fatal(err)
	}
	if err := new(KNN).GobDecode(mismatch); err == nil {
		t.Error("KNN accepted points without labels")
	}
	badNB, err := gobEncode(nbGob{NumClasses: 2, Vocab: 3, LogPrior: []float64{0, 0}, LogCond: [][]float64{{0, 0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := new(NaiveBayes).GobDecode(badNB); err == nil {
		t.Error("NaiveBayes accepted a truncated conditional table")
	}
	if err := new(LinearRegression).GobDecode(mustGob(t, linregGob{})); err == nil {
		t.Error("LinearRegression accepted an empty coefficient vector")
	}
}

func mustGob(t *testing.T, v any) []byte {
	t.Helper()
	b, err := gobEncode(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
