package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestKNNValidation(t *testing.T) {
	if _, err := NewKNN(0); err == nil {
		t.Error("k=0 accepted")
	}
	m, err := NewKNN(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit([][]float64{{1}}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if got := m.Predict([]float64{0}); got != -1 {
		t.Errorf("empty model predicted %d", got)
	}
}

func TestKNNExactSmallCase(t *testing.T) {
	m, err := NewKNN(3)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {10, 10}, {10, 11}}
	ys := []int{0, 0, 0, 1, 1}
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.2, 0.2}); got != 0 {
		t.Errorf("near origin: %d", got)
	}
	if got := m.Predict([]float64{10, 10.5}); got != 1 {
		t.Errorf("near cluster 1: %d", got)
	}
	if m.TrainSize() != 5 {
		t.Errorf("TrainSize = %d", m.TrainSize())
	}
}

func TestKNNKLargerThanTrainSet(t *testing.T) {
	m, _ := NewKNN(7)
	if err := m.Fit([][]float64{{0}, {1}}, []int{1, 1}); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.4}); got != 1 {
		t.Errorf("k>train predicted %d", got)
	}
}

func TestKNNMajorityVote(t *testing.T) {
	m, _ := NewKNN(5)
	// 3 of class 7 slightly farther than 2 of class 3: majority wins.
	xs := [][]float64{{1}, {1.1}, {2}, {2.1}, {2.2}}
	ys := []int{3, 3, 7, 7, 7}
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1.5}); got != 7 {
		t.Errorf("majority vote = %d, want 7", got)
	}
}

func TestKNNSeparableClustersAccuracy(t *testing.T) {
	rng := xrand.New(10)
	var xs [][]float64
	var ys []int
	centers := [][2]float64{{0, 0}, {20, 0}, {0, 20}, {20, 20}}
	for c, ctr := range centers {
		for i := 0; i < 100; i++ {
			xs = append(xs, []float64{rng.Normal(ctr[0], 1), rng.Normal(ctr[1], 1)})
			ys = append(ys, c)
		}
	}
	m, _ := NewKNN(7)
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	correct := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		c := rng.Intn(4)
		x := []float64{rng.Normal(centers[c][0], 1), rng.Normal(centers[c][1], 1)}
		if m.Predict(x) == c {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.98 {
		t.Errorf("well-separated accuracy = %v", acc)
	}
}

func TestKNNMatchesBruteForceProperty(t *testing.T) {
	// The bounded-insertion selection must agree with a naive full sort.
	rng := xrand.New(11)
	f := func(seed uint16) bool {
		r := xrand.New(uint64(seed))
		n := 20 + r.Intn(50)
		xs := make([][]float64, n)
		ys := make([]int, n)
		for i := range xs {
			xs[i] = []float64{r.Float64() * 10, r.Float64() * 10}
			ys[i] = r.Intn(3)
		}
		m, _ := NewKNN(1)
		if err := m.Fit(xs, ys); err != nil {
			return false
		}
		q := []float64{r.Float64() * 10, r.Float64() * 10}
		got := m.Predict(q)
		// Brute force 1-NN.
		best, bestD := -1, math.Inf(1)
		for i := range xs {
			if d := Dist(q, xs[i]); d < bestD {
				best, bestD = i, d
			}
		}
		return got == ys[best]
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSqDistUnequalLengths(t *testing.T) {
	if got := Dist([]float64{3, 4}, []float64{0}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5 (missing coords are zero)", got)
	}
	if got := Dist([]float64{0}, []float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5 (symmetric)", got)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSolveLinearRandomProperty(t *testing.T) {
	// A·x reconstructed from the solution must match b.
	f := func(seed uint16) bool {
		r := xrand.New(uint64(seed) + 1)
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			a[i][i] += 5 // diagonal dominance keeps it well-conditioned
			b[i] = r.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range a {
			s := 0.0
			for j := range x {
				s += a[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitOLSRecoversCoefficients(t *testing.T) {
	rng := xrand.New(12)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 5000; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, 4.2*x1-0.4*x2+rng.NormFloat64())
	}
	m, err := FitOLS(xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-4.2) > 0.15 || math.Abs(m.Coef[1]+0.4) > 0.15 {
		t.Errorf("coef = %v, want ≈ (4.2, -0.4)", m.Coef)
	}
	pred := m.Predict([]float64{0.5, 0.5})
	want := 4.2*0.5 - 0.4*0.5
	if math.Abs(pred-want) > 0.2 {
		t.Errorf("Predict = %v, want ≈ %v", pred, want)
	}
}

func TestFitOLSWithIntercept(t *testing.T) {
	rng := xrand.New(13)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 10
		xs = append(xs, []float64{x})
		ys = append(ys, 3*x+7+0.1*rng.NormFloat64())
	}
	m, err := FitOLS(xs, ys, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 0.01 || math.Abs(m.Intercept-7) > 0.05 {
		t.Errorf("coef = %v intercept = %v, want 3 and 7", m.Coef, m.Intercept)
	}
}

func TestFitOLSValidation(t *testing.T) {
	if _, err := FitOLS(nil, nil, false); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitOLS([][]float64{{1, 2}, {1}}, []float64{1, 2}, false); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FitOLS([][]float64{{}}, []float64{1}, false); err == nil {
		t.Error("zero features accepted")
	}
	// Singular: two identical observations cannot identify two coefficients.
	if _, err := FitOLS([][]float64{{1, 1}, {1, 1}}, []float64{1, 1}, false); err == nil {
		t.Error("singular design accepted")
	}
}

func TestNaiveBayesSeparatesTopics(t *testing.T) {
	rng := xrand.New(14)
	const vocab = 100
	mkDoc := func(topic int) []int {
		// Topic 0 words in [0,50), topic 1 words in [50,100).
		doc := make([]int, 30)
		for i := range doc {
			if rng.Bernoulli(0.8) {
				doc[i] = topic*50 + rng.Intn(50)
			} else {
				doc[i] = rng.Intn(vocab)
			}
		}
		return doc
	}
	var docs [][]int
	var labels []int
	for i := 0; i < 200; i++ {
		topic := i % 2
		docs = append(docs, mkDoc(topic))
		labels = append(labels, topic)
	}
	m, err := FitNaiveBayes(docs, labels, 2, vocab, 1)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		topic := i % 2
		if m.Predict(mkDoc(topic)) == topic {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.95 {
		t.Errorf("NB accuracy = %v", acc)
	}
	if m.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", m.NumClasses())
	}
}

func TestNaiveBayesSmoothingHandlesUnseenClass(t *testing.T) {
	// All training docs have label 0; prediction must still work and not
	// produce -Inf everywhere thanks to smoothing.
	docs := [][]int{{0, 1}, {1, 2}}
	labels := []int{0, 0}
	m, err := FitNaiveBayes(docs, labels, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]int{0, 1}); got != 0 {
		t.Errorf("predicted %d, want 0", got)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	if _, err := FitNaiveBayes(nil, nil, 2, 5, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitNaiveBayes([][]int{{0}}, []int{0}, 1, 5, 1); err == nil {
		t.Error("single class accepted")
	}
	if _, err := FitNaiveBayes([][]int{{0}}, []int{0}, 2, 0, 1); err == nil {
		t.Error("zero vocab accepted")
	}
	if _, err := FitNaiveBayes([][]int{{0}}, []int{0}, 2, 5, 0); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := FitNaiveBayes([][]int{{0}}, []int{5}, 2, 5, 1); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := FitNaiveBayes([][]int{{9}}, []int{0}, 2, 5, 1); err == nil {
		t.Error("out-of-range word accepted")
	}
}

func TestNaiveBayesIgnoresOutOfVocabAtPredict(t *testing.T) {
	m, err := FitNaiveBayes([][]int{{0}, {1}}, []int{0, 1}, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Word id 99 is out of vocab; it must be skipped, not crash.
	_ = m.Predict([]int{0, 99, -3})
}
