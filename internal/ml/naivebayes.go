package ml

import (
	"fmt"
	"math"
)

// NaiveBayes is a multinomial Naive Bayes classifier over bag-of-words
// documents with Laplace (add-α) smoothing, the model retrained on text
// samples in Section 6.4.
type NaiveBayes struct {
	numClasses int
	vocab      int
	alpha      float64

	logPrior []float64   // log P(class)
	logCond  [][]float64 // logCond[c][w] = log P(word w | class c)
}

// FitNaiveBayes trains the classifier on documents given as word-identifier
// slices with class labels in [0, numClasses). Word identifiers must lie in
// [0, vocab). alpha is the Laplace smoothing constant (use 1 for classic
// add-one smoothing).
func FitNaiveBayes(docs [][]int, labels []int, numClasses, vocab int, alpha float64) (*NaiveBayes, error) {
	switch {
	case len(docs) == 0 || len(docs) != len(labels):
		return nil, fmt.Errorf("ml: FitNaiveBayes needs equal nonzero lengths, got %d docs and %d labels", len(docs), len(labels))
	case numClasses < 2:
		return nil, fmt.Errorf("ml: need at least 2 classes, got %d", numClasses)
	case vocab < 1:
		return nil, fmt.Errorf("ml: vocabulary must be positive, got %d", vocab)
	case alpha <= 0:
		return nil, fmt.Errorf("ml: smoothing constant must be positive, got %v", alpha)
	}
	classDocs := make([]float64, numClasses)
	wordCounts := make([][]float64, numClasses)
	classWords := make([]float64, numClasses)
	for c := range wordCounts {
		wordCounts[c] = make([]float64, vocab)
	}
	for i, doc := range docs {
		c := labels[i]
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("ml: label %d out of range [0,%d)", c, numClasses)
		}
		classDocs[c]++
		for _, w := range doc {
			if w < 0 || w >= vocab {
				return nil, fmt.Errorf("ml: word id %d out of range [0,%d)", w, vocab)
			}
			wordCounts[c][w]++
			classWords[c]++
		}
	}
	m := &NaiveBayes{
		numClasses: numClasses,
		vocab:      vocab,
		alpha:      alpha,
		logPrior:   make([]float64, numClasses),
		logCond:    make([][]float64, numClasses),
	}
	total := float64(len(docs))
	for c := 0; c < numClasses; c++ {
		// Smooth the prior too, so unseen classes keep nonzero mass.
		m.logPrior[c] = math.Log((classDocs[c] + alpha) / (total + alpha*float64(numClasses)))
		m.logCond[c] = make([]float64, vocab)
		denom := classWords[c] + alpha*float64(vocab)
		for w := 0; w < vocab; w++ {
			m.logCond[c][w] = math.Log((wordCounts[c][w] + alpha) / denom)
		}
	}
	return m, nil
}

// Predict returns the class maximizing the posterior log-likelihood of the
// document.
func (m *NaiveBayes) Predict(doc []int) int {
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < m.numClasses; c++ {
		s := m.logPrior[c]
		for _, w := range doc {
			if w >= 0 && w < m.vocab {
				s += m.logCond[c][w]
			}
		}
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// NumClasses returns the number of classes the model was trained with.
func (m *NaiveBayes) NumClasses() int { return m.numClasses }
