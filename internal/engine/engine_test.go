package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("New(0, 4) succeeded")
	}
	if _, err := New(4, 0); err == nil {
		t.Fatal("New(4, 0) succeeded")
	}
}

// TestPerKeyOrdering: tasks for one key run in submission order even with
// many workers and concurrent submitters on other keys.
func TestPerKeyOrdering(t *testing.T) {
	e, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const keys, perKey = 16, 200
	got := make([][]int, keys)
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("stream-%d", k)
			for i := 0; i < perKey; i++ {
				if err := e.Submit(key, func() { got[k] = append(got[k], i) }); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
			e.Flush(key)
		}()
	}
	wg.Wait()
	for k := range got {
		if len(got[k]) != perKey {
			t.Fatalf("key %d: %d tasks ran, want %d", k, len(got[k]), perKey)
		}
		for i, v := range got[k] {
			if v != i {
				t.Fatalf("key %d: out-of-order execution at %d: %v", k, i, got[k][:i+1])
			}
		}
	}
}

// TestFlushIsBarrier: Flush returns only after previously submitted tasks
// for the key have completed.
func TestFlushIsBarrier(t *testing.T) {
	e, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var done atomic.Bool
	release := make(chan struct{})
	if err := e.Submit("k", func() {
		<-release
		done.Store(true)
	}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	e.Flush("k")
	if !done.Load() {
		t.Fatal("Flush returned before the task completed")
	}
}

// TestBackpressure: with a depth-1 mailbox and a stalled worker, further
// submissions block and are counted.
func TestBackpressure(t *testing.T) {
	e, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}

	stall := make(chan struct{})
	if err := e.Submit("a", func() { <-stall }); err != nil {
		t.Fatal(err)
	}
	// Fill the mailbox behind the stalled task, then one more to block.
	if err := e.Submit("a", func() {}); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan struct{})
	go func() {
		if err := e.Submit("a", func() {}); err != nil {
			t.Errorf("Submit: %v", err)
		}
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("submit to a full mailbox did not block")
	case <-time.After(20 * time.Millisecond):
	}
	close(stall)
	<-unblocked
	e.Close()

	st := e.Stats()
	if st.Blocked == 0 {
		t.Fatalf("Stats.Blocked = 0 after a blocking submit: %+v", st)
	}
	if st.Submitted != 3 || st.Completed != 3 {
		t.Fatalf("Stats = %+v, want 3 submitted and completed", st)
	}
}

// TestCloseDrains: every accepted task runs before Close returns, and
// post-Close submissions are refused.
func TestCloseDrains(t *testing.T) {
	e, err := New(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	const n = 300
	for i := 0; i < n; i++ {
		if err := e.Submit(fmt.Sprint("k", i%7), func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("%d tasks ran before Close returned, want %d", got, n)
	}
	if err := e.Submit("k", func() {}); err != ErrClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	e.Flush("k") // must not hang
	e.Close()    // idempotent
	if p := e.Stats().Pending(); p != 0 {
		t.Fatalf("Pending = %d after Close", p)
	}
}

// TestBackgroundLane: jobs run on the background pool, are drained by
// Close, and the lane reports its own counters.
func TestBackgroundLane(t *testing.T) {
	e, err := New(2, 4, WithBackground(2))
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	const n = 50
	for i := 0; i < n; i++ {
		if err := e.Background(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("%d background jobs ran before Close returned, want %d", got, n)
	}
	st := e.Stats()
	if st.BackgroundWorkers != 2 || st.BackgroundSubmitted != n || st.BackgroundCompleted != n {
		t.Fatalf("background stats = %+v", st)
	}
	if st.BackgroundPending() != 0 {
		t.Fatalf("BackgroundPending = %d after Close", st.BackgroundPending())
	}
	if err := e.Background(func() {}); err != ErrClosed {
		t.Fatalf("Background after Close: err = %v, want ErrClosed", err)
	}
}

// TestBackgroundDisabled: without WithBackground the lane refuses jobs so
// callers fall back to inline execution.
func TestBackgroundDisabled(t *testing.T) {
	e, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Background(func() {}); err != ErrNoBackground {
		t.Fatalf("Background on a lane-less engine: err = %v, want ErrNoBackground", err)
	}
	if st := e.Stats(); st.BackgroundWorkers != 0 || st.BackgroundSubmitted != 0 {
		t.Fatalf("background stats on a lane-less engine: %+v", st)
	}
}

// TestBackgroundDoesNotBlockShardLane: a long-running background job must
// not delay shard-mailbox tasks.
func TestBackgroundDoesNotBlockShardLane(t *testing.T) {
	e, err := New(1, 2, WithBackground(1))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	if err := e.Background(func() { <-release }); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Bool
	if err := e.Submit("k", func() { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	e.Flush("k")
	if !ran.Load() {
		t.Fatal("shard task did not run while a background job was in flight")
	}
	close(release)
	e.Close()
}

// TestConcurrentChurn is a -race workout: submitters, flushers and stats
// readers racing against Close.
func TestConcurrentChurn(t *testing.T) {
	e, err := New(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprint("key-", g%3)
			for i := 0; i < 100; i++ {
				_ = e.Submit(key, func() {})
				if i%10 == 0 {
					e.Flush(key)
					_ = e.Stats()
				}
			}
		}()
	}
	wg.Wait()
	e.FlushAll()
	e.Close()
	st := e.Stats()
	if st.Submitted != st.Completed {
		t.Fatalf("submitted %d != completed %d after Close", st.Submitted, st.Completed)
	}
}
