// Package engine is the sharded asynchronous apply stage of the ingest
// pipeline: a fixed pool of shard workers, each draining a bounded FIFO
// mailbox of tasks. Stream keys are hashed to workers, so every task for
// one key executes on one goroutine in submission order — per-stream
// sampler updates stay sequential (the samplers are not concurrent data
// structures) while unrelated streams apply batches in parallel across
// cores instead of serializing on registry locks.
//
// Backpressure is explicit: a Submit against a full mailbox blocks (and is
// counted) until the worker drains, so a burst cannot grow memory without
// bound — the paper's "sampling must keep up with the stream" constraint
// becomes a bounded queue instead of an unbounded one. Close drains every
// mailbox before returning, which is what lets tbsd take its final
// checkpoint after shutdown with no batch left behind.
//
// An optional background lane (WithBackground) carries jobs that must not
// occupy a shard worker — model retrains dispatched at batch boundaries
// train there and atomically swap the deployed model when done, so the
// apply path never waits on a training run it did not itself order.
//
// The engine is deliberately ignorant of what a task does: the server
// layer closes over its registry entries, and lifecycle operations that
// need a quiesced stream (checkpoint capture, handoff freeze, hibernation
// eviction) drain a key's mailbox through the same submission path rather
// than reaching into the queues.
package engine

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Submit and Flush after Close has begun; callers
// fall back to applying the task inline.
var ErrClosed = errors.New("engine: closed")

// ErrNoBackground is returned by Background when the engine was built
// without a background lane; callers fall back to running the job inline.
var ErrNoBackground = errors.New("engine: no background lane")

// task is one mailbox element: either work (run != nil) or a flush
// sentinel (done != nil).
type task struct {
	run  func()
	done chan struct{}
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Workers   int
	QueueCap  int
	Submitted uint64 // tasks accepted (sentinels excluded)
	Completed uint64 // tasks fully executed
	Blocked   uint64 // submissions that found their mailbox full
	Depths    []int  // current queue depth per worker

	// DepthHWM is each worker's high-watermark queue depth since the
	// previous Stats call (reading resets it to the current depth), so a
	// scrape sees spikes that filled and drained between scrapes.
	DepthHWM []int

	// Background lane counters; BackgroundWorkers is 0 when the lane is
	// disabled.
	BackgroundWorkers   int
	BackgroundSubmitted uint64
	BackgroundCompleted uint64
	BackgroundDepth     int
}

// Pending returns the number of accepted-but-unfinished tasks.
func (s Stats) Pending() uint64 { return s.Submitted - s.Completed }

// BackgroundPending returns the number of accepted-but-unfinished
// background jobs.
func (s Stats) BackgroundPending() uint64 { return s.BackgroundSubmitted - s.BackgroundCompleted }

// Engine is the worker pool. Create with New, feed with Submit, await
// per-key completion with Flush, and shut down with Close.
type Engine struct {
	queues   []chan task
	depths   []atomic.Int64
	hwms     []atomic.Int64 // per-worker depth high-watermark since last Stats
	queueCap int
	seed     maphash.Seed

	submitted atomic.Uint64
	completed atomic.Uint64
	blocked   atomic.Uint64

	// Background lane: a shared mailbox drained by its own small worker
	// pool, for jobs (model retrains) that must not occupy a shard worker —
	// a slow train on the key-affine lane would stall every stream mapped
	// to that worker. nil when disabled.
	bgQueue     chan task
	bgWorkers   int
	bgDepth     atomic.Int64
	bgSubmitted atomic.Uint64
	bgCompleted atomic.Uint64

	// closeMu guards the closed flag against in-flight Submits: Submit
	// holds the read side across its channel send, so Close (write side)
	// cannot close a channel mid-send.
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
}

// Option configures optional engine features.
type Option func(*Engine)

// WithBackground enables the background lane with n workers sharing one
// mailbox of the same depth as the shard mailboxes. n < 1 leaves the lane
// disabled.
func WithBackground(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.bgWorkers = n
		}
	}
}

// New returns a started engine with the given number of shard workers,
// each owning a mailbox of the given depth.
func New(workers, depth int, opts ...Option) (*Engine, error) {
	if workers < 1 {
		return nil, fmt.Errorf("engine: worker count must be positive, got %d", workers)
	}
	if depth < 1 {
		return nil, fmt.Errorf("engine: queue depth must be positive, got %d", depth)
	}
	e := &Engine{
		queues:   make([]chan task, workers),
		depths:   make([]atomic.Int64, workers),
		hwms:     make([]atomic.Int64, workers),
		queueCap: depth,
		seed:     maphash.MakeSeed(),
	}
	for _, o := range opts {
		o(e)
	}
	for i := range e.queues {
		e.queues[i] = make(chan task, depth)
		e.wg.Add(1)
		go e.run(i)
	}
	if e.bgWorkers > 0 {
		e.bgQueue = make(chan task, depth)
		for i := 0; i < e.bgWorkers; i++ {
			e.wg.Add(1)
			go e.runBackground()
		}
	}
	return e, nil
}

func (e *Engine) run(i int) {
	defer e.wg.Done()
	for t := range e.queues[i] {
		e.depths[i].Add(-1)
		if t.done != nil {
			close(t.done)
			continue
		}
		t.run()
		e.completed.Add(1)
	}
}

func (e *Engine) runBackground() {
	defer e.wg.Done()
	for t := range e.bgQueue {
		e.bgDepth.Add(-1)
		t.run()
		e.bgCompleted.Add(1)
	}
}

// Workers returns the shard worker count.
func (e *Engine) Workers() int { return len(e.queues) }

// Background enqueues fn on the background lane — unordered with respect
// to every other task, intended for work whose result is installed via an
// atomic swap (model retrains). A full mailbox blocks, bounding memory the
// same way Submit does. Returns ErrNoBackground when the lane is disabled
// and ErrClosed after Close; callers run fn inline in both cases.
func (e *Engine) Background(fn func()) error {
	if e.bgQueue == nil {
		return ErrNoBackground
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.bgDepth.Add(1)
	e.bgSubmitted.Add(1)
	e.bgQueue <- task{run: fn}
	return nil
}

// workerFor maps a key to its owning worker.
func (e *Engine) workerFor(key string) int {
	return int(maphash.String(e.seed, key) % uint64(len(e.queues)))
}

// Submit enqueues fn on the worker owning key. Tasks submitted for one key
// from one goroutine run in submission order. When the worker's mailbox is
// full, Submit blocks until space frees up — that blocking is the
// pipeline's backpressure, surfaced in Stats.Blocked. After Close it
// returns ErrClosed without running fn.
func (e *Engine) Submit(key string, fn func()) error {
	return e.enqueue(key, task{run: fn}, true)
}

// Flush blocks until every task submitted for key's worker before the call
// has finished. Because mailboxes are FIFO, this is a happens-after
// barrier for all of key's prior tasks (and, incidentally, for other keys
// sharing the worker). After Close it returns immediately: Close has
// already drained everything.
func (e *Engine) Flush(key string) {
	done := make(chan struct{})
	if err := e.enqueue(key, task{done: done}, false); err != nil {
		return
	}
	<-done
}

// FlushAll is Flush across every worker, waiting in parallel.
func (e *Engine) FlushAll() {
	dones := make([]chan struct{}, len(e.queues))
	for i := range e.queues {
		done := make(chan struct{})
		if err := e.enqueueWorker(i, task{done: done}, false); err != nil {
			continue
		}
		dones[i] = done
	}
	for _, done := range dones {
		if done != nil {
			<-done
		}
	}
}

func (e *Engine) enqueue(key string, t task, counted bool) error {
	return e.enqueueWorker(e.workerFor(key), t, counted)
}

func (e *Engine) enqueueWorker(i int, t task, counted bool) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	q := e.queues[i]
	// Count before the send: a fast worker may complete the task before
	// this function returns, and Completed must never exceed Submitted
	// (Stats.Pending would underflow).
	d := e.depths[i].Add(1)
	for {
		h := e.hwms[i].Load()
		if d <= h || e.hwms[i].CompareAndSwap(h, d) {
			break
		}
	}
	if counted {
		e.submitted.Add(1)
	}
	select {
	case q <- t:
	default:
		// Mailbox full: record the backpressure event, then block.
		if counted {
			e.blocked.Add(1)
		}
		q <- t
	}
	return nil
}

// Close stops accepting tasks, drains every mailbox, and joins the
// workers. It is idempotent; concurrent and later Submits get ErrClosed.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	for _, q := range e.queues {
		close(q)
	}
	if e.bgQueue != nil {
		close(e.bgQueue)
	}
	e.closeMu.Unlock()
	e.wg.Wait()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Workers:   len(e.queues),
		QueueCap:  e.queueCap,
		Submitted: e.submitted.Load(),
		Completed: e.completed.Load(),
		Blocked:   e.blocked.Load(),
		Depths:    make([]int, len(e.depths)),
		DepthHWM:  make([]int, len(e.hwms)),

		BackgroundWorkers:   e.bgWorkers,
		BackgroundSubmitted: e.bgSubmitted.Load(),
		BackgroundCompleted: e.bgCompleted.Load(),
		BackgroundDepth:     int(e.bgDepth.Load()),
	}
	for i := range e.depths {
		d := e.depths[i].Load()
		st.Depths[i] = int(d)
		// Reset the watermark to the current depth (not zero): a queue
		// that stays deep across the scrape keeps reporting deep.
		st.DepthHWM[i] = int(e.hwms[i].Swap(d))
	}
	return st
}
