package stream

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestFixedGap(t *testing.T) {
	g := FixedGap{Delta: 2.5}
	for i := 0; i < 5; i++ {
		if g.NextGap() != 2.5 {
			t.Fatal("fixed gap drifted")
		}
	}
}

func TestExponentialGapMean(t *testing.T) {
	g := ExponentialGap{Mean: 3, RNG: xrand.New(1)}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := g.NextGap()
		if v < 0 {
			t.Fatal("negative gap")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("mean gap = %v, want 3", mean)
	}
}

func TestUniformGapRange(t *testing.T) {
	g := UniformGap{Lo: 1, Hi: 2, RNG: xrand.New(2)}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := g.NextGap()
		if v < 1 || v > 2 {
			t.Fatalf("gap out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1.5) > 0.01 {
		t.Errorf("mean = %v", mean)
	}
	deg := UniformGap{Lo: 4, Hi: 4, RNG: xrand.New(3)}
	if deg.NextGap() != 4 {
		t.Error("degenerate uniform gap")
	}
}

func TestTimedDriver(t *testing.T) {
	gen := GeneratorFunc[int](func(tm, size int) []int { return make([]int, size) })
	d, err := NewTimedDriver[int](Deterministic{B: 7}, FixedGap{Delta: 0.5}, gen)
	if err != nil {
		t.Fatal(err)
	}
	b1 := d.Produce()
	b2 := d.Produce()
	if b1.At != 0.5 || b2.At != 1.0 {
		t.Errorf("arrival times %v, %v", b1.At, b2.At)
	}
	if len(b1.Items) != 7 || len(b2.Items) != 7 {
		t.Error("wrong batch sizes")
	}
	if d.Now() != 1.0 {
		t.Errorf("Now = %v", d.Now())
	}
}

func TestTimedDriverStrictlyIncreasing(t *testing.T) {
	gen := GeneratorFunc[int](func(tm, size int) []int { return nil })
	// A gap process that returns zero must still yield increasing times.
	zero := FixedGap{Delta: 0}
	d, err := NewTimedDriver[int](Deterministic{B: 0}, zero, gen)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 10; i++ {
		b := d.Produce()
		if b.At <= prev {
			t.Fatalf("non-increasing arrival time %v after %v", b.At, prev)
		}
		prev = b.At
	}
}

func TestTimedDriverValidation(t *testing.T) {
	gen := GeneratorFunc[int](func(tm, size int) []int { return nil })
	if _, err := NewTimedDriver[int](nil, FixedGap{1}, gen); err == nil {
		t.Error("nil sizes accepted")
	}
	if _, err := NewTimedDriver[int](Deterministic{1}, nil, gen); err == nil {
		t.Error("nil gaps accepted")
	}
	if _, err := NewTimedDriver[int](Deterministic{1}, FixedGap{1}, nil); err == nil {
		t.Error("nil generator accepted")
	}
}
