package stream

import (
	"fmt"

	"repro/internal/xrand"
)

// GapProcess yields the real-valued gap between consecutive batch
// arrivals, supporting the paper's arbitrary-arrival-time extension
// (Section 2: "our results can be applied to arbitrary sequences of
// real-valued batch arrival times").
type GapProcess interface {
	NextGap() float64
}

// FixedGap spaces arrivals Delta apart (Δ-discretized time).
type FixedGap struct{ Delta float64 }

// NextGap returns Delta.
func (g FixedGap) NextGap() float64 { return g.Delta }

// ExponentialGap draws i.i.d. exponential gaps with the given mean, so
// batch arrivals form a Poisson process in continuous time.
type ExponentialGap struct {
	Mean float64
	RNG  *xrand.RNG
}

// NextGap returns an independent exponential gap.
func (g ExponentialGap) NextGap() float64 { return g.Mean * g.RNG.ExpFloat64() }

// UniformGap draws i.i.d. gaps uniformly from [Lo, Hi].
type UniformGap struct {
	Lo, Hi float64
	RNG    *xrand.RNG
}

// NextGap returns an independent uniform gap.
func (g UniformGap) NextGap() float64 {
	if g.Hi <= g.Lo {
		return g.Lo
	}
	return g.Lo + (g.Hi-g.Lo)*g.RNG.Float64()
}

// TimedBatch pairs a batch with its real-valued arrival time.
type TimedBatch[T any] struct {
	At    float64
	Items []T
}

// TimedDriver produces batches at irregular real-valued times, for feeding
// samplers through AdvanceAt.
type TimedDriver[T any] struct {
	Sizes SizeProcess
	Gaps  GapProcess
	Gen   Generator[T]

	t   int
	now float64
}

// NewTimedDriver returns a TimedDriver starting at time 0.
func NewTimedDriver[T any](sizes SizeProcess, gaps GapProcess, gen Generator[T]) (*TimedDriver[T], error) {
	if sizes == nil || gaps == nil || gen == nil {
		return nil, fmt.Errorf("stream: nil size process, gap process, or generator")
	}
	return &TimedDriver[T]{Sizes: sizes, Gaps: gaps, Gen: gen}, nil
}

// Produce advances the clock by the next gap and returns the batch with
// its arrival time. Non-positive gaps are clamped to a tiny positive value
// so arrival times are strictly increasing.
func (d *TimedDriver[T]) Produce() TimedBatch[T] {
	d.t++
	gap := d.Gaps.NextGap()
	if gap <= 0 {
		gap = 1e-9
	}
	d.now += gap
	size := d.Sizes.Next(d.t)
	if size < 0 {
		size = 0
	}
	return TimedBatch[T]{At: d.now, Items: d.Gen.Batch(d.t, size)}
}

// Now returns the time of the most recently produced batch.
func (d *TimedDriver[T]) Now() float64 { return d.now }
