// Package stream provides batch-size processes and stream drivers for the
// batch-arrival setting of the paper (Section 2): items arrive in batches
// B₁, B₂, … at times t = 1, 2, …, with batch sizes that may be
// deterministic, random, growing, or decaying. The experiments in Figure 1
// and Figures 10–12 are parameterized entirely by these processes.
package stream

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// SizeProcess yields the size of the batch arriving at each time step.
// Implementations may be stateful; Next must be called once per step, in
// order, starting at t = 1.
type SizeProcess interface {
	Next(t int) int
}

// Deterministic is a constant batch size: Bₜ ≡ B.
type Deterministic struct{ B int }

// Next returns the constant size B.
func (d Deterministic) Next(int) int { return d.B }

// UniformIID draws batch sizes i.i.d. uniformly from {Lo, …, Hi}
// (e.g. Uniform[0, 200] in Figure 1(c) and Figure 11(a), with mean 100).
type UniformIID struct {
	Lo, Hi int
	RNG    *xrand.RNG
}

// Next returns an independent uniform draw from {Lo, …, Hi}.
func (u UniformIID) Next(int) int {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + u.RNG.Intn(u.Hi-u.Lo+1)
}

// Poisson draws batch sizes i.i.d. Poisson(Mean), a natural model for
// independent arrivals within discretized time intervals.
type Poisson struct {
	Mean float64
	RNG  *xrand.RNG
}

// Next returns an independent Poisson draw.
func (p Poisson) Next(int) int { return p.RNG.Poisson(p.Mean) }

// Geometric grows (ϕ > 1) or shrinks (ϕ < 1) the batch size multiplicatively
// once t exceeds Start: Bₜ₊₁ = ϕ·Bₜ, as in Figures 1(a) (ϕ = 1.002 from
// t = 200) and 1(d) (ϕ = 0.8). Before Start the size is constant B0.
type Geometric struct {
	B0    float64
	Phi   float64
	Start int // growth begins after this step

	cur float64
}

// Next returns the current size and applies the multiplicative drift when
// past Start.
func (g *Geometric) Next(t int) int {
	if g.cur == 0 {
		g.cur = g.B0
	}
	size := int(math.Round(g.cur))
	if t >= g.Start {
		g.cur *= g.Phi
	}
	return size
}

// Sequence replays an explicit list of batch sizes, then returns 0 forever.
type Sequence struct {
	Sizes []int
	pos   int
}

// Next returns the next recorded size, or 0 once exhausted.
func (s *Sequence) Next(int) int {
	if s.pos >= len(s.Sizes) {
		return 0
	}
	v := s.Sizes[s.pos]
	s.pos++
	return v
}

// Generator produces the items of each batch given the batch's time step and
// size. Implementations live in package datagen.
type Generator[T any] interface {
	Batch(t, size int) []T
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc[T any] func(t, size int) []T

// Batch calls f.
func (f GeneratorFunc[T]) Batch(t, size int) []T { return f(t, size) }

// Driver pairs a size process with an item generator and steps them
// together, producing the batch stream fed to samplers in every experiment.
type Driver[T any] struct {
	Sizes SizeProcess
	Gen   Generator[T]

	t int
}

// NewDriver returns a Driver starting at t = 0 (the first Produce yields
// batch B₁).
func NewDriver[T any](sizes SizeProcess, gen Generator[T]) (*Driver[T], error) {
	if sizes == nil || gen == nil {
		return nil, fmt.Errorf("stream: nil size process or generator")
	}
	return &Driver[T]{Sizes: sizes, Gen: gen}, nil
}

// Produce advances the clock and returns the next batch.
func (d *Driver[T]) Produce() []T {
	d.t++
	size := d.Sizes.Next(d.t)
	if size < 0 {
		size = 0
	}
	return d.Gen.Batch(d.t, size)
}

// T returns the time of the most recently produced batch.
func (d *Driver[T]) T() int { return d.t }
