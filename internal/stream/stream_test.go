package stream

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestDeterministic(t *testing.T) {
	p := Deterministic{B: 100}
	for i := 1; i <= 10; i++ {
		if got := p.Next(i); got != 100 {
			t.Fatalf("Next(%d) = %d", i, got)
		}
	}
}

func TestUniformIID(t *testing.T) {
	p := UniformIID{Lo: 0, Hi: 200, RNG: xrand.New(1)}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := p.Next(i)
		if v < 0 || v > 200 {
			t.Fatalf("out of range: %d", v)
		}
		sum += float64(v)
	}
	if mean := sum / n; math.Abs(mean-100) > 2 {
		t.Errorf("mean = %v, want ≈ 100", mean)
	}
	// Degenerate interval.
	fixed := UniformIID{Lo: 7, Hi: 7, RNG: xrand.New(2)}
	if got := fixed.Next(1); got != 7 {
		t.Errorf("degenerate uniform = %d", got)
	}
}

func TestPoissonProcess(t *testing.T) {
	p := Poisson{Mean: 50, RNG: xrand.New(3)}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(p.Next(i))
	}
	if mean := sum / n; math.Abs(mean-50) > 1 {
		t.Errorf("mean = %v, want ≈ 50", mean)
	}
}

func TestGeometricGrowth(t *testing.T) {
	// Figure 1(a): constant until t = 200, then ×1.002 per step.
	g := &Geometric{B0: 100, Phi: 1.002, Start: 200}
	var sizes []int
	for i := 1; i <= 1000; i++ {
		sizes = append(sizes, g.Next(i))
	}
	for i := 0; i < 199; i++ {
		if sizes[i] != 100 {
			t.Fatalf("t=%d: size %d, want 100 before growth", i+1, sizes[i])
		}
	}
	want := 100 * math.Pow(1.002, 800)
	if got := float64(sizes[999]); math.Abs(got-want) > 2 {
		t.Errorf("t=1000: size %v, want ≈ %v", got, want)
	}
}

func TestGeometricDecay(t *testing.T) {
	// Figure 1(d): ϕ = 0.8 from t = 200.
	g := &Geometric{B0: 100, Phi: 0.8, Start: 200}
	last := 0
	for i := 1; i <= 260; i++ {
		last = g.Next(i)
	}
	if last != 0 {
		t.Errorf("decayed size = %d, want 0 after 60 steps of ×0.8", last)
	}
}

func TestSequence(t *testing.T) {
	s := &Sequence{Sizes: []int{3, 1, 4}}
	got := []int{s.Next(1), s.Next(2), s.Next(3), s.Next(4)}
	want := []int{3, 1, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sequence = %v, want %v", got, want)
		}
	}
}

func TestDriver(t *testing.T) {
	gen := GeneratorFunc[int](func(tm, size int) []int {
		out := make([]int, size)
		for i := range out {
			out[i] = tm*1000 + i
		}
		return out
	})
	d, err := NewDriver[int](&Sequence{Sizes: []int{2, 0, 3}}, gen)
	if err != nil {
		t.Fatal(err)
	}
	b1 := d.Produce()
	if len(b1) != 2 || b1[0] != 1000 || d.T() != 1 {
		t.Fatalf("batch 1 = %v, t = %d", b1, d.T())
	}
	if b2 := d.Produce(); len(b2) != 0 {
		t.Fatalf("batch 2 = %v", b2)
	}
	b3 := d.Produce()
	if len(b3) != 3 || b3[2] != 3002 {
		t.Fatalf("batch 3 = %v", b3)
	}
}

func TestDriverValidation(t *testing.T) {
	if _, err := NewDriver[int](nil, GeneratorFunc[int](func(_, _ int) []int { return nil })); err == nil {
		t.Error("nil size process accepted")
	}
	if _, err := NewDriver[int](Deterministic{B: 1}, nil); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestDriverClampsNegativeSizes(t *testing.T) {
	d, err := NewDriver[int](&Sequence{Sizes: []int{-5}}, GeneratorFunc[int](func(_, size int) []int {
		return make([]int, size)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Produce(); len(got) != 0 {
		t.Errorf("negative size produced %d items", len(got))
	}
}
