package analysis

import (
	"go/ast"
	"go/token"
)

// Effect is a MustFlow event's impact on the tracked condition.
type Effect int

const (
	// EffectNone leaves the condition unchanged.
	EffectNone Effect = iota
	// EffectSet makes the condition true on this path.
	EffectSet
	// EffectClear makes the condition false on this path.
	EffectClear
)

// MustFlow is a conservative forward must-analysis over one function
// body, without building a real CFG: the tracked state is "the Set event
// has happened on every control-flow path reaching this point".
//
// Conservatisms (all err toward state=false, i.e. toward reporting):
//   - branches meet with AND over their non-terminating exits;
//   - a loop body is assumed to run zero times, so state after a loop is
//     the state before it;
//   - break/continue/goto terminate their straight-line path;
//   - function-literal bodies are not entered (a Set inside a non-defer
//     closure does not count), except that DeferEffect may inspect a
//     deferred closure and promote it to a Set for everything after the
//     defer statement.
//
// One refinement tracks nil-guard correlation, for the common
//
//	if err == nil { err = syncWAL(lsn) }
//	if err != nil { respond(error); return }
//	respond(ok)
//
// shape: the first if records "err == nil implies the condition holds"
// (sound because the then branch's fall-through state is the only way
// out with err possibly nil), and the second — whose body terminates
// every non-nil path — then promotes the state to true. The guard is
// keyed by identifier name, dropped on any reassignment, and confined
// to the statement list where it was established (descending into any
// branch or loop body snapshots and restores the guard set, so a guard
// taken inside one branch can never leak past its join).
type MustFlow struct {
	// Effect classifies a call's impact on the tracked condition.
	Effect func(*ast.CallExpr) Effect
	// DeferEffect classifies a deferred call (the CallExpr of the defer
	// statement, which may invoke a function literal). A Set takes hold
	// from the defer statement onward — the deferred call is guaranteed
	// to run on every subsequent exit.
	DeferEffect func(*ast.CallExpr) Effect
	// OnCall, if set, observes every call with the state holding just
	// before the enclosing statement executes.
	OnCall func(*ast.CallExpr, bool)
	// OnExit, if set, observes every function exit — each return
	// statement, and the body's end when it falls through — with the
	// state at that point.
	OnExit func(ast.Node, bool)

	// guards tracks live nil-guard correlations: name → "name == nil
	// implies the tracked condition holds". See the type comment.
	guards map[string]bool
}

// Walk runs the analysis over a function body with the condition
// initially true (vacuous until the first Clear) — the shape paired
// Clear/Set events (acquire/release) want.
func (m *MustFlow) Walk(body *ast.BlockStmt) { m.WalkFrom(body, true) }

// WalkFrom runs the analysis with an explicit initial state; pass false
// when the condition must be established by a Set before the first
// checked event (the WAL-sync-before-ack shape).
func (m *MustFlow) WalkFrom(body *ast.BlockStmt, initial bool) {
	if body == nil {
		return
	}
	m.guards = make(map[string]bool)
	state, terminated := m.walkStmts(body.List, initial)
	if !terminated && m.OnExit != nil {
		m.OnExit(body, state)
	}
}

// walkStmts processes a statement sequence, returning the state at its
// fall-through end and whether every path out of it terminated (return,
// branch, panic-like exit is not modeled — only return/branch).
func (m *MustFlow) walkStmts(stmts []ast.Stmt, state bool) (bool, bool) {
	for _, s := range stmts {
		var term bool
		state, term = m.walkStmt(s, state)
		if term {
			return state, true
		}
	}
	return state, false
}

func (m *MustFlow) walkStmt(s ast.Stmt, state bool) (after bool, terminated bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return m.walkStmts(s.List, state)

	case *ast.ReturnStmt:
		state = m.scanExprs(state, s.Results...)
		if m.OnExit != nil {
			m.OnExit(s, state)
		}
		return state, true

	case *ast.BranchStmt:
		// break/continue/goto: drop out of the straight-line walk. The
		// jump target re-joins with whatever state the enclosing
		// construct's conservative rules assign.
		return state, true

	case *ast.DeferStmt:
		state = m.scanExprs(state, s.Call)
		if m.DeferEffect != nil {
			switch m.DeferEffect(s.Call) {
			case EffectSet:
				state = true
			case EffectClear:
				state = false
			}
		}
		return state, false

	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = m.walkStmt(s.Init, state)
		}
		state = m.scanExprs(state, s.Cond)
		save := m.snapGuards()
		thenState, thenTerm := m.walkStmts(s.Body.List, state)
		m.guards = save
		elseState, elseTerm := state, false
		if s.Else != nil {
			save = m.snapGuards()
			elseState, elseTerm = m.walkStmt(s.Else, state)
			m.guards = save
		}
		// Nil-guard establishment: if x == nil { ...Set... } with no
		// else. x == nil can only survive the statement through the then
		// branch's fall-through, so its state bounds the correlation.
		if name, ok := nilCompare(s.Cond, token.EQL); ok && s.Else == nil && !thenTerm && thenState {
			m.guards[name] = true
		}
		// Nil-guard discharge: if x != nil { ...every path terminates }
		// with a live guard — all surviving paths have x == nil, which
		// implies the condition.
		if name, ok := nilCompare(s.Cond, token.NEQ); ok && s.Else == nil && thenTerm && m.guards[name] {
			return true, false
		}
		switch {
		case thenTerm && elseTerm:
			return state, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			return thenState && elseState, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			state, _ = m.walkStmt(s.Init, state)
		}
		save := m.snapGuards()
		inner := state
		inner = m.scanExprs(inner, s.Cond)
		inner, _ = m.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			m.walkStmt(s.Post, inner)
		}
		m.guards = save
		// Zero-iteration assumption: state after the loop is the state
		// before it.
		return state, false

	case *ast.RangeStmt:
		state = m.scanExprs(state, s.X)
		save := m.snapGuards()
		m.walkStmts(s.Body.List, state)
		m.guards = save
		return state, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			state, _ = m.walkStmt(s.Init, state)
		}
		state = m.scanExprs(state, s.Tag)
		return m.walkCases(s.Body.List, state)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state, _ = m.walkStmt(s.Init, state)
		}
		state, _ = m.walkStmt(s.Assign, state)
		return m.walkCases(s.Body.List, state)

	case *ast.SelectStmt:
		return m.walkCases(s.Body.List, state)

	case *ast.LabeledStmt:
		return m.walkStmt(s.Stmt, state)

	case *ast.GoStmt:
		return m.scanExprs(state, s.Call), false

	case *ast.EmptyStmt:
		return state, false

	default:
		// Straight-line statements: assignments, expression statements,
		// declarations, inc/dec, sends. Scan for calls. A reassignment
		// kills any nil-guard on the variable.
		if as, ok := s.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					delete(m.guards, id.Name)
				}
			}
		}
		return m.scanExprs(state, stmtExprs(s)...), false
	}
}

func (m *MustFlow) snapGuards() map[string]bool {
	save := make(map[string]bool, len(m.guards))
	for k, v := range m.guards {
		save[k] = v
	}
	return save
}

// nilCompare matches `x <op> nil` / `nil <op> x` with x a plain
// identifier, returning x's name.
func nilCompare(cond ast.Expr, op token.Token) (string, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != op {
		return "", false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(y) {
		if id, ok := x.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	if isNilIdent(x) {
		if id, ok := y.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// walkCases meets the bodies of switch/select clauses. A missing default
// clause means the whole construct can fall through untouched, so the
// entry state joins the meet.
func (m *MustFlow) walkCases(clauses []ast.Stmt, state bool) (bool, bool) {
	meet := true
	anyOpen := false
	hasDefault := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			state = m.scanExprs(state, c.List...)
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				_, _ = m.walkStmt(c.Comm, state)
			}
			body = c.Body
		}
		save := m.snapGuards()
		st, term := m.walkStmts(body, state)
		m.guards = save
		if !term {
			meet = meet && st
			anyOpen = true
		}
	}
	if !hasDefault {
		meet = meet && state
		anyOpen = true
	}
	if !anyOpen {
		return state, true
	}
	return meet, false
}

// scanExprs visits every call in the expressions (not descending into
// function literals), reports each through OnCall with the entry state,
// then applies their effects.
func (m *MustFlow) scanExprs(state bool, exprs ...ast.Expr) bool {
	entry := state
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if m.OnCall != nil {
				m.OnCall(call, entry)
			}
			if m.Effect != nil {
				switch m.Effect(call) {
				case EffectSet:
					state = true
				case EffectClear:
					state = false
				}
			}
			return true
		})
	}
	return state
}

// stmtExprs extracts the expressions of a straight-line statement.
func stmtExprs(s ast.Stmt) []ast.Expr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		var out []ast.Expr
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				out = append(out, vs.Values...)
			}
		}
		return out
	}
	return nil
}
