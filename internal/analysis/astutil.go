package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WalkStack traverses root in depth-first order, calling fn with each
// node and the stack of its ancestors (outermost first, not including n
// itself). Returning false skips the node's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// HasDirective reports whether the comment group carries the given
// machine-readable directive (written //tbs:name, no space after the
// slashes, per Go directive convention — such lines are excluded from
// godoc output automatically).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := c.Text
		if text == "//"+directive || strings.HasPrefix(text, "//"+directive+" ") {
			return true
		}
	}
	return false
}

// CalleeFunc resolves the function or method a call invokes, or nil for
// indirect calls, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether the call invokes a package-level function of
// the package with the given path (e.g. "fmt") — methods don't match.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath
}

// UsedObject resolves an identifier expression (possibly parenthesized)
// to the object it uses, or nil.
func UsedObject(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}
