// Package metriclint implements the tbsvet analyzer for the Prometheus
// exposition conventions of the hand-rolled /metrics renderers. The
// daemons emit metrics as text lines built with fmt.Appendf-style
// helpers, so the contract lives in string literals; metriclint parses
// them back out and enforces:
//
//   - names are prefixed tbsd_/tbsrouter_ and snake_case;
//   - names carry Prometheus base units — _ms/_kb-style suffixes and
//     unitless _latency/_duration names are rejected;
//   - a bare (label-free) metric name is emitted at most once per
//     rendering function (the "registered once" rule — these renderers
//     ARE the registry, so a second emission is a duplicate series);
//   - dynamic label values flow through obs.EscapeLabel: a %s/%v verb in
//     label position must be fed a constant, a non-string value, or an
//     EscapeLabel result, and the same applies to label strings built by
//     concatenation; %q is accepted as self-quoting (Go's escapes cover
//     every exposition-breaking character), but an unquoted %s is always
//     malformed.
//
// Three literal shapes are recognized: full exposition lines
// ("tbsd_x_total %d", `tbsd_up{node="%s"} %d`), bare metric names
// passed to helpers ("tbsd_advance_latency_seconds"), and names passed
// to (*obs.Histogram).AppendProm — including prefix+"_suffix" concats,
// whose literal part is checked alone.
package metriclint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metriclint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metriclint",
	Doc:  "Prometheus metric names must be tbsd_/tbsrouter_ snake_case with base units; dynamic labels must use obs.EscapeLabel",
	Run:  run,
}

var (
	// lineRE matches an exposition-line format literal: NAME{LABELS} VERB
	// where NAME may itself be a verb (dynamic-name helpers like
	// "%s{stat=%q} %g" — label checks still apply).
	lineRE = regexp.MustCompile(`^(%[a-zA-Z]|[A-Za-z_][A-Za-z0-9_]*)(\{([^}]*)\})? %`)
	// bareNameRE matches a metric name on its own.
	bareNameRE = regexp.MustCompile(`^(tbsd|tbsrouter)_[A-Za-z0-9_]+$`)
	snakeRE    = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	// labelValRE finds label entries and their value form:
	// k="%s" / k="%v" / k="..." / k=%q.
	labelValRE = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)=("(?:%[a-zA-Z]|[^"%]*)"|%[a-zA-Z])`)
)

// bannedUnits maps rejected unit suffixes to the base unit to use.
var bannedUnits = map[string]string{
	"_ms": "_seconds", "_msec": "_seconds", "_millis": "_seconds", "_milliseconds": "_seconds",
	"_us": "_seconds", "_usec": "_seconds", "_micros": "_seconds", "_microseconds": "_seconds",
	"_ns": "_seconds", "_nanos": "_seconds", "_nanoseconds": "_seconds",
	"_mins": "_seconds", "_minutes": "_seconds", "_hours": "_seconds", "_days": "_seconds",
	"_kb": "_bytes", "_mb": "_bytes", "_gb": "_bytes", "_kib": "_bytes", "_mib": "_bytes", "_gib": "_bytes",
}

// unitlessSuffixes are name endings that promise a measurement but name
// no unit.
var unitlessSuffixes = []string{"_latency", "_duration", "_time", "_elapsed"}

type checker struct {
	pass *analysis.Pass
	// seen tracks bare names emitted per enclosing function.
	seen map[ast.Node]map[string]bool
	// escaped caches, per enclosing function, which local variables are
	// single-assigned from obs.EscapeLabel.
	escaped map[ast.Node]map[types.Object]bool
	// reported dedupes diagnostics: a literal can be reached through
	// several rules (bare name and AppendProm argument, say).
	reported map[reportKey]bool
}

type reportKey struct {
	pos token.Pos
	msg string
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	k := reportKey{pos, fmt.Sprintf(format, args...)}
	if c.reported[k] {
		return
	}
	c.reported[k] = true
	c.pass.Reportf(pos, "%s", k.msg)
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		seen:     make(map[ast.Node]map[string]bool),
		escaped:  make(map[ast.Node]map[types.Object]bool),
		reported: make(map[reportKey]bool),
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.STRING {
					c.checkLiteral(n, stack)
				}
			case *ast.CallExpr:
				c.checkAppendProm(n)
			case *ast.BinaryExpr:
				c.checkConcatLabels(n, stack)
			}
			return true
		})
	}
	return nil
}

func (c *checker) checkLiteral(lit *ast.BasicLit, stack []ast.Node) {
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if m := lineRE.FindStringSubmatch(s); m != nil {
		name, labels := m[1], m[3]
		// Log formats also look like "word %v"; only a multi-word
		// snake_case name or an explicit label block marks an exposition
		// line.
		if !strings.Contains(name, "_") && m[2] == "" {
			return
		}
		if !strings.HasPrefix(name, "%") {
			c.checkName(lit, name, true)
			if m[2] == "" { // label-free: the registered-once rule
				c.checkDuplicate(lit, name, stack)
			}
		}
		if labels != "" {
			c.checkLabelVerbs(lit, s, labels, stack)
		}
		return
	}
	if bareNameRE.MatchString(s) {
		// A bare name (helper argument): name rules apply, duplicate and
		// label rules don't — helpers fan one name into _count/_sum
		// series themselves.
		c.checkName(lit, s, false)
	}
}

// checkName enforces prefix (for exposition lines), snake case, and
// unit conventions.
func (c *checker) checkName(lit *ast.BasicLit, name string, needPrefix bool) {
	if needPrefix && !strings.HasPrefix(name, "tbsd_") && !strings.HasPrefix(name, "tbsrouter_") &&
		!strings.HasPrefix(name, "go_") && !strings.HasPrefix(name, "process_") {
		// go_/process_ are the standard client conventions for the
		// runtime/process bridge metrics.
		c.reportf(lit.Pos(), "metric name %q must start with tbsd_ or tbsrouter_", name)
	}
	c.checkNameShape(lit, name)
}

func (c *checker) checkNameShape(lit *ast.BasicLit, name string) {
	if !snakeRE.MatchString(name) || strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
		c.reportf(lit.Pos(), "metric name %q is not snake_case", name)
		return
	}
	base := strings.TrimSuffix(name, "_total")
	for unit, instead := range bannedUnits {
		if strings.HasSuffix(base, unit) {
			c.reportf(lit.Pos(), "metric name %q uses non-base unit %q — use %s (Prometheus base units)", name, unit, instead)
			return
		}
	}
	for _, suf := range unitlessSuffixes {
		if strings.HasSuffix(base, suf) {
			c.reportf(lit.Pos(), "metric name %q needs a base-unit suffix after %q (e.g. _seconds)", name, suf)
			return
		}
	}
}

// checkDuplicate enforces once-per-function emission of bare names.
func (c *checker) checkDuplicate(lit *ast.BasicLit, name string, stack []ast.Node) {
	fn := enclosingFunc(stack)
	if fn == nil {
		return
	}
	m := c.seen[fn]
	if m == nil {
		m = make(map[string]bool)
		c.seen[fn] = m
	}
	if m[name] {
		c.reportf(lit.Pos(), "metric %q emitted more than once in this function — duplicate series registration", name)
	}
	m[name] = true
}

// checkLabelVerbs validates the arguments feeding %-verbs in label
// position of a format literal.
func (c *checker) checkLabelVerbs(lit *ast.BasicLit, format, labels string, stack []ast.Node) {
	call, argBase := enclosingFormatCall(lit, stack)
	if call == nil {
		return
	}
	labelOff := strings.Index(format, "{")
	for _, m := range labelValRE.FindAllStringSubmatchIndex(labels, -1) {
		key := labels[m[2]:m[3]]
		val := labels[m[4]:m[5]]
		verb, quoted := "", false
		switch {
		case strings.HasPrefix(val, `"`) && strings.Contains(val, "%"):
			verb, quoted = val[strings.Index(val, "%"):strings.Index(val, "%")+2], true
		case strings.HasPrefix(val, "%"):
			verb = val[:2]
		default:
			continue // constant label value
		}
		// Which verb ordinal is this within the whole format string?
		// Label content starts one past the opening brace.
		verbPos := labelOff + 1 + m[4]
		if quoted {
			verbPos += strings.Index(val, "%")
		}
		ordinal := verbOrdinal(format, verbPos)
		argIdx := argBase + ordinal
		if ordinal < 0 || argIdx >= len(call.Args) {
			continue
		}
		arg := call.Args[argIdx]
		switch verb {
		case "%q":
			// Self-quoting: Go's %q escapes \, ", and newline — every
			// character that could break the exposition line.
		case "%s", "%v":
			if !quoted {
				c.reportf(lit.Pos(), "label %q value %s is unquoted in the exposition format", key, verb)
				continue
			}
			if !c.isEscapeSafe(arg, stack) {
				c.reportf(arg.Pos(), "dynamic value for label %q must flow through obs.EscapeLabel", key)
			}
		}
	}
}

// checkAppendProm validates metric-name arguments of AppendProm calls,
// including prefix+"_suffix" concatenations.
func (c *checker) checkAppendProm(call *ast.CallExpr) {
	f := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if f == nil || f.Name() != "AppendProm" || len(call.Args) < 2 {
		return
	}
	switch name := ast.Unparen(call.Args[1]).(type) {
	case *ast.BasicLit:
		if name.Kind != token.STRING {
			return
		}
		if s, err := strconv.Unquote(name.Value); err == nil {
			c.checkName(name, s, true)
		}
	case *ast.BinaryExpr:
		// prefix + "_suffix": the dynamic prefix is the daemon name;
		// check the literal tail's shape and units (snake body without
		// the leading-letter requirement).
		if name.Op != token.ADD {
			return
		}
		if suffix, ok := ast.Unparen(name.Y).(*ast.BasicLit); ok && suffix.Kind == token.STRING {
			if s, err := strconv.Unquote(suffix.Value); err == nil {
				c.checkNameShape(suffix, "x"+s) // fuse a stand-in head so ^[a-z] passes
			}
		}
	}
}

// checkConcatLabels enforces EscapeLabel on label strings built with +:
// any operand directly following a literal that ends `="` must be
// escape-safe.
func (c *checker) checkConcatLabels(bin *ast.BinaryExpr, stack []ast.Node) {
	if bin.Op != token.ADD || !c.isStringTyped(bin) {
		return
	}
	// Only handle the outermost + of a chain.
	if len(stack) > 0 {
		if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && p.Op == token.ADD {
			return
		}
	}
	ops := flattenAdd(bin)
	for i := 0; i+1 < len(ops); i++ {
		lit, ok := ast.Unparen(ops[i]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil || !strings.HasSuffix(s, `="`) {
			continue
		}
		if !c.isEscapeSafe(ops[i+1], stack) {
			key := s[strings.LastIndexAny(s, `,{ `)+1 : len(s)-2]
			c.reportf(ops[i+1].Pos(), "dynamic value for label %q must flow through obs.EscapeLabel", key)
		}
	}
}

func flattenAdd(e ast.Expr) []ast.Expr {
	if bin, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		return append(flattenAdd(bin.X), flattenAdd(bin.Y)...)
	}
	return []ast.Expr{e}
}

// isEscapeSafe reports whether the expression cannot smuggle unescaped
// characters into a label value: constants, non-strings, EscapeLabel
// results (direct or via a single-assignment local), and formatted
// numbers are safe.
func (c *checker) isEscapeSafe(e ast.Expr, stack []ast.Node) bool {
	e = ast.Unparen(e)
	tv, ok := c.pass.TypesInfo.Types[e]
	if ok && tv.Value != nil {
		return true // constant
	}
	if ok && tv.Type != nil && !c.isStringTyped(e) {
		return true // numbers etc. format to label-safe characters
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if f := analysis.CalleeFunc(c.pass.TypesInfo, e); f != nil {
			switch f.Name() {
			case "EscapeLabel":
				return true
			case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool":
				return true
			case "Sprint", "Sprintf", "Sprintln":
				for _, arg := range e.Args {
					if c.isStringTyped(arg) {
						tv, ok := c.pass.TypesInfo.Types[arg]
						if !ok || tv.Value == nil {
							return false
						}
					}
				}
				return true
			}
		}
		return false
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		fn := enclosingFunc(stack)
		if fn == nil {
			return false
		}
		return c.escapedVars(fn)[obj]
	}
	return false
}

// escapedVars computes (and caches) the set of locals in fn that are
// assigned exactly once, from an EscapeLabel call.
func (c *checker) escapedVars(fn ast.Node) map[types.Object]bool {
	if m, ok := c.escaped[fn]; ok {
		return m
	}
	assigns := make(map[types.Object]int)
	fromEscape := make(map[types.Object]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			assigns[obj]++
			if i < len(as.Rhs) {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
					if f := analysis.CalleeFunc(c.pass.TypesInfo, call); f != nil && f.Name() == "EscapeLabel" {
						fromEscape[obj] = true
					}
				}
			}
		}
		return true
	})
	m := make(map[types.Object]bool)
	for obj := range fromEscape {
		if assigns[obj] == 1 {
			m[obj] = true
		}
	}
	c.escaped[fn] = m
	return m
}

func (c *checker) isStringTyped(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// enclosingFunc returns the innermost FuncDecl or FuncLit on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// enclosingFormatCall finds the call the literal is a direct argument
// of, returning the index of the first variadic value after it.
func enclosingFormatCall(lit *ast.BasicLit, stack []ast.Node) (*ast.CallExpr, int) {
	if len(stack) == 0 {
		return nil, 0
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return nil, 0
	}
	for i, arg := range call.Args {
		if arg == ast.Expr(lit) {
			return call, i + 1
		}
	}
	return nil, 0
}

// verbOrdinal counts which %-verb (0-based, %% excluded) sits at byte
// offset pos of the format string, or -1.
func verbOrdinal(format string, pos int) int {
	ord := -1
	for i := 0; i < len(format)-1; i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		// Skip flags, width, precision to the verb character.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[j])) {
			j++
		}
		ord++
		if i == pos {
			return ord
		}
		i = j
	}
	return -1
}
