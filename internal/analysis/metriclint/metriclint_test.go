package metriclint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/metriclint"
)

func TestMetricLint(t *testing.T) {
	analysistest.Run(t, filepath.Join(".", "testdata"), metriclint.Analyzer,
		"metriclintbad", "metriclintok")
}
