// Package metriclintbad seeds exposition-format violations: bad names,
// bad units, duplicate series, and unescaped dynamic labels.
package metriclintbad

import "fmt"

func line(b []byte, format string, args ...any) []byte {
	return fmt.Appendf(b, format+"\n", args...)
}

func badNames(b []byte, n int) []byte {
	b = line(b, "requests_total %d", n)      // want `must start with tbsd_ or tbsrouter_`
	b = line(b, "tbsd_Requests_total %d", n) // want `is not snake_case`
	b = line(b, "tbsd_req__count %d", n)     // want `is not snake_case`
	return b
}

func badUnits(b []byte, v float64) []byte {
	b = line(b, "tbsd_req_latency_ms %g", v)   // want `non-base unit "_ms"`
	b = line(b, "tbsd_heap_kb %g", v)          // want `non-base unit "_kb"`
	b = line(b, "tbsd_compact_duration %g", v) // want `needs a base-unit suffix`
	b = line(b, "tbsd_sync_time_total %g", v)  // want `needs a base-unit suffix`
	return b
}

func duplicateSeries(b []byte, n int) []byte {
	b = line(b, "tbsd_items_total %d", n)
	b = line(b, "tbsd_items_total %d", n+1) // want `emitted more than once`
	return b
}

func unescapedVerb(b []byte, node string, up int) []byte {
	return line(b, `tbsd_node_up{node="%s"} %d`, node, up) // want `label "node" must flow through obs.EscapeLabel`
}

func unquotedVerb(b []byte, node string, up int) []byte {
	return line(b, `tbsd_node_up{node=%s} %d`, node, up) // want `label "node" value %s is unquoted`
}

func unescapedConcat(node string) string {
	return `tbsd_node_up{node="` + node + `"} 1` // want `label "node" must flow through obs.EscapeLabel`
}

type histo struct{}

func (histo) AppendProm(b []byte, name string, labels []byte) []byte { return b }

func badAppendProm(b []byte, h histo, daemon string) []byte {
	b = h.AppendProm(b, "tbsd_flush_latency_ms", nil) // want `non-base unit "_ms"`
	b = h.AppendProm(b, daemon+"_apply_micros", nil)  // want `non-base unit "_micros"`
	return b
}
