// Package metriclintok pins metriclint's negative space: the renderer
// idioms from internal/server, internal/cluster, and internal/obs that
// must stay silent. Each case began life as a would-be false positive
// during the analyzer's bring-up against the real tree.
package metriclintok

import (
	"fmt"
	"strconv"
)

// EscapeLabel stands in for obs.EscapeLabel — the analyzer matches the
// callee by name.
func EscapeLabel(s string) string { return s }

func line(b []byte, format string, args ...any) []byte {
	return fmt.Appendf(b, format+"\n", args...)
}

func goodNames(b []byte, n int, v float64) []byte {
	b = line(b, "tbsd_items_total %d", n)
	b = line(b, "tbsrouter_forward_errors_total %d", n)
	b = line(b, "tbsd_flush_latency_seconds %g", v)
	b = line(b, "tbsd_heap_bytes %d", n)
	// The runtime-bridge metrics keep their standard client prefixes.
	b = line(b, "go_gc_pause_seconds %g", v)
	b = line(b, "process_resident_memory_bytes %d", n)
	return b
}

// The lat helper shape: a dynamic metric name with constant %q labels.
func latShape(b []byte, name string, mean float64) []byte {
	b = line(b, "%s{stat=%q} %g", name, "mean", mean)
	return b
}

// Dynamic labels through EscapeLabel, directly or via a single
// assignment (the cluster node-metrics shape).
func escapedLabels(b []byte, nodeName string, up int) []byte {
	b = line(b, `tbsrouter_node_up{node="%s"} %d`, EscapeLabel(nodeName), up)
	name := EscapeLabel(nodeName)
	b = line(b, `tbsrouter_node_healthy{node="%s"} %d`, name, up)
	return b
}

// Non-string verbs format to label-safe characters (the shard-gauge
// shape uses fmt.Sprint of an int).
func numericLabels(b []byte, shard int, n int) []byte {
	b = line(b, `tbsd_shard_streams{shard="%d"} %d`, shard, n)
	b = line(b, `tbsd_shard_streams_v2{shard="%s"} %d`, fmt.Sprint(shard), n)
	b = line(b, `tbsd_shard_streams_v3{shard="%s"} %d`, strconv.Itoa(shard), n)
	return b
}

// The same bare name in different functions is two renderers, not a
// duplicate registration.
func renderA(b []byte, n int) []byte { return line(b, "tbsd_ready %d", n) }
func renderB(b []byte, n int) []byte { return line(b, "tbsd_ready %d", n) }

// Repeated names with label blocks are distinct series.
func labeledSeries(b []byte, n int) []byte {
	b = line(b, `tbsd_wal_records_total{kind="append"} %d`, n)
	b = line(b, `tbsd_wal_records_total{kind="advance"} %d`, n)
	return b
}

// The histogram bucket shape: labels built by byte-append, never by
// string concatenation.
func bucketShape(b []byte, le float64, count uint64) []byte {
	b = append(b, `tbsd_stage_seconds_bucket{le="`...)
	b = strconv.AppendFloat(b, le, 'g', -1, 64)
	b = append(b, `"} `...)
	b = strconv.AppendUint(b, count, 10)
	return append(b, '\n')
}

// Log lines that happen to end in a verb are not exposition lines: a
// single-word name with no label block never looks like a metric.
func logging(n int, path string) {
	fmt.Printf("checkpoint %d\n", n)
	fmt.Printf("listening on %s\n", path)
	fmt.Printf("read: %v\n", n)
}
