package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads packages by shelling out to `go list -deps -json` for
// metadata and type-checking every package from source in dependency
// order. It exists because the x/tools loaders are not available to a
// standard-library-only module; it handles exactly what tbsvet needs —
// non-test files of module and standard-library packages, no cgo, no
// vendoring.
type Loader struct {
	// Dir is the directory go list runs in (the module root, or any
	// directory inside it). Empty means the current directory.
	Dir string

	fset  *token.FileSet
	meta  map[string]*listPackage // go list metadata by import path
	typed map[string]*types.Package
	built map[string]*Package // fully parsed+checked, by import path
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:   dir,
		fset:  token.NewFileSet(),
		meta:  make(map[string]*listPackage),
		typed: make(map[string]*types.Package),
		built: make(map[string]*Package),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the patterns (./... style) and returns the matched
// packages — dependencies are type-checked but not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	order, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range order {
		lp := l.meta[path]
		if lp.DepOnly || lp.Standard {
			if _, err := l.check(path); err != nil {
				return nil, err
			}
			continue
		}
		pkg, err := l.build(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// list runs go list and records metadata, returning the emission order
// (dependencies before dependents).
func (l *Loader) list(patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Imports,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	// CGO off: go list then reports the pure-Go fallback file sets for
	// std packages like net, which is what a from-source type-check needs.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var order []string
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if lp.Error != nil && !lp.Standard {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if _, ok := l.meta[lp.ImportPath]; !ok {
			p := lp
			l.meta[lp.ImportPath] = &p
		}
		order = append(order, lp.ImportPath)
	}
	return order, nil
}

// check type-checks the package (and, via the importer, its
// dependencies) and returns its *types.Package.
func (l *Loader) check(path string) (*types.Package, error) {
	if pkg, ok := l.typed[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		l.typed[path] = types.Unsafe
		return types.Unsafe, nil
	}
	lp, ok := l.meta[path]
	if !ok {
		// A path reached outside the original pattern set (testdata
		// imports, for example): list it on demand.
		if _, err := l.list([]string{path}); err != nil {
			return nil, err
		}
		if lp, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("loader: unknown package %q", path)
		}
	}
	files, err := l.parseDir(lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, info, err := l.typeCheck(path, files, lp.Standard)
	if err != nil {
		return nil, err
	}
	l.typed[path] = pkg
	l.built[path] = &Package{
		PkgPath: path, Dir: lp.Dir, Fset: l.fset,
		Files: files, Types: pkg, TypesInfo: info,
	}
	return pkg, nil
}

// build returns the fully loaded Package for a module path.
func (l *Loader) build(path string) (*Package, error) {
	if _, err := l.check(path); err != nil {
		return nil, err
	}
	return l.built[path], nil
}

// parseDir parses the named files of one directory with comments.
func (l *Loader) parseDir(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck runs go/types over the files. Errors in standard-library
// packages are tolerated (assembly-backed declarations, linknames);
// errors in module packages are fatal — the analyzers need sound types.
func (l *Loader) typeCheck(path string, files []*ast.File, std bool) (*types.Package, *types.Info, error) {
	info := NewInfo()
	var firstErr error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if !std {
		if firstErr != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", path, firstErr)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
		}
	}
	return pkg, info, nil
}

// NewInfo returns a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// loaderImporter adapts the Loader to the go/types importer interfaces.
type loaderImporter Loader

var _ types.ImporterFrom = (*loaderImporter)(nil)

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return (*Loader)(li).check(path)
}

func (li *loaderImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return (*Loader)(li).check(path)
}

// CheckDir parses and type-checks a single directory outside the go list
// universe — the analysistest harness uses it for testdata packages,
// whose directories are invisible to `go list ./...`. Imports resolve
// through the loader (standard library and module packages alike). The
// package is named by its directory basename.
func (l *Loader) CheckDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") || strings.HasSuffix(de.Name(), "_test.go") {
			continue
		}
		names = append(names, de.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	files, err := l.parseDir(dir, names)
	if err != nil {
		return nil, err
	}
	path := filepath.Base(dir)
	pkg, info, err := l.typeCheck(path, files, false)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: path, Dir: dir, Fset: l.fset,
		Files: files, Types: pkg, TypesInfo: info,
	}, nil
}
