package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can be rebased
// onto the real framework if it ever becomes a dependency.
type Analyzer struct {
	// Name is the analyzer's identifier, shown in diagnostics and used
	// to select analyzers on the tbsvet command line.
	Name string
	// Doc is the one-paragraph help text.
	Doc string
	// Run executes the check over one type-checked package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run call.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files, with comments.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, anchored to an exact file:line:col.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position. An analyzer error (not a finding — a
// failure to run) aborts the whole run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
