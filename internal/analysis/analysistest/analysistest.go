// Package analysistest runs an analyzer over seeded testdata packages
// and checks its diagnostics against // want comments, mirroring the
// x/tools harness of the same name so the analyzer tests read like any
// other Go analyzer suite.
//
// A testdata package lives in <testdata>/src/<name>/ and is loaded with
// Loader.CheckDir (the directories are deliberately invisible to `go
// list ./...` so the seeded violations never fail the real tbsvet run).
// Expectations are written on the offending line:
//
//	v := pool.Get().([]byte) // want `no matching Put`
//
// Each want pattern is an anchored-nowhere regexp that must match the
// message of a diagnostic reported on that line; every diagnostic must
// be claimed by a want and every want must claim a diagnostic. A file
// with no want comments asserts the analyzer stays silent over it —
// that is how the would-be-false-positive packages pin the analyzer's
// negative space.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expectation: a pattern that must match a diagnostic at
// file:line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE pulls the quoted patterns out of a want comment. Both `...`
// and "..." quoting are accepted.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads each named package from testdataDir/src, runs the analyzer,
// and reports any mismatch between diagnostics and want comments as
// test errors.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	loader := analysis.NewLoader(testdataDir)
	for _, name := range pkgNames {
		pkg, err := loader.CheckDir(filepath.Join(testdataDir, "src", name))
		if err != nil {
			t.Errorf("%s: load: %v", name, err)
			continue
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: run: %v", name, err)
			continue
		}
		wants, err := collectWants(pkg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for _, d := range diags {
			pos := d.Pos
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, filepath.Base(pos.Filename), pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", name, filepath.Base(w.file), w.line, w.pattern)
			}
		}
	}
}

// collectWants parses // want comments out of every file in the package.
func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", filepath.Base(pos.Filename), pos.Line)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", filepath.Base(pos.Filename), pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}

// claim marks the first unmatched want at file:line whose pattern
// matches the message.
func claim(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
