// Package walbeforeack implements the tbsvet analyzer enforcing
// invariant 1 of ARCHITECTURE.md on annotated HTTP handlers: the
// success response is the acknowledgement, so it must not be written
// until the operation's journal records have been made durable by the
// group-commit sync. A handler annotated //tbs:walbeforeack may only
// reach a 2xx response write (a respond/writeJSON call whose status
// argument is a constant in [200,300)) on paths where a syncWAL call
// has already executed.
//
// The check is a conservative forward must-analysis (analysis.MustFlow)
// rather than a full CFG dominance computation: branches meet with AND,
// loops are assumed to run zero times, and closures are opaque. Error
// responses (non-constant or non-2xx status arguments) are ignored —
// failing a request before durability is always legal.
package walbeforeack

import (
	"go/ast"
	"go/constant"

	"repro/internal/analysis"
)

// Directive is the annotation that opts a handler into the check.
const Directive = "tbs:walbeforeack"

// syncNames are the callee names that count as the durability barrier.
var syncNames = map[string]bool{"syncWAL": true}

// ackNames maps acknowledgement callees to the index of their status
// argument.
var ackNames = map[string]int{
	"writeJSON": 1, // writeJSON(w, status, v)
	"respond":   2, // respond(tr, w, status, v)
}

// Analyzer is the walbeforeack analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "walbeforeack",
	Doc:  "//tbs:walbeforeack handlers must group-commit-sync the WAL before writing a success response",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, Directive) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	flow := &analysis.MustFlow{
		Effect: func(call *ast.CallExpr) analysis.Effect {
			if f := analysis.CalleeFunc(pass.TypesInfo, call); f != nil && syncNames[f.Name()] {
				return analysis.EffectSet
			}
			return analysis.EffectNone
		},
		OnCall: func(call *ast.CallExpr, synced bool) {
			if synced {
				return
			}
			status, ok := successStatus(pass, call)
			if !ok {
				return
			}
			pass.Reportf(call.Pos(),
				"success response (status %d) written before the WAL group-commit sync in //%s handler %s",
				status, Directive, fd.Name.Name)
		},
	}
	// The tracked condition starts false: nothing is durable when the
	// handler is entered.
	flow.WalkFrom(fd.Body, false)
}

// successStatus reports whether the call writes a success response, and
// with which constant status.
func successStatus(pass *analysis.Pass, call *ast.CallExpr) (int64, bool) {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil {
		return 0, false
	}
	argIdx, ok := ackNames[f.Name()]
	if !ok || argIdx >= len(call.Args) {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[argIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	status, ok := constant.Int64Val(tv.Value)
	if !ok || status < 200 || status >= 300 {
		return 0, false
	}
	return status, true
}
