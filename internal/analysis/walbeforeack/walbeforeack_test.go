package walbeforeack_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walbeforeack"
)

func TestWalBeforeAck(t *testing.T) {
	analysistest.Run(t, filepath.Join(".", "testdata"), walbeforeack.Analyzer,
		"walbeforeackbad", "walbeforeackok")
}
