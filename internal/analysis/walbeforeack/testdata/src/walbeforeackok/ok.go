// Package walbeforeackok pins walbeforeack's negative space: the
// handler shapes from internal/server that must stay silent.
package walbeforeackok

import (
	"errors"
	"net/http"
)

type srv struct{}

func (s *srv) syncWAL(lsn uint64) error { return nil }

func respond(tr, w any, status int, v any) {}

func writeJSON(w any, status int, v any) {}

// An unannotated handler may ack whenever it likes.
func (s *srv) unannotated(w any, lsn uint64) {
	respond(nil, w, http.StatusOK, "done")
	_ = s.syncWAL(lsn)
}

// The canonical handler: journal, group-commit, then ack.
//
//tbs:walbeforeack
func (s *srv) syncThenAck(w any, lsn uint64) {
	if err := s.syncWAL(lsn); err != nil {
		respond(nil, w, http.StatusInternalServerError, err)
		return
	}
	respond(nil, w, http.StatusOK, "done")
}

// Failing a request before durability is always legal: error statuses
// are not acknowledgements.
//
//tbs:walbeforeack
func (s *srv) errorFirst(w any, ok bool, lsn uint64) {
	if !ok {
		writeJSON(w, http.StatusBadRequest, "nope")
		return
	}
	_ = s.syncWAL(lsn)
	writeJSON(w, http.StatusOK, "done")
}

// A non-constant status is an error-path helper (the NDJSON fail
// closure shape), not a success ack.
//
//tbs:walbeforeack
func (s *srv) dynamicStatus(w any, status int, lsn uint64) {
	respond(nil, w, status, "who knows")
	_ = s.syncWAL(lsn)
	respond(nil, w, http.StatusOK, "done")
}

// Both branches sync before the shared ack.
//
//tbs:walbeforeack
func (s *srv) bothBranchesSync(w any, fast bool, lsn uint64) {
	if fast {
		_ = s.syncWAL(lsn)
	} else {
		if err := s.syncWAL(lsn + 1); err != nil {
			respond(nil, w, http.StatusServiceUnavailable, err)
			return
		}
	}
	respond(nil, w, http.StatusOK, "done")
}

// The model-handler shape: sync under an err == nil guard, then a
// single err != nil bailout covering both the operation and the sync.
// The nil-guard correlation must keep this silent.
//
//tbs:walbeforeack
func (s *srv) guardedSync(w any, lsn uint64) {
	err := doWork()
	if err == nil {
		err = s.syncWAL(lsn)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, "done")
}

func doWork() error { return nil }

// The sync result feeding the error check is the usual real shape.
//
//tbs:walbeforeack
func (s *srv) syncErrHandled(w any, lsn uint64) {
	err := s.syncWAL(lsn)
	if errors.Is(err, errClosed) {
		writeJSON(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, "done")
}

var errClosed = errors.New("closed")
