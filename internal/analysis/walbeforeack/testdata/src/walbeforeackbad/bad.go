// Package walbeforeackbad seeds handlers that acknowledge before the
// WAL group-commit sync.
package walbeforeackbad

import "net/http"

type srv struct{}

func (s *srv) syncWAL(lsn uint64) error { return nil }

func respond(tr, w any, status int, v any) {}

func writeJSON(w any, status int, v any) {}

// The classic bug: respond first, make durable second.
//
//tbs:walbeforeack
func (s *srv) ackThenSync(w any, lsn uint64) {
	respond(nil, w, http.StatusOK, "done") // want `success response \(status 200\) written before the WAL group-commit sync`
	_ = s.syncWAL(lsn)
}

// Sync on one branch only: the else path acks without durability.
//
//tbs:walbeforeack
func (s *srv) syncOneBranch(w any, fast bool, lsn uint64) {
	if !fast {
		_ = s.syncWAL(lsn)
	}
	writeJSON(w, 200, "done") // want `success response \(status 200\) written before`
}

// A sync inside a loop body may run zero times; the conservative
// zero-iteration rule treats the ack after it as unprotected.
//
//tbs:walbeforeack
func (s *srv) syncInLoop(w any, lsns []uint64) {
	for _, lsn := range lsns {
		_ = s.syncWAL(lsn)
	}
	respond(nil, w, http.StatusOK, "done") // want `written before the WAL group-commit sync`
}

// A guard that is reassigned before the bailout no longer proves the
// sync ran: the correlation must be dropped on reassignment.
//
//tbs:walbeforeack
func (s *srv) guardKilledByReassign(w any, lsn uint64) {
	err := doWork()
	if err == nil {
		err = s.syncWAL(lsn)
	}
	err = doWork() // overwrites the sync result
	if err != nil {
		writeJSON(w, 500, err)
		return
	}
	writeJSON(w, 200, "done") // want `success response \(status 200\) written before`
}

// A guard established inside one branch must not leak past the join:
// the untaken branch reaches the bailout with err possibly nil and the
// WAL never synced.
//
//tbs:walbeforeack
func (s *srv) guardScopedToBranch(w any, cond bool, lsn uint64) {
	err := doWork()
	if cond {
		if err == nil {
			err = s.syncWAL(lsn)
		}
	}
	if err != nil {
		writeJSON(w, 500, err)
		return
	}
	writeJSON(w, 200, "done") // want `success response \(status 200\) written before`
}

func doWork() error { return nil }

// 201 is a success status too.
//
//tbs:walbeforeack
func (s *srv) createdBeforeSync(w any, lsn uint64) {
	writeJSON(w, http.StatusCreated, "made") // want `success response \(status 201\) written before`
	_ = s.syncWAL(lsn)
}
