package poolpair_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolpair"
)

func TestPoolPair(t *testing.T) {
	analysistest.Run(t, filepath.Join(".", "testdata"), poolpair.Analyzer,
		"poolpairbad", "poolpairok")
}
