// Package poolpair implements the tbsvet analyzer enforcing the
// codebase's sync.Pool discipline (the internal/wire zero-copy
// ownership rules): a value taken with Pool.Get must reach a Pool.Put
// on every non-panic path out of the function, and must not escape
// through a retained alias (a store into a struct field, map, slice
// element, global, or a channel send).
//
// Recognized idioms that stay silent:
//   - Put on every explicit path (error-path Put + success-path Put);
//   - a deferred Put, including a Put inside a deferred closure — even a
//     conditional one (dropping an oversized buffer back to the GC
//     instead of pooling it is deliberate retention bounding);
//   - ownership transfer: a function that returns the pooled value (or
//     a derivation of it) on some path is an acquire-wrapper — its
//     callers own the release (e.g. a Tracer handing out pooled spans
//     finished elsewhere, or acquire/release slice helpers);
//   - borrowing: passing the pooled value (or a derived expression) to
//     another call is not an escape — callees borrow, per the ownership
//     rules.
//
// The analysis tracks only values bound straight off the Get — `v :=
// p.Get().(*T)` — by their variable object; a Get whose result is
// consumed inline by another call is treated as a transfer to that
// call. A Get whose result is discarded entirely is always a bug.
package poolpair

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the poolpair analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "sync.Pool.Get must pair with Put on all non-panic paths; pooled values must not escape",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// poolMethod reports whether the call is sync.Pool's Get or Put.
func poolMethod(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	f := analysis.CalleeFunc(info, call)
	if f == nil || (f.Name() != "Get" && f.Name() != "Put") {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "Pool" {
		return "", false
	}
	return f.Name(), true
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: find every Get and how its result is bound.
	type tracked struct {
		get *ast.CallExpr
		obj types.Object // variable holding the result, nil if untracked
	}
	var gets []tracked
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are separate lifetimes; defers handled below
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := poolMethod(info, call)
		if !ok || name != "Get" {
			return true
		}
		obj, dropped := bindingOf(info, call, stack)
		if dropped {
			pass.Reportf(call.Pos(), "result of sync.Pool.Get is discarded — the pooled value can never be returned with Put")
			return true
		}
		if obj != nil {
			gets = append(gets, tracked{get: call, obj: obj})
		}
		return true
	})

	for _, tr := range gets {
		checkGet(pass, fd, tr.get, tr.obj)
	}
}

// bindingOf resolves the variable the Get result lands in. dropped means
// the result is thrown away outright (a bare statement). A nil object
// with dropped=false means the value flows somewhere the analyzer treats
// as a transfer (inline call argument, direct return).
func bindingOf(info *types.Info, call *ast.CallExpr, stack []ast.Node) (obj types.Object, dropped bool) {
	// Walk out of any wrapping type assertion / parens.
	i := len(stack) - 1
	for ; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.TypeAssertExpr, *ast.ParenExpr:
			continue
		}
		break
	}
	if i < 0 {
		return nil, false
	}
	switch parent := stack[i].(type) {
	case *ast.ExprStmt:
		return nil, true
	case *ast.AssignStmt:
		// v := pool.Get().(*T)   or   v, ok := pool.Get().(*T)
		// The Get (or its assertion) is one RHS; map to the LHS ident.
		for ri, rhs := range parent.Rhs {
			if !containsNode(rhs, call) {
				continue
			}
			var lhs ast.Expr
			if len(parent.Rhs) == len(parent.Lhs) {
				lhs = parent.Lhs[ri]
			} else if len(parent.Rhs) == 1 && len(parent.Lhs) > 0 {
				lhs = parent.Lhs[0] // v, ok := ...
			}
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if o := info.Defs[id]; o != nil {
					return o, false
				}
				return info.Uses[id], false
			}
			// Assigned somewhere non-local straight off the Get.
			return nil, false
		}
	}
	return nil, false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// checkGet enforces pairing and escape rules for one tracked Get.
func checkGet(pass *analysis.Pass, fd *ast.FuncDecl, get *ast.CallExpr, obj types.Object) {
	info := pass.TypesInfo

	// Ownership transfer: any return mentioning the variable hands the
	// pooled value out; the pairing obligation moves to the callers.
	transferred := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			// A scalar derived from the value (len, cap, a flag) cannot
			// carry the buffer out — only reference-typed results hand
			// ownership to the caller.
			if t := info.TypeOf(res); t != nil {
				if _, basic := t.Underlying().(*types.Basic); basic {
					continue
				}
			}
			if usesObject(info, res, obj) {
				transferred = true
			}
		}
		return !transferred
	})

	// Escape: the variable stored into a non-local location or sent on a
	// channel is a retained alias.
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isObjectExpr(info, rhs, obj) || i >= len(n.Lhs) {
					continue
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					pass.Reportf(n.Pos(), "pooled value %s escapes: stored outside the function before being returned with Put", obj.Name())
				case *ast.Ident:
					if v := analysis.UsedObject(info, n.Lhs[i]); v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						pass.Reportf(n.Pos(), "pooled value %s escapes: stored in package variable %s", obj.Name(), v.Name())
					}
				}
			}
		case *ast.SendStmt:
			if isObjectExpr(info, n.Value, obj) {
				pass.Reportf(n.Pos(), "pooled value %s escapes: sent on a channel before being returned with Put", obj.Name())
			}
		}
		return true
	})

	if transferred {
		return
	}

	// Pairing: from the Get onward, a Put(obj) must have happened at
	// every exit. State starts true (vacuous), the Get clears it, a Put
	// (including one inside a deferred closure) sets it.
	isPut := func(call *ast.CallExpr) bool {
		name, ok := poolMethod(info, call)
		if !ok || name != "Put" {
			return false
		}
		return len(call.Args) == 1 && usesObject(info, call.Args[0], obj)
	}
	flow := &analysis.MustFlow{
		Effect: func(call *ast.CallExpr) analysis.Effect {
			if call == get {
				return analysis.EffectClear
			}
			if isPut(call) {
				return analysis.EffectSet
			}
			return analysis.EffectNone
		},
		DeferEffect: func(call *ast.CallExpr) analysis.Effect {
			found := false
			ast.Inspect(call, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok && isPut(c) {
					found = true
				}
				return !found
			})
			if found {
				return analysis.EffectSet
			}
			return analysis.EffectNone
		},
		OnExit: func(at ast.Node, put bool) {
			if put {
				return
			}
			reportAt := at.Pos()
			if _, ok := at.(*ast.BlockStmt); ok {
				reportAt = at.End() // the body's fall-through closing brace
			}
			pos := pass.Fset.Position(get.Pos())
			pass.Reportf(reportAt, "sync.Pool.Get at line %d has no matching Put on this path", pos.Line)
		},
	}
	flow.Walk(fd.Body)
}

// usesObject reports whether the expression mentions the object
// anywhere (v, &v, *v, v[i], derivations all count).
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isObjectExpr reports whether the expression IS the object (possibly
// parenthesized or address-taken) — not a derivation like (*v)[:0].
func isObjectExpr(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == obj
}
