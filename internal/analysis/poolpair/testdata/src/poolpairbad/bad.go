// Package poolpairbad seeds pool misuse: leaked Gets, dropped Gets, and
// escaping pooled values.
package poolpairbad

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// No Put anywhere: the buffer leaks from the pool on every call.
func leakAlways() int {
	buf := pool.Get().(*[]byte) // what the report points back at
	return len(*buf)            // want `sync.Pool.Get at line 11 has no matching Put on this path`
}

// Put on the success path only: the early error return leaks.
func leakOnError(fail bool) error {
	buf := pool.Get().(*[]byte)
	if fail {
		return errFailed // want `no matching Put on this path`
	}
	pool.Put(buf)
	return nil
}

// The Get result is thrown away outright.
func dropped() {
	pool.Get() // want `result of sync.Pool.Get is discarded`
}

type holder struct{ buf *[]byte }

// Storing the pooled value in a struct field retains an alias that
// outlives the Put.
func escapeField(h *holder) {
	buf := pool.Get().(*[]byte)
	h.buf = buf // want `escapes: stored outside the function`
	pool.Put(buf)
}

var global *[]byte

// Parking the pooled value in a global is the same bug.
func escapeGlobal() {
	buf := pool.Get().(*[]byte)
	global = buf // want `escapes: stored in package variable global`
	pool.Put(buf)
}

// A channel send hands the alias to another goroutine.
func escapeChan(ch chan *[]byte) {
	buf := pool.Get().(*[]byte)
	ch <- buf // want `escapes: sent on a channel`
	pool.Put(buf)
}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }
