// Package poolpairok pins poolpair's negative space: the pooling idioms
// from internal/server, internal/obs, and internal/cluster that must
// stay silent. Each function mirrors a shape found in the real tree.
package poolpairok

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// Linear Get/Put (the cluster copy-buffer shape).
func linear() int {
	buf := pool.Get().(*[]byte)
	n := len(*buf)
	pool.Put(buf)
	return n
}

// A deferred Put covers every exit.
func deferred(fail bool) error {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
	if fail {
		return errFailed
	}
	return nil
}

// A conditional Put inside a deferred closure: dropping oversized
// buffers instead of pooling them is deliberate retention bounding
// (the NDJSON scanner-pool shape).
func deferredConditional(fail bool) error {
	buf := pool.Get().(*[]byte)
	defer func() {
		if cap(*buf) <= 1<<16 {
			pool.Put(buf)
		}
	}()
	if fail {
		return errFailed
	}
	return nil
}

// Put on every explicit path (the WAL encode-buffer shape: the poisoned
// error path recycles too).
func putAllPaths(fail bool) error {
	buf := pool.Get().(*[]byte)
	if fail {
		pool.Put(buf)
		return errFailed
	}
	use(*buf)
	pool.Put(buf)
	return nil
}

// Ownership transfer: an acquire wrapper returns the pooled value, so
// its callers own the release (the registry batch-slice shape).
func acquire() *[]byte {
	buf := pool.Get().(*[]byte)
	*buf = (*buf)[:0]
	return buf
}

// The paired release: a bare Put with no Get in sight.
func release(buf *[]byte) {
	pool.Put(buf)
}

// Transfer on one path, Put on the other: still an acquire wrapper
// (the tracer-pool shape — a disabled tracer recycles immediately).
func acquireOrRecycle(enabled bool) *[]byte {
	buf := pool.Get().(*[]byte)
	if !enabled {
		pool.Put(buf)
		return nil
	}
	return buf
}

// Callees borrow: passing the pooled value to another function is not
// an escape.
func borrowing() {
	buf := pool.Get().(*[]byte)
	use(*buf)
	fill(buf)
	pool.Put(buf)
}

// The comma-ok assertion form binds the same way.
func commaOK() {
	buf, _ := pool.Get().(*[]byte)
	pool.Put(buf)
}

func use(b []byte)   {}
func fill(b *[]byte) {}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }
