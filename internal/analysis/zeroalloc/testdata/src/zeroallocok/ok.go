// Package zeroallocok pins zeroalloc's negative space: every function
// here mirrors a real hot-path idiom from internal/core, internal/wal,
// or internal/wire and must stay silent. Each case began life as a
// would-be false positive during the analyzer's bring-up.
package zeroallocok

import (
	"fmt"
	"strconv"
	"sync"
)

// Unannotated functions may allocate freely — the check is opt-in.
func unannotated() []byte {
	return []byte(fmt.Sprintf("%d", 42))
}

// Amortized growth via append is the zero-steady-state mechanism, not a
// violation.
//
//tbs:zeroalloc
func appendGrowth(dst []byte, src []byte) []byte {
	dst = append(dst, src...)
	dst = append(dst, 0x0a)
	return dst
}

// strconv append-style formatting does not allocate.
//
//tbs:zeroalloc
func strconvAppend(dst []byte, v float64, n int64) []byte {
	dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	dst = strconv.AppendInt(dst, n, 10)
	return dst
}

// sync.Pool recycling is the other zero-steady-state mechanism.
//
//tbs:zeroalloc
func poolRecycle(p *sync.Pool) int {
	buf := p.Get().(*[]byte)
	n := len(*buf)
	p.Put(buf)
	return n
}

// Constant string concatenation folds at compile time.
//
//tbs:zeroalloc
func constConcat() string {
	const prefix = "tbsd_"
	return prefix + "up"
}

// A non-escaping composite literal stays on the stack.
//
//tbs:zeroalloc
func stackLit(v int) int {
	pair := [2]int{v, v + 1}
	return pair[0] + pair[1]
}

// Pointer-shaped values box into interfaces without allocating.
//
//tbs:zeroalloc
func pointerBoxing(p *int) any {
	return p
}

// A capture-free literal compiles to a static function value.
//
//tbs:zeroalloc
func captureFree() func(int) int {
	return func(x int) int { return x * 2 }
}

// A make guarded by a cap() check is a one-time amortized allocation
// against a retained buffer (the wire BinReader row-decode shape).
//
//tbs:zeroalloc
func capGuardedMake(vals *[]float64, n int) []float64 {
	if cap(*vals) < n {
		*vals = make([]float64, n)
	}
	return (*vals)[:n]
}

// The in-place width-reservation variant (the wire appendScaled shape).
//
//tbs:zeroalloc
func capGuardedExtend(dst []byte, w int) []byte {
	if cap(dst)-len(dst) < w {
		dst = append(dst, make([]byte, w)...)[:len(dst)]
	}
	return dst[:len(dst)+w]
}

// Boxing confined to an error return is a cold input-rejection path
// (the wire errf shape). The formatting itself lives in the unannotated
// helper.
//
//tbs:zeroalloc
func errorPathBoxing(b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, errf("truncated row: %d bytes", len(b))
	}
	return b[:8], nil
}

func errf(format string, args ...any) error { return nil }

// Indexing, slicing, and arithmetic on existing buffers are free; so is
// passing a slice through a variadic ... call.
//
//tbs:zeroalloc
func sliceJuggling(b []byte, extra []any) (int, int) {
	head := b[:4]
	tail := b[4:]
	return len(head) + len(tail), variadic(extra...)
}

func variadic(vs ...any) int { return len(vs) }
