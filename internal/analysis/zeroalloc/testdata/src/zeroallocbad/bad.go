// Package zeroallocbad seeds one of every allocation class zeroalloc
// must flag inside an annotated function.
package zeroallocbad

import "fmt"

var sink any

//tbs:zeroalloc
func badFmt(b []byte, v int) []byte {
	return fmt.Appendf(b, "%d", v) // want `call to fmt.Appendf allocates`
}

//tbs:zeroalloc
func badMake(n int) int {
	s := make([]byte, n) // want `make allocates`
	return len(s)
}

//tbs:zeroalloc
func badNew() int {
	p := new(int) // want `new allocates`
	return *p
}

//tbs:zeroalloc
func badStringConv(b []byte) int {
	return len(string(b)) // want `conversion string allocates`
}

//tbs:zeroalloc
func badBytesConv(s string) int {
	return len([]byte(s)) // want `allocates`
}

//tbs:zeroalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//tbs:zeroalloc
func badMapLit() int {
	m := map[string]int{"a": 1} // want `map literal allocates`
	return len(m)
}

//tbs:zeroalloc
func badEscapingLit() *[2]int {
	return &[2]int{1, 2} // want `address-taken composite literal escapes`
}

//tbs:zeroalloc
func badClosure(n int) func() int {
	return func() int { return n } // want `function literal captures "n"`
}

//tbs:zeroalloc
func badGo(f func()) {
	go f() // want `go statement allocates`
}

//tbs:zeroalloc
func badBoxing(v int) {
	sink = v // want `assigned to interface boxes int`
}

//tbs:zeroalloc
func badBoxingArg(v float64) {
	takesAny(v) // want `passed as interface argument boxes float64`
}

func takesAny(any) {}
