// Package zeroalloc implements the tbsvet analyzer enforcing the
// //tbs:zeroalloc annotation: a function so marked is a steady-state
// hot-path root (sampler append-path realization, WAL record encode,
// wire parsing) and must contain no allocation sites. It is the
// lint-time complement of the runtime gates in zeroalloc_test.go — those
// catch a regression after the fact with an allocation count, this one
// points at the offending expression.
//
// Flagged constructs:
//   - calls into package fmt (every fmt call allocates);
//   - string↔[]byte/[]rune conversions and string(rune);
//   - non-constant string concatenation;
//   - make, new, and go statements;
//   - composite literals in escaping positions (address-taken, returned,
//     passed as a call argument, assigned to a non-local), and map
//     literals anywhere;
//   - function literals that capture enclosing variables (capture-free
//     literals compile to static functions and stay silent);
//   - interface boxing: a concrete non-pointer-shaped value passed to an
//     interface parameter, assigned to an interface variable, returned
//     as an interface result, or converted to an interface type.
//
// The check is per-function and not transitive: a call to an
// unannotated helper is not followed. Annotate the helper too if it is
// part of the contract (as the core/wal/wire hot paths do). Three idioms
// are allowed by design because they are how these paths reach zero
// steady-state allocations:
//   - amortized growth via append and sync.Pool recycling;
//   - a make guarded by a cap() check (if cap(buf) < n { buf = make... })
//     — the retained buffer makes the allocation one-time;
//   - interface boxing confined to an error return (return nil,
//     errf("...", n)) — the path rejects the input and is cold. The fmt
//     rule still applies: formatting belongs in an unannotated helper.
package zeroalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Directive is the annotation that opts a function into the check.
const Directive = "tbs:zeroalloc"

// Analyzer is the zeroalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "zeroalloc",
	Doc:  "//tbs:zeroalloc functions must contain no allocation sites",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, Directive) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fd, n, stack)

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) && info.Types[n].Value == nil {
				pass.Reportf(n.OpPos, "string concatenation allocates in //%s function %s", Directive, fd.Name.Name)
			}

		case *ast.CompositeLit:
			checkCompositeLit(pass, fd, n, stack)

		case *ast.FuncLit:
			if capt := firstCapture(info, fd, n); capt != "" {
				pass.Reportf(n.Pos(), "function literal captures %q and allocates a closure in //%s function %s", capt, Directive, fd.Name.Name)
			}
			// Do not descend: the literal runs outside the annotated
			// steady-state path (or is already reported).
			return false

		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates in //%s function %s", Directive, fd.Name.Name)

		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // x, y := f() — boxing through calls is checked at the call
				}
				checkBoxing(pass, fd, info.TypeOf(lhs), n.Rhs[i], "assigned to interface")
			}

		case *ast.ReturnStmt:
			sig, _ := info.TypeOf(fd.Name).(*types.Signature)
			if sig == nil || len(n.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range n.Results {
				checkBoxing(pass, fd, sig.Results().At(i).Type(), res, "returned as interface")
			}
		}
		return true
	})
}

// checkCall flags fmt calls, make/new, allocating conversions, and
// boxing of concrete arguments into interface parameters.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo

	// Conversions: T(x) where the callee is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConversion(pass, fd, tv.Type, call)
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !capGuarded(info, stack) {
					pass.Reportf(call.Pos(), "make allocates in //%s function %s", Directive, fd.Name.Name)
				}
			case "new":
				pass.Reportf(call.Pos(), "new allocates in //%s function %s", Directive, fd.Name.Name)
			}
			return
		}
	}

	if analysis.IsPkgFunc(info, call, "fmt") {
		pass.Reportf(call.Pos(), "call to %s allocates in //%s function %s", callName(call), Directive, fd.Name.Name)
		return
	}

	// Interface boxing at the call boundary. Boxing confined to an
	// error return is cold and tolerated.
	if errorReturn(info, stack) {
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			slice, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			param = slice.Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, fd, param, arg, "passed as interface argument")
	}
}

// checkConversion flags string↔bytes conversions and conversions that
// box into an interface.
func checkConversion(pass *analysis.Pass, fd *ast.FuncDecl, dst types.Type, call *ast.CallExpr) {
	info := pass.TypesInfo
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(dst) && !isString(src):
		// Constant conversions fold away.
		if info.Types[call].Value == nil {
			pass.Reportf(call.Pos(), "conversion %s allocates in //%s function %s", callName(call), Directive, fd.Name.Name)
		}
	case isByteOrRuneSlice(dst) && isString(src):
		pass.Reportf(call.Pos(), "conversion %s allocates in //%s function %s", callName(call), Directive, fd.Name.Name)
	case types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) && !pointerShaped(src):
		pass.Reportf(call.Pos(), "conversion to interface boxes %s in //%s function %s", src, Directive, fd.Name.Name)
	}
}

// checkCompositeLit flags map literals anywhere and slice/struct
// literals in escaping positions.
func checkCompositeLit(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.CompositeLit, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(lit.Pos(), "map literal allocates in //%s function %s", Directive, fd.Name.Name)
		return
	}
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			pass.Reportf(lit.Pos(), "address-taken composite literal escapes in //%s function %s", Directive, fd.Name.Name)
		}
	case *ast.ReturnStmt:
		pass.Reportf(lit.Pos(), "returned composite literal escapes in //%s function %s", Directive, fd.Name.Name)
	case *ast.CallExpr:
		// As an argument (not as the callee of a conversion).
		if tv, ok := pass.TypesInfo.Types[p.Fun]; ok && tv.IsType() {
			return
		}
		for _, arg := range p.Args {
			if arg == ast.Expr(lit) {
				pass.Reportf(lit.Pos(), "composite literal passed as call argument escapes in //%s function %s", Directive, fd.Name.Name)
			}
		}
	}
}

// checkBoxing reports a concrete, non-pointer-shaped value reaching an
// interface-typed slot.
func checkBoxing(pass *analysis.Pass, fd *ast.FuncDecl, dst types.Type, val ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := pass.TypesInfo.Types[val]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) || pointerShaped(tv.Type) {
		return
	}
	// Untyped constants that fit a pointer word (nil handled above):
	// still boxed — only small integers hit the runtime cache, so stay
	// conservative and flag them all.
	pass.Reportf(val.Pos(), "%s boxes %s and allocates in //%s function %s", what, tv.Type, Directive, fd.Name.Name)
}

// capGuarded reports whether the node sits inside the body of an if
// whose condition consults cap() — the amortized one-time-allocation
// idiom (if cap(buf) < n { buf = make(...) }).
func capGuarded(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok || ifStmt.Cond == nil {
			continue
		}
		guarded := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

// errorReturn reports whether the node is part of a return statement
// whose final result is a non-nil error — a cold input-rejection path.
func errorReturn(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ret, ok := stack[i].(*ast.ReturnStmt)
		if !ok {
			continue
		}
		if len(ret.Results) == 0 {
			return false
		}
		last := ret.Results[len(ret.Results)-1]
		tv, ok := info.Types[last]
		if !ok || tv.IsNil() || tv.Type == nil {
			return false
		}
		named, ok := tv.Type.(*types.Named)
		return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	return false
}

// pointerShaped reports whether values of t fit an interface's data word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// firstCapture returns the name of one variable the literal captures
// from the enclosing function, or "" if it is capture-free.
func firstCapture(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Declared inside the enclosing function but outside the literal?
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.ArrayType:
		return types.ExprString(call.Fun) + "(...)"
	}
	return types.ExprString(call.Fun)
}
