package zeroalloc_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/zeroalloc"
)

func TestZeroalloc(t *testing.T) {
	analysistest.Run(t, filepath.Join(".", "testdata"), zeroalloc.Analyzer,
		"zeroallocbad", "zeroallocok")
}
