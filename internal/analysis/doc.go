// Package analysis is the project's static-analysis framework: the
// minimal subset of the golang.org/x/tools/go/analysis contract (an
// Analyzer with a Run function over a type-checked Pass, reporting
// position-anchored Diagnostics) plus a package loader that builds the
// type information itself.
//
// The vendored x/tools framework is deliberately not a dependency: the
// module is standard-library-only, and everything the five tbsvet
// analyzers need — parsed files, go/types info, and a way to walk them —
// is reconstructable from `go list -json` metadata and the go/* packages.
// The API mirrors x/tools shapes (Analyzer.Name/Doc/Run, Pass.Report,
// analysistest-style `// want` testing) so the suite could be rebased
// onto the real framework without touching analyzer logic.
//
// Analyzers live in subpackages (zeroalloc, walbeforeack, poolpair,
// metriclint, atomicfield); cmd/tbsvet is the multichecker driver that
// runs all of them over a package pattern and fails the build on any
// diagnostic. See ARCHITECTURE.md's Invariants section for the mapping
// from invariant to enforcing analyzer.
package analysis
