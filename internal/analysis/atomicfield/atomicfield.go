// Package atomicfield implements the tbsvet analyzer guarding mixed
// atomic/plain access: a struct field whose address is ever passed to a
// sync/atomic function (atomic.AddInt64(&x.f, ...) and friends) is an
// atomic field, and every other access to it must also be atomic. A
// plain read tears on 32-bit platforms and races everywhere; a plain
// write silently loses concurrent increments.
//
// The modern typed atomics (atomic.Int64 etc., which the tree uses
// throughout) make this mistake impossible — the field's methods are
// the only access path. This analyzer exists for the legacy pattern so
// it cannot creep back in: any field still accessed through the
// address-taking functions gets its plain accesses flagged.
//
// Plain accesses are tolerated only in construction contexts, where the
// value is not yet shared: composite literals, and functions whose name
// starts with New/new or is init.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed with sync/atomic functions must never be accessed plainly outside construction",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect fields used atomically — any &x.f argument to a
	// sync/atomic package function.
	atomicFields := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !analysis.IsPkgFunc(info, call, "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				if fld := addressedField(info, arg); fld != nil {
					atomicFields[fld] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: flag plain selector accesses of those fields.
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !atomicFields[fld] {
				return true
			}
			if isAtomicUse(info, stack) || inConstruction(stack) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access of field %s, which is elsewhere accessed with sync/atomic — use atomic ops everywhere (or the typed atomic.* wrappers)",
				fld.Name())
			return true
		})
	}
	return nil
}

// addressedField resolves &x.f (possibly parenthesized) to the struct
// field's object.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isAtomicUse reports whether the selector on top of the stack is the
// &x.f operand of a sync/atomic call: stack ends ... CallExpr UnaryExpr
// (modulo parens).
func isAtomicUse(info *types.Info, stack []ast.Node) bool {
	i := len(stack) - 1
	for ; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	u, ok := stack[i].(*ast.UnaryExpr)
	if !ok {
		return false
	}
	_ = u
	for i--; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && analysis.IsPkgFunc(info, call, "sync/atomic")
}

// inConstruction reports whether the access happens where the value is
// not yet shared: inside a composite literal, or in a constructor-named
// function.
func inConstruction(stack []ast.Node) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.FuncDecl:
			name := n.Name.Name
			if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
				return true
			}
		}
	}
	return false
}
