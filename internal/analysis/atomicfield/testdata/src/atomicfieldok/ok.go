// Package atomicfieldok pins atomicfield's negative space: consistent
// atomic use, typed atomics, and construction-time plain writes all
// stay silent.
package atomicfieldok

import "sync/atomic"

type counter struct {
	legacy int64
	typed  atomic.Int64
}

// Consistent sync/atomic access of a legacy field is fine everywhere.
func (c *counter) incLegacy() { atomic.AddInt64(&c.legacy, 1) }

func (c *counter) readLegacy() int64 { return atomic.LoadInt64(&c.legacy) }

// Typed atomics are the modern pattern: the field's methods are the
// only access path, so the analyzer has nothing to track.
func (c *counter) incTyped() { c.typed.Add(1) }

func (c *counter) readTyped() int64 { return c.typed.Load() }

// Construction-time plain writes happen before the value is shared.
func NewCounter(start int64) *counter {
	c := &counter{legacy: start}
	c.legacy = start
	return c
}
