// Package atomicfieldbad seeds mixed atomic/plain field access — the
// legacy-pattern race the analyzer exists to keep out of the tree.
package atomicfieldbad

import "sync/atomic"

type counter struct {
	n     int64
	other int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

// A plain read of an atomically-updated field tears on 32-bit and races
// everywhere.
func (c *counter) read() int64 {
	return c.n // want `plain access of field n`
}

// A plain write silently loses concurrent increments.
func (c *counter) reset() {
	c.n = 0 // want `plain access of field n`
}

// Fields never touched atomically are unconstrained.
func (c *counter) otherOK() int64 {
	c.other++
	return c.other
}
