package atomicfield_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, filepath.Join(".", "testdata"), atomicfield.Analyzer,
		"atomicfieldbad", "atomicfieldok")
}
