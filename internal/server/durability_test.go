package server

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/tbs"
)

// kill simulates a SIGKILL at the storage layer: the HTTP listener and
// background loops stop and the engine drains ITS IN-MEMORY work, but no
// final checkpoint is taken — the disk is left exactly as an abrupt
// process death would leave it (the WAL file descriptor is closed, which
// loses nothing: records hit the OS on every append, and acknowledged
// ones were fsynced).
func (h *harness) kill() {
	h.t.Helper()
	if h.ts != nil {
		h.ts.Close()
		h.ts = nil
	}
	s := h.srv
	s.stopOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		if s.eng != nil {
			s.eng.Close()
		}
	})
	if s.wal != nil {
		s.wal.Close()
	}
}

// walOpts is the crash-test configuration: checkpoints enabled but on an
// hour-long interval, so between explicit checkpointAll calls the WAL is
// the only thing standing between acknowledged traffic and the crash.
func walOpts(dir string, seed uint64) Options {
	return Options{
		Sampler:            rtbsConfig(seed),
		Shards:             4,
		CheckpointDir:      dir,
		CheckpointInterval: time.Hour,
		WALDir:             filepath.Join(dir, "wal"),
		WALFsync:           "group",
	}
}

// mustNDJSON streams an NDJSON body at the ingest route and requires a
// 200.
func (h *harness) mustNDJSON(key, query, body string) {
	h.t.Helper()
	resp, data := h.postNDJSON("/v1/streams/"+key+"/items"+query, body)
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("NDJSON ingest: status %d: %s", resp.StatusCode, data)
	}
}

type statsResp struct {
	Pending  int     `json:"pending"`
	Ingested uint64  `json:"ingested"`
	Batches  uint64  `json:"batches"`
	Now      float64 `json:"now"`
	Weight   float64 `json:"totalWeight"`
}

func (h *harness) stats(key string) statsResp {
	var st statsResp
	h.do("GET", "/v1/streams/"+key+"/stats", nil, http.StatusOK, &st)
	return st
}

// driveWALPhase pushes one deterministic round of mixed traffic: JSON
// ingest + advance on "json-k", NDJSON with pipelined boundaries on
// "nd-k", labeled batches on the model stream "model-k".
func driveWALPhase(h *harness, from, to int) {
	for t := from; t <= to; t++ {
		h.do("POST", "/v1/streams/json-k/items", itemBatch("json-k", t, 15), http.StatusOK, nil)
		h.do("POST", "/v1/streams/json-k/advance", nil, http.StatusOK, nil)
		h.mustNDJSON("nd-k", "?batch=10&advance=true",
			func() string {
				var b strings.Builder
				for i := 0; i < 25; i++ {
					fmt.Fprintf(&b, `{"t":%d,"i":%d}`+"\n", t, i)
				}
				return b.String()
			}())
		h.do("POST", "/v1/streams/model-k/items", labeledBatch(t, 20), http.StatusOK, nil)
		h.do("POST", "/v1/streams/model-k/advance", nil, http.StatusOK, nil)
	}
}

// TestWALCrashRecoveryDeterminism is the tentpole's acceptance test: with
// the checkpointer effectively off, every acknowledged operation must
// survive a kill via WAL replay alone — counters, sampler state, RNG
// trajectory (journaled sample reads), deployed model bytes and policy
// clock — and the resumed server must be byte-identical to an
// uninterrupted run fed the same request sequence.
func TestWALCrashRecoveryDeterminism(t *testing.T) {
	queries := []map[string]any{{"x": []float64{0.3, 0.1}}, {"x": []float64{10.2, 10.4}}}
	run := func(h *harness) {
		h.attachModel("model-k", map[string]any{"learner": "knn", "policy": "always"})
		driveWALPhase(h, 1, 4)
		h.sample("json-k") // journaled RNG draw mid-run
	}

	dir := t.TempDir()
	h1 := newHarness(t, walOpts(dir, 11))
	run(h1)
	// Everything below was acknowledged before the kill.
	preJSON := h1.stats("json-k")
	preND := h1.stats("nd-k")
	preModel := h1.modelStats("model-k")
	prePred := h1.predict("model-k", queries, http.StatusOK)
	h1.kill()

	// No checkpoint file may exist for these streams: recovery runs on
	// the WAL alone (the checkpointer never fired).
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+checkpointSuffix)); len(files) != 0 {
		t.Fatalf("unexpected checkpoint files %v — the test would not exercise WAL recovery", files)
	}

	h2 := newHarness(t, walOpts(dir, 11))
	if got := h2.stats("json-k"); got != preJSON {
		t.Errorf("json-k stats after crash = %+v, want %+v", got, preJSON)
	}
	if got := h2.stats("nd-k"); got != preND {
		t.Errorf("nd-k stats after crash = %+v, want %+v", got, preND)
	}
	if got := h2.modelStats("model-k"); !reflect.DeepEqual(got, preModel) {
		t.Errorf("model stats after crash = %+v, want %+v", got, preModel)
	}
	if got := h2.predict("model-k", queries, http.StatusOK); !reflect.DeepEqual(got, prePred) {
		t.Errorf("predictions after crash = %+v, want %+v", got, prePred)
	}
	if preModel.Stats.Retrains == 0 {
		t.Fatal("no retrains before the kill — the model leg is vacuous")
	}
	// Continue the stream and compare against an uninterrupted run.
	driveWALPhase(h2, 5, 8)
	resumedJSON := h2.sample("json-k")
	resumedND := h2.sample("nd-k")
	resumedPred := h2.predict("model-k", queries, http.StatusOK)
	resumedModel := h2.modelStats("model-k")

	ref := newHarness(t, Options{Sampler: rtbsConfig(11), Shards: 4})
	run(ref)
	ref.modelStats("model-k")
	ref.predict("model-k", queries, http.StatusOK)
	driveWALPhase(ref, 5, 8)
	if want := ref.sample("json-k"); !reflect.DeepEqual(resumedJSON, want) {
		t.Errorf("json-k sample diverges from uninterrupted run")
	}
	if want := ref.sample("nd-k"); !reflect.DeepEqual(resumedND, want) {
		t.Errorf("nd-k sample diverges from uninterrupted run")
	}
	if want := ref.predict("model-k", queries, http.StatusOK); !reflect.DeepEqual(resumedPred, want) {
		t.Errorf("predictions diverge from uninterrupted run:\n got %+v\nwant %+v", resumedPred, want)
	}
	if want := ref.modelStats("model-k"); !reflect.DeepEqual(resumedModel, want) {
		t.Errorf("model stats diverge from uninterrupted run:\n got %+v\nwant %+v", resumedModel, want)
	}
}

// TestWALReplayOnTopOfSnapshot: a checkpoint mid-history must become the
// replay's starting point (records at or below its WalLSN are skipped),
// with the tail replayed on top — the snapshot-plus-log contract.
func TestWALReplayOnTopOfSnapshot(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, walOpts(dir, 23))
	h1.attachModel("model-k", map[string]any{"learner": "knn", "policy": "always"})
	driveWALPhase(h1, 1, 3)
	if err := h1.srv.checkpointAll(); err != nil {
		t.Fatal(err)
	}
	driveWALPhase(h1, 4, 6) // the tail only the WAL holds
	preModel := h1.modelStats("model-k")
	preJSON := h1.stats("json-k")
	h1.kill()

	h2 := newHarness(t, walOpts(dir, 23))
	if got := h2.stats("json-k"); got != preJSON {
		t.Errorf("stats after snapshot+replay = %+v, want %+v", got, preJSON)
	}
	if got := h2.modelStats("model-k"); !reflect.DeepEqual(got, preModel) {
		t.Errorf("model stats after snapshot+replay = %+v, want %+v", got, preModel)
	}
	// Double-restore must be idempotent: kill again without traffic.
	h2.kill()
	h3 := newHarness(t, walOpts(dir, 23))
	if got := h3.stats("json-k"); got != preJSON {
		t.Errorf("stats after second replay = %+v, want %+v", got, preJSON)
	}
}

// TestWALTornTailBootsToPrefix: cutting bytes off the newest segment (a
// crash mid-write) must never fail boot or corrupt state — the server
// comes back at the longest valid prefix.
func TestWALTornTailBootsToPrefix(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, walOpts(dir, 31))
	for i := 1; i <= 5; i++ {
		h1.do("POST", "/v1/streams/k/items", itemBatch("k", i, 10), http.StatusOK, nil)
		h1.do("POST", "/v1/streams/k/advance", nil, http.StatusOK, nil)
	}
	acked := h1.stats("k")
	h1.kill()

	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := newHarness(t, walOpts(dir, 31))
	got := h2.stats("k")
	if got.Ingested > acked.Ingested || got.Batches > acked.Batches {
		t.Fatalf("torn-tail boot has MORE state than was acked: %+v vs %+v", got, acked)
	}
	if got.Ingested == 0 {
		t.Fatal("torn tail wiped the whole stream; only the last record should go")
	}
	// The stream stays fully usable at the prefix.
	h2.do("POST", "/v1/streams/k/items", itemBatch("k", 6, 10), http.StatusOK, nil)
	h2.do("POST", "/v1/streams/k/advance", nil, http.StatusOK, nil)
	if s := h2.sample("k"); s.Size == 0 {
		t.Fatal("empty sample after torn-tail recovery")
	}
}

// TestWALCompaction: a checkpoint pass truncates sealed segments the
// snapshots made redundant, and recovery still works afterwards.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := walOpts(dir, 41)
	opts.WALSegmentBytes = 512 // force frequent rotation
	h := newHarness(t, opts)
	for i := 1; i <= 30; i++ {
		h.do("POST", "/v1/streams/c/items", itemBatch("c", i, 10), http.StatusOK, nil)
		h.do("POST", "/v1/streams/c/advance", nil, http.StatusOK, nil)
	}
	before := h.srv.wal.Stats()
	if before.Segments < 3 {
		t.Fatalf("expected several segments before compaction, got %d", before.Segments)
	}
	if err := h.srv.checkpointAll(); err != nil {
		t.Fatal(err)
	}
	after := h.srv.wal.Stats()
	if after.Segments >= before.Segments || after.TruncatedSegments == 0 {
		t.Fatalf("checkpoint did not compact the WAL: %d -> %d segments (%d truncated)",
			before.Segments, after.Segments, after.TruncatedSegments)
	}
	acked := h.stats("c")
	h.kill()
	h2 := newHarness(t, walOpts(dir, 41))
	if got := h2.stats("c"); got != acked {
		t.Fatalf("post-compaction recovery diverged: %+v vs %+v", got, acked)
	}
}

// TestDeleteStream: DELETE drops the registry entry, the checkpoint file
// and — across a crash — the WAL history; reads 404 afterwards and a
// re-ingest starts a brand-new stream.
func TestDeleteStream(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, walOpts(dir, 51))
	h1.driveStream("doomed", 1, 3)
	h1.driveStream("kept", 1, 3)
	if err := h1.srv.checkpointAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointFileName("doomed"))); err != nil {
		t.Fatalf("checkpoint file missing before delete: %v", err)
	}

	h1.do("DELETE", "/v1/streams/doomed", nil, http.StatusOK, nil)
	h1.do("DELETE", "/v1/streams/doomed", nil, http.StatusNotFound, nil)
	h1.do("GET", "/v1/streams/doomed/stats", nil, http.StatusNotFound, nil)
	h1.do("GET", "/v1/streams/doomed/sample", nil, http.StatusNotFound, nil)
	if _, err := os.Stat(filepath.Join(dir, checkpointFileName("doomed"))); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file survives the delete: %v", err)
	}
	var list struct {
		Streams []string `json:"streams"`
	}
	h1.do("GET", "/v1/streams", nil, http.StatusOK, &list)
	for _, k := range list.Streams {
		if k == "doomed" {
			t.Fatal("deleted stream still listed")
		}
	}

	// Crash without a checkpoint: the journaled tombstone must keep the
	// stream dead through WAL replay, while the survivor is intact.
	keptAcked := h1.stats("kept")
	h1.kill()
	h2 := newHarness(t, walOpts(dir, 51))
	h2.do("GET", "/v1/streams/doomed/stats", nil, http.StatusNotFound, nil)
	if got := h2.stats("kept"); got != keptAcked {
		t.Fatalf("survivor diverged after delete+crash: %+v vs %+v", got, keptAcked)
	}
	// Re-ingest recreates a fresh stream (ingested restarts from zero).
	h2.do("POST", "/v1/streams/doomed/items", itemBatch("doomed", 9, 5), http.StatusOK, nil)
	if got := h2.stats("doomed"); got.Ingested != 5 {
		t.Fatalf("recreated stream inherited state: %+v", got)
	}
}

// TestDeleteStreamWithoutWAL: deletion works in checkpoint-only mode too
// (entry + file gone, restart does not resurrect).
func TestDeleteStreamWithoutWAL(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, Options{Sampler: rtbsConfig(7), CheckpointDir: dir})
	h1.driveStream("gone", 1, 2)
	if err := h1.srv.checkpointAll(); err != nil {
		t.Fatal(err)
	}
	h1.do("DELETE", "/v1/streams/gone", nil, http.StatusOK, nil)
	h1.close() // graceful stop: final checkpoint must not resurrect it

	h2 := newHarness(t, Options{Sampler: rtbsConfig(7), CheckpointDir: dir})
	h2.do("GET", "/v1/streams/gone/stats", nil, http.StatusNotFound, nil)
}

// TestRestoreQuarantine: a corrupt checkpoint file fails boot by default
// but is renamed aside (and counted) with RestoreQuarantine, booting the
// remaining tenants.
func TestRestoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, Options{Sampler: rtbsConfig(61), CheckpointDir: dir})
	h1.driveStream("good", 1, 3)
	h1.driveStream("bad", 1, 3)
	h1.close()

	badFile := filepath.Join(dir, checkpointFileName("bad"))
	if err := os.WriteFile(badFile, []byte(`{"key":"bad","snapshot":{"scheme":`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict default: boot fails loudly.
	if _, err := New(Options{Sampler: rtbsConfig(61), CheckpointDir: dir}); err == nil {
		t.Fatal("boot over a corrupt checkpoint succeeded without quarantine")
	}

	// Quarantine mode: boot continues, the bad file is renamed, the good
	// tenant is intact.
	h2 := newHarness(t, Options{Sampler: rtbsConfig(61), CheckpointDir: dir, RestoreQuarantine: true})
	if _, err := os.Stat(badFile + ".corrupt"); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	if _, err := os.Stat(badFile); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in place: %v", err)
	}
	h2.do("GET", "/v1/streams/good/stats", nil, http.StatusOK, nil)
	h2.do("GET", "/v1/streams/bad/stats", nil, http.StatusNotFound, nil)
	resp, err := http.Get(h2.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "tbsd_restore_quarantined_total 1") {
		t.Fatalf("quarantine metric missing:\n%s", buf.String())
	}
}

// TestQuarantineKeepsSchemeMismatchStrict: a scheme mismatch is a server
// misconfiguration, not file corruption — quarantine must NOT paper over
// it (it would silently drop every tenant).
func TestQuarantineKeepsSchemeMismatchStrict(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, Options{Sampler: rtbsConfig(71), CheckpointDir: dir})
	h.driveStream("k", 1, 2)
	h.close()
	if _, err := New(Options{
		Sampler:           tbs.Config{Scheme: "brs", MaxSize: ptr(40), Seed: ptr(uint64(71))},
		CheckpointDir:     dir,
		RestoreQuarantine: true,
	}); err == nil {
		t.Fatal("quarantine mode papered over a scheme mismatch")
	}
}

// TestWALConcurrentChaos hammers journaled streams from many goroutines
// (ingest, advances, samples, deletes) while the ticker and checkpointer
// run — the -race workout for the group-commit path and the
// delete-vs-checkpoint serialization. Liveness assertions only.
func TestWALConcurrentChaos(t *testing.T) {
	dir := t.TempDir()
	opts := walOpts(dir, 81)
	opts.BatchInterval = 2 * time.Millisecond
	opts.CheckpointInterval = 3 * time.Millisecond
	opts.WALSegmentBytes = 4 << 10
	h := newHarness(t, opts)
	const goroutines = 10
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			key := "hot"
			if g%3 == 0 {
				key = fmt.Sprintf("churn-%d", g)
			}
			for i := 0; i < 15; i++ {
				h.do("POST", "/v1/streams/"+key+"/items?advance="+fmt.Sprint(i%2), itemBatch(key, i, 5), http.StatusOK, nil)
				h.sample(key)
				if key != "hot" && i%7 == 6 {
					// Churn: delete and let the next ingest recreate.
					req, _ := http.NewRequest("DELETE", h.ts.URL+"/v1/streams/"+key, nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if st := h.srv.wal.Stats(); st.Records == 0 || st.AppendErrors != 0 {
		t.Fatalf("wal stats after chaos: %+v", st)
	}
	// Graceful stop must still work (final checkpoint + wal close).
	h.close()
}

// TestTickerSkips: the lag detector's pure arithmetic.
func TestTickerSkips(t *testing.T) {
	base := time.Unix(1000, 0)
	iv := time.Second
	cases := []struct {
		gap  time.Duration
		want int
	}{
		{time.Second, 0},
		{1400 * time.Millisecond, 0},
		{1600 * time.Millisecond, 1},
		{2 * time.Second, 1},
		{3500 * time.Millisecond, 3},
		{10 * time.Second, 9},
	}
	for _, tc := range cases {
		if got := tickerSkips(base, base.Add(tc.gap), iv); got != tc.want {
			t.Errorf("tickerSkips(gap=%v) = %d, want %d", tc.gap, got, tc.want)
		}
	}
	if got := tickerSkips(time.Time{}, base, iv); got != 0 {
		t.Errorf("first tick reported %d skips", got)
	}
}
