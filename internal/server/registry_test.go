package server

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func testItems(t, size int) []Item {
	out := make([]Item, size)
	for i := range out {
		out[i] = Item(fmt.Sprintf("%d", t*1000+i))
	}
	return out
}

// TestRegistryLazyCreation: getOrCreate builds once per key, including
// under a creation race.
func TestRegistryLazyCreation(t *testing.T) {
	r, err := newRegistry(rtbsConfig(1), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.count(); got != 0 {
		t.Fatalf("fresh registry has %d entries", got)
	}
	const racers = 16
	entries := make([]*entry, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := r.getOrCreate("same-key")
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}()
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if entries[i] != entries[0] {
			t.Fatal("creation race produced distinct entries for one key")
		}
	}
	if got := r.count(); got != 1 {
		t.Fatalf("registry has %d entries after racing on one key, want 1", got)
	}
	if r.lookup("absent") != nil {
		t.Fatal("lookup invented an entry")
	}
}

// TestRegistryStriping: keys spread across shards, and every key routes to
// a stable shard.
func TestRegistryStriping(t *testing.T) {
	r, err := newRegistry(rtbsConfig(1), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := r.getOrCreate(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	counts := r.perShardCounts()
	nonEmpty := 0
	total := 0
	for _, n := range counts {
		total += n
		if n > 0 {
			nonEmpty++
		}
	}
	if total != 64 {
		t.Fatalf("per-shard counts sum to %d, want 64", total)
	}
	// 64 FNV-hashed keys over 8 shards leaving shards empty would mean a
	// badly broken hash split.
	if nonEmpty < 4 {
		t.Fatalf("only %d of 8 shards used for 64 keys: %v", nonEmpty, counts)
	}
	if r.shardFor("key-7") != r.shardFor("key-7") {
		t.Fatal("shard routing is not stable")
	}
	if len(r.keys()) != 64 {
		t.Fatalf("keys() returned %d keys", len(r.keys()))
	}
}

// TestRegistryPerKeySeeds: distinct keys get distinct RNG trajectories;
// recreating a key reproduces its trajectory exactly.
func TestRegistryPerKeySeeds(t *testing.T) {
	run := func(key string) []Item {
		r, err := newRegistry(rtbsConfig(9), 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := r.getOrCreate(key)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 8; i++ {
			e.append(testItems(i, 30), 0)
			e.advance()
		}
		return e.sampler.Sample()
	}
	a1, a2, b := run("alpha"), run("alpha"), run("beta")
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same key is not reproducible across registries")
	}
	if reflect.DeepEqual(a1, b) {
		t.Fatal("distinct keys share an RNG trajectory")
	}
}

// TestCheckpointFileNameRoundTrip: arbitrary keys survive the
// key→filename→key mapping, and foreign files are rejected.
func TestCheckpointFileNameRoundTrip(t *testing.T) {
	keys := []string{"plain", "with/slash", "with.dot", "ünïcode-ключ", "a b c", "..", ""}
	seen := map[string]bool{}
	for _, key := range keys {
		name := checkpointFileName(key)
		if seen[name] {
			t.Fatalf("file name collision for %q", key)
		}
		seen[name] = true
		got, ok := keyFromFileName(name)
		if !ok || got != key {
			t.Fatalf("round trip of %q through %q gave %q, ok=%v", key, name, got, ok)
		}
	}
	for _, foreign := range []string{"README.md", "x.ckpt.json.tmp", "!!bad!!.ckpt.json"} {
		if _, ok := keyFromFileName(foreign); ok {
			t.Fatalf("foreign file %q parsed as a checkpoint", foreign)
		}
	}
}

// TestMaxKeyFitsFilesystemName: the longest accepted key must produce a
// checkpoint file name — including the transient .tmp suffix — within the
// common 255-byte filesystem limit, or checkpoints would silently fail
// for long-keyed tenants.
func TestMaxKeyFitsFilesystemName(t *testing.T) {
	key := strings.Repeat("k", maxKeyBytes)
	// atomicfile appends ".tmp" plus a random decimal suffix (≤ 11
	// digits) to the target name for the transient file.
	name := checkpointFileName(key) + ".tmp12345678901"
	if len(name) > 255 {
		t.Fatalf("checkpoint temp name for a %d-byte key is %d bytes, over the 255-byte limit", maxKeyBytes, len(name))
	}
}

// TestQueuedBatchSurvivesCheckpoint: a checkpoint taken while a closed
// batch is still queued — the engine-mailbox window between closeBatch
// and applyBatch — must persist the boundary, and restore must replay it,
// converging with a run where the apply completed before the checkpoint.
func TestQueuedBatchSurvivesCheckpoint(t *testing.T) {
	mkEntry := func() *entry {
		r, err := newRegistry(rtbsConfig(4), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := r.getOrCreate("k")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := e.append(testItems(1, 30), 0); err != nil {
			t.Fatal(err)
		}
		return e
	}

	// Interrupted: the boundary is closed but unapplied at checkpoint time.
	ea := mkEntry()
	ea.closeBatch()
	st, wasDirty, err := ea.checkpoint()
	if err != nil || !wasDirty {
		t.Fatalf("checkpoint: dirty=%v err=%v", wasDirty, err)
	}
	if len(st.Queued) != 1 || len(st.Queued[0]) != 30 || len(st.Pending) != 0 || st.Batches != 0 {
		t.Fatalf("checkpoint with in-flight batch: queued=%d pending=%d batches=%d",
			len(st.Queued), len(st.Pending), st.Batches)
	}
	dir := t.TempDir()
	if err := writeCheckpointFile(dir, st); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Sampler: rtbsConfig(4), CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(context.Background())
	restored := srv.reg.lookup("k")
	if restored == nil {
		t.Fatal("stream not restored")
	}
	_, _, batches := restored.counters()
	if batches != 1 {
		t.Fatalf("restored batches = %d, want 1 (queued boundary replayed)", batches)
	}

	// Reference: the apply completed normally.
	eb := mkEntry()
	eb.advance()

	got := restored.sampler.Sample()
	want := eb.sampler.Sample()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed restore diverges from applied run\n got: %v\nwant: %v", got, want)
	}
}

// TestEntryAdvanceEmptyBatch: closing an empty batch still advances the
// sampler clock — the decay semantics the wall-clock ticker relies on.
func TestEntryAdvanceEmptyBatch(t *testing.T) {
	r, err := newRegistry(rtbsConfig(1), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.getOrCreate("k")
	if err != nil {
		t.Fatal(err)
	}
	e.append(testItems(1, 10), 0)
	e.advance()
	if n, batches, _ := e.advance(); n != 0 || batches != 2 {
		t.Fatalf("empty advance: n=%d batches=%d, want 0, 2", n, batches)
	}
	st, wasDirty, err := e.checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !wasDirty {
		t.Fatal("entry not dirty after advances")
	}
	if _, again, err := e.checkpoint(); err != nil || again {
		t.Fatalf("clean entry reported dirty=%v err=%v, want false, nil", again, err)
	}
	var snapState struct {
		Now float64 `json:"Now"`
	}
	if err := json.Unmarshal(st.Snapshot.State, &snapState); err != nil {
		t.Fatal(err)
	}
	if snapState.Now != 2 {
		t.Fatalf("sampler clock %v after two advances, want 2", snapState.Now)
	}
}
