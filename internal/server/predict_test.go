package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestParallelPredictDuringRetrain hammers the predict endpoint from
// many goroutines while boundaries keep retraining and swapping the
// deployed model. Run under -race this proves the atomic-pointer publish
// on the predict hot path: readers never lock against the trainer, and
// every response is served by a complete model (train size > 0, one
// prediction per query).
func TestParallelPredictDuringRetrain(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(11), Shards: 4, RetrainWorkers: 2})
	const key = "hot"
	h.attachModel(key, map[string]any{"learner": "knn", "policy": "always"})
	h.do("POST", "/v1/streams/"+key+"/items", labeledBatch(1, 40), http.StatusOK, nil)
	h.do("POST", "/v1/streams/"+key+"/advance", nil, http.StatusOK, nil)

	const (
		readers  = 8
		predicts = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: keep closing boundaries so retrains and atomic swaps churn
	// underneath the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tt := 2; tt <= 20; tt++ {
			h.do("POST", "/v1/streams/"+key+"/items", labeledBatch(tt, 40), http.StatusOK, nil)
			h.do("POST", "/v1/streams/"+key+"/advance", nil, http.StatusOK, nil)
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf(`{"x":[%d.5,%d.5]}`, g%10, g%10))
			for i := 0; i < predicts; i++ {
				resp, err := http.Post(h.ts.URL+"/v1/streams/"+key+"/model/predict",
					"application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("predict: status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkPredict measures the predict hot path end to end (HTTP +
// atomic model load + KNN scan), in parallel — the configuration the
// atomic.Pointer publish exists for.
func BenchmarkPredict(b *testing.B) {
	srv, err := New(Options{Sampler: rtbsConfig(11), Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Stop(b.Context())
	// Train once via direct handler calls, then benchmark predicts.
	h := &benchHarness{handler: srv.Handler()}
	h.must(b, "PUT", "/v1/streams/bench/model", `{"learner":"knn","policy":"always"}`)
	h.must(b, "POST", "/v1/streams/bench/items", labeledBody(1, 200))
	h.must(b, "POST", "/v1/streams/bench/advance", "")
	// Stats waits out the (possibly background) first train, so the
	// deployed pointer is non-nil before the clock starts.
	h.must(b, "GET", "/v1/streams/bench/model/stats", "")

	query := []byte(`{"x":[5.1,4.9]}`)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req, _ := http.NewRequest("POST", "/v1/streams/bench/model/predict", bytes.NewReader(query))
			rw := &discardResponseWriter{header: make(http.Header)}
			h.handler.ServeHTTP(rw, req)
			if rw.status != http.StatusOK {
				b.Fatalf("predict: status %d", rw.status)
			}
		}
	})
}

// benchHarness drives the handler without a TCP listener so the
// benchmark measures the server, not the loopback stack.
type benchHarness struct{ handler http.Handler }

func (h *benchHarness) must(b *testing.B, method, path, body string) {
	b.Helper()
	req, _ := http.NewRequest(method, path, bytes.NewReader([]byte(body)))
	rw := &discardResponseWriter{header: make(http.Header)}
	h.handler.ServeHTTP(rw, req)
	if rw.status != http.StatusOK {
		b.Fatalf("%s %s: status %d", method, path, rw.status)
	}
}

func labeledBody(t, size int) string {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i := 0; i < size; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		class := i % 2
		fmt.Fprintf(&buf, `{"x":[%d.%d,%d.%d],"y":%d}`, class*10, (t*31+i*17)%100, class*10, (t*13+i*7)%100, class)
	}
	buf.WriteByte(']')
	return buf.String()
}

type discardResponseWriter struct {
	header http.Header
	status int
}

func (d *discardResponseWriter) Header() http.Header { return d.header }
func (d *discardResponseWriter) Write(p []byte) (int, error) {
	if d.status == 0 {
		d.status = http.StatusOK
	}
	return len(p), nil
}
func (d *discardResponseWriter) WriteHeader(status int) { d.status = status }
