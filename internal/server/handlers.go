package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/tbs"
)

// maxBodyBytes bounds one ingest request (items are buffered in memory).
const maxBodyBytes = 32 << 20

// maxKeyBytes bounds stream keys. Keys become checkpoint file names via
// base64url (4 name bytes per 3 key bytes) plus the ".ckpt.json" suffix
// and atomicfile's transient ".tmp<random>" suffix (≤ 15 bytes), and the
// whole name must stay within the common 255-byte filesystem limit:
// base64(168) + 10 + 15 = 249.
const maxKeyBytes = 168

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/streams/{key}/items", s.handleItems)
	mux.HandleFunc("POST /v1/streams/{key}/advance", s.handleAdvance)
	mux.HandleFunc("GET /v1/streams/{key}/sample", s.handleSample)
	mux.HandleFunc("GET /v1/streams/{key}/stats", s.handleStats)
	mux.HandleFunc("DELETE /v1/streams/{key}", s.handleStreamDelete)
	mux.HandleFunc("PUT /v1/streams/{key}/model", s.handleModelAttach)
	mux.HandleFunc("GET /v1/streams/{key}/model", s.handleModelGet)
	mux.HandleFunc("DELETE /v1/streams/{key}/model", s.handleModelDetach)
	mux.HandleFunc("POST /v1/streams/{key}/model/predict", s.handleModelPredict)
	mux.HandleFunc("GET /v1/streams/{key}/model/stats", s.handleModelStats)
	mux.HandleFunc("POST /v1/streams/{key}/handoff", s.handleHandoff)
	mux.HandleFunc("POST /v1/streams/{key}/adopt", s.handleAdopt)
	mux.HandleFunc("GET /v1/streams", s.handleList)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The trace ring rides on the main mux (not just the debug listener):
	// it is bounded, read-only, and the first thing to look at when a
	// request is slow. Nil-safe — a tracing-disabled server answers with
	// an empty, disabled listing.
	mux.HandleFunc("GET /debug/trace/recent", s.opts.Trace.ServeRecent)
	// Liveness: the process is up and serving HTTP. Always 200 — a node
	// mid-restore or mid-drain is alive, just not ready.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "streams": s.reg.count()})
	})
	// Readiness: restore completed and Start ran (503 again once Stop
	// begins draining). The router's health prober keys off this.
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := s.metrics.Ready()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":       ready,
		"streams":     s.reg.count(),
		"restored":    s.metrics.restoredStreams.Load(),
		"walReplayed": s.metrics.walReplayed.Load(),
	})
}

// movedGuard answers 421 Misdirected Request for a stream this node
// handed off: the structured body names the new home so a stale client
// (or a router without the override) can re-route instead of silently
// recreating the stream here.
func (s *Server) movedGuard(w http.ResponseWriter, key string) bool {
	t, ok := s.moved.Load(key)
	if !ok {
		return false
	}
	writeJSON(w, http.StatusMisdirectedRequest, errorBody("stream_moved",
		fmt.Sprintf("stream %q was handed off to %s", key, t),
		map[string]any{"key": key, "target": t}))
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// respond is writeJSON for traced handlers: the response write is the
// trace's ack stage, and the trace finishes with the response status.
// tr may be nil (tracing off, or an untraced early-exit path).
func respond(tr *obs.Trace, w http.ResponseWriter, status int, v any) {
	ackStart := time.Now()
	writeJSON(w, status, v)
	tr.StageSince(obs.StageAck, ackStart)
	tr.Finish(status)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// errorBody is the structured error envelope: a stable machine-readable
// code alongside the human-readable message, plus optional context fields
// (limits, per-request progress) merged in.
func errorBody(code, msg string, extra map[string]any) map[string]any {
	body := map[string]any{"error": msg, "code": code}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// ingestFailure maps an ingest error to its HTTP status, structured code
// and limit context. Requests that can never fit (oversized body, a batch
// larger than the open-batch cap) get 413 so clients know to split rather
// than retry; a transiently full open batch and the stream cap get 429.
func (s *Server) ingestFailure(err error) (status int, code string, extra map[string]any) {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge, "body_too_large", map[string]any{"limitBytes": tooLarge.Limit}
	case errors.Is(err, errRequestTooLarge):
		return http.StatusRequestEntityTooLarge, "batch_limit", map[string]any{"limitItems": s.opts.MaxPendingItems}
	case errors.Is(err, errBatchFull):
		return http.StatusTooManyRequests, "open_batch_full", map[string]any{"limitItems": s.opts.MaxPendingItems}
	case errors.Is(err, errTooManyStreams):
		return http.StatusTooManyRequests, "stream_limit", map[string]any{"limitStreams": s.opts.MaxStreams}
	case errors.Is(err, errStreamDeleted):
		// The entry lost a race with DELETE /v1/streams/{key}; a retry
		// recreates the stream from scratch.
		return http.StatusNotFound, "stream_deleted", nil
	case errors.Is(err, errStreamMigrating):
		// Frozen for a handoff; the freeze either lifts (failed handoff)
		// or the key starts answering 421 with its new home.
		return http.StatusServiceUnavailable, "stream_migrating", nil
	case errors.Is(err, errJournalFailed):
		return http.StatusInternalServerError, "wal_unavailable", nil
	case errors.Is(err, errHydrateFailed):
		// Rehydrating the hibernated stream from its checkpoint + WAL tail
		// failed; the stub is intact, so a retry re-attempts hydration.
		return http.StatusInternalServerError, "hydrate_failed", nil
	default:
		return http.StatusBadRequest, "bad_request", nil
	}
}

// streamKey extracts and validates the {key} path segment.
func streamKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "empty stream key")
		return "", false
	}
	if len(key) > maxKeyBytes {
		writeError(w, http.StatusBadRequest, "stream key longer than %d bytes", maxKeyBytes)
		return "", false
	}
	return key, true
}

// ingestRequest is the decoded body of POST …/items: a JSON array is a
// bulk request (one element per item), any other JSON value is a single
// item. To ingest one item that is itself an array, wrap it in an array.
type ingestRequest struct {
	items []Item
}

func decodeIngest(r *http.Request) (ingestRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return ingestRequest{}, fmt.Errorf("body exceeds %d bytes: %w", maxBodyBytes, err)
		}
		return ingestRequest{}, err
	}
	if !json.Valid(body) {
		return ingestRequest{}, errors.New("body is not valid JSON")
	}
	// Only a JSON array is bulk; every other value — including null,
	// which would also unmarshal into a nil slice — is one item.
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		var bulk []Item
		if err := json.Unmarshal(body, &bulk); err != nil {
			return ingestRequest{}, err
		}
		return ingestRequest{items: bulk}, nil
	}
	return ingestRequest{items: []Item{Item(body)}}, nil
}

// handleItems ingests into the stream's open batch. Two wire formats share
// the route, switched on Content-Type: application/x-ndjson streams one
// JSON value per line through the pooled streaming decoder (bulk path);
// anything else is the buffered JSON path — a JSON array is bulk (one
// element per item), any other JSON value is a single item. The whole
// request is appended in batched critical sections, so a bulk POST is a
// few batched hot-path operations, not N. With ?advance=true the batch is
// closed afterwards.
//
//tbs:walbeforeack
func (s *Server) handleItems(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	if s.movedGuard(w, key) {
		return
	}
	ct := r.Header.Get("Content-Type")
	if isNDJSON(ct) {
		s.handleItemsNDJSON(w, r, key)
		return
	}
	if isBin(ct) {
		s.handleItemsBin(w, r, key)
		return
	}
	tr := s.opts.Trace.StartFromRequest(r, obs.KindIngest, key)
	parseStart := time.Now()
	req, err := decodeIngest(r)
	tr.StageSince(obs.StageParse, parseStart)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	e, err := s.acquireStream(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		if code == "bad_request" {
			status, code = http.StatusInternalServerError, "internal"
		}
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	defer e.unpin()
	appendStart := time.Now()
	pending, ingested, lsn, err := e.append(req.items, s.opts.MaxPendingItems)
	tr.StageSince(obs.StageWALAppend, appendStart)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	s.metrics.ObserveIngest(len(req.items))

	resp := map[string]any{
		"key":      key,
		"added":    len(req.items),
		"pending":  pending,
		"ingested": ingested,
	}
	if q := r.URL.Query().Get("advance"); q == "1" || q == "true" {
		_, batches, _, blsn, err := s.advanceWait(e, tr)
		if err != nil {
			status, code, extra := s.ingestFailure(err)
			respond(tr, w, status, errorBody(code, err.Error(), extra))
			return
		}
		if blsn > lsn {
			lsn = blsn
		}
		resp["pending"] = 0
		resp["advanced"] = true
		resp["batches"] = batches
	}
	// The 200 below acknowledges the items (and boundary): group-commit
	// fsync first, so a crash after the acknowledgement cannot lose them.
	fsyncStart := time.Now()
	err = s.syncWAL(lsn)
	tr.StageSince(obs.StageFsyncWait, fsyncStart)
	if err != nil {
		respond(tr, w, http.StatusInternalServerError, errorBody("wal_unavailable", err.Error(), nil))
		return
	}
	respond(tr, w, http.StatusOK, resp)
}

// handleAdvance closes the stream's open batch — an explicit batch
// boundary in the paper's sense. Advancing a stream that has received no
// items is legal and still moves the decay clock; advancing an unknown
// stream creates it, so pure time-decay streams can be driven without a
// prior ingest.
//
//tbs:walbeforeack
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	if s.movedGuard(w, key) {
		return
	}
	e, err := s.acquireStream(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		if code == "bad_request" {
			status, code = http.StatusInternalServerError, "internal"
		}
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	defer e.unpin()
	tr := s.opts.Trace.StartFromRequest(r, obs.KindIngest, key)
	n, batches, elapsed, lsn, err := s.advanceWait(e, tr)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	fsyncStart := time.Now()
	err = s.syncWAL(lsn)
	tr.StageSince(obs.StageFsyncWait, fsyncStart)
	if err != nil {
		respond(tr, w, http.StatusInternalServerError, errorBody("wal_unavailable", err.Error(), nil))
		return
	}
	respond(tr, w, http.StatusOK, map[string]any{
		"key":           key,
		"batch":         n,
		"batches":       batches,
		"expectedSize":  e.sampler.ExpectedSize(),
		"elapsedMicros": elapsed.Microseconds(),
	})
}

// sampleBufPool recycles realization buffers across /sample requests: the
// sampler appends into a pooled caller-owned buffer (the tbs.AppendSample
// path), so steady-state sampling allocates no per-request slice. Only the
// item headers live in the buffer — it is returned to the pool after the
// response is written, before which the encoder has consumed them.
var sampleBufPool = sync.Pool{
	New: func() any { b := make([]Item, 0, 256); return &b },
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	e, err := s.acquireExisting(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	if e == nil {
		if s.movedGuard(w, key) {
			return
		}
		writeError(w, http.StatusNotFound, "unknown stream %q", key)
		return
	}
	defer e.unpin()
	// Read-your-writes: apply any queued batch boundaries first, so a
	// sample taken right after an acknowledged advance reflects it.
	s.flushStream(e)
	bufp := sampleBufPool.Get().(*[]Item)
	var items []Item
	if s.wal != nil && e.sampleMutating {
		// R-TBS realization consumes RNG draws: journal the read and draw
		// under one entry-lock hold, so replay consumes the identical
		// draws at the identical point in the stream's process, and sync
		// before responding — the response is what makes the draw
		// observable.
		var lsn uint64
		var err error
		items, lsn, err = e.journalSampleRead((*bufp)[:0])
		if err == nil {
			err = s.syncWAL(lsn)
		}
		if err != nil {
			sampleBufPool.Put(bufp)
			status, code, extra := s.ingestFailure(err)
			writeJSON(w, status, errorBody(code, err.Error(), extra))
			return
		}
	} else {
		items = e.sampler.AppendSample((*bufp)[:0])
		// R-TBS realization consumes RNG draws, so the next checkpoint
		// must persist the advanced RNG; pure-read schemes stay clean.
		if e.sampleMutating {
			e.markDirty()
		}
	}
	if items == nil {
		items = []Item{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":    key,
		"scheme": e.sampler.Scheme(),
		"size":   len(items),
		"items":  items,
	})
	*bufp = items[:0]
	sampleBufPool.Put(bufp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	e, err := s.acquireExisting(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	if e == nil {
		if s.movedGuard(w, key) {
			return
		}
		writeError(w, http.StatusNotFound, "unknown stream %q", key)
		return
	}
	defer e.unpin()
	// Stats follow the same read-your-writes rule as /sample: queued
	// boundaries are applied before the counters and clock are read.
	s.flushStream(e)
	pending, ingested, batches := e.counters()
	resp := map[string]any{
		"key":          key,
		"scheme":       e.sampler.Scheme(),
		"expectedSize": e.sampler.ExpectedSize(),
		"pending":      pending,
		"ingested":     ingested,
		"batches":      batches,
	}
	if total, lambda, ok := tbs.Weight[Item](e.sampler); ok {
		resp["totalWeight"] = total
		resp["lambda"] = lambda
	}
	if t, ok := tbs.Now[Item](e.sampler); ok {
		resp["now"] = t
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	keys := s.reg.keys()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(keys), "streams": keys})
}

// handleStreamDelete removes a stream end to end — registry entry,
// checkpoint file, WAL history (via a journaled tombstone) — so neither
// a restart nor a replay resurrects the tenant. Subsequent reads 404; a
// subsequent ingest creates a fresh stream, exactly as for a
// never-seen key.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	// A DELETE clears the handed-off marker too: the operator is
	// explicitly discarding this node's memory of the key, after which a
	// new ingest may create a fresh stream here. Dropping the marker
	// alone counts as a delete — there is no local entry behind it.
	_, wasMoved := s.moved.LoadAndDelete(key)
	existed, err := s.deleteStream(key)
	if !existed && !wasMoved {
		writeError(w, http.StatusNotFound, "unknown stream %q", key)
		return
	}
	if err != nil {
		// The stream is gone from the registry, but part of the on-disk
		// cleanup failed; surface it rather than fake a clean delete.
		writeJSON(w, http.StatusInternalServerError, errorBody("delete_incomplete", err.Error(), nil))
		return
	}
	s.metrics.ObserveStreamDelete()
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "deleted": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var eng *engine.Stats
	if s.eng != nil {
		st := s.eng.Stats()
		eng = &st
	}
	var walSt *wal.Stats
	if s.wal != nil {
		st := s.wal.Stats()
		walSt = &st
	}
	_ = s.metrics.WriteTo(w, s.reg.count(), int(s.reg.resident.Load()), s.reg.perShardCounts(), eng, walSt)
	_ = s.opts.Trace.WriteMetrics(w, "tbsd")
}
