package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

// This file wires the write-ahead log through the server: journaling
// happens inside the entry's critical sections (registry.go), this file
// owns recovery (replaying the WAL tail on top of the newest snapshots),
// compaction (truncating segments a completed checkpoint pass made
// redundant), and the ack-side durability wait.
//
// The division of labor with the checkpointer:
//
//	WAL        every acknowledged operation, fsynced (group commit)
//	           before the acknowledgement — bounds crash loss to the
//	           last un-fsynced group
//	snapshot   periodic full-state compaction — bounds replay time and
//	           lets the WAL be truncated
//
// so recovery = newest snapshot per stream + the WAL records after its
// WalLSN, applied in LSN order.

// syncWAL blocks until lsn is durable (no-op when journaling is off or
// the operation journaled nothing). Handlers call it immediately before
// writing a success response: the acknowledgement is the durability
// boundary.
func (s *Server) syncWAL(lsn uint64) error {
	if s.wal == nil || lsn == 0 {
		return nil
	}
	return s.wal.Sync(lsn)
}

// noteJournalErr surfaces a boundary-journaling failure. The first real
// error is worth a log line; the ErrPoisoned fast-fails that follow are
// already counted by the log's stats and would only spam.
func (s *Server) noteJournalErr(err error) {
	if err != nil && !errors.Is(err, wal.ErrPoisoned) {
		s.opts.Logger.Error("wal: journal batch boundary failed (journaling stops; checkpointer remains the durability backstop)", "err", err)
	}
}

// compactWAL truncates segments every stream has durably checkpointed
// past. Driven by checkpointAll after each pass; a stream that has never
// been checkpointed (durableLSN 0) pins the whole log until its first
// pass, which is exactly the conservative choice.
//
// A fully-durable stream — its snapshot covers its newest journaled
// record (durableLSN ≥ walLSN) — is excluded from the watermark: no live
// record of it exists above ANY truncation point, so its (possibly
// ancient) durable LSN must not pin the log. Without this exclusion an
// idle long-durable tenant pins every later tenant's traffic forever,
// and with memory tiering the cost compounds: cold-miss rehydration
// replays TailForKey over whatever the log retains, so a pinned log
// turns every cold hit into a full-log scan.
func (s *Server) compactWAL() {
	if s.wal == nil {
		return
	}
	min := s.wal.LastLSN() // no streams at all ⇒ everything is compactable
	for _, e := range s.reg.all() {
		e.mu.Lock()
		d, w := e.durableLSN, e.walLSN
		e.mu.Unlock()
		if d >= w {
			continue
		}
		if d < min {
			min = d
		}
	}
	removed, err := s.wal.TruncateBefore(min + 1)
	if err != nil {
		s.opts.Logger.Error("wal: truncate failed", "err", err)
	} else if removed > 0 {
		s.opts.Logger.Info("wal: compacted sealed segments", "segments", removed, "belowLSN", min+1)
	}
}

// replayWAL applies the WAL tail on top of the snapshot-restored
// registry. Per-stream, records at or below the stream's checkpointed
// WalLSN are already reflected in its snapshot and are skipped; everything
// after is re-applied in LSN order, reproducing the pre-crash process
// exactly (boundaries re-run the full model step, so retrain decisions
// and deployed models are recomputed rather than trusted).
func (s *Server) replayWAL() (int, error) {
	replayed := 0
	err := s.wal.Replay(func(r wal.Record) error {
		e := s.reg.lookup(r.Key)
		if e != nil {
			e.mu.Lock()
			seen := r.LSN <= e.walLSN
			e.mu.Unlock()
			if seen {
				return nil
			}
		}
		if r.Type == wal.TypeStreamDelete {
			if e != nil {
				s.dropEntry(e)
			}
			// The checkpoint file normally died with the DELETE request; a
			// crash between the journal write and the unlink leaves it
			// behind, and this replay finishes the job.
			if dir := s.opts.CheckpointDir; dir != "" {
				if err := os.Remove(filepath.Join(dir, checkpointFileName(r.Key))); err != nil && !errors.Is(err, os.ErrNotExist) {
					return err
				}
			}
			replayed++
			return nil
		}
		if e == nil {
			var err error
			if e, err = s.reg.createForReplay(r.Key); err != nil {
				return fmt.Errorf("server: wal replay, stream %q: %w", r.Key, err)
			}
		}
		if err := s.applyReplayRecord(e, r); err != nil {
			return err
		}
		replayed++
		return nil
	})
	return replayed, err
}

// applyReplayRecord applies one non-delete WAL record to an entry. Shared
// by boot-time replay and by stream adoption (the migration envelope's
// WAL tail replays through the same code, against an entry whose wal is
// still nil so nothing is re-journaled).
func (s *Server) applyReplayRecord(e *entry, r wal.Record) error {
	switch r.Type {
	case wal.TypeItemAppend:
		e.replayAppend(r.Items, r.LSN)
	case wal.TypeBatchBoundary:
		e.advance()
		e.setWalLSN(r.LSN)
	case wal.TypeModelAttach:
		var spec ModelSpec
		if err := json.Unmarshal(r.Data, &spec); err != nil {
			return fmt.Errorf("server: wal replay, model attach for %q: %w", r.Key, err)
		}
		if err := spec.normalize(); err != nil {
			return fmt.Errorf("server: wal replay, model attach for %q: %w", r.Key, err)
		}
		mm, err := newManagedModel(spec, s.runBackground, s.metrics)
		if err != nil {
			return fmt.Errorf("server: wal replay, model attach for %q: %w", r.Key, err)
		}
		mm.onSwap = e.journalSwapRecord
		if _, err := e.attachModel(mm); err != nil {
			return err
		}
		e.setWalLSN(r.LSN)
	case wal.TypeModelDetach:
		if _, _, err := e.detachModel(); err != nil {
			return err
		}
		e.setWalLSN(r.LSN)
	case wal.TypeSampleRead:
		// Consume the same realization draws the pre-crash /sample
		// consumed, keeping the RNG trajectory identical.
		e.sampler.AppendSample(nil)
		e.setWalLSN(r.LSN)
		e.markDirty()
	case wal.TypeRetrainSwap:
		// Informational: the swap was recomputed by replaying its
		// boundary. Nothing to apply.
	}
	return nil
}

// dropEntry detaches an entry from the registry and marks it deleted so
// in-flight holders stop journaling and checkpointing it.
func (s *Server) dropEntry(e *entry) {
	s.reg.remove(e.key)
	e.mu.Lock()
	e.deleted = true
	e.mu.Unlock()
}

// deleteStream removes a stream end to end: the registry entry, its
// checkpoint file, and (via a journaled tombstone) its WAL history, so a
// restart cannot resurrect the tenant. Serialized against checkpoint
// passes by ckptMu — otherwise an in-flight pass could rewrite the
// checkpoint file after the unlink. Returns false when the stream does
// not exist.
func (s *Server) deleteStream(key string) (bool, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	e := s.reg.lookup(key)
	if e == nil {
		return false, nil
	}
	// Drain queued boundaries first so no engine task is mid-apply while
	// the stream disappears (applies to a detached entry are harmless but
	// would waste sampler work).
	s.flushStream(e)

	// Journal the tombstone under the entry lock: any append that wins
	// the race lands before it (and is dropped by replay); any append
	// that loses sees deleted and fails with 404. A journaling failure
	// does not abort the delete — the entry and checkpoint file still go,
	// which is what the client asked for — but it is surfaced, because a
	// poisoned log plus a crash before the next checkpoint pass could
	// resurrect other streams' tails without this tombstone.
	var lsn uint64
	var jerr error
	e.mu.Lock()
	e.deleted = true
	if e.wal != nil {
		if lsn, jerr = e.wal.AppendRecord(wal.TypeStreamDelete, key, nil); jerr != nil {
			jerr = fmt.Errorf("journal stream delete: %w", jerr)
		}
	}
	e.mu.Unlock()
	s.reg.remove(key)

	// Make the tombstone durable BEFORE unlinking the checkpoint file: if
	// the process dies in between, replay finishes the unlink; the other
	// order could leave neither snapshot nor tombstone and resurrect a
	// partial stream from the surviving WAL records.
	jerr = errors.Join(jerr, s.syncWAL(lsn))
	if dir := s.opts.CheckpointDir; dir != "" {
		if err := os.Remove(filepath.Join(dir, checkpointFileName(key))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return true, errors.Join(jerr, err)
		}
	}
	return true, jerr
}
