package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// postBin issues a raw x-tbs-bin ingest request.
func (h *harness) postBin(path string, body []byte) (*http.Response, []byte) {
	h.t.Helper()
	req, err := http.NewRequest("POST", h.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.BinContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp, data
}

// TestBinIngest: binary rows land as canonical JSON items — a one-float
// row as {"v":V}, a wider row as {"x":[…],"y":N} — and are sampled like
// any text-ingested item.
func TestBinIngest(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	body := wire.AppendFrame(nil, [][]float64{{7}, {1.5, 2.25, 3}})
	resp, data := h.postBin("/v1/streams/k/items?advance=true", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Added    int  `json:"added"`
		Pending  int  `json:"pending"`
		Advanced bool `json:"advanced"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Added != 2 || out.Pending != 0 || !out.Advanced {
		t.Fatalf("bin ingest: %+v, want added=2 advanced", out)
	}
	s := h.sample("k")
	if s.Size == 0 {
		t.Fatal("empty sample after binary ingest + advance")
	}
	for _, it := range s.Items {
		if got := string(it); got != `{"v":7}` && got != `{"x":[1.5,2.25],"y":3}` {
			t.Fatalf("sampled item %q is not a canonical rendered row", got)
		}
	}
}

// TestBinMatchesNDJSONPath: the same rows pushed as binary frames and as
// their canonical NDJSON text drive byte-identical sampler trajectories.
func TestBinMatchesNDJSONPath(t *testing.T) {
	rows := make([][]float64, 0, 125)
	for i := 0; i < 125; i++ {
		rows = append(rows, []float64{float64(i) + 0.5, float64(i%7) * 1.25, float64(i % 3)})
	}
	drive := func(binary bool) sampleResp {
		h := newHarness(t, Options{Sampler: rtbsConfig(7)})
		for batchNo := 0; batchNo < 5; batchNo++ {
			part := rows[batchNo*25 : (batchNo+1)*25]
			if binary {
				resp, data := h.postBin("/v1/streams/k/items?advance=true", wire.AppendFrame(nil, part))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("bin status %d: %s", resp.StatusCode, data)
				}
			} else {
				var body bytes.Buffer
				for _, row := range part {
					body.Write(wire.AppendRowJSON(nil, row))
					body.WriteByte('\n')
				}
				resp, data := h.postNDJSON("/v1/streams/k/items?advance=true", body.String())
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("ndjson status %d: %s", resp.StatusCode, data)
				}
			}
		}
		return h.sample("k")
	}
	ndjsonSample := drive(false)
	binSample := drive(true)
	if !reflect.DeepEqual(ndjsonSample, binSample) {
		t.Fatalf("paths diverge:\nndjson: %+v\n   bin: %+v", ndjsonSample, binSample)
	}
	if binSample.Size == 0 {
		t.Fatal("empty sample")
	}
}

// TestBinPipelinedBoundaries: ?batch=N works identically to NDJSON.
func TestBinPipelinedBoundaries(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{float64(i)}
	}
	resp, data := h.postBin("/v1/streams/k/items?batch=10", wire.AppendFrame(nil, rows))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Added      int    `json:"added"`
		Boundaries uint64 `json:"boundaries"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Added != 100 || out.Boundaries != 10 {
		t.Fatalf("pipelined bin ingest: %+v, want added=100 boundaries=10", out)
	}
}

// TestBinMidStreamFailure: a corrupt second frame reports its frame
// ordinal and byte offset while the first frame's rows stay ingested.
func TestBinMidStreamFailure(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	frame1 := wire.AppendFrame(nil, [][]float64{{1}, {2}, {3}})
	body := wire.AppendFrame(append([]byte(nil), frame1...), [][]float64{{4}})
	body[len(body)-1] ^= 0xFF // corrupt second frame's payload → CRC mismatch
	resp, data := h.postBin("/v1/streams/k/items", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Code   string `json:"code"`
		Added  int    `json:"added"`
		Row    int    `json:"row"`
		Frame  int    `json:"frame"`
		Offset int64  `json:"offset"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != "bad_request" || out.Added != 3 || out.Row != 3 ||
		out.Frame != 2 || out.Offset != int64(len(frame1)) {
		t.Fatalf("bin failure body: %+v, want added=3 frame=2 offset=%d", out, len(frame1))
	}
	var stats struct {
		Pending int `json:"pending"`
	}
	h.do("GET", "/v1/streams/k/stats", nil, http.StatusOK, &stats)
	if stats.Pending != 3 {
		t.Fatalf("pending = %d after partial bin ingest, want 3", stats.Pending)
	}
}

// TestBinTruncatedBody: a frame cut mid-payload is a structured 400.
func TestBinTruncatedBody(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	body := wire.AppendFrame(nil, [][]float64{{1, 2, 3}})
	resp, data := h.postBin("/v1/streams/k/items", body[:len(body)-4])
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Code   string `json:"code"`
		Frame  int    `json:"frame"`
		Offset int64  `json:"offset"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != "bad_request" || out.Frame != 1 || out.Offset != 0 {
		t.Fatalf("truncated-body 400: %+v", out)
	}
}

// TestBinOversizedBatch413: the open-batch cap speaks the same structured
// 413 as the text paths.
func TestBinOversizedBatch413(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), MaxPendingItems: 5})
	rows := make([][]float64, 6)
	for i := range rows {
		rows[i] = []float64{float64(i)}
	}
	resp, data := h.postBin("/v1/streams/k/items", wire.AppendFrame(nil, rows))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Code  string `json:"code"`
		Added int    `json:"added"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != "batch_limit" || out.Added != 0 {
		t.Fatalf("bin 413 body: %+v", out)
	}
}
