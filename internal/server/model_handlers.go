package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Model API:
//
//	PUT    /v1/streams/{key}/model          attach (or replace) a managed model
//	GET    /v1/streams/{key}/model          spec + stats
//	DELETE /v1/streams/{key}/model          detach
//	POST   /v1/streams/{key}/model/predict  predict with the deployed model
//	GET    /v1/streams/{key}/model/stats    batch error, retrains, staleness, policy state
//
// Predict is lock-free against retraining: it reads the deployed model
// through an atomic pointer, so a train on the background lane never
// stalls serving. Stats (and checkpoints) instead wait for an in-flight
// retrain — they are the deterministic read points.

// handleModelAttach installs a managed model on the stream, creating the
// stream if needed. Re-attaching replaces the model and resets its policy
// clock and counters.
//
//tbs:walbeforeack
func (s *Server) handleModelAttach(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	if s.movedGuard(w, key) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	var spec ModelSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_model_spec", err.Error(), nil))
		return
	}
	if err := spec.normalize(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_model_spec", err.Error(), nil))
		return
	}
	e, err := s.acquireStream(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		if code == "bad_request" {
			status, code = http.StatusInternalServerError, "internal"
		}
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	defer e.unpin()
	mm, err := newManagedModel(spec, s.runBackground, s.metrics)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_model_spec", err.Error(), nil))
		return
	}
	mm.onSwap = e.journalSwapRecord
	lsn, err := e.attachModel(mm)
	if err == nil {
		err = s.syncWAL(lsn)
	}
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "attached": true, "spec": spec})
}

// modelFor resolves the stream and its managed model, writing the error
// response when either is missing. On ok the returned entry is pinned
// (and hydrated if it was hibernated) — the caller must e.unpin(); on
// !ok no pin is held.
func (s *Server) modelFor(w http.ResponseWriter, key string) (*entry, *managedModel, bool) {
	e, err := s.acquireExisting(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return nil, nil, false
	}
	if e == nil {
		if !s.movedGuard(w, key) {
			writeError(w, http.StatusNotFound, "unknown stream %q", key)
		}
		return nil, nil, false
	}
	mm := e.model.Load()
	if mm == nil {
		e.unpin()
		writeJSON(w, http.StatusNotFound,
			errorBody("no_model", fmt.Sprintf("stream %q has no model attached", key), nil))
		return nil, nil, false
	}
	return e, mm, true
}

// handleModelGet reports the spec and stats of the attached model.
func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	e, mm, ok := s.modelFor(w, key)
	if !ok {
		return
	}
	defer e.unpin()
	s.flushStream(e)
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "spec": mm.spec, "stats": mm.stats()})
}

// handleModelDetach removes the stream's managed model.
//
//tbs:walbeforeack
func (s *Server) handleModelDetach(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	e, err := s.acquireExisting(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	if e == nil {
		if !s.movedGuard(w, key) {
			writeError(w, http.StatusNotFound, "unknown stream %q", key)
		}
		return
	}
	defer e.unpin()
	had, lsn, err := e.detachModel()
	if err == nil {
		err = s.syncWAL(lsn)
	}
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "detached": had})
}

// handleModelStats reports the model's observable state. It applies
// queued batch boundaries first and waits for any in-flight retrain, so
// the numbers are the deterministic state after every acknowledged
// boundary — the read the kill+restart e2e compares across a restart.
func (s *Server) handleModelStats(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	e, mm, ok := s.modelFor(w, key)
	if !ok {
		return
	}
	defer e.unpin()
	s.flushStream(e)
	st := mm.stats()
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "stats": st})
}

// predictRequest is the decoded body of POST …/model/predict: one
// {"x":[...]} object or an array of them.
type predictRequest struct {
	rows [][]float64
}

func decodePredict(r *http.Request, w http.ResponseWriter) (predictRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return predictRequest{}, err
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var bulk []labeledRow
		if err := json.Unmarshal(body, &bulk); err != nil {
			return predictRequest{}, err
		}
		rows := make([][]float64, len(bulk))
		for i, q := range bulk {
			if len(q.X) == 0 {
				return predictRequest{}, fmt.Errorf("query %d is missing x", i)
			}
			rows[i] = q.X
		}
		return predictRequest{rows: rows}, nil
	}
	var q labeledRow
	if err := json.Unmarshal(body, &q); err != nil {
		return predictRequest{}, err
	}
	if len(q.X) == 0 {
		return predictRequest{}, errors.New("query is missing x")
	}
	return predictRequest{rows: [][]float64{q.X}}, nil
}

// handleModelPredict serves predictions from the deployed model. The
// model pointer is read atomically, so predictions keep flowing at full
// speed while a replacement trains on the background lane — the staleness
// window is bounded by the next batch boundary, which waits for the swap.
func (s *Server) handleModelPredict(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	e, mm, ok := s.modelFor(w, key)
	if !ok {
		return
	}
	defer e.unpin()
	req, err := decodePredict(r, w)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		writeJSON(w, status, errorBody(code, err.Error(), extra))
		return
	}
	d := mm.deployed.Load()
	if d == nil {
		writeJSON(w, http.StatusConflict, errorBody("model_not_trained",
			"no model deployed yet: ingest labeled items and advance the stream", nil))
		return
	}
	preds := make([]float64, len(req.rows))
	for i, x := range req.rows {
		preds[i] = d.predict(x)
	}
	s.metrics.ObservePredictions(len(preds))
	writeJSON(w, http.StatusOK, map[string]any{
		"key":         key,
		"learner":     mm.spec.Learner,
		"trainSize":   d.trainSize,
		"predictions": preds,
	})
}
