package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHealthzVsReadyz separates liveness from readiness: /healthz is 200
// from the moment the handler exists (the process is alive even while
// restoring or draining), while /readyz flips 200 only between Start and
// Stop — the window a router should send traffic in.
func TestHealthzVsReadyz(t *testing.T) {
	srv, err := New(Options{Sampler: rtbsConfig(3)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// Before Start: alive, not ready.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz before Start = %d, want 200 (liveness is unconditional)", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Errorf("readyz before Start = %d %v, want 503 ready:false", code, body)
	}

	srv.Start()
	if code, body := get("/readyz"); code != http.StatusOK || body["ready"] != true {
		t.Errorf("readyz after Start = %d %v, want 200 ready:true", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	// After Stop: still alive (the handler answers), no longer ready.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz after Stop = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after Stop = %d, want 503", code)
	}
}

// TestReadyzReportsRestore: after a crash-restart, readyz reports what
// boot brought back — here the streams return via WAL replay (the
// checkpointer never ran), so the live stream count and the replayed
// record count are the signals.
func TestReadyzReportsRestore(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, walOpts(dir, 5))
	h.driveStream("r1", 1, 2)
	h.driveStream("r2", 1, 2)
	h.kill()

	h2 := newHarness(t, walOpts(dir, 5))
	var body map[string]any
	h2.do("GET", "/readyz", nil, http.StatusOK, &body)
	if got := body["streams"].(float64); got != 2 {
		t.Errorf("readyz streams = %v, want 2", got)
	}
	if got := body["walReplayed"].(float64); got <= 0 {
		t.Errorf("readyz walReplayed = %v, want > 0 (crash recovery ran)", got)
	}
}
