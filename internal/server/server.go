package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/tbs"
)

// Options configures a Server.
type Options struct {
	// Sampler is the base sampler configuration applied to every stream;
	// each key gets a seed derived from Sampler.Seed (default 1), so the
	// whole server is deterministic given the base seed and per-key batch
	// sequences.
	Sampler tbs.Config

	// Shards is the number of lock stripes in the keyed registry and, by
	// default, the number of engine shard workers applying batches
	// (default 16).
	Shards int

	// EngineWorkers overrides the number of engine shard workers; zero
	// means Shards. Each stream key is pinned to one worker, so batches
	// for one stream apply in order while distinct streams apply in
	// parallel.
	EngineWorkers int

	// QueueDepth bounds each engine worker's mailbox of closed batches
	// (default 128). A full mailbox blocks further batch boundaries for
	// the streams on that worker — bounded-memory backpressure instead of
	// unbounded queuing. Negative disables the engine entirely: batches
	// apply inline under the caller, the pre-engine behavior.
	QueueDepth int

	// RetrainWorkers sizes the engine's background lane, where model
	// retrains train before being atomically swapped in (default 2).
	// Negative disables the lane: retrains then run inline at the batch
	// boundary that ordered them, as they also do when the engine itself
	// is disabled.
	RetrainWorkers int

	// BatchInterval, when positive, runs the wall-clock ticker: every
	// interval each stream's open batch is closed and its sampler
	// advanced — one paper batch-time unit per interval. Zero leaves
	// batch boundaries entirely to explicit /advance calls.
	BatchInterval time.Duration

	// CheckpointDir, when set, enables persistence: restore on New,
	// periodic background checkpoints, and a final checkpoint on Stop.
	CheckpointDir string

	// CheckpointInterval is the background checkpoint period
	// (default 30s; ignored without CheckpointDir).
	CheckpointInterval time.Duration

	// WALDir, when set, enables the write-ahead log: every acknowledged
	// ingest chunk, batch boundary, model attach/detach and RNG-consuming
	// sample read is journaled and fsynced (per WALFsync) before the
	// acknowledgement, and boot replays the log tail on top of the newest
	// snapshots — a kill -9 then loses at most the last un-fsynced group
	// instead of up to a full CheckpointInterval of acknowledged traffic.
	// Checkpoint passes double as WAL compaction.
	WALDir string

	// WALFsync selects the durability policy: "group" (default — one
	// fsync covers every record written since the last, batching
	// concurrent requests), "always" (fsync per record), or "off" (OS
	// page cache only; survives kill -9, not power loss).
	WALFsync string

	// WALSegmentBytes rotates WAL segments at this size (default 64MB).
	WALSegmentBytes int64

	// RestoreQuarantine, when set, boots past a corrupt checkpoint file
	// by renaming it to *.corrupt and counting it, instead of failing the
	// whole boot (the default — losing one tenant silently is worse than
	// a loud crash loop, so opting in is deliberate).
	RestoreQuarantine bool

	// MaxPendingItems bounds one stream's open batch; ingest beyond it is
	// rejected until a batch boundary drains the buffer (default 1<<20
	// items; negative disables the bound).
	MaxPendingItems int

	// Advertise is the URL peers should use to reach this node (e.g.
	// "http://10.0.0.5:8377"). It identifies the node in handoff
	// envelopes and logs; empty is fine for single-node deployments.
	Advertise string

	// MaxStreams bounds the number of live streams; requests that would
	// create one beyond it get 429 (default 1<<16; negative disables the
	// bound). Boot-time restore is exempt, so lowering the cap never
	// strands an existing checkpoint directory.
	MaxStreams int

	// MaxResident, when positive, bounds how many streams keep their
	// state (sampler, open batch, model bytes) in memory: beyond it the
	// hibernator evicts the least-recently-touched idle streams down to
	// stubs backed by their checkpoint files, and a request touching a
	// cold key rehydrates it lazily through the restore path. Requires
	// CheckpointDir. Live streams beyond MaxResident still count against
	// MaxStreams — tiering bounds memory, not tenancy.
	MaxResident int

	// IdleAfter, when positive, hibernates any stream untouched for this
	// long regardless of the resident count. Requires CheckpointDir.
	IdleAfter time.Duration

	// HibernateInterval is the hibernator's sweep period (default 1s;
	// ignored unless MaxResident or IdleAfter enables tiering). Crossing
	// MaxResident also kicks a sweep immediately.
	HibernateInterval time.Duration

	// Logger receives operational log lines; nil discards them. Request
	// lines (one per traced request, at debug level) come from Trace's
	// logger, not this one, so the two can be split.
	Logger *slog.Logger

	// Trace, when non-nil, enables span tracing: per-request ingest
	// traces and per-stream batch-boundary traces flow into its ring
	// buffer (GET /debug/trace/recent) and its stage histograms are
	// merged into GET /metrics. Nil disables tracing entirely — every
	// record call is a nil-receiver no-op.
	Trace *obs.Tracer
}

func (o *Options) setDefaults() {
	if o.Shards == 0 {
		o.Shards = 16
	}
	if o.EngineWorkers == 0 {
		o.EngineWorkers = o.Shards
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 128
	}
	if o.RetrainWorkers == 0 {
		o.RetrainWorkers = 2
	}
	if o.BatchInterval < 0 {
		o.BatchInterval = 0
	}
	// time.NewTicker panics on non-positive intervals, so a nonsense
	// checkpoint period falls back to the default rather than crashing
	// the checkpointer goroutine.
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 30 * time.Second
	}
	if o.MaxPendingItems == 0 {
		o.MaxPendingItems = 1 << 20
	}
	if o.MaxStreams == 0 {
		o.MaxStreams = 1 << 16
	}
	if o.HibernateInterval <= 0 {
		o.HibernateInterval = time.Second
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
}

// Server is the tbsd core: the keyed sampler registry, its HTTP handler,
// and the background ticker and checkpointer. Construct with New, attach
// Handler to an http.Server, call Start for the background loops and Stop
// to drain them.
type Server struct {
	opts    Options
	reg     *registry
	metrics *Metrics
	mux     *http.ServeMux
	eng     *engine.Engine // nil when QueueDepth < 0 (inline apply)
	wal     *wal.Log       // nil when WALDir is unset

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	ckptMu    sync.Mutex // serializes whole checkpoint passes (and stream deletes/handoffs)

	// hibKick nudges the hibernator out of its sweep interval when the
	// resident count crosses MaxResident (buffered, coalescing).
	hibKick chan struct{}
	// hibMu serializes whole hibernation sweeps: two concurrent passes
	// would each snapshot the same over-bound population and jointly
	// evict twice the excess, overshooting far below MaxResident.
	hibMu sync.Mutex

	// moved records streams handed off to another node: key → target base
	// URL. Requests for a moved key answer 421 with the new home instead
	// of silently recreating the stream here. In-memory only — after a
	// restart the journaled tombstone still prevents resurrection, and a
	// misdirected ingest then creates a fresh stream exactly as a DELETE
	// would allow; keeping routers pointed at the new owner is the
	// router's job (its override map), this guard is the backstop.
	moved sync.Map
}

// New validates the configuration and, when a checkpoint directory is
// configured, restores every stream found there.
func New(opts Options) (*Server, error) {
	opts.setDefaults()
	if (opts.MaxResident > 0 || opts.IdleAfter > 0) && opts.CheckpointDir == "" {
		return nil, errors.New("server: MaxResident/IdleAfter require CheckpointDir (the checkpoint file is a hibernated stream's entire state)")
	}
	reg, err := newRegistry(opts.Sampler, opts.Shards, opts.MaxStreams)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		reg:     reg,
		metrics: &Metrics{},
		stop:    make(chan struct{}),
		hibKick: make(chan struct{}, 1),
	}
	if opts.QueueDepth > 0 {
		bg := opts.RetrainWorkers
		if bg < 0 {
			bg = 0
		}
		s.eng, err = engine.New(opts.EngineWorkers, opts.QueueDepth, engine.WithBackground(bg))
		if err != nil {
			return nil, err
		}
	}
	fail := func(err error) (*Server, error) {
		if s.eng != nil {
			s.eng.Close()
		}
		if s.wal != nil {
			s.wal.Close()
		}
		return nil, err
	}
	if opts.WALDir != "" {
		// Open before restore: recovery needs the log's end position to
		// clamp stale checkpoint LSNs, and replay runs off this handle.
		s.wal, err = wal.Open(wal.Options{
			Dir:          opts.WALDir,
			Fsync:        opts.WALFsync,
			SegmentBytes: opts.WALSegmentBytes,
		})
		if err != nil {
			return fail(err)
		}
	}
	restored, err := s.restoreAll()
	if err != nil {
		return fail(err)
	}
	// Journaling switches on only after replay has fully applied (and
	// quiesced) the existing log — replayed operations must not be
	// re-journaled.
	s.reg.enableWAL(s.wal)
	s.metrics.SetRestored(restored)
	if restored > 0 {
		// Snapshots carry their own parameters, so restored streams keep
		// the lambda/n they were checkpointed with even if the server's
		// flags changed — worth a log line, since only a scheme mismatch
		// fails boot loudly.
		s.opts.Logger.Info("restored streams from checkpoint directory (restored streams keep their checkpointed parameters)",
			"streams", restored, "dir", opts.CheckpointDir)
	}
	s.mux = s.buildMux()
	return s, nil
}

// Handler returns the HTTP API handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics accumulator.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Start launches the wall-clock ticker and the background checkpointer
// (each only when configured) and flips /readyz to ready — restore
// already completed in New, so a Started server can serve every stream it
// owns. It is idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		if s.opts.BatchInterval > 0 {
			s.wg.Add(1)
			go s.runTicker()
		}
		if s.opts.CheckpointDir != "" {
			s.wg.Add(1)
			go s.runCheckpointer()
		}
		if s.tieringEnabled() {
			s.wg.Add(1)
			go s.runHibernator()
		}
		s.metrics.SetReady(true)
	})
}

// Stop halts the background loops, waits for them, drains the engine's
// mailboxes (every closed batch is applied — nothing is left queued), and
// takes a final checkpoint so a restart loses nothing. The final
// checkpoint is taken even when ctx expires before the loops drain —
// checkpointAll is safe concurrently with a straggling background pass,
// and losing it would drop everything since the last periodic checkpoint.
// Stop is idempotent; the HTTP handler keeps serving (shut the http.Server
// down first).
func (s *Server) Stop(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		// Unready first: a cluster router probing /readyz stops routing
		// here before the drain begins.
		s.metrics.SetReady(false)
		close(s.stop)
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			if s.eng != nil {
				// Drain after the ticker has stopped producing boundaries:
				// Close blocks until every queued batch has been applied, so
				// the final checkpoint below observes fully-advanced
				// samplers. Later submissions fall back to inline apply.
				s.eng.Close()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
		// The final checkpoint gets the same deadline: a hung checkpoint
		// disk (or a straggling pass holding ckptMu) must not block
		// shutdown forever. On timeout the pass keeps running detached —
		// its writes are atomic, so a killed process leaves no torn files.
		ckc := make(chan error, 1)
		go func() { ckc <- s.checkpointAll() }()
		select {
		case cerr := <-ckc:
			err = errors.Join(err, cerr)
			// The final checkpoint covered everything, so the WAL can be
			// sealed (checkpointAll already compacted it). On timeout the
			// log is left open for the detached pass — a killed process
			// leaves a valid log either way.
			if s.wal != nil {
				err = errors.Join(err, s.wal.Close())
			}
		case <-ctx.Done():
			err = errors.Join(err, fmt.Errorf("server: final checkpoint timed out: %w", ctx.Err()))
		}
	})
	return err
}

// submitApply hands a closed batch to the engine worker owning the stream
// (inline when the engine is disabled or closing). The caller must hold
// e.advMu so close order equals submission order. btr is the boundary
// trace for this batch (nil when tracing is off); applyBatch takes
// ownership of it.
func (s *Server) submitApply(e *entry, batch []Item, btr *obs.Trace) {
	apply := func() {
		n, _, elapsed := e.applyBatch(batch, btr)
		s.metrics.ObserveAdvance(n, elapsed)
	}
	if s.eng == nil || s.eng.Submit(e.key, apply) != nil {
		apply()
	}
}

// advanceAsync closes the stream's open batch and queues it for
// application, returning without waiting — the pipelined batch boundary
// used by the ticker and by NDJSON mid-request boundaries. The returned
// LSN is the boundary's journal record (0 when journaling is off); the
// caller acknowledging the boundary must wal-sync it first. A stream
// frozen for a handoff is silently skipped (lsn 0) — the ticker must not
// stall, and the boundary will happen on the stream's new owner.
//
// tr, when non-nil, is the ingest trace that ordered this boundary; the
// boundary gets its own child trace under the same trace ID, and the
// close+submit time is charged to the ingest trace's engine_enqueue
// stage.
func (s *Server) advanceAsync(e *entry, tr *obs.Trace) uint64 {
	e.advMu.Lock()
	defer e.advMu.Unlock()
	enqStart := time.Now()
	batch, ok, lsn, jerr := e.closeBatch()
	if !ok {
		return 0
	}
	s.noteJournalErr(jerr)
	btr := s.opts.Trace.StartChild(tr, obs.KindBoundary, e.key)
	btr.StageSince(obs.StageCloseBatch, enqStart)
	s.submitApply(e, batch, btr)
	tr.StageSince(obs.StageEnqueue, enqStart)
	return lsn
}

// advanceWait is advanceAsync plus a wait for that specific batch: it
// returns only after the batch has been applied, with the applied batch
// size, total boundary count, sampler-update latency and the boundary's
// journal LSN — what the synchronous /advance API reports. err is
// errStreamMigrating when the stream is frozen for a handoff: the
// boundary did NOT happen and the caller must report the failure rather
// than acknowledge it.
func (s *Server) advanceWait(e *entry, tr *obs.Trace) (n int, batches uint64, elapsed time.Duration, lsn uint64, err error) {
	done := make(chan struct{})
	e.advMu.Lock()
	enqStart := time.Now()
	batch, ok, lsn, jerr := e.closeBatch()
	if !ok {
		e.advMu.Unlock()
		return 0, 0, 0, 0, jerr
	}
	s.noteJournalErr(jerr)
	btr := s.opts.Trace.StartChild(tr, obs.KindBoundary, e.key)
	btr.StageSince(obs.StageCloseBatch, enqStart)
	// The apply closure may run on an engine worker while this goroutine
	// is still recording the enqueue stage, so it must not touch tr
	// itself: it captures the apply window into locals and the done-
	// channel close publishes them back here for recording.
	var applyStart time.Time
	var applyDur time.Duration
	apply := func() {
		applyStart = time.Now()
		n, batches, elapsed = e.applyBatch(batch, btr)
		applyDur = time.Since(applyStart)
		s.metrics.ObserveAdvance(n, elapsed)
		close(done)
	}
	inline := s.eng == nil || s.eng.Submit(e.key, apply) != nil
	if !inline {
		tr.StageSince(obs.StageEnqueue, enqStart)
	}
	if inline {
		apply()
	}
	e.advMu.Unlock()
	<-done
	tr.StageDur(obs.StageApply, applyStart, applyDur)
	return n, batches, elapsed, lsn, nil
}

// flushStream blocks until every batch queued for the stream has been
// applied; a no-op without the engine.
func (s *Server) flushStream(e *entry) {
	if s.eng != nil {
		s.eng.Flush(e.key)
	}
}

// runBackground dispatches a retrain job to the engine's background lane.
// The error return (no engine, no lane, or draining) tells the caller to
// run the job inline instead, so a retrain decision is never lost.
func (s *Server) runBackground(fn func()) error {
	if s.eng == nil {
		return engine.ErrNoBackground
	}
	return s.eng.Background(fn)
}

// AdvanceAll closes every stream's open batch — the ticker's unit of work,
// also usable directly (tests, admin tooling). Batches fan out across the
// engine's shard workers and the call returns after all have applied, so
// one slow stream no longer serializes the whole pass.
func (s *Server) AdvanceAll() {
	for _, e := range s.reg.all() {
		if e.hibernated.Load() {
			// A hibernated stream's decay clock pauses; closeBatch would
			// refuse anyway, this just skips the lock on every stub.
			continue
		}
		s.advanceAsync(e, nil)
	}
	if s.eng != nil {
		s.eng.FlushAll()
	}
}

// runTicker maps the paper's batch-arrival model onto real time: every
// BatchInterval is one batch-time unit for every stream, whether or not
// items arrived. time.Ticker silently coalesces ticks when AdvanceAll
// outlasts the interval, which would let the batch-time clock drift
// behind the wall clock with no signal — so the gap between consecutive
// fire times is measured, and skipped ticks are counted
// (tbsd_ticker_lagged_total) and logged.
func (s *Server) runTicker() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.BatchInterval)
	defer t.Stop()
	var last time.Time
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			if skipped := tickerSkips(last, now, s.opts.BatchInterval); skipped > 0 {
				s.metrics.ObserveTickerLag(skipped)
				s.opts.Logger.Warn("ticker: batch-time clock lagged behind interval; ticks coalesced",
					"lag", now.Sub(last)-s.opts.BatchInterval, "interval", s.opts.BatchInterval, "skipped", skipped)
			}
			last = now
			s.AdvanceAll()
		}
	}
}

// tickerSkips returns how many ticks the runtime coalesced between two
// consecutive fire times: 0 when the gap is within half an interval of
// nominal, the number of whole missed intervals beyond that.
func tickerSkips(prev, now time.Time, interval time.Duration) int {
	if prev.IsZero() || interval <= 0 {
		return 0
	}
	gap := now.Sub(prev)
	if gap <= interval+interval/2 {
		return 0
	}
	return int((gap - interval/2) / interval)
}

func (s *Server) runCheckpointer() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.checkpointAll(); err != nil {
				s.opts.Logger.Error("checkpoint pass failed", "err", err)
			}
		}
	}
}
