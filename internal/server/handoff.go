package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
	"repro/tbs"
)

// Stream migration: POST /v1/streams/{key}/handoff?target=http://host:port
// moves one stream to another tbsd node with no acknowledged-data loss.
//
// Source side (handleHandoff):
//
//  1. freeze the entry (beginMigration) — every mutation answers 503
//     stream_migrating from here on, so nothing acknowledged can miss
//     the shipped state
//  2. drain queued boundaries (flushStream) and force-capture the
//     checkpoint envelope, plus the WAL tail past its WalLSN (empty by
//     construction after the freeze; shipped anyway so the envelope is
//     self-contained even if capture semantics ever loosen)
//  3. POST the envelope to the target's /adopt; any failure unfreezes
//     the stream and reports a structured 502 — the source remains the
//     owner
//  4. on 200: journal a deletion tombstone (durable before the
//     checkpoint file is unlinked, mirroring DELETE), drop the entry,
//     and record the moved marker so stale clients get 421 with the new
//     home instead of silently recreating the stream here
//
// Target side (handleAdopt): rebuild the entry through the boot-restore
// path (entryFromState + applyReplayRecord for the tail), rebase its LSN
// bookkeeping into the local WAL's space, persist a checkpoint BEFORE
// the entry starts serving — adoption must survive an immediate kill —
// and only then attach the local WAL and unfreeze.

// handoffEnvelope is the migration wire format: the stream's checkpoint
// envelope (the PR 5 restore format, so adoption is exactly a restore)
// plus the WAL records after its WalLSN and the source's identity.
type handoffEnvelope struct {
	State checkpointState `json:"state"`
	Tail  []wireRecord    `json:"tail,omitempty"`
	From  string          `json:"from,omitempty"`
}

// wireRecord is a WAL record stripped to what adoption needs: source
// LSNs are meaningless in the target's LSN space, and the key rides the
// URL. Order within the tail is LSN order.
type wireRecord struct {
	Type uint8 `json:"type"`
	// Items are typed as server Items, not raw JSON: WAL records carry
	// binary-ingested rows verbatim, and Item.MarshalJSON materializes
	// them to text as the envelope is encoded.
	Items []Item `json:"items,omitempty"`
	Data  []byte `json:"data,omitempty"`
}

func toWireRecords(recs []wal.Record) []wireRecord {
	out := make([]wireRecord, len(recs))
	for i, r := range recs {
		w := wireRecord{Type: uint8(r.Type), Data: r.Data}
		if len(r.Items) > 0 {
			w.Items = make([]Item, len(r.Items))
			for j, it := range r.Items {
				w.Items[j] = Item(it)
			}
		}
		out[i] = w
	}
	return out
}

func (w wireRecord) toRecord(key string) wal.Record {
	r := wal.Record{Type: wal.Type(w.Type), Key: key, Data: w.Data}
	if len(w.Items) > 0 {
		r.Items = make([][]byte, len(w.Items))
		for i, it := range w.Items {
			r.Items[i] = []byte(it)
		}
	}
	return r
}

// maxAdoptBytes bounds one adoption envelope. Envelopes carry a full
// stream state (reservoir + open batch + model bytes), which can far
// exceed a single ingest request.
const maxAdoptBytes = 256 << 20

// handoffClient ships envelopes between nodes. The timeout bounds the
// whole exchange — a handoff holds ckptMu at the source, so a wedged
// target must not stall checkpoints forever.
var handoffClient = &http.Client{Timeout: 30 * time.Second}

// handoffTarget extracts and validates the target node URL from
// ?target= or a {"target": "..."} body.
func handoffTarget(w http.ResponseWriter, r *http.Request) (string, bool) {
	target := r.URL.Query().Get("target")
	if target == "" {
		var body struct {
			Target string `json:"target"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err == nil {
			target = body.Target
		}
	}
	target = strings.TrimSuffix(target, "/")
	if target == "" {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_request",
			"handoff needs a target node URL (?target= or a JSON body with \"target\")", nil))
		return "", false
	}
	u, err := url.Parse(target)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeJSON(w, http.StatusBadRequest, errorBody("bad_request",
			fmt.Sprintf("target %q must be an absolute http(s) URL", target), nil))
		return "", false
	}
	return target, true
}

// handleHandoff is the source side of a stream migration.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	target, ok := handoffTarget(w, r)
	if !ok {
		return
	}
	tr := s.opts.Trace.StartFromRequest(r, obs.KindHandoff, key)
	// ckptMu serializes the handoff against checkpoint passes and
	// deletes, exactly like deleteStream: the capture, the tombstone and
	// the file unlink must not interleave with a pass rewriting the file.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// Pin + hydrate before freezing: a hibernated stream hands off its
	// full rebuilt state, and the pin keeps the hibernator from evicting
	// the entry between hydration and the freeze (frozen entries are
	// never evicted, so the pin only needs to bridge that gap).
	e, err := s.acquireExisting(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	if e == nil {
		if !s.movedGuard(w, key) {
			writeError(w, http.StatusNotFound, "unknown stream %q", key)
		}
		tr.Finish(http.StatusNotFound)
		return
	}
	defer e.unpin()
	freezeStart := time.Now()
	err = e.beginMigration()
	tr.StageSince(obs.StageFreeze, freezeStart)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		if errors.Is(err, errStreamMigrating) {
			status, code = http.StatusConflict, "handoff_in_progress"
		}
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	success := false
	defer func() {
		if !success {
			e.endMigration()
		}
	}()

	// Drain: every closed-but-unapplied boundary folds into the sampler
	// before capture, so the envelope reflects all acknowledged work.
	captureStart := time.Now()
	s.flushStream(e)
	st, err := e.captureState()
	if err != nil {
		s.metrics.ObserveHandoffOut(false)
		respond(tr, w, http.StatusInternalServerError, errorBody("handoff_capture", err.Error(), nil))
		return
	}
	var tail []wireRecord
	if s.wal != nil {
		recs, err := s.wal.TailForKey(key, st.WalLSN)
		if err != nil {
			s.metrics.ObserveHandoffOut(false)
			respond(tr, w, http.StatusInternalServerError, errorBody("handoff_tail", err.Error(), nil))
			return
		}
		tail = toWireRecords(recs)
	}
	payload, err := json.Marshal(handoffEnvelope{State: st, Tail: tail, From: s.opts.Advertise})
	tr.StageSince(obs.StageCapture, captureStart)
	if err != nil {
		s.metrics.ObserveHandoffOut(false)
		respond(tr, w, http.StatusInternalServerError, errorBody("handoff_encode", err.Error(), nil))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		target+"/v1/streams/"+url.PathEscape(key)+"/adopt", bytes.NewReader(payload))
	if err != nil {
		s.metrics.ObserveHandoffOut(false)
		respond(tr, w, http.StatusBadRequest, errorBody("bad_request", err.Error(), nil))
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the trace: the target's adopt trace joins this trace ID,
	// so one migration reads as one trace across both nodes' rings.
	if tp := tr.Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	shipStart := time.Now()
	resp, err := handoffClient.Do(req)
	tr.StageSince(obs.StageShip, shipStart)
	if err != nil {
		s.metrics.ObserveHandoffOut(false)
		respond(tr, w, http.StatusBadGateway, errorBody("target_unreachable",
			fmt.Sprintf("shipping stream %q to %s: %v", key, target, err),
			map[string]any{"target": target}))
		return
	}
	defer resp.Body.Close()
	rbody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		s.metrics.ObserveHandoffOut(false)
		respond(tr, w, http.StatusBadGateway, errorBody("handoff_rejected",
			fmt.Sprintf("target %s answered %d: %s", target, resp.StatusCode, strings.TrimSpace(string(rbody))),
			map[string]any{"target": target, "targetStatus": resp.StatusCode}))
		return
	}

	// The target owns the stream now. Tombstone, removal and unlink
	// mirror deleteStream's crash-safe ordering: journal the tombstone,
	// make it durable, only then unlink the checkpoint file — so a crash
	// at any point leaves either a tombstone that finishes the job on
	// replay, or the untouched pre-handoff state it supersedes; never a
	// WAL tail that could resurrect a partial copy of a moved stream.
	commitStart := time.Now()
	var lsn uint64
	var jerr error
	e.mu.Lock()
	e.deleted = true
	if e.wal != nil {
		if lsn, jerr = e.wal.AppendRecord(wal.TypeStreamDelete, key, nil); jerr != nil {
			jerr = fmt.Errorf("journal handoff tombstone: %w", jerr)
		}
	}
	e.mu.Unlock()
	s.reg.remove(key)
	jerr = errors.Join(jerr, s.syncWAL(lsn))
	if dir := s.opts.CheckpointDir; dir != "" {
		if err := os.Remove(filepath.Join(dir, checkpointFileName(key))); err != nil && !errors.Is(err, os.ErrNotExist) {
			jerr = errors.Join(jerr, err)
		}
	}
	s.moved.Store(key, target)
	success = true
	tr.StageSince(obs.StageCommit, commitStart)
	s.metrics.ObserveHandoffOut(true)
	s.opts.Logger.Info("handoff: stream shipped",
		"key", key, "target", target, "items", st.Ingested, "batches", st.Batches,
		"tailRecords", len(tail), "trace", tr.TraceID())
	body := map[string]any{
		"key":         key,
		"target":      target,
		"handedOff":   true,
		"ingested":    st.Ingested,
		"batches":     st.Batches,
		"tailRecords": len(tail),
	}
	if jerr != nil {
		// The move itself succeeded — the target owns the stream and
		// failing the response would desynchronize routers — but part of
		// the source-side cleanup did not; surface it rather than hide it.
		body["sourceCleanup"] = jerr.Error()
	}
	respond(tr, w, http.StatusOK, body)
}

// handleAdopt is the target side of a stream migration.
func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request) {
	key, ok := streamKey(w, r)
	if !ok {
		return
	}
	tr := s.opts.Trace.StartFromRequest(r, obs.KindAdopt, key)
	restoreStart := time.Now()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxAdoptBytes))
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	var env handoffEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		respond(tr, w, http.StatusBadRequest, errorBody("bad_envelope", err.Error(), nil))
		return
	}
	if env.State.Key != key {
		respond(tr, w, http.StatusBadRequest, errorBody("bad_envelope",
			fmt.Sprintf("envelope names key %q, URL names %q", env.State.Key, key), nil))
		return
	}
	// Same strictness as boot restore: adopting a stream sampled under a
	// different scheme would silently mix sampling semantics.
	info, err := tbs.Lookup(s.opts.Sampler.Scheme)
	if err != nil {
		respond(tr, w, http.StatusInternalServerError, errorBody("internal", err.Error(), nil))
		return
	}
	if env.State.Snapshot.Scheme != info.Name {
		respond(tr, w, http.StatusConflict, errorBody("scheme_mismatch",
			fmt.Sprintf("envelope holds scheme %q, this node runs %q", env.State.Snapshot.Scheme, info.Name),
			map[string]any{"envelopeScheme": env.State.Snapshot.Scheme, "nodeScheme": info.Name}))
		return
	}
	e, err := s.entryFromState(env.State)
	tr.StageSince(obs.StageRestore, restoreStart)
	if err != nil {
		respond(tr, w, http.StatusBadRequest, errorBody("bad_envelope", err.Error(), nil))
		return
	}
	// Replay the source's WAL tail through the boot-replay code. The
	// entry's wal is still nil, so nothing is re-journaled; source LSNs
	// were stripped at export (the records apply in slice order).
	replayStart := time.Now()
	for i, wr := range env.Tail {
		if err := s.applyReplayRecord(e, wr.toRecord(key)); err != nil {
			respond(tr, w, http.StatusBadRequest, errorBody("bad_envelope",
				fmt.Sprintf("tail record %d: %v", i, err), nil))
			return
		}
	}
	// Quiesce any retrain the queued/tail replay dispatched before the
	// entry becomes reachable, mirroring restoreAll's ordering.
	if mm := e.model.Load(); mm != nil {
		mm.waitIdle()
	}
	tr.StageSince(obs.StageReplay, replayStart)
	// Rebase the LSN bookkeeping into this node's WAL space: everything
	// adopted is captured in the entry state, not in the local log, so
	// boot replay must skip every local record at or below this point —
	// including any records a previous tenancy of the same key left
	// behind, whose tombstone this rebase also neutralizes.
	var adoptedLSN uint64
	if s.wal != nil {
		adoptedLSN = s.wal.LastLSN()
	}
	e.walLSN, e.durableLSN = adoptedLSN, adoptedLSN
	e.dirty = true
	// Insert frozen: the entry is visible (and readable) immediately, but
	// mutations stay rejected until the adopted state is durable below —
	// an acknowledged write before that could be lost by a crash, with
	// the source's copy already tombstoned.
	e.migrating = true
	if err := s.reg.insertRestored(e); err != nil {
		respond(tr, w, http.StatusConflict, errorBody("stream_exists",
			fmt.Sprintf("stream %q already exists on this node", key), nil))
		return
	}
	persistStart := time.Now()
	if dir := s.opts.CheckpointDir; dir != "" {
		st, err := e.captureState()
		if err == nil {
			err = writeCheckpointFile(dir, st)
		}
		if err != nil {
			// Refuse the adoption: the source still owns the stream (it
			// only tombstones on 200), so dropping the half-adopted entry
			// is safe — it was frozen, nothing was acknowledged.
			s.reg.remove(key)
			s.metrics.ObserveHandoffOut(false)
			respond(tr, w, http.StatusServiceUnavailable, errorBody("adopt_persist_failed", err.Error(), nil))
			return
		}
	}
	// Durable: attach the local WAL and open for business.
	e.mu.Lock()
	e.wal = s.wal
	e.migrating = false
	e.mu.Unlock()
	tr.StageSince(obs.StagePersist, persistStart)
	s.moved.Delete(key)
	s.metrics.ObserveHandoffIn()
	// Adoption added a resident stream outside the create path; trim
	// promptly if it pushed the node over its resident bound.
	s.maybeKickHibernator()
	pending, ingested, batches := e.counters()
	s.opts.Logger.Info("adopt: stream adopted",
		"key", key, "from", env.From, "items", ingested, "batches", batches,
		"tailRecords", len(env.Tail), "trace", tr.TraceID())
	respond(tr, w, http.StatusOK, map[string]any{
		"key":          key,
		"adopted":      true,
		"from":         env.From,
		"pending":      pending,
		"ingested":     ingested,
		"batches":      batches,
		"tailReplayed": len(env.Tail),
	})
}
