package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/tbs"
)

func ptr[T any](v T) *T { return &v }

func rtbsConfig(seed uint64) tbs.Config {
	return tbs.Config{Scheme: "rtbs", Lambda: ptr(0.1), MaxSize: ptr(40), Seed: ptr(seed)}
}

// harness wires a Server to an httptest.Server and a tiny JSON client.
type harness struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	h := &harness{t: t, srv: srv, ts: ts}
	t.Cleanup(func() { h.close() })
	return h
}

func (h *harness) close() {
	if h.ts != nil {
		h.ts.Close()
		h.ts = nil
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := h.srv.Stop(ctx); err != nil {
			h.t.Errorf("Stop: %v", err)
		}
	}
}

// do issues a request and decodes the JSON response into out (when
// non-nil), failing the test on transport errors.
func (h *harness) do(method, path string, body any, wantStatus int, out any) {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		h.t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			h.t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
}

func itemBatch(key string, t, size int) []int {
	b := make([]int, size)
	for i := range b {
		b[i] = len(key)*1_000_000 + t*1000 + i
	}
	return b
}

type sampleResp struct {
	Key    string            `json:"key"`
	Scheme string            `json:"scheme"`
	Size   int               `json:"size"`
	Items  []json.RawMessage `json:"items"`
}

// driveStream feeds batches [from, to] with explicit boundaries.
func (h *harness) driveStream(key string, from, to int) {
	for t := from; t <= to; t++ {
		h.do("POST", "/v1/streams/"+key+"/items", itemBatch(key, t, 20), http.StatusOK, nil)
		h.do("POST", "/v1/streams/"+key+"/advance", nil, http.StatusOK, nil)
	}
}

func (h *harness) sample(key string) sampleResp {
	var s sampleResp
	h.do("GET", "/v1/streams/"+key+"/sample", nil, http.StatusOK, &s)
	return s
}

// TestEndToEndCheckpointRestart is the PR's acceptance test: concurrent
// keyed ingest across 8 goroutines, explicit batch boundaries, a sample
// fetch, then kill + restart from checkpoint — the resumed server must
// produce byte-identical samples to an uninterrupted reference run with
// the same seed and batch boundaries. Sample fetches consume RNG draws
// for R-TBS, so both runs fetch at the same points.
func TestEndToEndCheckpointRestart(t *testing.T) {
	const goroutines = 8
	keys := make([]string, goroutines)
	for i := range keys {
		keys[i] = fmt.Sprintf("stream-%02d", i)
	}
	opts := func(dir string) Options {
		return Options{Sampler: rtbsConfig(5), Shards: 4, CheckpointDir: dir}
	}
	runPhase := func(h *harness, from, to int) {
		var wg sync.WaitGroup
		for _, key := range keys {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.driveStream(key, from, to)
			}()
		}
		wg.Wait()
	}

	// Interrupted run: batches 1–5, a mid-run sample fetch per key, kill
	// (final checkpoint), restart, batches 6–10.
	dir := t.TempDir()
	h1 := newHarness(t, opts(dir))
	runPhase(h1, 1, 5)
	for _, key := range keys {
		h1.sample(key)
	}
	h1.close()

	h2 := newHarness(t, opts(dir))
	var metricsText string
	{
		resp, err := http.Get(h2.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metricsText = string(data)
	}
	if !bytes.Contains([]byte(metricsText), []byte(fmt.Sprintf("tbsd_restored_streams %d", goroutines))) {
		t.Fatalf("restart did not restore %d streams:\n%s", goroutines, metricsText)
	}
	runPhase(h2, 6, 10)
	resumed := make(map[string]sampleResp)
	for _, key := range keys {
		resumed[key] = h2.sample(key)
	}

	// Uninterrupted reference run, same seed and batch boundaries, with
	// the sample fetches at the same point after batch 5.
	ref := newHarness(t, Options{Sampler: rtbsConfig(5), Shards: 4})
	runPhase(ref, 1, 5)
	for _, key := range keys {
		ref.sample(key)
	}
	runPhase(ref, 6, 10)

	for _, key := range keys {
		want := ref.sample(key)
		got := resumed[key]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stream %s: resumed sample diverges from uninterrupted run\n got: size=%d %v\nwant: size=%d %v",
				key, got.Size, got.Items, want.Size, want.Items)
		}
		if got.Size == 0 {
			t.Errorf("stream %s: empty sample after 10 batches", key)
		}
	}
}

// TestPendingItemsSurviveRestart: items ingested but not yet advanced are
// part of the checkpoint and are folded in by the first post-restart
// advance.
func TestPendingItemsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, Options{Sampler: rtbsConfig(3), CheckpointDir: dir})
	h1.do("POST", "/v1/streams/k/items", itemBatch("k", 1, 30), http.StatusOK, nil)
	h1.close()

	h2 := newHarness(t, Options{Sampler: rtbsConfig(3), CheckpointDir: dir})
	var stats struct {
		Pending  int    `json:"pending"`
		Ingested uint64 `json:"ingested"`
	}
	h2.do("GET", "/v1/streams/k/stats", nil, http.StatusOK, &stats)
	if stats.Pending != 30 || stats.Ingested != 30 {
		t.Fatalf("restored counters = %+v, want pending=30 ingested=30", stats)
	}
	h2.do("POST", "/v1/streams/k/advance", nil, http.StatusOK, nil)
	if s := h2.sample("k"); s.Size == 0 {
		t.Fatal("sample empty after advancing the restored pending batch")
	}
}

// TestTickerAdvancesAllStreams: with a batch interval configured, batch
// boundaries arrive from the wall clock alone.
func TestTickerAdvancesAllStreams(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), BatchInterval: 5 * time.Millisecond})
	h.do("POST", "/v1/streams/tick/items", itemBatch("tick", 1, 25), http.StatusOK, nil)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats struct {
			Batches uint64  `json:"batches"`
			Now     float64 `json:"now"`
		}
		h.do("GET", "/v1/streams/tick/stats", nil, http.StatusOK, &stats)
		if stats.Batches >= 3 {
			if stats.Now < 3 {
				t.Fatalf("batches=%d but sampler clock now=%v", stats.Batches, stats.Now)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticker closed only %d batches in 5s", stats.Batches)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := h.sample("tick"); s.Size == 0 {
		t.Fatal("sample empty after ticker advances")
	}
}

// TestConcurrentChaos hammers one hot key and several cold keys from many
// goroutines while the ticker and checkpointer run — a -race workout with
// liveness assertions only.
func TestConcurrentChaos(t *testing.T) {
	h := newHarness(t, Options{
		Sampler:            rtbsConfig(2),
		Shards:             4,
		BatchInterval:      2 * time.Millisecond,
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: 3 * time.Millisecond,
	})
	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := "hot"
			if g%3 == 0 {
				key = fmt.Sprintf("cold-%d", g)
			}
			for i := 0; i < 20; i++ {
				h.do("POST", "/v1/streams/"+key+"/items?advance="+fmt.Sprint(i%2), itemBatch(key, i, 5), http.StatusOK, nil)
				h.do("GET", "/v1/streams/"+key+"/stats", nil, http.StatusOK, nil)
				h.sample(key)
			}
		}()
	}
	wg.Wait()
	var list struct {
		Count   int      `json:"count"`
		Streams []string `json:"streams"`
	}
	h.do("GET", "/v1/streams", nil, http.StatusOK, &list)
	if list.Count < 2 {
		t.Fatalf("expected hot + cold streams, got %v", list.Streams)
	}
}

// TestHandlerErrors covers the API's failure surface.
func TestHandlerErrors(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})

	h.do("GET", "/v1/streams/ghost/sample", nil, http.StatusNotFound, nil)
	h.do("GET", "/v1/streams/ghost/stats", nil, http.StatusNotFound, nil)

	req, _ := http.NewRequest("POST", h.ts.URL+"/v1/streams/k/items", bytes.NewReader([]byte("{not json")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid JSON ingest: status %d, want 400", resp.StatusCode)
	}

	longKey := ""
	for len(longKey) <= maxKeyBytes {
		longKey += "x"
	}
	h.do("POST", "/v1/streams/"+longKey+"/items", 1, http.StatusBadRequest, nil)

	// Wrong method on a registered pattern.
	resp2, err := http.Get(h.ts.URL + "/v1/streams/k/items")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on items: status %d, want 405", resp2.StatusCode)
	}
}

// TestSingleVsBulkIngest: a non-array body is one item; an array body is
// one item per element.
func TestSingleVsBulkIngest(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	var resp struct {
		Added   int `json:"added"`
		Pending int `json:"pending"`
	}
	h.do("POST", "/v1/streams/k/items", map[string]any{"user": "u1", "v": 1}, http.StatusOK, &resp)
	if resp.Added != 1 || resp.Pending != 1 {
		t.Fatalf("single ingest: %+v", resp)
	}
	h.do("POST", "/v1/streams/k/items", []int{1, 2, 3}, http.StatusOK, &resp)
	if resp.Added != 3 || resp.Pending != 4 {
		t.Fatalf("bulk ingest: %+v", resp)
	}
	// A literal JSON null is one item, not an empty bulk request.
	h.do("POST", "/v1/streams/k/items", json.RawMessage("null"), http.StatusOK, &resp)
	if resp.Added != 1 || resp.Pending != 5 {
		t.Fatalf("null ingest: %+v", resp)
	}
}

// TestPendingCap: ingest beyond MaxPendingItems is rejected with 429
// until a batch boundary drains the open batch.
func TestPendingCap(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), MaxPendingItems: 10})
	h.do("POST", "/v1/streams/k/items", itemBatch("k", 1, 10), http.StatusOK, nil)
	h.do("POST", "/v1/streams/k/items", 99, http.StatusTooManyRequests, nil)
	h.do("POST", "/v1/streams/k/advance", nil, http.StatusOK, nil)
	h.do("POST", "/v1/streams/k/items", 99, http.StatusOK, nil)
}

// TestStreamCap: creating streams beyond MaxStreams is rejected with 429;
// existing streams keep working.
func TestStreamCap(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), MaxStreams: 2})
	h.do("POST", "/v1/streams/a/items", 1, http.StatusOK, nil)
	h.do("POST", "/v1/streams/b/advance", nil, http.StatusOK, nil)
	h.do("POST", "/v1/streams/c/items", 1, http.StatusTooManyRequests, nil)
	h.do("POST", "/v1/streams/c/advance", nil, http.StatusTooManyRequests, nil)
	h.do("POST", "/v1/streams/a/items", 2, http.StatusOK, nil)
}

// TestRestoreSchemeMismatch: a checkpoint directory written under one
// scheme must fail boot under another, not silently mix semantics.
func TestRestoreSchemeMismatch(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, Options{Sampler: rtbsConfig(1), CheckpointDir: dir})
	h.driveStream("k", 1, 2)
	h.close()

	_, err := New(Options{
		Sampler:       tbs.Config{Scheme: "brs", MaxSize: ptr(40), Seed: ptr(uint64(1))},
		CheckpointDir: dir,
	})
	if err == nil {
		t.Fatal("boot with a mismatched scheme succeeded")
	}
}

// TestMetricsEndpoint checks the text exposition contains the headline
// series after some traffic.
func TestMetricsEndpoint(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), Shards: 2, CheckpointDir: t.TempDir()})
	h.driveStream("m1", 1, 3)
	h.driveStream("m2", 1, 2)
	if err := h.srv.checkpointAll(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		"tbsd_streams 2",
		"tbsd_shards 2",
		`tbsd_shard_streams{shard="0"}`,
		"tbsd_ingested_items_total 100",
		"tbsd_advances_total 5",
		`tbsd_advance_latency_seconds{stat="p99"}`,
		"tbsd_checkpoints_total 1",
		"tbsd_checkpointed_streams_total 2",
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}
