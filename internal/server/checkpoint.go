package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/atomicfile"
	"repro/tbs"
)

// checkpointState is the on-disk record for one stream: the sampler's
// snapshot envelope plus the open batch and counters, so a restored stream
// resumes the exact stochastic process — items ingested but not yet
// advanced survive the restart too.
type checkpointState struct {
	Key      string       `json:"key"`
	Snapshot tbs.Snapshot `json:"snapshot"`
	Pending  []Item       `json:"pending,omitempty"`
	Queued   [][]Item     `json:"queued,omitempty"` // closed boundaries not yet applied; replayed on restore
	Ingested uint64       `json:"ingested"`
	Batches  uint64       `json:"batches"`
	// Model carries the stream's managed-model state (spec, policy state,
	// counters, gob-encoded deployed model) when one is attached, so a
	// restart serves the same predictions under the same policy clock.
	Model *modelCheckpoint `json:"model,omitempty"`
	// WalLSN is the LSN of the last WAL record reflected in this
	// snapshot; recovery replays only the records after it, and WAL
	// compaction may drop segments wholly below the minimum WalLSN
	// durably checkpointed across streams.
	WalLSN uint64 `json:"walLSN,omitempty"`
}

const checkpointSuffix = ".ckpt.json"

// checkpointFileName maps a stream key to a filesystem-safe file name.
// Base64url keeps arbitrary keys (slashes, dots, unicode) collision-free
// and reversible.
func checkpointFileName(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(key)) + checkpointSuffix
}

// keyFromFileName inverts checkpointFileName; ok is false for foreign
// files in the checkpoint directory.
func keyFromFileName(name string) (string, bool) {
	enc, found := strings.CutSuffix(name, checkpointSuffix)
	if !found {
		return "", false
	}
	raw, err := base64.RawURLEncoding.DecodeString(enc)
	if err != nil {
		return "", false
	}
	return string(raw), true
}

// writeCheckpointFile persists one stream state atomically.
func writeCheckpointFile(dir string, st checkpointState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", st.Key, err)
	}
	return atomicfile.WriteFile(filepath.Join(dir, checkpointFileName(st.Key)), data, 0o644)
}

// checkpointAll persists every stream. It is driven by the background
// checkpointer, by Stop, and is safe to call concurrently with request
// traffic: each entry is captured under its own lock at some point during
// the pass (per-stream consistency, not a global cut — the same guarantee
// the paper's per-sampler checkpointing gives). Passes themselves are
// serialized by ckptMu, so Stop's final pass cannot interleave with a
// straggling background pass and have its fresh files overwritten by
// stale ones — the final pass simply runs after the straggler finishes.
func (s *Server) checkpointAll() error {
	if s.opts.CheckpointDir == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	start := time.Now()
	entries := s.reg.all()
	var firstErr error
	written := 0
	for _, e := range entries {
		if e.hibernated.Load() {
			// A stub's entire state is already its checkpoint file; there is
			// nothing in memory to capture (and flushing would be a no-op).
			continue
		}
		// Apply the stream's queued batches first, so the captured snapshot
		// never reflects a closed-but-unapplied boundary (the batch items
		// would be in neither the pending list nor the sampler state).
		s.flushStream(e)
		st, wasDirty, err := e.checkpoint()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !wasDirty {
			// The previous checkpoint file is still current; skip the
			// write so idle tenants cost nothing per pass.
			continue
		}
		if err := writeCheckpointFile(s.opts.CheckpointDir, st); err != nil {
			e.markDirty()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.setDurableLSN(st.WalLSN)
		written++
	}
	s.metrics.ObserveCheckpoint(written, time.Since(start), firstErr)
	// A completed pass is the WAL's compaction step: everything below the
	// minimum durably-checkpointed LSN is now redundant with snapshots.
	s.compactWAL()
	return firstErr
}

// CheckpointNow runs one full checkpoint pass (and the WAL compaction
// that follows it) immediately, in the caller's goroutine. Deterministic
// hook for tests, tooling and benchmarks; the background checkpointer
// drives the same pass on its interval.
func (s *Server) CheckpointNow() error { return s.checkpointAll() }

// restoreAll drives boot-time recovery: load every snapshot checkpoint,
// then replay the WAL tail on top, converging to the exact pre-crash
// state (samplers, open batches, policy clocks, deployed model bytes).
func (s *Server) restoreAll() (int, error) {
	restored, err := s.restoreSnapshots()
	if err != nil {
		return restored, err
	}
	if s.wal != nil {
		replayed, err := s.replayWAL()
		s.metrics.SetWALReplayed(replayed)
		if err != nil {
			return restored, err
		}
		if replayed > 0 {
			s.opts.Logger.Info("wal: replayed records on top of snapshots", "records", replayed, "snapshots", restored)
		}
		// Replayed boundaries may have dispatched retrains to the
		// background lane; wait them out so journaling can be enabled
		// without racing a trainer, and so the post-boot state is the
		// deterministic post-boundary one.
		for _, e := range s.reg.all() {
			if mm := e.model.Load(); mm != nil {
				mm.waitIdle()
			}
		}
	}
	return restored, nil
}

// restoreSnapshots loads every checkpoint file in the directory into the
// registry. Foreign files are ignored; a corrupt checkpoint is an error
// (silently dropping a tenant's stream would be worse than failing boot)
// unless RestoreQuarantine is set, in which case the bad file is renamed
// to *.corrupt, counted, and boot continues with the remaining tenants.
func (s *Server) restoreSnapshots() (int, error) {
	dir := s.opts.CheckpointDir
	if dir == "" {
		return 0, nil
	}
	des, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, os.MkdirAll(dir, 0o755)
	}
	if err != nil {
		return 0, err
	}
	// Resolve the configured scheme's canonical name once: restoring a
	// stream checkpointed under a different scheme would silently mix
	// sampling semantics across tenants, so it fails boot instead.
	info, err := tbs.Lookup(s.opts.Sampler.Scheme)
	if err != nil {
		return 0, err
	}
	// The WAL on disk ends here; a checkpoint claiming a higher LSN
	// predates a wiped or foreign log and must not filter real records.
	var bootLSN uint64
	if s.wal != nil {
		bootLSN = s.wal.LastLSN()
	}
	restored, quarantined := 0, 0
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		key, ok := keyFromFileName(de.Name())
		if !ok {
			continue
		}
		err := s.restoreOne(dir, de.Name(), key, info.Name, bootLSN)
		if err == nil {
			restored++
			continue
		}
		if s.opts.RestoreQuarantine && !errors.Is(err, errRestoreStrict) {
			bad := filepath.Join(dir, de.Name())
			if rerr := os.Rename(bad, bad+".corrupt"); rerr != nil {
				return restored, fmt.Errorf("server: quarantine %s: %v (original error: %w)", de.Name(), rerr, err)
			}
			quarantined++
			s.opts.Logger.Warn("restore: quarantined corrupt checkpoint", "file", de.Name(), "renamedTo", de.Name()+".corrupt", "err", err)
			continue
		}
		return restored, err
	}
	s.metrics.SetQuarantined(quarantined)
	return restored, nil
}

// errRestoreStrict marks restore failures that -restore-quarantine must
// NOT paper over: a scheme mismatch is a server misconfiguration (every
// tenant would be quarantined), and an I/O error says nothing about the
// file's content.
var errRestoreStrict = errors.New("restore: strict failure")

// restoreOne loads a single checkpoint file into the registry.
func (s *Server) restoreOne(dir, name, key, scheme string, bootLSN uint64) error {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("%w: %v", errRestoreStrict, err)
	}
	var st checkpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("server: checkpoint file %s: %w", name, err)
	}
	if st.Key != key {
		return fmt.Errorf("server: checkpoint file %s names key %q", name, st.Key)
	}
	if st.Snapshot.Scheme != scheme {
		return fmt.Errorf("%w: checkpoint file %s holds scheme %q, but the server is configured for %q",
			errRestoreStrict, name, st.Snapshot.Scheme, scheme)
	}
	if st.WalLSN > bootLSN {
		st.WalLSN = bootLSN
	}
	e, err := s.entryFromState(st)
	if err != nil {
		return fmt.Errorf("server: checkpoint file %s: %w", name, err)
	}
	if err := s.reg.insertRestored(e); err != nil {
		return fmt.Errorf("%w: %v", errRestoreStrict, err)
	}
	return nil
}

// entryFromState rebuilds a live entry from a checkpoint envelope: the
// restored sampler, open batch and counters, the managed model, and an
// in-order replay of boundaries that were closed but unapplied at
// capture. Shared by boot restore and by stream adoption. The entry's
// wal is left nil — replayed work must not be re-journaled — so the
// caller attaches the log (enableWAL at boot, explicitly on adoption)
// once replay has quiesced. The caller also validates the scheme first;
// the two paths classify a mismatch differently (strict boot failure vs
// a structured 409 to the handoff peer).
func (s *Server) entryFromState(st checkpointState) (*entry, error) {
	sampler, err := tbs.Restore[Item](st.Snapshot)
	if err != nil {
		return nil, err
	}
	cs := tbs.NewConcurrent(sampler)
	e := &entry{
		key:            st.Key,
		sampler:        cs,
		sampleMutating: tbs.SampleMutates[Item](cs),
		pending:        st.Pending,
		ingested:       st.Ingested,
		batches:        st.Batches,
		walLSN:         st.WalLSN,
		durableLSN:     st.WalLSN,
		// Boot restore and hydration read the envelope from the checkpoint
		// file; adoption persists one before the entry serves. In every
		// case a file backs the entry by the time it could hibernate.
		persisted: true,
	}
	if st.Model != nil {
		mm, err := restoreManagedModel(st.Model, s.runBackground, s.metrics)
		if err != nil {
			return nil, err
		}
		mm.onSwap = e.journalSwapRecord
		e.model.Store(mm)
	}
	// Replay boundaries that were closed but still queued when the
	// checkpoint was taken: the snapshot's RNG predates them, so
	// applying them in order reproduces the exact stochastic process
	// the pre-capture server was executing. With a model attached the
	// replay runs the full model step — that server had not scored
	// these boundaries yet, so scoring them now is exactly what it
	// would have done next.
	for _, b := range st.Queued {
		if mm := e.model.Load(); mm != nil {
			mm.onBoundary(e.sampler, b, nil)
		} else {
			e.sampler.Advance(b)
		}
		e.batches++
		e.dirty = true // memory is now ahead of the on-disk state
	}
	return e, nil
}
