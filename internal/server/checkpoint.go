package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/atomicfile"
	"repro/tbs"
)

// checkpointState is the on-disk record for one stream: the sampler's
// snapshot envelope plus the open batch and counters, so a restored stream
// resumes the exact stochastic process — items ingested but not yet
// advanced survive the restart too.
type checkpointState struct {
	Key      string       `json:"key"`
	Snapshot tbs.Snapshot `json:"snapshot"`
	Pending  []Item       `json:"pending,omitempty"`
	Queued   [][]Item     `json:"queued,omitempty"` // closed boundaries not yet applied; replayed on restore
	Ingested uint64       `json:"ingested"`
	Batches  uint64       `json:"batches"`
	// Model carries the stream's managed-model state (spec, policy state,
	// counters, gob-encoded deployed model) when one is attached, so a
	// restart serves the same predictions under the same policy clock.
	Model *modelCheckpoint `json:"model,omitempty"`
}

const checkpointSuffix = ".ckpt.json"

// checkpointFileName maps a stream key to a filesystem-safe file name.
// Base64url keeps arbitrary keys (slashes, dots, unicode) collision-free
// and reversible.
func checkpointFileName(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(key)) + checkpointSuffix
}

// keyFromFileName inverts checkpointFileName; ok is false for foreign
// files in the checkpoint directory.
func keyFromFileName(name string) (string, bool) {
	enc, found := strings.CutSuffix(name, checkpointSuffix)
	if !found {
		return "", false
	}
	raw, err := base64.RawURLEncoding.DecodeString(enc)
	if err != nil {
		return "", false
	}
	return string(raw), true
}

// writeCheckpointFile persists one stream state atomically.
func writeCheckpointFile(dir string, st checkpointState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", st.Key, err)
	}
	return atomicfile.WriteFile(filepath.Join(dir, checkpointFileName(st.Key)), data, 0o644)
}

// checkpointAll persists every stream. It is driven by the background
// checkpointer, by Stop, and is safe to call concurrently with request
// traffic: each entry is captured under its own lock at some point during
// the pass (per-stream consistency, not a global cut — the same guarantee
// the paper's per-sampler checkpointing gives). Passes themselves are
// serialized by ckptMu, so Stop's final pass cannot interleave with a
// straggling background pass and have its fresh files overwritten by
// stale ones — the final pass simply runs after the straggler finishes.
func (s *Server) checkpointAll() error {
	if s.opts.CheckpointDir == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	start := time.Now()
	entries := s.reg.all()
	var firstErr error
	written := 0
	for _, e := range entries {
		// Apply the stream's queued batches first, so the captured snapshot
		// never reflects a closed-but-unapplied boundary (the batch items
		// would be in neither the pending list nor the sampler state).
		s.flushStream(e)
		st, wasDirty, err := e.checkpoint()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !wasDirty {
			// The previous checkpoint file is still current; skip the
			// write so idle tenants cost nothing per pass.
			continue
		}
		if err := writeCheckpointFile(s.opts.CheckpointDir, st); err != nil {
			e.markDirty()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		written++
	}
	s.metrics.ObserveCheckpoint(written, time.Since(start), firstErr)
	return firstErr
}

// restoreAll loads every checkpoint file in the directory into the
// registry. Foreign files are ignored; a corrupt checkpoint is an error
// (silently dropping a tenant's stream would be worse than failing boot).
func (s *Server) restoreAll() (int, error) {
	dir := s.opts.CheckpointDir
	if dir == "" {
		return 0, nil
	}
	des, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, os.MkdirAll(dir, 0o755)
	}
	if err != nil {
		return 0, err
	}
	// Resolve the configured scheme's canonical name once: restoring a
	// stream checkpointed under a different scheme would silently mix
	// sampling semantics across tenants, so it fails boot instead.
	info, err := tbs.Lookup(s.opts.Sampler.Scheme)
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		key, ok := keyFromFileName(de.Name())
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return restored, err
		}
		var st checkpointState
		if err := json.Unmarshal(data, &st); err != nil {
			return restored, fmt.Errorf("server: checkpoint file %s: %w", de.Name(), err)
		}
		if st.Key != key {
			return restored, fmt.Errorf("server: checkpoint file %s names key %q", de.Name(), st.Key)
		}
		if st.Snapshot.Scheme != info.Name {
			return restored, fmt.Errorf("server: checkpoint file %s holds scheme %q, but the server is configured for %q",
				de.Name(), st.Snapshot.Scheme, info.Name)
		}
		sampler, err := tbs.Restore[Item](st.Snapshot)
		if err != nil {
			return restored, fmt.Errorf("server: checkpoint file %s: %w", de.Name(), err)
		}
		cs := tbs.NewConcurrent(sampler)
		e := &entry{
			key:            key,
			sampler:        cs,
			sampleMutating: tbs.SampleMutates[Item](cs),
			pending:        st.Pending,
			ingested:       st.Ingested,
			batches:        st.Batches,
		}
		if st.Model != nil {
			mm, err := restoreManagedModel(st.Model, s.runBackground, s.metrics)
			if err != nil {
				return restored, fmt.Errorf("server: checkpoint file %s: %w", de.Name(), err)
			}
			e.model.Store(mm)
		}
		// Replay boundaries that were closed but still queued when the
		// checkpoint was taken: the snapshot's RNG predates them, so
		// applying them in order reproduces the exact stochastic process
		// the pre-crash server was executing. With a model attached the
		// replay runs the full model step — the pre-crash server had not
		// scored these boundaries yet, so scoring them now is exactly what
		// it would have done next.
		for _, b := range st.Queued {
			if mm := e.model.Load(); mm != nil {
				mm.onBoundary(e.sampler, b)
			} else {
				e.sampler.Advance(b)
			}
			e.batches++
			e.dirty = true // memory is now ahead of the on-disk state
		}
		if err := s.reg.insertRestored(e); err != nil {
			return restored, err
		}
		restored++
	}
	return restored, nil
}
