package server

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// POST /v1/streams/{key}/items with Content-Type application/x-tbs-bin is
// the compact binary ingest path: CRC-framed little-endian float64 rows
// (see internal/wire/bin.go for the frame layout). Rows are NOT rendered
// to JSON here: each row stays verbatim in self-describing wire item
// form (two-byte header + float bytes) and flows through the engine,
// sampler, WAL and checkpoints as opaque bytes. Frames up to
// wire.MaxRetainedFrameBytes are zero-copy — the decoder hands the
// payload buffer itself to the server and row items alias it directly —
// while oversized frames' rows are copied into the request arena. JSON
// text — a one-float row as {"v":V}, n ≥ 2 floats as {"x":[…],"y":N} —
// is produced lazily by Item.MarshalJSON only when a consumer reads the
// item. Temporally-biased sampling discards the overwhelming majority of
// items, so the hot path's per-row cost is a bounds/finiteness check and
// one small memcpy; parsing and formatting happen only for survivors.
// The cluster router forwards these bodies verbatim, so bulk loaders and
// node-to-node forwarding skip text entirely.

// contentTypeIs reports whether the Content-Type header's media type
// (parameters and padding ignored) equals want.
func contentTypeIs(ct, want string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), want)
}

// isBin reports whether the Content-Type selects the binary path.
func isBin(ct string) bool { return contentTypeIs(ct, wire.BinContentType) }

// binScratch is the per-request recyclable state of the binary path.
type binScratch struct {
	br    *wire.BinReader
	batch []Item
}

var binPool = sync.Pool{
	New: func() any {
		return &binScratch{
			br:    wire.NewBinReader(),
			batch: make([]Item, 0, ndjsonChunkItems),
		}
	},
}

// handleItemsBin is the binary sibling of handleItemsNDJSON: same
// chunked appends, same pipelined ?batch=N boundaries, same durability
// acknowledgement. Malformed streams answer a structured 400 naming the
// 1-based frame, the frame's absolute byte offset, the 1-based row and
// the accepted count.
//
//tbs:walbeforeack
func (s *Server) handleItemsBin(w http.ResponseWriter, r *http.Request, key string) {
	q := r.URL.Query()
	boundaryEvery := 0
	if v := q.Get("batch"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest,
				errorBody("bad_request", "batch must be a positive integer", nil))
			return
		}
		boundaryEvery = n
	}
	finalAdvance := q.Get("advance") == "1" || q.Get("advance") == "true"

	tr := s.opts.Trace.StartFromRequest(r, obs.KindIngest, key)
	e, err := s.acquireStream(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		if code == "bad_request" {
			status, code = http.StatusInternalServerError, "internal"
		}
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	defer e.unpin()

	sc := binPool.Get().(*binScratch)
	defer func() {
		sc.br.Reset(nil)
		sc.batch = sc.batch[:0]
		binPool.Put(sc)
	}()
	sc.br.Reset(http.MaxBytesReader(w, r.Body, maxBodyBytes))

	var (
		arena      itemArena
		added      int
		boundaries uint64
		rowNo      int
		sinceAdv   int
		pending    int
		ingested   uint64
		maxLSN     uint64
	)
	chunkSize := ndjsonChunkItems
	if boundaryEvery > 0 && boundaryEvery <= maxAlignedChunkItems {
		chunkSize = boundaryEvery
	}
	loopStart := time.Now()
	var appendDur, enqDur time.Duration
	// appendChunk commits the first n batched items. A whole-batch flush
	// offers the array for adoption (the aligned fast path); a partial
	// flush — a frame spanning several ?batch=N boundaries — appends a
	// prefix and shifts the remainder down.
	appendChunk := func(n int) error {
		if n == 0 {
			return nil
		}
		var err error
		var lsn uint64
		var adopted bool
		t0 := time.Now()
		if n == len(sc.batch) {
			pending, ingested, lsn, adopted, err = e.appendMode(sc.batch, s.opts.MaxPendingItems, true)
		} else {
			pending, ingested, lsn, adopted, err = e.appendMode(sc.batch[:n], s.opts.MaxPendingItems, false)
		}
		appendDur += time.Since(t0)
		if err != nil {
			return err
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
		added += n
		sinceAdv += n
		switch {
		case adopted:
			if sc.batch = acquireBatchSlice(); sc.batch == nil {
				sc.batch = make([]Item, 0, chunkSize)
			}
		case n == len(sc.batch):
			sc.batch = sc.batch[:0]
		default:
			sc.batch = append(sc.batch[:0], sc.batch[n:]...)
		}
		return nil
	}
	stagesDone := false
	recordStages := func() {
		if stagesDone {
			return
		}
		stagesDone = true
		tr.StageDur(obs.StageWALAppend, loopStart, appendDur)
		if enqDur > 0 {
			tr.StageDur(obs.StageEnqueue, loopStart, enqDur)
		}
		tr.StageDur(obs.StageParse, loopStart, time.Since(loopStart)-appendDur-enqDur)
	}
	fail := func(err error) {
		s.metrics.ObserveIngest(added)
		recordStages()
		fsyncStart := time.Now()
		_ = s.syncWAL(maxLSN)
		tr.StageSince(obs.StageFsyncWait, fsyncStart)
		status, code, extra := s.ingestFailure(err)
		if extra == nil {
			extra = map[string]any{}
		}
		extra["added"] = added
		extra["row"] = rowNo
		// Frame/offset position the error inside the binary stream the
		// way line/offset do for NDJSON; decode errors carry the exact
		// frame, other failures report where decoding stood.
		var be *wire.BinError
		if errors.As(err, &be) {
			extra["frame"] = be.Frame
			extra["offset"] = be.Offset
		} else {
			extra["frame"] = sc.br.Frame()
			extra["offset"] = sc.br.FrameOffset()
		}
		respond(tr, w, status, errorBody(code, err.Error(), extra))
	}

	// The decode loop works a frame at a time: NextFrameItems validates
	// every row of the frame and appends it to the batch verbatim in
	// self-describing item form — no number parsing, no JSON rendering.
	// Small frames are retained outright (the rows keep aliasing the
	// frame's payload buffer, zero copies); oversized frames get their
	// rows interned into the arena before the buffer is reused. Rows
	// returned before a mid-frame error are good and are committed
	// before the failure is reported.
	for {
		n0 := len(sc.batch)
		retained, rerr := false, error(nil)
		sc.batch, retained, rerr = wire.NextFrameItems(sc.br, sc.batch)
		if !retained {
			for i := n0; i < len(sc.batch); i++ {
				sc.batch[i] = arena.intern(sc.batch[i])
			}
		}
		rowNo += len(sc.batch) - n0
		for len(sc.batch) >= chunkSize {
			if err := appendChunk(chunkSize); err != nil {
				fail(err)
				return
			}
			if boundaryEvery > 0 && sinceAdv >= boundaryEvery {
				t0 := time.Now()
				if lsn := s.advanceAsync(e, nil); lsn > maxLSN {
					maxLSN = lsn
				}
				enqDur += time.Since(t0)
				boundaries++
				sinceAdv = 0
				pending = 0
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			_ = appendChunk(len(sc.batch))
			fail(rerr)
			return
		}
	}
	if err := appendChunk(len(sc.batch)); err != nil {
		fail(err)
		return
	}
	// As in the NDJSON path: the final flush can complete a ?batch=N
	// boundary when N exceeds the chunk size.
	if boundaryEvery > 0 && sinceAdv >= boundaryEvery {
		if lsn := s.advanceAsync(e, nil); lsn > maxLSN {
			maxLSN = lsn
		}
		boundaries++
		sinceAdv = 0
		pending = 0
	}
	s.metrics.ObserveIngest(added)
	recordStages()
	if added == 0 {
		pending, ingested, _ = e.counters()
	}

	resp := map[string]any{
		"key":      key,
		"added":    added,
		"pending":  pending,
		"ingested": ingested,
	}
	if finalAdvance {
		_, batches, _, lsn, aerr := s.advanceWait(e, tr)
		if aerr != nil {
			fail(aerr)
			return
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
		boundaries++
		resp["pending"] = 0
		resp["advanced"] = true
		resp["batches"] = batches
	}
	if boundaries > 0 {
		resp["boundaries"] = boundaries
	}
	fsyncStart := time.Now()
	err = s.syncWAL(maxLSN)
	tr.StageSince(obs.StageFsyncWait, fsyncStart)
	if err != nil {
		respond(tr, w, http.StatusInternalServerError, errorBody("wal_unavailable", err.Error(), nil))
		return
	}
	respond(tr, w, http.StatusOK, resp)
}
