package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// This file is the wire-decode stage of the sharded ingest pipeline:
// POST /v1/streams/{key}/items with Content-Type application/x-ndjson
// streams one JSON value per line. Unlike the buffered JSON-array path it
// never materializes the whole body and never reflects through
// json.Unmarshal: the wire.LineReader scans chunked reads for newlines
// directly, wire.Validate judges each line with the hand-rolled subset
// validator (falling back to json.Valid only for escapes and deep
// nesting, so accepted inputs are byte-for-byte the same set), and the
// reader, line and batch buffers recycle across requests — per-item cost
// is a newline scan, a subset-validity scan and one arena copy, with
// zero allocations at steady state. With ?batch=N the decoder closes an
// engine batch boundary every N items, so shard workers apply earlier
// batches while later bytes are still being read off the socket.

// isNDJSON reports whether the Content-Type selects the streaming path.
func isNDJSON(ct string) bool {
	return contentTypeIs(ct, "application/x-ndjson") ||
		contentTypeIs(ct, "application/ndjson")
}

const (
	// ndjsonChunkItems bounds how many decoded items accumulate before
	// being appended to the stream's open batch, so one huge request
	// turns into a few batched critical sections rather than one giant
	// deferred append.
	ndjsonChunkItems = 4096

	// maxAlignedChunkItems caps how far the decode chunk stretches to meet
	// a ?batch=N boundary exactly. When the chunk and the boundary
	// coincide, every flush finds the stream's pending slice empty and the
	// batch array transfers to the engine by adoption (see
	// entry.appendMode) instead of an element-by-element copy.
	maxAlignedChunkItems = 4 * ndjsonChunkItems

	// maxPooledLineBuf is the retention bound for pooled line readers: a
	// reader whose buffer grew past this on an oversized line is dropped
	// rather than pinned in the pool.
	maxPooledLineBuf = 4 * wire.DefaultLineBufSize

	// arenaChunkBytes is the allocation unit for decoded item bytes: one
	// allocation per chunk of items instead of one per item. Chunks are
	// owned by the items interned into them (they flow into the open
	// batch and then the sampler), so they are NOT pooled — and because a
	// single long-lived reservoir survivor pins its whole chunk, the
	// chunk is kept small: with 4KB chunks a 1000-item R-TBS reservoir
	// pins at most ~4MB per stream in the worst case, while ingest still
	// amortizes to well under one allocation per item.
	arenaChunkBytes = 4 << 10
)

// ndjsonScratch is the per-request recyclable state.
type ndjsonScratch struct {
	lr    *wire.LineReader
	batch []Item
}

var ndjsonPool = sync.Pool{
	New: func() any {
		return &ndjsonScratch{
			lr:    wire.NewLineReader(0),
			batch: make([]Item, 0, ndjsonChunkItems),
		}
	},
}

// itemArena interns decoded lines into large shared chunks. Earlier items
// keep pointing into retired chunks (the chunks stay reachable through
// them); only the allocation granularity changes.
type itemArena struct{ cur []byte }

func (a *itemArena) intern(line []byte) Item {
	if cap(a.cur)-len(a.cur) < len(line) {
		size := arenaChunkBytes
		if len(line) > size {
			size = len(line)
		}
		a.cur = make([]byte, 0, size)
	}
	start := len(a.cur)
	a.cur = append(a.cur, line...)
	return Item(a.cur[start:len(a.cur):len(a.cur)])
}

// lineValid reports whether one trimmed line is valid JSON: the fast
// subset validator answers directly for the shapes ingest traffic uses;
// Unknown (escapes, extreme nesting) defers to the reference validator
// so the accepted language is exactly encoding/json's.
func lineValid(line []byte) bool {
	switch wire.Validate(line) {
	case wire.Valid:
		return true
	case wire.Invalid:
		return false
	}
	return json.Valid(line)
}

// handleItemsNDJSON is the streaming half of handleItems. Items are
// appended in chunks as they decode, so on a mid-stream error the earlier
// lines HAVE been ingested; the structured error reports the offending
// 1-based line, its absolute byte offset, and the accepted count.
//
//tbs:walbeforeack
func (s *Server) handleItemsNDJSON(w http.ResponseWriter, r *http.Request, key string) {
	q := r.URL.Query()
	boundaryEvery := 0
	if v := q.Get("batch"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest,
				errorBody("bad_request", "batch must be a positive integer", nil))
			return
		}
		boundaryEvery = n
	}
	finalAdvance := q.Get("advance") == "1" || q.Get("advance") == "true"

	tr := s.opts.Trace.StartFromRequest(r, obs.KindIngest, key)
	e, err := s.acquireStream(key)
	if err != nil {
		status, code, extra := s.ingestFailure(err)
		if code == "bad_request" {
			status, code = http.StatusInternalServerError, "internal"
		}
		respond(tr, w, status, errorBody(code, err.Error(), extra))
		return
	}
	defer e.unpin()

	sc := ndjsonPool.Get().(*ndjsonScratch)
	defer func() {
		sc.lr.Reset(nil)
		sc.batch = sc.batch[:0]
		if sc.lr.BufCap() <= maxPooledLineBuf {
			ndjsonPool.Put(sc)
		}
	}()
	sc.lr.Reset(http.MaxBytesReader(w, r.Body, maxBodyBytes))

	var (
		arena      itemArena
		added      int
		boundaries uint64
		lineNo     int
		lineOff    int64
		sinceAdv   int
		pending    int
		ingested   uint64
		maxLSN     uint64 // newest journal record this request must sync before acking
	)
	chunkSize := ndjsonChunkItems
	if boundaryEvery > 0 && boundaryEvery <= maxAlignedChunkItems {
		chunkSize = boundaryEvery
	}
	// Stage attribution is chunk-grained, never per-line: a time.Now()
	// pair per line would cost more than the decode itself. Parse time is
	// the decode loop's total minus what went to appends and boundaries.
	loopStart := time.Now()
	var appendDur, enqDur time.Duration
	appendChunk := func() error {
		if len(sc.batch) == 0 {
			return nil
		}
		var err error
		var lsn uint64
		var adopted bool
		t0 := time.Now()
		pending, ingested, lsn, adopted, err = e.appendMode(sc.batch, s.opts.MaxPendingItems, true)
		appendDur += time.Since(t0)
		if err != nil {
			return err
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
		added += len(sc.batch)
		sinceAdv += len(sc.batch)
		if adopted {
			// The engine took the array wholesale; draw a replacement from
			// the recycle pool (stocked by applyBatch after each apply).
			if sc.batch = acquireBatchSlice(); sc.batch == nil {
				sc.batch = make([]Item, 0, chunkSize)
			}
		} else {
			sc.batch = sc.batch[:0]
		}
		return nil
	}
	stagesDone := false
	recordStages := func() {
		if stagesDone {
			return // fail() after the loop must not double-count
		}
		stagesDone = true
		tr.StageDur(obs.StageWALAppend, loopStart, appendDur)
		if enqDur > 0 {
			tr.StageDur(obs.StageEnqueue, loopStart, enqDur)
		}
		tr.StageDur(obs.StageParse, loopStart, time.Since(loopStart)-appendDur-enqDur)
	}
	fail := func(err error, msg string) {
		s.metrics.ObserveIngest(added)
		recordStages()
		// The error body reports `added` accepted items — an
		// acknowledgement like any other, so their journal records are
		// made durable too (best-effort: the primary error wins the
		// response either way).
		fsyncStart := time.Now()
		_ = s.syncWAL(maxLSN)
		tr.StageSince(obs.StageFsyncWait, fsyncStart)
		status, code, extra := s.ingestFailure(err)
		if extra == nil {
			extra = map[string]any{}
		}
		extra["added"] = added
		extra["line"] = lineNo
		extra["offset"] = lineOff
		if msg == "" {
			msg = err.Error()
		}
		respond(tr, w, status, errorBody(code, msg, extra))
	}

	for {
		line, off, rerr := sc.lr.Next()
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			lineOff = sc.lr.Offset()
			_ = appendChunk()
			fail(rerr, "")
			return
		}
		lineNo++
		lineOff = off
		line = wire.TrimSpace(line)
		if len(line) > 0 {
			if !lineValid(line) {
				_ = appendChunk()
				fail(errors.New("line is not valid JSON"),
					"line "+strconv.Itoa(lineNo)+" (byte offset "+strconv.FormatInt(off, 10)+") is not valid JSON")
				return
			}
			sc.batch = append(sc.batch, arena.intern(line))
			if len(sc.batch) >= chunkSize {
				if err := appendChunk(); err != nil {
					fail(err, "")
					return
				}
				if boundaryEvery > 0 && sinceAdv >= boundaryEvery {
					// Pipelined batch boundary: the shard worker applies it
					// while we keep decoding the rest of the body. Its
					// journal record rides the final group-commit sync.
					// advanceAsync gets a nil trace — its boundary child
					// traces would each want tr concurrently with this
					// loop; the enqueue time is accumulated here instead.
					t0 := time.Now()
					if lsn := s.advanceAsync(e, nil); lsn > maxLSN {
						maxLSN = lsn
					}
					enqDur += time.Since(t0)
					boundaries++
					sinceAdv = 0
					pending = 0
				}
			}
		}
	}
	if err := appendChunk(); err != nil {
		fail(err, "")
		return
	}
	// The final flush can complete a ?batch=N boundary too: with N larger
	// than the chunk size the in-loop check never sees sinceAdv reach N,
	// so without this a request of exactly N items would close no
	// boundary at all and pending would grow without bound across
	// requests.
	if boundaryEvery > 0 && sinceAdv >= boundaryEvery {
		if lsn := s.advanceAsync(e, nil); lsn > maxLSN {
			maxLSN = lsn
		}
		boundaries++
		sinceAdv = 0
		pending = 0
	}
	s.metrics.ObserveIngest(added)
	recordStages()
	if added == 0 {
		// No append touched the counters; report the stream's real state.
		pending, ingested, _ = e.counters()
	}

	resp := map[string]any{
		"key":      key,
		"added":    added,
		"pending":  pending,
		"ingested": ingested,
	}
	if finalAdvance {
		_, batches, _, lsn, aerr := s.advanceWait(e, tr)
		if aerr != nil {
			fail(aerr, "")
			return
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
		boundaries++
		resp["pending"] = 0
		resp["advanced"] = true
		resp["batches"] = batches
	}
	if boundaries > 0 {
		resp["boundaries"] = boundaries
	}
	// One durability wait acknowledges the whole request: every chunk and
	// boundary journaled above is covered by a sync to the newest LSN
	// (group commit amortizes the fsyncs across concurrent requests).
	fsyncStart := time.Now()
	err = s.syncWAL(maxLSN)
	tr.StageSince(obs.StageFsyncWait, fsyncStart)
	if err != nil {
		respond(tr, w, http.StatusInternalServerError, errorBody("wal_unavailable", err.Error(), nil))
		return
	}
	respond(tr, w, http.StatusOK, resp)
}
