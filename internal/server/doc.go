// Package server implements tbsd, a multi-tenant temporally-biased
// sampling service: a long-running process that maintains many independent
// samplers — one per stream key, created lazily from one configured scheme
// — behind an HTTP/JSON API.
//
// The paper's model is batch time: batches arrive at t = 1, 2, … and every
// sampler decays item weights per batch. The server maps that model onto a
// network service in two ways. Clients may mark batch boundaries
// explicitly (POST /v1/streams/{key}/advance), or the server's wall-clock
// ticker closes every stream's open batch each -batch-interval, so one
// batch-time unit corresponds to one real-time interval and λ becomes a
// decay rate per interval.
//
// Architecture:
//
//   - registry: N lock-striped shards hash stream keys to per-key entries,
//     so unrelated streams never contend on one lock. Each entry holds a
//     tbs.Concurrent sampler (read paths share its RLock) plus the open
//     batch buffer, guarded by a per-entry mutex.
//   - handlers: POST items (single or bulk JSON per request, or streaming
//     NDJSON via Content-Type application/x-ndjson with pooled decode
//     buffers and ?batch=N pipelined boundaries), POST advance,
//     GET sample / stats, GET /v1/streams, GET /metrics, GET /healthz.
//   - engine (internal/engine): closed batches are enqueued to key-affine
//     shard workers with bounded mailboxes and applied off the request
//     path through the allocation-free Advance/AppendSample core path;
//     per-stream order is preserved, reads flush the stream's queue
//     first, and shutdown drains every mailbox before the final
//     checkpoint.
//   - ticker: advances every sampler each batch interval, including
//     streams that received nothing — an empty batch still advances the
//     decay clock, exactly as in the paper.
//   - checkpointer: periodically persists every sampler through the
//     tbs.Snapshot envelope (plus its open batch and counters) into one
//     file per key, atomically; on boot the server restores the directory
//     and every stream resumes its exact stochastic process.
//   - metrics: ingest/advance/checkpoint counters and latency
//     distributions (Welford mean + ring-buffer quantiles from
//     internal/metrics), rendered in Prometheus text format.
package server
