package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
)

// Memory tiering: streams the server has seen but nobody is touching do
// not need their sampler, open batch and model bytes in memory — PR 5's
// checkpoint+WAL-replay machinery can rebuild all of it from disk. This
// file turns that recovery path into a steady-state tier:
//
//   - a background hibernator (runHibernator) sweeps the registry and
//     evicts idle entries down to stubs: the entry object stays in the
//     registry (so 421/tombstone/cap semantics are untouched) but holds
//     only the key and its WAL positions; the full state lives in the
//     stream's checkpoint file, written at eviction if stale
//   - any request touching a cold key rehydrates it lazily
//     (ensureResident → hydrate): read the checkpoint file, rebuild
//     through the boot-restore path (entryFromState), replay the WAL
//     tail past the file's WalLSN, and install the state back into the
//     stub — exactly the crash-recovery path, so a hydrated stream
//     resumes the identical stochastic process
//
// Victim selection is LRU over a per-entry touch clock (entry.lastTouch,
// stamped by every pin) with two triggers: a resident-count bound
// (Options.MaxResident, kicked eagerly when creation/hydration crosses
// it) and an idle deadline (Options.IdleAfter). Pinned, migrating,
// deleted and queued-batch entries are never evicted; the pin/fence
// ordering in hibernateEntry makes the lock-free handler fast path safe.
//
// A hibernated stream's decay clock pauses: the wall-clock ticker skips
// stubs, so batch-time advances only while the stream is resident.
// Explicit /advance (like every other request) rehydrates first and then
// moves the clock as usual.

// errHydrateFailed marks a request rejected because the stream's
// hibernated state could not be rebuilt from disk; handlers map it
// to 500.
var errHydrateFailed = errors.New("stream hydration failed")

// hydration is one in-flight cold-miss rebuild. The request that created
// it runs hydrate; every other request touching the key waits on done
// and then shares the outcome.
type hydration struct {
	done chan struct{}
	err  error
}

// tieringEnabled reports whether the hibernator runs at all. When false,
// no entry can ever become hibernated, so ensureResident's lock-free
// fast path is the only per-request overhead.
func (s *Server) tieringEnabled() bool {
	return s.opts.MaxResident > 0 || s.opts.IdleAfter > 0
}

// acquireStream resolves (creating if needed) and pins the stream's
// entry, hydrating it first when hibernated. On success the entry is
// pinned — the caller must e.unpin() when the request is done with it.
func (s *Server) acquireStream(key string) (*entry, error) {
	e, err := s.reg.getOrCreate(key)
	if err != nil {
		return nil, err
	}
	e.pin()
	if err := s.ensureResident(e); err != nil {
		e.unpin()
		return nil, err
	}
	s.maybeKickHibernator()
	return e, nil
}

// acquireExisting is acquireStream for paths that must not create the
// stream: a nil entry with nil error means the key does not exist here.
func (s *Server) acquireExisting(key string) (*entry, error) {
	e := s.reg.lookup(key)
	if e == nil {
		return nil, nil
	}
	e.pin()
	if err := s.ensureResident(e); err != nil {
		e.unpin()
		return nil, err
	}
	return e, nil
}

// ensureResident makes a pinned entry resident, rebuilding it from its
// checkpoint (plus WAL tail) when hibernated. Exactly one cold hit runs
// the hydration; concurrent ones wait for it. The caller MUST already
// hold a pin — the pin is what guarantees the entry stays resident
// after this returns (hibernateEntry never evicts a pinned entry).
func (s *Server) ensureResident(e *entry) error {
	if !e.hibernated.Load() {
		// Lock-free warm path. The pin taken before this check fences
		// against a concurrent eviction: hibernateEntry publishes
		// hibernated=true before reading pins, so if this load saw false,
		// the evictor's read sees our pin and rolls back.
		return nil
	}
	for {
		e.mu.Lock()
		if e.deleted {
			e.mu.Unlock()
			return errStreamDeleted
		}
		if !e.hibernated.Load() {
			e.mu.Unlock()
			return nil
		}
		if e.hyd == nil {
			h := &hydration{done: make(chan struct{})}
			e.hyd = h
			e.mu.Unlock()
			h.err = s.hydrate(e)
			close(h.done)
			return h.err
		}
		h := e.hyd
		e.mu.Unlock()
		<-h.done
		if h.err != nil {
			return h.err
		}
		// Loop: re-check under the lock. The waiter holds a pin, so the
		// entry cannot have re-hibernated; the loop only defends against
		// exotic interleavings.
	}
}

// hydrate rebuilds a hibernated entry from its checkpoint file and the
// WAL records past the file's WalLSN — the boot-restore path, run for
// one stream on demand. Called by the single request that claimed the
// entry's hydration slot; it clears e.hyd in every outcome.
func (s *Server) hydrate(e *entry) (err error) {
	start := time.Now()
	tr := s.opts.Trace.Start(obs.KindHydrate, e.key)
	defer func() {
		s.metrics.ObserveHydration(time.Since(start), err)
		status := 200
		if err != nil {
			status = 500
		}
		tr.Finish(status)
	}()
	fail := func(ferr error) error {
		e.mu.Lock()
		e.hyd = nil
		e.mu.Unlock()
		return fmt.Errorf("%w: stream %q: %v", errHydrateFailed, e.key, ferr)
	}

	readStart := time.Now()
	data, rerr := os.ReadFile(filepath.Join(s.opts.CheckpointDir, checkpointFileName(e.key)))
	tr.StageSince(obs.StageReadCkpt, readStart)
	if rerr != nil {
		return fail(rerr)
	}
	var st checkpointState
	if uerr := json.Unmarshal(data, &st); uerr != nil {
		return fail(uerr)
	}
	if st.Key != e.key {
		return fail(fmt.Errorf("checkpoint file names key %q", st.Key))
	}

	// Rebuild on a scratch entry, outside e.mu: entryFromState replays
	// queued boundaries (and the tail replay below re-runs full model
	// steps), none of which may hold the stub's lock. The scratch entry's
	// wal is nil, so nothing replayed is re-journaled.
	restoreStart := time.Now()
	scratch, serr := s.entryFromState(st)
	tr.StageSince(obs.StageHydrateRestore, restoreStart)
	if serr != nil {
		return fail(serr)
	}
	replayStart := time.Now()
	if s.wal != nil {
		recs, terr := s.wal.TailForKey(e.key, st.WalLSN)
		if terr != nil {
			return fail(terr)
		}
		for i, rec := range recs {
			if aerr := s.applyReplayRecord(scratch, rec); aerr != nil {
				return fail(fmt.Errorf("tail record %d: %w", i, aerr))
			}
		}
	}
	// Quiesce any retrain the replay dispatched before the state becomes
	// reachable, mirroring restoreAll's ordering.
	if mm := scratch.model.Load(); mm != nil {
		mm.waitIdle()
	}
	tr.StageSince(obs.StageHydrateReplay, replayStart)

	installStart := time.Now()
	e.mu.Lock()
	e.hyd = nil
	if e.deleted {
		// Lost a race with DELETE: the tombstone wins, the rebuilt state
		// is discarded, and the caller observes the deletion.
		e.mu.Unlock()
		return errStreamDeleted
	}
	e.sampler = scratch.sampler
	e.sampleMutating = scratch.sampleMutating
	e.pending = scratch.pending
	e.queued = scratch.queued
	e.ingested = scratch.ingested
	e.batches = scratch.batches
	e.dirty = scratch.dirty
	e.persisted = true
	e.walLSN = scratch.walLSN
	if st.WalLSN > e.durableLSN {
		e.durableLSN = st.WalLSN
	}
	if mm := scratch.model.Load(); mm != nil {
		// Rebind the swap journal hook to the live entry (the scratch
		// entry it was built against is discarded here).
		mm.onSwap = e.journalSwapRecord
		e.model.Store(mm)
	} else {
		e.model.Store(nil)
	}
	e.hibernated.Store(false)
	e.mu.Unlock()
	s.reg.resident.Add(1)
	tr.StageSince(obs.StageInstall, installStart)
	s.maybeKickHibernator()
	return nil
}

// hibernateEntry evicts one entry down to a stub, persisting its state
// first if the checkpoint file is stale (or missing). Returns false with
// no error when the entry is not evictable right now (pinned, frozen,
// deleted, batches still queued). The whole eviction holds e.mu, so no
// capture-then-evict gap exists for a mutation to slip into; the victim
// is idle by selection, so the hold is uncontended.
func (s *Server) hibernateEntry(e *entry) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hibernated.Load() || e.deleted || e.migrating || len(e.queued) > 0 {
		return false, nil
	}
	// Fence against the lock-free handler fast path: publish
	// hibernated=true BEFORE reading pins. A handler pins and then checks
	// hibernated; in the seq-cst interleaving where it read false, its
	// pin is visible to the read below and the eviction rolls back — so
	// no handler ever uses a sampler this eviction is about to drop.
	e.hibernated.Store(true)
	if e.pins.Load() != 0 {
		e.hibernated.Store(false)
		return false, nil
	}
	if e.dirty || !e.persisted {
		st, err := e.stateLocked()
		if err != nil {
			e.hibernated.Store(false)
			return false, err
		}
		if err := writeCheckpointFile(s.opts.CheckpointDir, st); err != nil {
			e.hibernated.Store(false)
			return false, err
		}
		e.dirty = false
		e.persisted = true
		if st.WalLSN > e.durableLSN {
			e.durableLSN = st.WalLSN
		}
	}
	e.sampler = nil
	e.pending = nil
	e.queued = nil
	e.model.Store(nil)
	s.reg.resident.Add(-1)
	s.metrics.ObserveHibernation()
	return true, nil
}

// hibernatePass runs one sweep: collect resident entries with their
// touch clocks (lock-free except the shard read locks), then evict from
// least-recently-used upward until the resident count fits MaxResident
// and no entry has been idle past IdleAfter. Passes are serialized by
// hibMu (see the field comment).
func (s *Server) hibernatePass(now time.Time) (evicted int, firstErr error) {
	s.hibMu.Lock()
	defer s.hibMu.Unlock()
	type cand struct {
		e     *entry
		touch int64
	}
	var cands []cand
	for _, sh := range s.reg.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			if e.hibernated.Load() {
				continue
			}
			cands = append(cands, cand{e, e.lastTouch.Load()})
		}
		sh.mu.RUnlock()
	}
	over := 0
	if s.opts.MaxResident > 0 {
		over = len(cands) - s.opts.MaxResident
	}
	var idleCut int64
	if s.opts.IdleAfter > 0 {
		idleCut = now.Add(-s.opts.IdleAfter).UnixNano()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].touch < cands[j].touch })
	for _, c := range cands {
		// A zero touch clock (restored at boot, never pinned since) sorts
		// oldest and counts as idle — the boot spike of restored-but-idle
		// tenants drains on the first sweeps.
		idle := idleCut != 0 && c.touch < idleCut
		if over <= 0 && !idle {
			break // ascending order: every later candidate is fresher
		}
		ok, err := s.hibernateEntry(c.e)
		if err != nil {
			s.metrics.ObserveHibernationError()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			evicted++
			over--
		}
	}
	return evicted, firstErr
}

// maybeKickHibernator nudges the hibernator when the resident count has
// crossed the bound, so a creation burst is trimmed promptly instead of
// waiting out the sweep interval. Non-blocking; coalesces into the
// buffered kick slot.
func (s *Server) maybeKickHibernator() {
	if s.opts.MaxResident <= 0 || s.hibKick == nil {
		return
	}
	if int(s.reg.resident.Load()) > s.opts.MaxResident {
		select {
		case s.hibKick <- struct{}{}:
		default:
		}
	}
}

// runHibernator is the background sweep loop, started by Start when
// memory tiering is configured.
func (s *Server) runHibernator() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.HibernateInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.hibKick:
		case <-t.C:
		}
		n, err := s.hibernatePass(time.Now())
		if err != nil {
			s.opts.Logger.Error("hibernate: pass failed", "err", err)
		}
		if n > 0 {
			s.opts.Logger.Debug("hibernate: evicted idle streams",
				"evicted", n, "resident", s.reg.resident.Load())
		}
	}
}

// HibernatePass runs one hibernation sweep immediately under the
// configured MaxResident/IdleAfter policy and reports how many streams
// were evicted. Deterministic hook for tests, tooling and benchmarks;
// the background hibernator calls the same sweep.
func (s *Server) HibernatePass() (int, error) { return s.hibernatePass(time.Now()) }

// ResidentStreams reports how many streams currently hold their state in
// memory (total streams minus hibernated stubs).
func (s *Server) ResidentStreams() int { return int(s.reg.resident.Load()) }
