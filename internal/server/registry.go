package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
	"repro/tbs"
)

// batchPool recycles the []Item header arrays that carry items from a
// stream's open batch through the engine into the sampler. A batch array
// is garbage the moment applyBatch folds it in — every sampler copies
// the item references it keeps and never aliases the array, and
// checkpoints deep-copy under the entry lock — yet at fast-path ingest
// rates freshly allocating it dominated the profile: a 5000-item request
// retires a ~120KB pointer array per boundary, and the allocation,
// zeroing and GC marking of those arrays cost about a third of hot-path
// CPU. Released arrays are cleared before pooling so a pooled array
// never pins retired item bytes.
var batchPool sync.Pool // holds *[]Item

// maxPooledBatchCap bounds the retained capacity: arrays grown by a
// one-off giant batch go back to the GC instead of pinning the pool.
const maxPooledBatchCap = 1 << 17

func acquireBatchSlice() []Item {
	if p, _ := batchPool.Get().(*[]Item); p != nil {
		return (*p)[:0]
	}
	return nil
}

func releaseBatchSlice(b []Item) {
	if cap(b) == 0 || cap(b) > maxPooledBatchCap {
		return
	}
	b = b[:cap(b)]
	clear(b)
	batchPool.Put(&b)
}

// entry is the per-stream state: the sampler plus the open (not yet
// advanced) batch and ingest counters. The mutex guards pending and the
// counters, and is held across the sampler update in applyBatch so a
// checkpoint can never observe an advanced sampler paired with stale
// counters. advMu serializes close-batch→enqueue pairs so two concurrent
// batch boundaries (ticker vs explicit /advance) cannot interleave their
// engine submissions out of close order; it is never held while applying,
// so it cannot deadlock against the engine worker.
type entry struct {
	key     string
	sampler *tbs.Concurrent[Item]
	// sampleMutating records whether Sample consumes RNG draws (R-TBS),
	// in which case a read dirties the checkpoint state.
	sampleMutating bool

	// wal is the server's write-ahead log, nil when journaling is off or
	// during boot replay (records being replayed must not be re-journaled).
	// It is written before the entry becomes reachable by concurrent
	// requests — at construction for entries created while serving, and by
	// enableWAL (after replay has quiesced, before the server accepts
	// traffic) for entries restored at boot — so reads need no lock.
	wal *wal.Log

	// model is the stream's managed model, nil until a PUT …/model
	// attaches one. It is an atomic pointer so the predict path reads it
	// without the entry lock; attach/detach store it under mu so the
	// swap is atomic with respect to checkpoint capture.
	model atomic.Pointer[managedModel]

	advMu sync.Mutex

	mu       sync.Mutex
	pending  []Item
	queued   [][]Item // closed but not yet applied (FIFO mirror of the engine mailbox)
	ingested uint64   // items ever accepted
	batches  uint64   // batch boundaries ever applied to the sampler
	dirty    bool     // state changed since the last persisted checkpoint
	deleted  bool     // stream removed; rejects journaling and checkpointing
	// migrating freezes the stream for a handoff: every mutation (ingest,
	// boundary, model attach/detach, RNG-consuming sample read) is
	// rejected with errStreamMigrating between the capture of the
	// migration envelope and the handoff's outcome, so the shipped state
	// can never miss an acknowledged operation.
	migrating bool

	// walLSN is the LSN of the last record journaled for this stream;
	// durableLSN the LSN its newest on-disk checkpoint covers. The gap
	// between them is exactly the replay this stream needs after a crash,
	// and min(durableLSN) across streams is the WAL compaction point.
	walLSN     uint64
	durableLSN uint64

	// persisted records that a checkpoint file currently exists on disk
	// for this stream (set by every successful checkpoint write, and at
	// restore/hydrate, which read one). Guarded by mu. Hibernation of a
	// clean-but-never-persisted entry must write the file first — the
	// file is a hibernated stream's entire state.
	persisted bool

	// pins counts in-flight requests using the entry. A handler pins
	// before ensureResident and unpins when done; the hibernator never
	// evicts a pinned entry (see hibernateEntry for the fence that makes
	// the lock-free pin/check ordering safe), so post-ensureResident code
	// reads sampler/sampleMutating/model exactly as it always has.
	pins atomic.Int32

	// lastTouch is the LRU clock: unix nanos of the last client-driven
	// pin. Atomic so the hibernator's scan never takes entry locks.
	lastTouch atomic.Int64

	// hibernated marks the entry as a cold stub: sampler, open batch and
	// model evicted, the state durable in the checkpoint file, only key +
	// WAL positions retained. Transitions happen under mu; the atomic
	// lets the hot paths and the hibernator's scan read it lock-free.
	hibernated atomic.Bool

	// hyd is the in-flight hydration, non-nil while one request rebuilds
	// the entry from disk; concurrent cold hits on the same key wait on
	// its done channel instead of hydrating again. Guarded by mu.
	hyd *hydration
}

// pin marks the entry in use by a request and stamps the LRU clock. Must
// precede ensureResident: the pin is what keeps the entry resident for
// the duration of the request.
func (e *entry) pin() {
	e.pins.Add(1)
	e.lastTouch.Store(time.Now().UnixNano())
}

// unpin releases a pin taken by pin.
func (e *entry) unpin() { e.pins.Add(-1) }

// errRequestTooLarge marks an ingest request that can never fit the
// open-batch limit no matter how often the stream advances; handlers map
// it to 413 (the client must split the request). errBatchFull marks a
// transiently full open batch; handlers map it to 429 (retry after a
// batch boundary).
var (
	errRequestTooLarge = errors.New("request exceeds the per-stream open-batch limit")
	errBatchFull       = errors.New("open batch full")
	// errStreamDeleted marks an operation against an entry that lost a
	// race with DELETE /v1/streams/{key}; handlers map it to 404 so the
	// client observes the deletion (a retry recreates the stream fresh).
	errStreamDeleted = errors.New("stream deleted")
	// errJournalFailed marks a request rejected because its WAL record
	// could not be written — the server never acknowledges what it could
	// not log; handlers map it to 500.
	errJournalFailed = errors.New("write-ahead log append failed")
	// errStreamMigrating marks an operation rejected because the stream is
	// frozen for a handoff; handlers map it to 503 (retry — the stream
	// either unfreezes here or starts answering 421 with its new home).
	errStreamMigrating = errors.New("stream is migrating to another node")
)

// beginMigration freezes the entry for a handoff; endMigration lifts the
// freeze after a failed handoff (a successful one deletes the entry).
func (e *entry) beginMigration() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return errStreamDeleted
	}
	if e.migrating {
		return errStreamMigrating
	}
	e.migrating = true
	return nil
}

func (e *entry) endMigration() {
	e.mu.Lock()
	e.migrating = false
	e.mu.Unlock()
}

// append adds items to the open batch and returns the new pending and
// total counts plus, when journaling is on, the LSN of the item-append
// record (the caller must wal-sync it before acknowledging). A positive
// maxPending bounds the open batch: one tenant that ingests forever
// without a batch boundary must not grow server memory (and checkpoint
// size) without limit.
//
// The journal write happens under e.mu, after validation and before the
// mutation: WAL order therefore equals the stream's apply order, a
// rejected request journals nothing, and a journaling failure rejects the
// request — the server never acknowledges what it could not log.
func (e *entry) append(items []Item, maxPending int) (pending int, ingested uint64, lsn uint64, err error) {
	pending, ingested, lsn, _, err = e.appendMode(items, maxPending, false)
	return pending, ingested, lsn, err
}

// appendMode is append with an ownership option: with adopt=true and no
// open batch, the caller DONATES its items array — the slice becomes
// e.pending wholesale (adopted=true) and the caller must stop using it,
// drawing a replacement from the batch pool. The streaming decoders size
// their chunks to the ?batch=N boundary exactly so every boundary's
// items transfer by adoption: zero header copies, and the array cycles
// decoder → pending → engine → sampler → pool → decoder.
func (e *entry) appendMode(items []Item, maxPending int, adopt bool) (pending int, ingested uint64, lsn uint64, adopted bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return 0, 0, 0, false, errStreamDeleted
	}
	if e.migrating {
		return len(e.pending), e.ingested, 0, false, errStreamMigrating
	}
	if maxPending > 0 && len(e.pending)+len(items) > maxPending {
		if len(items) > maxPending {
			// No amount of advancing makes one oversized request fit.
			return len(e.pending), e.ingested, 0, false,
				fmt.Errorf("%w: %d items, limit %d; split the request", errRequestTooLarge, len(items), maxPending)
		}
		return len(e.pending), e.ingested, 0, false,
			fmt.Errorf("%w: holds %d items (limit %d); advance the stream or enable -batch-interval", errBatchFull, len(e.pending), maxPending)
	}
	if e.wal != nil {
		lsn, err = wal.AppendItems(e.wal, e.key, items)
		if err != nil {
			return len(e.pending), e.ingested, 0, false, fmt.Errorf("%w: %v", errJournalFailed, err)
		}
		e.walLSN = lsn
	}
	if adopt && e.pending == nil && cap(items) > 0 {
		e.pending = items
		adopted = true
	} else {
		if e.pending == nil {
			e.pending = acquireBatchSlice()
		}
		e.pending = append(e.pending, items...)
	}
	e.ingested += uint64(len(items))
	e.dirty = true
	return len(e.pending), e.ingested, lsn, adopted, nil
}

// replayAppend is append for WAL recovery: no limit (the original request
// was accepted under whatever limit then applied) and no re-journaling.
func (e *entry) replayAppend(items [][]byte, lsn uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, it := range items {
		e.pending = append(e.pending, Item(it))
	}
	e.ingested += uint64(len(items))
	e.walLSN = lsn
	e.dirty = true
}

// setWalLSN records the LSN of a replayed record that was applied through
// a path that does not thread LSNs (batch boundaries, sample reads).
func (e *entry) setWalLSN(lsn uint64) {
	e.mu.Lock()
	e.walLSN = lsn
	e.mu.Unlock()
}

// setDurableLSN records that the stream's newest on-disk checkpoint
// covers every record up to lsn. Called only after a successful
// checkpoint write, so it doubles as the persisted marker.
func (e *entry) setDurableLSN(lsn uint64) {
	e.mu.Lock()
	if lsn > e.durableLSN {
		e.durableLSN = lsn
	}
	e.persisted = true
	e.mu.Unlock()
}

// closeBatch detaches the open batch — possibly empty, which still counts
// as a boundary and will move the decay clock when applied — journaling
// the boundary record under the same lock hold, so the WAL sees items and
// boundaries in exactly the order the sampler will. The caller must hand
// the returned batch to applyBatch (directly or through the engine)
// exactly once. Until then the batch stays on the queued ledger, so a
// concurrent checkpoint can never observe a boundary that is in neither
// the pending buffer nor the sampler — the invariant the old
// single-critical-section advance gave for free.
//
// jerr reports a journaling failure: the boundary still happens in memory
// (refusing to advance would wedge the ticker), but the WAL has poisoned
// itself, so replay converges to the state just before this boundary and
// the checkpointer remains the durability backstop.
//
// ok is false when the stream is frozen for a handoff: the boundary does
// NOT happen (jerr is errStreamMigrating, batch nil) — a boundary after
// the migration capture would advance a sampler whose state has already
// been shipped.
func (e *entry) closeBatch() (batch []Item, ok bool, lsn uint64, jerr error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.migrating {
		return nil, false, 0, errStreamMigrating
	}
	if e.hibernated.Load() {
		// A hibernated stream's decay clock pauses: the ticker skips it
		// (nothing to journal, nothing to advance) and an explicit
		// /advance rehydrates through ensureResident before reaching here.
		return nil, false, 0, nil
	}
	if e.wal != nil && !e.deleted {
		if lsn, jerr = e.wal.AppendRecord(wal.TypeBatchBoundary, e.key, nil); jerr == nil {
			e.walLSN = lsn
		}
	}
	batch = e.pending
	e.pending = nil
	e.queued = append(e.queued, batch)
	return batch, true, lsn, jerr
}

// advance closes the open batch and applies it inline — the synchronous
// boundary used by direct registry consumers (tests, tooling) and by WAL
// replay; the server itself routes batches through the engine via
// closeBatch/applyBatch.
func (e *entry) advance() (batchLen int, batches uint64, elapsed time.Duration) {
	e.advMu.Lock()
	batch, ok, _, _ := e.closeBatch()
	e.advMu.Unlock()
	if !ok {
		return 0, 0, 0
	}
	return e.applyBatch(batch, nil)
}

// applyBatch folds a closed batch into the sampler, advancing the decay
// clock by one unit, and returns its size, the total boundary count, and
// how long the sampler update took. It runs on an engine shard worker (or
// inline when the engine is disabled); per-stream ordering is guaranteed
// by the engine's key-affine FIFO mailboxes.
//
// applyBatch owns btr, the boundary trace opened at closeBatch (nil when
// tracing is off): model-less streams finish it here, model-managed
// streams hand it to onBoundary, which finishes it — possibly on the
// background retrain lane.
func (e *entry) applyBatch(batch []Item, btr *obs.Trace) (batchLen int, batches uint64, elapsed time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	start := time.Now()
	if mm := e.model.Load(); mm != nil {
		// The model-management step wraps the sampler advance: score the
		// deployed model on the batch first (the paper predicts each
		// incoming batch with the model trained on data up to t−1), then
		// fold the batch in and let the policy decide about retraining.
		mm.onBoundary(e.sampler, batch, btr)
	} else {
		e.sampler.Advance(batch)
		btr.Finish(0)
	}
	elapsed = time.Since(start)
	// Retire the boundary from the in-flight ledger. Batches apply in
	// close order (key-affine FIFO mailboxes), so it is always the head.
	if len(e.queued) > 0 {
		e.queued[0] = nil
		e.queued = e.queued[1:]
	}
	e.batches++
	e.dirty = true
	batchLen = len(batch)
	// applyBatch is the batch's terminal consumer: the sampler above
	// copied whatever item references it kept, so the array itself can
	// recycle into the next open batch.
	releaseBatchSlice(batch)
	return batchLen, e.batches, elapsed
}

// counters returns the ingest bookkeeping without touching the sampler.
func (e *entry) counters() (pending int, ingested, batches uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending), e.ingested, e.batches
}

// markDirty flags the entry for the next checkpoint pass. Read endpoints
// call it after Sample, because R-TBS's realization draws from the RNG —
// state that must be persisted for a restart to resume the identical
// stochastic process.
func (e *entry) markDirty() {
	e.mu.Lock()
	e.dirty = true
	e.mu.Unlock()
}

// checkpoint captures a consistent (snapshot, open batch, counters) triple
// and clears the dirty flag; wasDirty false means the previous checkpoint
// is still current and the caller can skip the write. If the write fails,
// the caller must markDirty again.
func (e *entry) checkpoint() (st checkpointState, wasDirty bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.dirty || e.deleted || e.hibernated.Load() {
		// A hibernated stub has no sampler to capture; its state is the
		// checkpoint file itself, written at eviction.
		return checkpointState{}, false, nil
	}
	if st, err = e.stateLocked(); err != nil {
		return checkpointState{}, true, err
	}
	e.dirty = false
	return st, true, nil
}

// captureState is the forced capture used by stream handoff: it ignores
// the dirty flag (the migration envelope must reflect the state whether
// or not a checkpoint pass just ran) and leaves it set, so a failed
// handoff changes nothing about the next checkpoint pass.
func (e *entry) captureState() (checkpointState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return checkpointState{}, errStreamDeleted
	}
	if e.hibernated.Load() {
		// Callers (handoff) hydrate before capturing; reaching a stub here
		// is a protocol bug, not a capturable state.
		return checkpointState{}, errors.New("server: cannot capture a hibernated stream")
	}
	return e.stateLocked()
}

// stateLocked captures a consistent (snapshot, open batch, counters)
// triple. Caller holds e.mu.
func (e *entry) stateLocked() (checkpointState, error) {
	// Model first: capture waits out any retrain still on the background
	// lane, and holding e.mu here means no new boundary can fire one — so
	// the sampler snapshot below and the model state are a consistent
	// pair, both quiesced at the same batch boundary.
	var mst *modelCheckpoint
	if mm := e.model.Load(); mm != nil {
		var err error
		if mst, err = mm.capture(); err != nil {
			return checkpointState{}, err
		}
	}
	snap, err := e.sampler.Snapshot()
	if err != nil {
		return checkpointState{}, err
	}
	var queued [][]Item
	if len(e.queued) > 0 {
		// Closed-but-unapplied boundaries (the checkpoint raced a batch
		// sitting in an engine mailbox): persist them so a crash between
		// close and apply loses nothing — restore replays them in order.
		queued = make([][]Item, len(e.queued))
		for i, b := range e.queued {
			queued[i] = append([]Item(nil), b...)
		}
	}
	return checkpointState{
		Key:      e.key,
		Snapshot: snap,
		Pending:  append([]Item(nil), e.pending...),
		Queued:   queued,
		Ingested: e.ingested,
		Batches:  e.batches,
		Model:    mst,
		WalLSN:   e.walLSN,
	}, nil
}

// attachModel installs (or replaces) the stream's managed model,
// journaling the normalized spec so a crash between the acknowledgement
// and the next checkpoint replays the attach. The entry lock makes the
// swap atomic with respect to batch application and checkpoint capture; a
// replaced model's in-flight retrain finishes against the old state and
// is discarded with it.
func (e *entry) attachModel(mm *managedModel) (lsn uint64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return 0, errStreamDeleted
	}
	if e.migrating {
		return 0, errStreamMigrating
	}
	if e.wal != nil {
		spec, err := json.Marshal(mm.spec)
		if err != nil {
			return 0, err
		}
		if lsn, err = e.wal.AppendRecord(wal.TypeModelAttach, e.key, spec); err != nil {
			return 0, fmt.Errorf("%w: model attach: %v", errJournalFailed, err)
		}
		e.walLSN = lsn
	}
	e.model.Store(mm)
	e.dirty = true
	return lsn, nil
}

// detachModel removes the stream's managed model; reports whether one was
// attached, journaling the detach when one was.
func (e *entry) detachModel() (had bool, lsn uint64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return false, 0, errStreamDeleted
	}
	if e.migrating {
		return false, 0, errStreamMigrating
	}
	had = e.model.Load() != nil
	if had && e.wal != nil {
		if lsn, err = e.wal.AppendRecord(wal.TypeModelDetach, e.key, nil); err != nil {
			return had, 0, fmt.Errorf("%w: model detach: %v", errJournalFailed, err)
		}
		e.walLSN = lsn
	}
	e.model.Store(nil)
	if had {
		e.dirty = true
	}
	return had, lsn, nil
}

// journalSwapRecord logs a completed retrain deployment. Replay never
// applies these (retrains are recomputed deterministically from the
// boundary sequence); they exist so operators and the recovery metrics
// can account for every model swap the pre-crash server acknowledged
// through its stats. Called from the background training lane, so it must
// not take e.mu (a checkpoint holding e.mu waits for that lane to idle).
func (e *entry) journalSwapRecord(retrains uint64) {
	if e.wal == nil {
		return
	}
	var ord [8]byte
	binary.BigEndian.PutUint64(ord[:], retrains)
	// An error here has already poisoned the log; nothing to do inline.
	_, _ = e.wal.AppendRecord(wal.TypeRetrainSwap, e.key, ord[:])
}

// journalSampleRead journals one RNG-consuming sample realization and
// realizes it under the same lock hold, so the WAL sees the draw exactly
// where the sampler's stochastic process consumed it. Only called for
// schemes whose Sample mutates (R-TBS) with journaling on.
func (e *entry) journalSampleRead(buf []Item) (items []Item, lsn uint64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return nil, 0, errStreamDeleted
	}
	if e.migrating {
		return nil, 0, errStreamMigrating
	}
	if lsn, err = e.wal.AppendRecord(wal.TypeSampleRead, e.key, nil); err != nil {
		return nil, 0, fmt.Errorf("%w: sample read: %v", errJournalFailed, err)
	}
	e.walLSN = lsn
	items = e.sampler.AppendSample(buf)
	e.dirty = true
	return items, lsn, nil
}

// errTooManyStreams is returned by getOrCreate when the stream cap is
// reached; handlers map it to 429 rather than 500.
var errTooManyStreams = errors.New("server: stream limit reached")

// registry maps stream keys to entries across lock-striped shards, so
// concurrent requests for unrelated keys never contend on one lock.
// Samplers are created lazily from the base config with a per-key seed
// derived from the base seed, making the whole registry deterministic
// while keeping every key on its own RNG trajectory. A positive
// maxStreams bounds the number of live streams: every key costs memory, a
// checkpoint file, and a slice of every checkpoint pass until it is
// DELETEd, so hostile or typo'd keys must not grow the server without
// limit.
type registry struct {
	cfg        tbs.Config
	baseSeed   uint64
	maxStreams int
	total      atomic.Int64
	// resident counts entries whose state is in memory (total minus
	// hibernated stubs) — the number memory tiering bounds. Incremented
	// on create/restore/hydrate, decremented on eviction and on removal
	// of a resident entry.
	resident atomic.Int64
	shards   []*shard

	// wal, once set by enableWAL, is handed to every entry created from
	// then on. It is written exactly once, after boot replay and before
	// the server serves traffic.
	wal *wal.Log
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

func newRegistry(cfg tbs.Config, nShards, maxStreams int) (*registry, error) {
	if nShards < 1 {
		return nil, fmt.Errorf("server: shard count must be positive, got %d", nShards)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	baseSeed := uint64(1)
	if cfg.Seed != nil {
		baseSeed = *cfg.Seed
	}
	r := &registry{
		cfg:        cfg,
		baseSeed:   baseSeed,
		maxStreams: maxStreams,
		shards:     make([]*shard, nShards),
	}
	for i := range r.shards {
		r.shards[i] = &shard{entries: make(map[string]*entry)}
	}
	return r, nil
}

func (r *registry) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

// lookup returns the entry for key, or nil when the stream does not exist.
func (r *registry) lookup(key string) *entry {
	sh := r.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.entries[key]
}

// getOrCreate returns the entry for key, building the sampler on first
// touch. The construction runs under the shard's write lock; it is cheap
// (no allocation proportional to stream volume) and keeps double-creation
// races impossible.
func (r *registry) getOrCreate(key string) (*entry, error) {
	return r.getOrCreateAt(key, false)
}

// createForReplay is getOrCreate exempt from the stream cap — WAL
// recovery must never strand acknowledged records behind a lowered
// -max-streams, mirroring the boot-restore exemption.
func (r *registry) createForReplay(key string) (*entry, error) {
	return r.getOrCreateAt(key, true)
}

func (r *registry) getOrCreateAt(key string, capExempt bool) (*entry, error) {
	sh := r.shardFor(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	if e != nil {
		return e, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[key]; e != nil {
		return e, nil
	}
	// Reserve the slot atomically before building: concurrent first-touch
	// creations on different shards would otherwise all pass a plain
	// load-then-check and overshoot the cap by up to nShards-1.
	if n := r.total.Add(1); !capExempt && r.maxStreams > 0 && n > int64(r.maxStreams) {
		r.total.Add(-1)
		return nil, fmt.Errorf("%w (%d)", errTooManyStreams, r.maxStreams)
	}
	s, err := tbs.NewFromConfig[Item](r.cfg.WithSeed(tbs.DeriveSeed(r.baseSeed, key)))
	if err != nil {
		r.total.Add(-1)
		return nil, err
	}
	cs := tbs.NewConcurrent(s)
	e = &entry{key: key, sampler: cs, sampleMutating: tbs.SampleMutates[Item](cs), wal: r.wal}
	sh.entries[key] = e
	r.resident.Add(1)
	return e, nil
}

// remove deletes the stream's entry and returns it (nil when absent). The
// caller owns the follow-up: marking the entry deleted, journaling, and
// removing the checkpoint file.
func (r *registry) remove(key string) *entry {
	sh := r.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[key]
	if e != nil {
		delete(sh.entries, key)
		r.total.Add(-1)
		// A hibernated stub was already subtracted from the resident count
		// at eviction. The read is safe against a racing eviction: every
		// remove caller either marks the entry deleted under e.mu first
		// (eviction then skips it) or runs before the hibernator exists.
		if !e.hibernated.Load() {
			r.resident.Add(-1)
		}
	}
	return e
}

// enableWAL hands the log to the registry (for future entries) and to
// every entry already restored. Must run before the server accepts
// traffic — entry.wal is read without a lock on the strength of that.
func (r *registry) enableWAL(l *wal.Log) {
	if l == nil {
		return
	}
	r.wal = l
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			e.wal = l
		}
		sh.mu.Unlock()
	}
}

// insertRestored installs a checkpointed entry at boot. It refuses to
// clobber an existing stream.
func (r *registry) insertRestored(e *entry) error {
	sh := r.shardFor(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[e.key]; dup {
		return fmt.Errorf("server: duplicate checkpoint for stream %q", e.key)
	}
	sh.entries[e.key] = e
	r.total.Add(1)
	r.resident.Add(1)
	return nil
}

// keys returns every stream key, sorted.
func (r *registry) keys() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for k := range sh.entries {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// all returns every entry in an unspecified order.
func (r *registry) all() []*entry {
	var out []*entry
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	return out
}

// count returns the number of live streams.
func (r *registry) count() int {
	return int(r.total.Load())
}

// perShardCounts returns the number of streams on each shard.
func (r *registry) perShardCounts() []int {
	out := make([]int, len(r.shards))
	for i, sh := range r.shards {
		sh.mu.RLock()
		out[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return out
}
