package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/manage"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/wire"
	"repro/tbs"
)

// This file is the online model-management loop of the paper (Section 6)
// wired into the multi-tenant server: a stream can carry a managed model
// that is scored on every closed batch at the engine's batch boundary,
// and retrained from the current temporally-biased sample when the
// retraining policy fires. The split of work is what keeps ingest
// throughput unaffected:
//
//	ingest request  → append to the open batch (no model work at all)
//	batch boundary  → score + policy decision + sample snapshot, on the
//	                  engine shard worker (the apply path, already
//	                  asynchronous to ingest)
//	retrain         → parse + fit on the engine's background lane, then
//	                  an atomic swap of the deployed model
//
// Determinism: the boundary waits for the previous retrain to have
// swapped before scoring (waitIdle), so the model scoring batch t is
// always the outcome of every retrain decision ≤ t−1 — the error series,
// the policy decisions, and the retrain count are pure functions of the
// batch sequence, never of scheduler timing. That is what lets model
// state ride the checkpoint envelope and survive kill+restart with
// byte-identical predictions.

// labeledRow is the wire form of a labeled item inside the ordinary item
// stream: {"x":[...],"y":<number>}. For knn and nb the label is an integer
// class (nb additionally reads x as integer word ids); for linreg it is
// the regression target. Items missing x or y are sampled as usual but
// ignored by scoring and training, so labeled and unlabeled traffic share
// a stream.
type labeledRow struct {
	X []float64 `json:"x"`
	Y *float64  `json:"y"`
}

// parseRow extracts a labeled row from an opaque item; ok is false for
// unlabeled or malformed items. Canonical rows decode on the byte-level
// fast path; anything else (non-canonical key order, extra members,
// out-of-range numbers) takes the reflective reference path, so the
// accepted language and decoded values are unchanged.
func parseRow(it Item) (x []float64, y float64, ok bool) {
	if wire.IsBinItem(it) {
		// Binary rows skip text entirely: the floats are right there. A
		// one-float row is an unlabeled value, like {"v":N}.
		vals, err := wire.BinItemFloats(it, nil)
		if err != nil || len(vals) < 2 {
			return nil, 0, false
		}
		return vals[:len(vals)-1], vals[len(vals)-1], true
	}
	if fx, fy, fok := wire.ParseLabeledRow(it, nil); fok {
		return fx, fy, len(fx) > 0
	}
	var row labeledRow
	if err := json.Unmarshal(it, &row); err != nil || len(row.X) == 0 || row.Y == nil {
		return nil, 0, false
	}
	return row.X, *row.Y, true
}

// DriftParams are the OnDrift detector knobs exposed through the API;
// zero values select the manage package defaults.
type DriftParams struct {
	Window   int     `json:"window,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	MinObs   int     `json:"minObs,omitempty"`
	MaxStale int     `json:"maxStale,omitempty"`
}

// ModelSpec is the body of PUT /v1/streams/{key}/model: which learner to
// manage and under which retraining policy.
type ModelSpec struct {
	// Learner selects the model family: "knn", "linreg" or "nb".
	Learner string `json:"learner"`

	// K is the kNN neighbour count (default 7, the paper's Section 6.2
	// setting).
	K int `json:"k,omitempty"`

	// Intercept selects whether linreg fits a constant term (default
	// true).
	Intercept *bool `json:"intercept,omitempty"`

	// Classes and Vocab are lower bounds on the Naive Bayes label and
	// word-id spaces; the trainer widens both to cover the sample, so zero
	// means "infer from data".
	Classes int `json:"classes,omitempty"`
	Vocab   int `json:"vocab,omitempty"`

	// Alpha is the Naive Bayes Laplace smoothing constant (default 1).
	Alpha float64 `json:"alpha,omitempty"`

	// Policy selects the retraining policy: "always", "every:K", or
	// "drift" (tuned via Drift).
	Policy string `json:"policy"`

	// Drift carries the OnDrift parameters when Policy is "drift".
	Drift *DriftParams `json:"drift,omitempty"`
}

// normalize validates the spec and fills defaults in place.
func (sp *ModelSpec) normalize() error {
	switch sp.Learner {
	case "knn":
		if sp.K == 0 {
			sp.K = 7
		}
		if sp.K < 1 {
			return fmt.Errorf("model: k must be positive, got %d", sp.K)
		}
	case "linreg":
		if sp.Intercept == nil {
			t := true
			sp.Intercept = &t
		}
	case "nb":
		if sp.Alpha == 0 {
			sp.Alpha = 1
		}
		if sp.Alpha < 0 {
			return fmt.Errorf("model: alpha must be positive, got %v", sp.Alpha)
		}
		if sp.Classes < 0 || sp.Classes > maxModelClasses {
			return fmt.Errorf("model: classes must be in [0,%d], got %d", maxModelClasses, sp.Classes)
		}
		if sp.Vocab < 0 || sp.Vocab > maxModelVocab {
			return fmt.Errorf("model: vocab must be in [0,%d], got %d", maxModelVocab, sp.Vocab)
		}
		if sp.Classes*sp.Vocab > maxModelCells {
			return fmt.Errorf("model: classes×vocab = %d exceeds the %d-cell limit", sp.Classes*sp.Vocab, maxModelCells)
		}
	case "":
		return errors.New("model: missing learner (knn, linreg or nb)")
	default:
		return fmt.Errorf("model: unknown learner %q (want knn, linreg or nb)", sp.Learner)
	}
	if sp.Policy == "" {
		sp.Policy = "always"
	}
	_, err := sp.buildPolicy()
	return err
}

// buildPolicy constructs a fresh policy instance from the spec.
func (sp ModelSpec) buildPolicy() (manage.Policy, error) {
	switch {
	case sp.Policy == "always":
		return manage.Always{}, nil
	case strings.HasPrefix(sp.Policy, "every:"):
		k, err := strconv.Atoi(strings.TrimPrefix(sp.Policy, "every:"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("model: policy %q needs a positive batch count, e.g. every:5", sp.Policy)
		}
		return manage.Every{K: k}, nil
	case sp.Policy == "drift":
		d := &manage.OnDrift{}
		if sp.Drift != nil {
			d.Window, d.Factor = sp.Drift.Window, sp.Drift.Factor
			d.MinObs, d.MaxStale = sp.Drift.MinObs, sp.Drift.MaxStale
		}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		return d, nil
	default:
		return nil, fmt.Errorf("model: unknown policy %q (want always, every:K or drift)", sp.Policy)
	}
}

// classifier reports whether the learner's batch error is a
// misclassification percentage (true) or MSE (false).
func (sp ModelSpec) classifier() bool { return sp.Learner != "linreg" }

// deployedModel is one immutable trained model; predict never mutates it,
// so a pointer to it can be swapped atomically and read lock-free while a
// replacement trains.
type deployedModel struct {
	kind      string
	trainSize int
	knn       *ml.KNN
	lr        *ml.LinearRegression
	nb        *ml.NaiveBayes
}

// predict returns the model's output for a feature vector: the class (as
// a float) for classifiers, the regression value for linreg.
func (d *deployedModel) predict(x []float64) float64 {
	switch d.kind {
	case "knn":
		return float64(d.knn.Predict(x))
	case "linreg":
		return d.lr.Predict(x)
	default:
		return float64(d.nb.Predict(wordIDs(x)))
	}
}

// gobBytes serializes the underlying learner for the checkpoint envelope.
func (d *deployedModel) gobBytes() ([]byte, error) {
	switch d.kind {
	case "knn":
		return d.knn.GobEncode()
	case "linreg":
		return d.lr.GobEncode()
	default:
		return d.nb.GobEncode()
	}
}

// decodeDeployed inverts gobBytes.
func decodeDeployed(kind string, data []byte, trainSize int) (*deployedModel, error) {
	d := &deployedModel{kind: kind, trainSize: trainSize}
	switch kind {
	case "knn":
		d.knn = new(ml.KNN)
		return d, d.knn.GobDecode(data)
	case "linreg":
		d.lr = new(ml.LinearRegression)
		return d, d.lr.GobDecode(data)
	case "nb":
		d.nb = new(ml.NaiveBayes)
		return d, d.nb.GobDecode(data)
	}
	return nil, fmt.Errorf("model: unknown learner %q in checkpoint", kind)
}

// wordIDs converts a feature vector to Naive Bayes word identifiers.
func wordIDs(x []float64) []int {
	w := make([]int, len(x))
	for i, v := range x {
		w[i] = int(v)
	}
	return w
}

// errNoLabeledData marks a retrain attempt over a sample without a single
// labeled row.
var errNoLabeledData = errors.New("model: sample holds no labeled rows ({\"x\":[...],\"y\":N})")

// Model-shape caps. Labels, word ids and feature dimensions come from
// client-supplied rows, and the fitters allocate proportionally to them
// (Naive Bayes builds classes×vocab tables, OLS a (d+1)² normal matrix) —
// one hostile row like {"x":[0],"y":1e15} must produce a surfaced train
// failure, not an out-of-memory crash on the background worker.
const (
	maxModelClasses  = 1 << 12 // Naive Bayes / kNN label space
	maxModelVocab    = 1 << 20 // Naive Bayes word-id space
	maxModelFeatures = 512     // feature dimensions per row (linreg fits (d+1)²)
	// maxModelCells caps classes×vocab jointly: Naive Bayes allocates two
	// tables of that many float64s, and the per-axis caps alone still
	// admit a ~4096×2²⁰ = 2³²-cell product.
	maxModelCells = 1 << 22
)

// trainModel fits a fresh model of the spec's family on the labeled rows
// of a realized sample. It is a pure function of (spec, snap) — the
// property that makes asynchronous retraining deterministic.
func trainModel(spec ModelSpec, snap []Item) (*deployedModel, error) {
	xs := make([][]float64, 0, len(snap))
	ys := make([]float64, 0, len(snap))
	for _, it := range snap {
		if x, y, ok := parseRow(it); ok {
			if len(x) > maxModelFeatures {
				return nil, fmt.Errorf("model: labeled row has %d features, limit %d", len(x), maxModelFeatures)
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	if len(xs) == 0 {
		return nil, errNoLabeledData
	}
	if spec.classifier() {
		for _, y := range ys {
			if y < 0 || y >= maxModelClasses || y != float64(int(y)) {
				return nil, fmt.Errorf("model: label %v out of range [0,%d)", y, maxModelClasses)
			}
		}
	}
	d := &deployedModel{kind: spec.Learner, trainSize: len(xs)}
	switch spec.Learner {
	case "knn":
		m, err := ml.NewKNN(spec.K)
		if err != nil {
			return nil, err
		}
		labels := make([]int, len(ys))
		for i, y := range ys {
			labels[i] = int(y)
		}
		if err := m.Fit(xs, labels); err != nil {
			return nil, err
		}
		d.knn = m
	case "linreg":
		m, err := ml.FitOLS(xs, ys, *spec.Intercept)
		if err != nil {
			return nil, err
		}
		d.lr = m
	case "nb":
		docs := make([][]int, len(xs))
		labels := make([]int, len(ys))
		classes, vocab := spec.Classes, spec.Vocab
		for i, x := range xs {
			docs[i] = wordIDs(x)
			labels[i] = int(ys[i])
			if labels[i]+1 > classes {
				classes = labels[i] + 1
			}
			for _, w := range docs[i] {
				if w < 0 || w >= maxModelVocab {
					return nil, fmt.Errorf("model: word id %d out of range [0,%d)", w, maxModelVocab)
				}
				if w+1 > vocab {
					vocab = w + 1
				}
			}
		}
		if classes < 2 {
			classes = 2
		}
		if classes*vocab > maxModelCells {
			return nil, fmt.Errorf("model: inferred classes×vocab = %d×%d exceeds the %d-cell limit",
				classes, vocab, maxModelCells)
		}
		m, err := ml.FitNaiveBayes(docs, labels, classes, vocab, spec.Alpha)
		if err != nil {
			return nil, err
		}
		d.nb = m
	}
	return d, nil
}

// managedModel is the per-stream model-management state. The deployed
// model is an atomic pointer so /predict never takes a lock that a
// retrain holds; everything else (policy state, counters) lives under mu.
// cond signals inFlight clearing.
type managedModel struct {
	spec     ModelSpec
	policy   manage.Policy
	deployed atomic.Pointer[deployedModel]

	// runBg dispatches a retrain job off the apply path; it returns an
	// error when no background lane exists and the caller must run the job
	// inline. metrics receives retrain/score observations.
	runBg   func(func()) error
	metrics *Metrics

	// onSwap, when set, journals each completed retrain deployment to the
	// WAL (entry.journalSwapRecord). Assigned before the model is
	// published to its entry, never after.
	onSwap func(retrains uint64)

	mu       sync.Mutex
	cond     *sync.Cond
	inFlight bool // a retrain is training on the background lane

	t             int     // batch boundaries scored since attach/restore
	retrains      uint64  // completed successful (re)trainings
	staleness     int     // boundaries since the last successful training
	lastErr       float64 // model error on the latest batch (NaN: unscorable)
	errSum        float64 // cumulative error over scorable batches
	errN          uint64
	trainFailures uint64
	lastTrainErr  string

	// encCache memoizes the deployed model's gob encoding for checkpoint
	// passes: any ingest dirties the entry, but the model (potentially a
	// whole realized training sample, for kNN) only changes when retrains
	// advances — re-encoding it every pass would be O(sample) per stream
	// per checkpoint interval for nothing.
	encCache    []byte
	encRetrains uint64
	encValid    bool
}

// newManagedModel builds the runtime state for a validated spec.
func newManagedModel(spec ModelSpec, runBg func(func()) error, metrics *Metrics) (*managedModel, error) {
	policy, err := spec.buildPolicy()
	if err != nil {
		return nil, err
	}
	mm := &managedModel{spec: spec, policy: policy, runBg: runBg, metrics: metrics, lastErr: math.NaN()}
	mm.cond = sync.NewCond(&mm.mu)
	return mm, nil
}

// waitIdle blocks until no retrain is in flight. Callers rely on it for
// determinism (scoring, checkpointing) and read-your-retrains semantics
// (model stats).
func (mm *managedModel) waitIdle() {
	mm.mu.Lock()
	for mm.inFlight {
		mm.cond.Wait()
	}
	mm.mu.Unlock()
}

// score evaluates the deployed model on the labeled rows of a batch:
// misclassification percentage for classifiers, MSE for linreg, NaN when
// there is no model or no labeled row.
func (mm *managedModel) score(batch []Item) float64 {
	d := mm.deployed.Load()
	if d == nil {
		return math.NaN()
	}
	wrong, n := 0, 0
	sqSum := 0.0
	for _, it := range batch {
		x, y, ok := parseRow(it)
		if !ok {
			continue
		}
		n++
		p := d.predict(x)
		if mm.spec.classifier() {
			if int(p) != int(y) {
				wrong++
			}
		} else {
			sqSum += (p - y) * (p - y)
		}
	}
	if n == 0 {
		return math.NaN()
	}
	if mm.spec.classifier() {
		return 100 * float64(wrong) / float64(n)
	}
	return sqSum / float64(n)
}

// onBoundary runs the paper's Step at one batch boundary: wait for the
// previous retrain to deploy, score the incoming batch with the deployed
// model, fold the batch into the sample, and dispatch a retrain from the
// current sample if the policy fires (or no model exists yet). It is
// called on the engine shard worker with the entry lock held, so the
// whole step is atomic with respect to checkpoints — a checkpoint can
// never observe the sampler advanced past a boundary whose policy
// decision it has not yet captured.
// onBoundary owns btr, the boundary trace (nil when tracing is off): it
// records the score and policy stages and finishes the trace — unless a
// retrain fires, in which case trainAndSwap finishes it after recording
// the retrain and swap stages.
func (mm *managedModel) onBoundary(sampler *tbs.Concurrent[Item], batch []Item, btr *obs.Trace) {
	mm.waitIdle()
	scoreStart := time.Now()
	errScore := mm.score(batch)
	btr.StageSince(obs.StageScore, scoreStart)
	sampler.Advance(batch)

	policyStart := time.Now()
	mm.mu.Lock()
	mm.t++
	mm.staleness++
	mm.lastErr = errScore
	if !math.IsNaN(errScore) {
		mm.errSum += errScore
		mm.errN++
		mm.metrics.ObserveModelScore()
	}
	fire := mm.policy.ShouldRetrain(mm.t, errScore) || mm.deployed.Load() == nil
	var snap []Item
	if fire {
		// Realize the sample through the zero-alloc append machinery into
		// a buffer owned by the retrain job. For R-TBS this consumes RNG
		// draws, which is why the snapshot happens here, inside the
		// entry-locked boundary: the sampler's stochastic process stays a
		// deterministic function of the batch sequence.
		snap = sampler.AppendSample(make([]Item, 0, int(sampler.ExpectedSize())+8))
		if len(snap) == 0 {
			fire = false // nothing to train on yet; mirror manage.Manager
		}
	}
	if fire {
		mm.inFlight = true
	}
	mm.mu.Unlock()
	btr.StageSince(obs.StagePolicy, policyStart)

	if fire {
		job := func() { mm.trainAndSwap(snap, btr) }
		if mm.runBg == nil || mm.runBg(job) != nil {
			job()
		}
	} else {
		btr.Finish(0)
	}
}

// trainAndSwap fits a replacement model from a sample snapshot and
// atomically deploys it; a failed training keeps the previous model
// (manage.Manager semantics). Runs on the background lane — or inline
// when the lane is absent or draining.
func (mm *managedModel) trainAndSwap(snap []Item, btr *obs.Trace) {
	trainStart := time.Now()
	model, err := trainModel(mm.spec, snap)
	btr.StageSince(obs.StageRetrain, trainStart)
	swapStart := time.Now()
	mm.mu.Lock()
	if err != nil {
		mm.trainFailures++
		mm.lastTrainErr = err.Error()
		mm.metrics.ObserveRetrain(false)
	} else {
		mm.deployed.Store(model)
		mm.retrains++
		mm.staleness = 0
		mm.lastTrainErr = ""
		mm.metrics.ObserveRetrain(true)
		if mm.onSwap != nil {
			// Journal the deployment. Replay recomputes retrains from the
			// boundary sequence, so this record is bookkeeping — but it
			// makes every acknowledged model swap visible in the log.
			mm.onSwap(mm.retrains)
		}
	}
	mm.inFlight = false
	mm.cond.Broadcast()
	mm.mu.Unlock()
	btr.StageSince(obs.StageSwap, swapStart)
	status := 0
	if err != nil {
		status = 1
	}
	btr.Finish(status)
}

// modelStats is the JSON shape of GET …/model/stats and of the stats
// section in GET …/model.
type modelStats struct {
	Learner       string              `json:"learner"`
	Policy        string              `json:"policy"`
	HasModel      bool                `json:"hasModel"`
	TrainSize     int                 `json:"trainSize,omitempty"`
	Batches       int                 `json:"batches"`
	ScoredBatches uint64              `json:"scoredBatches"`
	Retrains      uint64              `json:"retrains"`
	Staleness     int                 `json:"staleness"`
	LastBatchErr  *float64            `json:"lastBatchErr,omitempty"`
	MeanBatchErr  *float64            `json:"meanBatchErr,omitempty"`
	TrainFailures uint64              `json:"trainFailures,omitempty"`
	LastTrainErr  string              `json:"lastTrainError,omitempty"`
	PolicyState   *manage.PolicyState `json:"policyState,omitempty"`
}

// stats snapshots the observable model state. It waits for any in-flight
// retrain first, so the numbers are the deterministic post-boundary state
// (read-your-retrains — the property the kill+restart e2e asserts on).
func (mm *managedModel) stats() modelStats {
	mm.waitIdle()
	mm.mu.Lock()
	defer mm.mu.Unlock()
	st := modelStats{
		Learner:       mm.spec.Learner,
		Policy:        mm.spec.Policy,
		Batches:       mm.t,
		ScoredBatches: mm.errN,
		Retrains:      mm.retrains,
		Staleness:     mm.staleness,
		TrainFailures: mm.trainFailures,
		LastTrainErr:  mm.lastTrainErr,
	}
	if d := mm.deployed.Load(); d != nil {
		st.HasModel = true
		st.TrainSize = d.trainSize
	}
	if !math.IsNaN(mm.lastErr) {
		v := mm.lastErr
		st.LastBatchErr = &v
	}
	if mm.errN > 0 {
		v := mm.errSum / float64(mm.errN)
		st.MeanBatchErr = &v
	}
	if sp, ok := mm.policy.(manage.StatefulPolicy); ok {
		ps := sp.State()
		st.PolicyState = &ps
	}
	return st
}

// modelCheckpoint is the model section of a stream's checkpoint record:
// spec, policy state, counters, and the deployed model itself
// (gob-encoded), so a restored stream serves the same predictions it
// served before the kill.
type modelCheckpoint struct {
	Spec          ModelSpec           `json:"spec"`
	PolicyState   *manage.PolicyState `json:"policyState,omitempty"`
	T             int                 `json:"t"`
	Retrains      uint64              `json:"retrains"`
	Staleness     int                 `json:"staleness"`
	LastErr       *float64            `json:"lastErr,omitempty"`
	ErrSum        float64             `json:"errSum"`
	ErrN          uint64              `json:"errN"`
	TrainFailures uint64              `json:"trainFailures,omitempty"`
	LastTrainErr  string              `json:"lastTrainError,omitempty"`
	Model         []byte              `json:"model,omitempty"`
	TrainSize     int                 `json:"trainSize,omitempty"`
}

// capture serializes the model state for a checkpoint. The caller holds
// the entry lock, so no new boundary can start; capture only has to wait
// out a retrain already on the background lane.
func (mm *managedModel) capture() (*modelCheckpoint, error) {
	mm.waitIdle()
	mm.mu.Lock()
	defer mm.mu.Unlock()
	st := &modelCheckpoint{
		Spec:          mm.spec,
		T:             mm.t,
		Retrains:      mm.retrains,
		Staleness:     mm.staleness,
		ErrSum:        mm.errSum,
		ErrN:          mm.errN,
		TrainFailures: mm.trainFailures,
		LastTrainErr:  mm.lastTrainErr,
	}
	if !math.IsNaN(mm.lastErr) {
		v := mm.lastErr
		st.LastErr = &v
	}
	if sp, ok := mm.policy.(manage.StatefulPolicy); ok {
		ps := sp.State()
		st.PolicyState = &ps
	}
	if d := mm.deployed.Load(); d != nil {
		if !mm.encValid || mm.encRetrains != mm.retrains {
			data, err := d.gobBytes()
			if err != nil {
				return nil, fmt.Errorf("model: encode deployed %s: %w", d.kind, err)
			}
			mm.encCache, mm.encRetrains, mm.encValid = data, mm.retrains, true
		}
		st.Model = mm.encCache
		st.TrainSize = d.trainSize
	}
	return st, nil
}

// restoreManagedModel rebuilds the runtime state from a checkpoint
// record.
func restoreManagedModel(st *modelCheckpoint, runBg func(func()) error, metrics *Metrics) (*managedModel, error) {
	spec := st.Spec
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	mm, err := newManagedModel(spec, runBg, metrics)
	if err != nil {
		return nil, err
	}
	mm.t = st.T
	mm.retrains = st.Retrains
	mm.staleness = st.Staleness
	mm.errSum, mm.errN = st.ErrSum, st.ErrN
	mm.trainFailures, mm.lastTrainErr = st.TrainFailures, st.LastTrainErr
	if st.LastErr != nil {
		mm.lastErr = *st.LastErr
	}
	if st.PolicyState != nil {
		if sp, ok := mm.policy.(manage.StatefulPolicy); ok {
			sp.SetState(*st.PolicyState)
		}
	}
	if len(st.Model) > 0 {
		d, err := decodeDeployed(spec.Learner, st.Model, st.TrainSize)
		if err != nil {
			return nil, err
		}
		mm.deployed.Store(d)
		// The checkpoint bytes are the current encoding; prime the cache
		// so the first post-restore checkpoint pass skips the re-encode.
		mm.encCache, mm.encRetrains, mm.encValid = st.Model, mm.retrains, true
	}
	return mm, nil
}
