package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// tieredOptions is the standard memory-tiering test config: WAL on (so
// hydration exercises the tail-replay path too) and an IdleAfter so small
// that every stream is evictable the moment HibernatePass runs.
func tieredOptions(t *testing.T, seed uint64) Options {
	t.Helper()
	dir := t.TempDir()
	return Options{
		Sampler:       rtbsConfig(seed),
		CheckpointDir: dir,
		WALDir:        filepath.Join(dir, "wal"),
		IdleAfter:     time.Nanosecond,
	}
}

func TestTieringRequiresCheckpointDir(t *testing.T) {
	if _, err := New(Options{Sampler: rtbsConfig(1), MaxResident: 10}); err == nil {
		t.Fatal("New accepted MaxResident without CheckpointDir")
	}
	if _, err := New(Options{Sampler: rtbsConfig(1), IdleAfter: time.Minute}); err == nil {
		t.Fatal("New accepted IdleAfter without CheckpointDir")
	}
}

// TestHibernateRehydrateDeterminism drives the identical traffic against a
// tiered server (hibernating every stream between phases) and a plain one,
// and requires byte-identical samples: eviction and rehydration must be
// invisible to the stream's stochastic process.
func TestHibernateRehydrateDeterminism(t *testing.T) {
	tiered := newHarness(t, tieredOptions(t, 7))
	plainDir := t.TempDir()
	plain := newHarness(t, Options{
		Sampler:       rtbsConfig(7),
		CheckpointDir: plainDir,
		WALDir:        filepath.Join(plainDir, "wal"),
	})

	keys := []string{"alpha", "beta", "gamma"}
	for phase := 0; phase < 3; phase++ {
		for _, key := range keys {
			from, to := phase*4+1, phase*4+4
			tiered.driveStream(key, from, to)
			plain.driveStream(key, from, to)
		}
		if _, err := tiered.srv.HibernatePass(); err != nil {
			t.Fatalf("HibernatePass: %v", err)
		}
		for _, key := range keys {
			if e := tiered.srv.reg.lookup(key); e == nil || !e.hibernated.Load() {
				t.Fatalf("phase %d: stream %q not hibernated after pass", phase, key)
			}
		}
		if got := tiered.srv.ResidentStreams(); got != 0 {
			t.Fatalf("phase %d: ResidentStreams = %d, want 0", phase, got)
		}
	}
	for _, key := range keys {
		a, b := tiered.sample(key), plain.sample(key)
		if !sampleEqual(a, b) {
			t.Fatalf("stream %q: tiered sample diverged from plain sample\ntiered: %v\nplain:  %v", key, a.Items, b.Items)
		}
	}
	if got := tiered.srv.metrics.hydrationErrors.Load(); got != 0 {
		t.Fatalf("hydration errors: %d", got)
	}
}

func sampleEqual(a, b sampleResp) bool {
	if a.Size != b.Size || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if string(a.Items[i]) != string(b.Items[i]) {
			return false
		}
	}
	return true
}

// TestHibernatePausesDecayClock checks the documented semantics: the
// wall-clock ticker skips hibernated stubs, so batch time only advances
// while the stream is resident.
func TestHibernatePausesDecayClock(t *testing.T) {
	h := newHarness(t, tieredOptions(t, 3))
	h.driveStream("pause", 1, 3)
	var before struct {
		Batches uint64 `json:"batches"`
	}
	h.do("GET", "/v1/streams/pause/stats", nil, http.StatusOK, &before)
	if _, err := h.srv.HibernatePass(); err != nil {
		t.Fatal(err)
	}
	h.srv.AdvanceAll() // must skip the stub
	// /stats rehydrates; the batch count must not have moved while cold.
	var after struct {
		Batches uint64 `json:"batches"`
	}
	h.do("GET", "/v1/streams/pause/stats", nil, http.StatusOK, &after)
	if after.Batches != before.Batches {
		t.Fatalf("batches moved while hibernated: %d -> %d", before.Batches, after.Batches)
	}
}

// TestHibernateSkipsFrozenStream: a handoff freeze and an eviction racing
// on one entry must resolve freeze-wins — the migration is mid-flight and
// owns the state.
func TestHibernateSkipsFrozenStream(t *testing.T) {
	h := newHarness(t, tieredOptions(t, 5))
	h.driveStream("frozen", 1, 2)
	e := h.srv.reg.lookup("frozen")
	if e == nil {
		t.Fatal("stream missing")
	}
	if err := e.beginMigration(); err != nil {
		t.Fatal(err)
	}
	defer e.endMigration()
	if _, err := h.srv.HibernatePass(); err != nil {
		t.Fatal(err)
	}
	if e.hibernated.Load() {
		t.Fatal("hibernation evicted a stream frozen for handoff")
	}
	if got := h.srv.ResidentStreams(); got != 1 {
		t.Fatalf("ResidentStreams = %d, want 1", got)
	}
}

// TestHibernateSkipsPinnedStream: the pin/fence protocol — an entry with
// an in-flight request is never evicted.
func TestHibernateSkipsPinnedStream(t *testing.T) {
	h := newHarness(t, tieredOptions(t, 6))
	h.driveStream("pinned", 1, 2)
	e := h.srv.reg.lookup("pinned")
	e.pin()
	defer e.unpin()
	if _, err := h.srv.HibernatePass(); err != nil {
		t.Fatal(err)
	}
	if e.hibernated.Load() {
		t.Fatal("hibernation evicted a pinned stream")
	}
}

// TestDeleteHibernatedStream: DELETE of a cold stream tombstones it
// without rehydrating — there is nothing in memory worth rebuilding just
// to throw away.
func TestDeleteHibernatedStream(t *testing.T) {
	h := newHarness(t, tieredOptions(t, 9))
	h.driveStream("doomed", 1, 3)
	if _, err := h.srv.HibernatePass(); err != nil {
		t.Fatal(err)
	}
	h.do("DELETE", "/v1/streams/doomed", nil, http.StatusOK, nil)
	if got := h.srv.metrics.hydrations.Load(); got != 0 {
		t.Fatalf("DELETE of a hibernated stream hydrated it (%d hydrations)", got)
	}
	h.do("GET", "/v1/streams/doomed/stats", nil, http.StatusNotFound, nil)
	ckpt := filepath.Join(h.srv.opts.CheckpointDir, checkpointFileName("doomed"))
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file survived the delete: %v", err)
	}
	// A fresh ingest recreates the stream from scratch, as for any key.
	h.driveStream("doomed", 1, 1)
	var st struct {
		Ingested uint64 `json:"ingested"`
	}
	h.do("GET", "/v1/streams/doomed/stats", nil, http.StatusOK, &st)
	if st.Ingested != 20 {
		t.Fatalf("recreated stream ingested = %d, want 20", st.Ingested)
	}
}

// TestColdHitStorm: many concurrent requests against one hibernated key
// must share a single hydration (single-flight) and all succeed. Run
// under -race this also checks the pin/fence and install ordering.
func TestColdHitStorm(t *testing.T) {
	h := newHarness(t, tieredOptions(t, 11))
	h.driveStream("storm", 1, 4)
	var want struct {
		Ingested uint64 `json:"ingested"`
	}
	h.do("GET", "/v1/streams/storm/stats", nil, http.StatusOK, &want)
	if _, err := h.srv.HibernatePass(); err != nil {
		t.Fatal(err)
	}

	const workers = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(h.ts.URL + "/v1/streams/storm/stats")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("cold hit failed: %v", err)
	}
	if got := h.srv.metrics.hydrations.Load(); got != 1 {
		t.Fatalf("hydrations = %d, want 1 (single-flight)", got)
	}
	var st struct {
		Ingested uint64 `json:"ingested"`
	}
	h.do("GET", "/v1/streams/storm/stats", nil, http.StatusOK, &st)
	if st.Ingested != want.Ingested {
		t.Fatalf("ingested after storm = %d, want %d", st.Ingested, want.Ingested)
	}
}

// TestMaxResidentBoundsMemory is the in-suite scale check: far more keys
// than the resident bound, round-robin traffic, and the invariant that
// the resident count converges under the bound while every stream's
// counters survive eviction and rehydration exactly.
func TestMaxResidentBoundsMemory(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, Options{
		Sampler:       rtbsConfig(13),
		CheckpointDir: dir,
		WALDir:        filepath.Join(dir, "wal"),
		MaxResident:   16,
	})
	const keys = 200
	for i := 0; i < keys; i++ {
		key := "k" + strconv.Itoa(i)
		h.do("POST", "/v1/streams/"+key+"/items?advance=true", itemBatch(key, 1, 5), http.StatusOK, nil)
		if i%32 == 31 {
			if _, err := h.srv.HibernatePass(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := h.srv.HibernatePass(); err != nil {
		t.Fatal(err)
	}
	if got := h.srv.ResidentStreams(); got > 16 {
		t.Fatalf("ResidentStreams = %d, want <= 16", got)
	}
	if got := h.srv.reg.count(); got != keys {
		t.Fatalf("total streams = %d, want %d (stubs must stay registered)", got, keys)
	}
	// Every cold stream rehydrates with its exact counters.
	for i := 0; i < keys; i += 17 {
		key := "k" + strconv.Itoa(i)
		var st struct {
			Ingested uint64 `json:"ingested"`
			Batches  uint64 `json:"batches"`
		}
		h.do("GET", "/v1/streams/"+key+"/stats", nil, http.StatusOK, &st)
		if st.Ingested != 5 || st.Batches != 1 {
			t.Fatalf("stream %q after rehydration: ingested=%d batches=%d, want 5/1", key, st.Ingested, st.Batches)
		}
	}
	if got := h.srv.metrics.hydrationErrors.Load(); got != 0 {
		t.Fatalf("hydration errors: %d", got)
	}
}

// TestMillionStreamSoak is the bounded-RSS soak from the issue: 1M keys
// round-robin with MaxResident 10000 must hold heap usage bounded by the
// working set, not the tenant count. Minutes-long and allocation-heavy,
// so it only runs with TBSD_SOAK=1 (results recorded in EXPERIMENTS.md).
func TestMillionStreamSoak(t *testing.T) {
	if os.Getenv("TBSD_SOAK") == "" {
		t.Skip("set TBSD_SOAK=1 to run the 1M-key soak")
	}
	const totalKeys = 1_000_000
	dir := t.TempDir()
	srv, err := New(Options{
		Sampler:           rtbsConfig(17),
		CheckpointDir:     dir,
		MaxResident:       10000,
		MaxStreams:        totalKeys, // tiering bounds memory, not tenancy
		HibernateInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Stop(ctx)
	}()

	item := []Item{Item(`{"v":1}`)}
	for i := 0; i < totalKeys; i++ {
		key := "soak-" + strconv.Itoa(i)
		e, err := srv.acquireStream(key)
		if err != nil {
			t.Fatalf("key %s: %v", key, err)
		}
		if _, _, _, err := e.append(item, srv.opts.MaxPendingItems); err != nil {
			e.unpin()
			t.Fatalf("key %s: %v", key, err)
		}
		e.unpin()
		if i%100_000 == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			t.Logf("keys=%d resident=%d heap=%dMB", i, srv.ResidentStreams(), ms.HeapAlloc>>20)
		}
	}
	for srv.ResidentStreams() > 10000 {
		if _, err := srv.HibernatePass(); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("final: streams=%d resident=%d heap=%dMB hibernations=%d",
		srv.reg.count(), srv.ResidentStreams(), ms.HeapAlloc>>20, srv.metrics.hibernations.Load())
	// 1M stubs (key + atomics) plus 10k resident streams: the gate is
	// generous, but a server keeping all 1M samplers resident blows far
	// past it (a resident rtbs stream costs ~3-4KB before any data).
	const gateMB = 1500
	if got := ms.HeapAlloc >> 20; got > gateMB {
		t.Fatalf("heap after soak = %dMB, want <= %dMB", got, gateMB)
	}
	// Cold hits still answer correctly after the churn.
	for _, i := range []int{0, 499_999, 999_999} {
		e, err := srv.acquireExisting("soak-" + strconv.Itoa(i))
		if err != nil || e == nil {
			t.Fatalf("soak-%d: %v", i, err)
		}
		pending, _, _ := e.counters()
		e.unpin()
		if pending != 1 {
			t.Fatalf("soak-%d: pending = %d, want 1", i, pending)
		}
	}
}
