package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
)

// Ingest-path benchmarks: the buffered JSON-array path versus the
// streaming NDJSON path with engine-pipelined boundaries, handler-direct
// (no sockets) so decode and apply cost dominate. Run the comparison with
//
//	go test -bench=IngestPath -benchmem ./internal/server/
//
// The NDJSON ≥2× items/sec acceptance number is recorded by the tbsbench
// `ingest` experiment (BENCH_ingest.json, EXPERIMENTS.md).

const benchItemsPerRequest = 2000

func benchBodies() (jsonBody, ndjsonBody []byte) {
	var j, nd bytes.Buffer
	j.WriteByte('[')
	for i := 0; i < benchItemsPerRequest; i++ {
		item := fmt.Sprintf(`{"sensor":%d,"v":%d.%03d,"tag":"s-%d"}`, i%64, i%97, i%1000, i)
		if i > 0 {
			j.WriteByte(',')
		}
		j.WriteString(item)
		nd.WriteString(item)
		nd.WriteByte('\n')
	}
	j.WriteByte(']')
	return j.Bytes(), nd.Bytes()
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := New(Options{Sampler: rtbsConfig(1)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := srv.Stop(context.Background()); err != nil {
			b.Errorf("Stop: %v", err)
		}
	})
	return srv
}

func BenchmarkIngestPathJSON(b *testing.B) {
	srv := benchServer(b)
	body, _ := benchBodies()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/streams/bench/items?advance=true", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(benchItemsPerRequest, "items/op")
}

func BenchmarkIngestPathNDJSON(b *testing.B) {
	srv := benchServer(b)
	_, body := benchBodies()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST",
			fmt.Sprintf("/v1/streams/bench/items?batch=%d", benchItemsPerRequest),
			bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/x-ndjson")
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(benchItemsPerRequest, "items/op")
}
