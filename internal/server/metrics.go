package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// Metrics aggregates the server's observability counters. Counts are
// atomics so the ingest/advance hot paths never share a lock — the
// lock-striped registry's parallelism is not re-serialized here; only the
// latency rings take a (per-distribution) mutex.
type Metrics struct {
	ingestRequests atomic.Uint64
	ingestedItems  atomic.Uint64

	advances      atomic.Uint64
	advancedItems atomic.Uint64
	// advanceLat/checkpointLat quantiles cover a rotating time window
	// (metrics.LatencyStats), not all history — after a burst subsides the
	// p99 drains back down instead of being pinned by it forever.
	advanceLat metrics.LatencyStats

	checkpoints        atomic.Uint64
	checkpointErrors   atomic.Uint64
	checkpointedKeys   atomic.Uint64
	checkpointLat      metrics.LatencyStats
	lastCheckpointUnix atomic.Int64
	restoredStreams    atomic.Int64

	modelScores   atomic.Uint64
	retrains      atomic.Uint64
	retrainErrors atomic.Uint64
	predictions   atomic.Uint64

	tickerLagged   atomic.Uint64
	deletedStreams atomic.Uint64
	quarantined    atomic.Int64
	walReplayed    atomic.Int64

	handoffsOut   atomic.Uint64 // streams this node handed to another node
	handoffsIn    atomic.Uint64 // streams this node adopted
	handoffErrors atomic.Uint64
	ready         atomic.Bool

	hibernations      atomic.Uint64 // streams evicted to checkpoint-backed stubs
	hibernationErrors atomic.Uint64
	hydrations        atomic.Uint64 // cold-miss rehydrations back to resident
	hydrationErrors   atomic.Uint64
	hydrationLat      metrics.LatencyStats
}

// SetReady flips the /readyz gate: true once restore completed and the
// background loops started, false again when shutdown begins draining.
func (m *Metrics) SetReady(v bool) { m.ready.Store(v) }

// Ready reports the /readyz gate.
func (m *Metrics) Ready() bool { return m.ready.Load() }

// ObserveHandoffOut records one stream handed off to another node (or a
// failed attempt).
func (m *Metrics) ObserveHandoffOut(ok bool) {
	if ok {
		m.handoffsOut.Add(1)
	} else {
		m.handoffErrors.Add(1)
	}
}

// ObserveHandoffIn records one stream adopted from another node.
func (m *Metrics) ObserveHandoffIn() { m.handoffsIn.Add(1) }

// ObserveTickerLag records n wall-clock ticks the batch-time ticker had
// to coalesce because an AdvanceAll pass outlasted the interval.
func (m *Metrics) ObserveTickerLag(n int) { m.tickerLagged.Add(uint64(n)) }

// ObserveStreamDelete records one DELETE /v1/streams/{key}.
func (m *Metrics) ObserveStreamDelete() { m.deletedStreams.Add(1) }

// SetQuarantined records how many corrupt checkpoint files boot-time
// restore quarantined.
func (m *Metrics) SetQuarantined(n int) { m.quarantined.Store(int64(n)) }

// SetWALReplayed records how many WAL records boot-time recovery
// replayed on top of the snapshots.
func (m *Metrics) SetWALReplayed(n int) { m.walReplayed.Store(int64(n)) }

// ObserveModelScore records one batch scored against a deployed model.
func (m *Metrics) ObserveModelScore() { m.modelScores.Add(1) }

// ObserveRetrain records one completed retrain attempt.
func (m *Metrics) ObserveRetrain(ok bool) {
	if ok {
		m.retrains.Add(1)
	} else {
		m.retrainErrors.Add(1)
	}
}

// ObservePredictions records n predictions served.
func (m *Metrics) ObservePredictions(n int) { m.predictions.Add(uint64(n)) }

// ObserveIngest records one ingest request that accepted n items.
func (m *Metrics) ObserveIngest(n int) {
	m.ingestRequests.Add(1)
	m.ingestedItems.Add(uint64(n))
}

// ObserveAdvance records one closed batch of n items and the sampler
// update latency.
func (m *Metrics) ObserveAdvance(n int, d time.Duration) {
	m.advances.Add(1)
	m.advancedItems.Add(uint64(n))
	m.advanceLat.Observe(d)
}

// ObserveCheckpoint records one full checkpoint pass over keys streams.
func (m *Metrics) ObserveCheckpoint(keys int, d time.Duration, err error) {
	m.checkpoints.Add(1)
	m.checkpointedKeys.Add(uint64(keys))
	m.checkpointLat.Observe(d)
	m.lastCheckpointUnix.Store(time.Now().Unix())
	if err != nil {
		m.checkpointErrors.Add(1)
	}
}

// SetRestored records how many streams boot-time restore brought back.
func (m *Metrics) SetRestored(n int) {
	m.restoredStreams.Store(int64(n))
}

// ObserveHibernation records one stream evicted to a stub.
func (m *Metrics) ObserveHibernation() { m.hibernations.Add(1) }

// ObserveHibernationError records one failed eviction attempt (the stream
// stays resident).
func (m *Metrics) ObserveHibernationError() { m.hibernationErrors.Add(1) }

// ObserveHydration records one cold-miss rehydration and its end-to-end
// latency (checkpoint read + restore + WAL tail replay + install).
func (m *Metrics) ObserveHydration(d time.Duration, err error) {
	if err != nil {
		m.hydrationErrors.Add(1)
		return
	}
	m.hydrations.Add(1)
	m.hydrationLat.Observe(d)
}

// WriteTo renders the counters in Prometheus text format. Registry-shape
// gauges (stream and shard counts) and the engine's queue snapshot are
// passed in by the caller so Metrics stays a pure accumulator; eng may be
// nil when the engine is disabled. Rendering snapshots state first and
// performs the response write lock-free, so a slow scraper cannot stall
// the ingest/advance hot paths.
func (m *Metrics) WriteTo(w io.Writer, streams, resident int, perShard []int, eng *engine.Stats, walSt *wal.Stats) error {
	_, err := w.Write(m.render(streams, resident, perShard, eng, walSt))
	return err
}

func (m *Metrics) render(streams, resident int, perShard []int, eng *engine.Stats, walSt *wal.Stats) []byte {
	var b []byte
	line := func(format string, args ...any) {
		b = fmt.Appendf(b, format+"\n", args...)
	}
	lat := func(name string, l *metrics.LatencyStats) {
		w, win := l.Snapshot()
		line("%s_count %d", name, w.N())
		line("%s{stat=%q} %g", name, "mean", w.Mean())
		line("%s{stat=%q} %g", name, "std", w.Std())
		line("%s{stat=%q} %g", name, "p50", metrics.QuantileOrZero(win, 0.50))
		line("%s{stat=%q} %g", name, "p95", metrics.QuantileOrZero(win, 0.95))
		line("%s{stat=%q} %g", name, "p99", metrics.QuantileOrZero(win, 0.99))
	}

	line("tbsd_ready %d", boolGauge(m.ready.Load()))
	line("tbsd_streams %d", streams)
	line("tbsd_streams_resident %d", resident)
	line("tbsd_hibernations_total %d", m.hibernations.Load())
	line("tbsd_hibernation_errors_total %d", m.hibernationErrors.Load())
	line("tbsd_hydrations_total %d", m.hydrations.Load())
	line("tbsd_hydration_errors_total %d", m.hydrationErrors.Load())
	lat("tbsd_hydration_latency_seconds", &m.hydrationLat)
	line("tbsd_deleted_streams_total %d", m.deletedStreams.Load())
	line("tbsd_handoffs_out_total %d", m.handoffsOut.Load())
	line("tbsd_handoffs_in_total %d", m.handoffsIn.Load())
	line("tbsd_handoff_errors_total %d", m.handoffErrors.Load())
	line("tbsd_ticker_lagged_total %d", m.tickerLagged.Load())
	line("tbsd_restore_quarantined_total %d", m.quarantined.Load())
	line("tbsd_shards %d", len(perShard))
	for i, n := range perShard {
		line("tbsd_shard_streams{shard=%q} %d", fmt.Sprint(i), n)
	}
	line("tbsd_restored_streams %d", m.restoredStreams.Load())
	line("tbsd_ingest_requests_total %d", m.ingestRequests.Load())
	line("tbsd_ingested_items_total %d", m.ingestedItems.Load())
	line("tbsd_advances_total %d", m.advances.Load())
	line("tbsd_advanced_items_total %d", m.advancedItems.Load())
	lat("tbsd_advance_latency_seconds", &m.advanceLat)
	line("tbsd_model_scored_batches_total %d", m.modelScores.Load())
	line("tbsd_model_retrains_total %d", m.retrains.Load())
	line("tbsd_model_retrain_errors_total %d", m.retrainErrors.Load())
	line("tbsd_model_predictions_total %d", m.predictions.Load())
	line("tbsd_checkpoints_total %d", m.checkpoints.Load())
	line("tbsd_checkpoint_errors_total %d", m.checkpointErrors.Load())
	line("tbsd_checkpointed_streams_total %d", m.checkpointedKeys.Load())
	lat("tbsd_checkpoint_duration_seconds", &m.checkpointLat)
	if last := m.lastCheckpointUnix.Load(); last != 0 {
		line("tbsd_checkpoint_last_unix_seconds %d", last)
	}
	if eng != nil {
		line("tbsd_engine_workers %d", eng.Workers)
		line("tbsd_engine_queue_capacity %d", eng.QueueCap)
		line("tbsd_engine_tasks_submitted_total %d", eng.Submitted)
		line("tbsd_engine_tasks_completed_total %d", eng.Completed)
		line("tbsd_engine_queue_pending %d", eng.Pending())
		line("tbsd_engine_backpressure_total %d", eng.Blocked)
		for i, d := range eng.Depths {
			line("tbsd_engine_queue_depth{worker=%q} %d", fmt.Sprint(i), d)
		}
		for i, d := range eng.DepthHWM {
			line("tbsd_engine_queue_depth_hwm{worker=%q} %d", fmt.Sprint(i), d)
		}
		if eng.BackgroundWorkers > 0 {
			line("tbsd_engine_background_workers %d", eng.BackgroundWorkers)
			line("tbsd_engine_background_submitted_total %d", eng.BackgroundSubmitted)
			line("tbsd_engine_background_completed_total %d", eng.BackgroundCompleted)
			line("tbsd_engine_background_pending %d", eng.BackgroundPending())
		}
	}
	line("tbsd_wal_enabled %d", boolGauge(walSt != nil))
	if walSt != nil {
		line("tbsd_wal_appended_records_total %d", walSt.Records)
		line("tbsd_wal_appended_bytes_total %d", walSt.Bytes)
		line("tbsd_wal_append_errors_total %d", walSt.AppendErrors)
		line("tbsd_wal_fsyncs_total %d", walSt.Fsyncs)
		line("tbsd_wal_fsync_seconds_count %d", walSt.FsyncCount)
		line("tbsd_wal_fsync_seconds{stat=%q} %g", "mean", walSt.FsyncMean)
		line("tbsd_wal_fsync_seconds{stat=%q} %g", "std", walSt.FsyncStd)
		line("tbsd_wal_fsync_seconds{stat=%q} %g", "p50", walSt.FsyncP50)
		line("tbsd_wal_fsync_seconds{stat=%q} %g", "p95", walSt.FsyncP95)
		line("tbsd_wal_fsync_seconds{stat=%q} %g", "p99", walSt.FsyncP99)
		line("tbsd_wal_segments %d", walSt.Segments)
		line("tbsd_wal_truncated_segments_total %d", walSt.TruncatedSegments)
		line("tbsd_wal_last_lsn %d", walSt.LastLSN)
		line("tbsd_wal_synced_lsn %d", walSt.SyncedLSN)
		line("tbsd_wal_replayed_records %d", m.walReplayed.Load())
	}
	return b
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
