package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// traceListing mirrors the GET /debug/trace/recent response shape.
type traceListing struct {
	Enabled bool `json:"enabled"`
	Count   int  `json:"count"`
	Traces  []struct {
		TraceID string `json:"traceId"`
		Kind    string `json:"kind"`
		Key     string `json:"key"`
		Status  int    `json:"status"`
		Stages  []struct {
			Stage     string `json:"stage"`
			DurMicros int64  `json:"durMicros"`
		} `json:"stages"`
	} `json:"traces"`
}

func fetchTraces(t *testing.T, baseURL, query string) traceListing {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/trace/recent" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace listing: status %d: %s", resp.StatusCode, data)
	}
	var out traceListing
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace listing: %v: %s", err, data)
	}
	return out
}

func stageSet(stages []struct {
	Stage     string `json:"stage"`
	DurMicros int64  `json:"durMicros"`
}) map[string]bool {
	set := make(map[string]bool, len(stages))
	for _, s := range stages {
		set[s.Stage] = true
	}
	return set
}

// TestIngestTraceRecordsAllStages is the tentpole acceptance check on a
// single node: one durably acknowledged ingest must leave a trace in the
// ring carrying the full parse → engine_enqueue → shard_apply →
// wal_append → fsync_wait → ack chain, on both the JSON and NDJSON
// decode paths.
func TestIngestTraceRecordsAllStages(t *testing.T) {
	opts := walOpts(t.TempDir(), 1)
	opts.Trace = obs.NewTracer(64, nil)
	h := newHarness(t, opts)

	h.do("POST", "/v1/streams/j/items?advance=true",
		[]map[string]any{{"v": 1}, {"v": 2}, {"v": 3}}, http.StatusOK, nil)
	h.mustNDJSON("n", "?advance=true", "{\"v\":1}\n{\"v\":2}\n{\"v\":3}\n")

	want := obs.StageNames(obs.KindIngest)
	for _, key := range []string{"j", "n"} {
		listing := fetchTraces(t, h.ts.URL, "?kind=ingest&key="+key)
		if !listing.Enabled || listing.Count == 0 {
			t.Fatalf("key %q: no ingest traces in ring: %+v", key, listing)
		}
		got := stageSet(listing.Traces[0].Stages)
		for _, stage := range want {
			if !got[stage] {
				t.Errorf("key %q: ingest trace missing stage %q (got %v)", key, stage, got)
			}
		}
		if listing.Traces[0].Status != http.StatusOK {
			t.Errorf("key %q: trace status = %d, want 200", key, listing.Traces[0].Status)
		}
	}

	// The batch boundary closed by ?advance=true must appear as a child
	// trace sharing the request's trace ID.
	ingest := fetchTraces(t, h.ts.URL, "?kind=ingest&key=j")
	bounds := fetchTraces(t, h.ts.URL, "?kind=boundary&key=j")
	if len(bounds.Traces) == 0 {
		t.Fatal("no boundary trace for key j")
	}
	if got, want := bounds.Traces[0].TraceID, ingest.Traces[0].TraceID; got != want {
		t.Errorf("boundary trace ID %s != ingest trace ID %s", got, want)
	}
}

// TestMetricsIncludeTraceHistograms asserts the tracer's latency
// histograms are merged into the main /metrics scrape once traffic has
// flowed.
func TestMetricsIncludeTraceHistograms(t *testing.T) {
	opts := walOpts(t.TempDir(), 2)
	opts.Trace = obs.NewTracer(64, nil)
	h := newHarness(t, opts)
	h.mustNDJSON("k", "?advance=true", "{\"v\":1}\n")

	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{
		`tbsd_trace_duration_seconds_count{kind="ingest"}`,
		`tbsd_trace_stage_duration_seconds_bucket{kind="ingest",stage="parse",le="+Inf"}`,
		`tbsd_trace_stage_duration_seconds_bucket{kind="ingest",stage="fsync_wait",le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRouterTracePropagation is the cross-process acceptance check: an
// NDJSON ingest sent through tbsrouter must surface under ONE trace ID
// in both the router's ring (as a forward trace) and the owning node's
// ring (as an ingest trace with the full stage chain) — the router's
// traceparent header is what stitches them together.
func TestRouterTracePropagation(t *testing.T) {
	opts := walOpts(t.TempDir(), 3)
	opts.Trace = obs.NewTracer(64, nil)
	node := newHarness(t, opts)

	ring, err := cluster.NewRing([]cluster.Node{{Name: "a", Addr: nodeAddr(node)}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Ring:          ring,
		ProbeInterval: 5 * time.Millisecond,
		Trace:         obs.NewTracer(64, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	routeTS := httptest.NewServer(router.Handler())
	defer func() { routeTS.Close(); router.Stop() }()

	body := strings.NewReader("{\"v\":1}\n{\"v\":2}\n")
	req, err := http.NewRequest("POST", routeTS.URL+"/v1/streams/x/items?advance=true", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest through router: status %d: %s", resp.StatusCode, data)
	}

	routerSide := fetchTraces(t, routeTS.URL, "?kind=forward&key=x")
	nodeSide := fetchTraces(t, node.ts.URL, "?kind=ingest&key=x")
	if len(routerSide.Traces) == 0 {
		t.Fatal("router ring has no forward trace for key x")
	}
	if len(nodeSide.Traces) == 0 {
		t.Fatal("node ring has no ingest trace for key x")
	}
	fwd, ing := routerSide.Traces[0], nodeSide.Traces[0]
	if fwd.TraceID != ing.TraceID {
		t.Errorf("trace ID split across hops: router %s vs node %s", fwd.TraceID, ing.TraceID)
	}
	fwdStages := stageSet(fwd.Stages)
	for _, stage := range obs.StageNames(obs.KindForward) {
		if !fwdStages[stage] {
			t.Errorf("forward trace missing stage %q", stage)
		}
	}
	ingStages := stageSet(ing.Stages)
	for _, stage := range obs.StageNames(obs.KindIngest) {
		if !ingStages[stage] {
			t.Errorf("node ingest trace missing stage %q", stage)
		}
	}
}
