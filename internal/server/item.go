package server

import (
	"errors"

	"repro/internal/wire"
)

// Item is one opaque stream element. Most items are raw JSON text,
// exactly as they arrived on the wire; items ingested over the compact
// binary framing are stored verbatim in wire item form instead — a
// two-byte row header (first byte ≥ 0x80, which no JSON value can start
// with) followed by little-endian float64s. The two forms are told apart
// by the first byte alone (wire.IsBinItem).
//
// Item implements json.Marshaler, so every JSON boundary — /sample
// responses, checkpoint envelopes (including the sampler snapshot deep
// inside tbs), migration handoffs — materializes binary rows to their
// canonical JSON text automatically. That is the point of the
// representation: the sampler treats items as opaque bytes and discards
// most of them, so deferring rendering to the consumers that actually
// read an item means the hot binary ingest path never formats JSON at
// all (see internal/wire/bin.go for the invariant).
type Item []byte

// MarshalJSON renders the item: JSON text verbatim, binary rows through
// the canonical row renderer.
func (it Item) MarshalJSON() ([]byte, error) {
	if len(it) == 0 {
		return []byte("null"), nil
	}
	if it[0] < 0x80 {
		return it, nil
	}
	return wire.BinItemJSON(it)
}

// UnmarshalJSON stores the raw text, like json.RawMessage. Checkpoint
// restore and the buffered JSON-array ingest path both come through
// here, so restored and array-ingested items are always JSON text.
func (it *Item) UnmarshalJSON(b []byte) error {
	if it == nil {
		return errors.New("server.Item: UnmarshalJSON on nil pointer")
	}
	*it = append((*it)[:0], b...)
	return nil
}
