package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// postNDJSON issues a raw NDJSON ingest request.
func (h *harness) postNDJSON(path, body string) (*http.Response, []byte) {
	h.t.Helper()
	req, err := http.NewRequest("POST", h.ts.URL+path, strings.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp, data
}

// TestNDJSONIngest: line-delimited values land as individual items, blank
// lines and surrounding whitespace are ignored, and ?advance closes the
// batch.
func TestNDJSONIngest(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})

	resp, data := h.postNDJSON("/v1/streams/k/items", "1\n {\"a\":2} \n\n[3,4]\n\"five\"")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Added    int    `json:"added"`
		Pending  int    `json:"pending"`
		Ingested uint64 `json:"ingested"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Added != 4 || out.Pending != 4 || out.Ingested != 4 {
		t.Fatalf("ndjson ingest: %+v, want 4 items", out)
	}

	resp, data = h.postNDJSON("/v1/streams/k/items?advance=true", "6\n7\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out2 struct {
		Added    int  `json:"added"`
		Pending  int  `json:"pending"`
		Advanced bool `json:"advanced"`
	}
	if err := json.Unmarshal(data, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Added != 2 || out2.Pending != 0 || !out2.Advanced {
		t.Fatalf("ndjson ingest+advance: %+v", out2)
	}
	if s := h.sample("k"); s.Size == 0 {
		t.Fatal("empty sample after NDJSON ingest + advance")
	}
}

// TestNDJSONInvalidLine: a malformed line yields a structured 400 naming
// the line, with earlier lines ingested.
func TestNDJSONInvalidLine(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	resp, data := h.postNDJSON("/v1/streams/k/items", "1\n2\n{broken\n4\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Error  string `json:"error"`
		Code   string `json:"code"`
		Added  int    `json:"added"`
		Line   int    `json:"line"`
		Offset int64  `json:"offset"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	// "1\n2\n" is 4 bytes, so the broken third line starts at offset 4.
	if out.Code != "bad_request" || out.Line != 3 || out.Offset != 4 || out.Added != 2 {
		t.Fatalf("invalid-line error: %+v", out)
	}
	if !strings.Contains(out.Error, "line 3") || !strings.Contains(out.Error, "offset 4") {
		t.Fatalf("error message %q lacks line/offset", out.Error)
	}
	var stats struct {
		Pending int `json:"pending"`
	}
	h.do("GET", "/v1/streams/k/stats", nil, http.StatusOK, &stats)
	if stats.Pending != 2 {
		t.Fatalf("pending = %d after partial NDJSON ingest, want 2", stats.Pending)
	}
}

// TestNDJSONMidStreamFailure: a malformed line after several accepted
// pipelined batches reports the exact line and byte offset, while the
// batches already closed stay applied.
func TestNDJSONMidStreamFailure(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	// Five good lines (offsets 0,2,4,6,8), then a broken one at offset 10.
	// With ?batch=2 the first four lines close two engine boundaries
	// before the failure; the fifth is flushed by the error path.
	resp, data := h.postNDJSON("/v1/streams/k/items?batch=2", "1\n2\n3\n4\n5\n{broken\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Code   string `json:"code"`
		Added  int    `json:"added"`
		Line   int    `json:"line"`
		Offset int64  `json:"offset"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != "bad_request" || out.Added != 5 || out.Line != 6 || out.Offset != 10 {
		t.Fatalf("mid-stream failure body: %+v, want added=5 line=6 offset=10", out)
	}
	var stats struct {
		Pending  int    `json:"pending"`
		Ingested uint64 `json:"ingested"`
		Batches  uint64 `json:"batches"`
	}
	h.do("GET", "/v1/streams/k/stats", nil, http.StatusOK, &stats)
	if stats.Ingested != 5 || stats.Batches != 2 || stats.Pending != 1 {
		t.Fatalf("after mid-stream failure: %+v, want ingested=5 batches=2 pending=1", stats)
	}
}

// TestNDJSONEscapeFallback: lines with escape sequences leave the fast
// validator's subset and must still be judged exactly as encoding/json
// does — legal escapes ingest, illegal ones 400 with position.
func TestNDJSONEscapeFallback(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	resp, data := h.postNDJSON("/v1/streams/k/items", `"a\nb"`+"\n"+`{"k\t":1}`+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legal escapes: status %d: %s", resp.StatusCode, data)
	}
	resp, data = h.postNDJSON("/v1/streams/k/items", `"ok"`+"\n"+`"bad\q"`+"\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("illegal escape: status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Line   int   `json:"line"`
		Offset int64 `json:"offset"`
		Added  int   `json:"added"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Line != 2 || out.Offset != 5 || out.Added != 1 {
		t.Fatalf("illegal escape body: %+v, want line=2 offset=5 added=1", out)
	}
}

// TestNDJSONPipelinedBoundaries: ?batch=N closes a boundary every N items
// through the engine; the decay clock ends up where explicit advances
// would have put it.
func TestNDJSONPipelinedBoundaries(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	var body bytes.Buffer
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&body, "%d\n", i)
	}
	resp, data := h.postNDJSON("/v1/streams/k/items?batch=10", body.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Added      int    `json:"added"`
		Boundaries uint64 `json:"boundaries"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Added != 100 || out.Boundaries != 10 {
		t.Fatalf("pipelined ingest: %+v, want added=100 boundaries=10", out)
	}
	var stats struct {
		Pending int     `json:"pending"`
		Batches uint64  `json:"batches"`
		Now     float64 `json:"now"`
	}
	h.do("GET", "/v1/streams/k/stats", nil, http.StatusOK, &stats)
	if stats.Pending != 0 || stats.Batches != 10 || stats.Now != 10 {
		t.Fatalf("after pipelined boundaries: %+v, want pending=0 batches=10 now=10", stats)
	}
}

// TestNDJSONMatchesJSONPath: the streaming decoder and the buffered JSON
// path drive identical sampler trajectories — same items, same boundaries,
// same seed, byte-identical samples.
func TestNDJSONMatchesJSONPath(t *testing.T) {
	drive := func(ndjson bool) sampleResp {
		h := newHarness(t, Options{Sampler: rtbsConfig(7)})
		for batchNo := 1; batchNo <= 5; batchNo++ {
			items := itemBatch("k", batchNo, 25)
			if ndjson {
				var body bytes.Buffer
				for _, v := range items {
					fmt.Fprintf(&body, "%d\n", v)
				}
				resp, data := h.postNDJSON("/v1/streams/k/items?advance=true", body.String())
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d: %s", resp.StatusCode, data)
				}
			} else {
				h.do("POST", "/v1/streams/k/items?advance=true", items, http.StatusOK, nil)
			}
		}
		return h.sample("k")
	}
	jsonSample := drive(false)
	ndjsonSample := drive(true)
	if !reflect.DeepEqual(jsonSample, ndjsonSample) {
		t.Fatalf("paths diverge:\n json: %+v\nndjson: %+v", jsonSample, ndjsonSample)
	}
	if jsonSample.Size == 0 {
		t.Fatal("empty sample")
	}
}

// TestOversizedRequest413: a single request that can never fit the
// open-batch cap gets a structured 413 on both wire formats; a
// transiently full batch still gets 429.
func TestOversizedRequest413(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), MaxPendingItems: 5})

	var errOut struct {
		Code       string `json:"code"`
		LimitItems int    `json:"limitItems"`
	}
	h.do("POST", "/v1/streams/k/items", itemBatch("k", 1, 6), http.StatusRequestEntityTooLarge, &errOut)
	if errOut.Code != "batch_limit" || errOut.LimitItems != 5 {
		t.Fatalf("JSON 413 body: %+v", errOut)
	}

	resp, data := h.postNDJSON("/v1/streams/k/items", "1\n2\n3\n4\n5\n6\n")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("NDJSON oversized: status %d: %s", resp.StatusCode, data)
	}
	var ndErr struct {
		Code  string `json:"code"`
		Added int    `json:"added"`
	}
	if err := json.Unmarshal(data, &ndErr); err != nil {
		t.Fatal(err)
	}
	if ndErr.Code != "batch_limit" || ndErr.Added != 0 {
		t.Fatalf("NDJSON 413 body: %+v", ndErr)
	}

	// Transient fullness keeps its retryable 429.
	h.do("POST", "/v1/streams/k/items", itemBatch("k", 1, 5), http.StatusOK, nil)
	var fullErr struct {
		Code string `json:"code"`
	}
	h.do("POST", "/v1/streams/k/items", 99, http.StatusTooManyRequests, &fullErr)
	if fullErr.Code != "open_batch_full" {
		t.Fatalf("429 body: %+v", fullErr)
	}
}

// TestEngineMetricsExposed: the queue metrics appear once traffic has
// flowed through the engine.
func TestEngineMetricsExposed(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), Shards: 2})
	h.driveStream("k", 1, 3)
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tbsd_engine_workers 2",
		"tbsd_engine_tasks_submitted_total 3",
		"tbsd_engine_tasks_completed_total 3",
		"tbsd_engine_backpressure_total",
		`tbsd_engine_queue_depth{worker="0"}`,
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, data)
		}
	}
}

// TestEngineDisabled: QueueDepth < 0 falls back to inline application and
// everything still works.
func TestEngineDisabled(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1), QueueDepth: -1})
	h.driveStream("k", 1, 3)
	if s := h.sample("k"); s.Size == 0 {
		t.Fatal("empty sample with engine disabled")
	}
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Contains(data, []byte("tbsd_engine_workers")) {
		t.Fatal("engine metrics exposed with the engine disabled")
	}
}

// TestNDJSONBadBatchParam pins the ?batch validation.
func TestNDJSONBadBatchParam(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	for _, v := range []string{"0", "-3", "x"} {
		resp, data := h.postNDJSON("/v1/streams/k/items?batch="+v, "1\n")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch=%s: status %d: %s", v, resp.StatusCode, data)
		}
	}
}
