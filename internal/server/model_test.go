package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// labeledBatch builds a deterministic, linearly separable 2-class batch:
// class 0 clusters near (0,0), class 1 near (10,10), with jitter derived
// arithmetically from (t, i) so two runs see byte-identical items.
func labeledBatch(t, size int) []map[string]any {
	rows := make([]map[string]any, size)
	for i := range rows {
		class := i % 2
		cx := float64(class * 10)
		dx := float64((t*31+i*17)%100) / 100
		dy := float64((t*13+i*7)%100) / 100
		rows[i] = map[string]any{"x": []float64{cx + dx, cx + dy}, "y": class}
	}
	return rows
}

type predictResp struct {
	Key         string    `json:"key"`
	Learner     string    `json:"learner"`
	TrainSize   int       `json:"trainSize"`
	Predictions []float64 `json:"predictions"`
}

type modelStatsResp struct {
	Key   string     `json:"key"`
	Stats modelStats `json:"stats"`
}

func (h *harness) attachModel(key string, spec map[string]any) {
	h.t.Helper()
	h.do("PUT", "/v1/streams/"+key+"/model", spec, http.StatusOK, nil)
}

func (h *harness) predict(key string, queries any, wantStatus int) predictResp {
	h.t.Helper()
	var resp predictResp
	out := any(&resp)
	if wantStatus != http.StatusOK {
		out = nil
	}
	h.do("POST", "/v1/streams/"+key+"/model/predict", queries, wantStatus, out)
	return resp
}

func (h *harness) modelStats(key string) modelStatsResp {
	h.t.Helper()
	var resp modelStatsResp
	h.do("GET", "/v1/streams/"+key+"/model/stats", nil, http.StatusOK, &resp)
	return resp
}

// TestModelLifecycleKNN walks the happy path: attach → labeled ingest →
// advance (trains the first model) → predict → stats.
func TestModelLifecycleKNN(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(7)})
	h.attachModel("k", map[string]any{"learner": "knn", "policy": "always"})

	// Predict before any boundary: attached but not yet trained.
	h.predict("k", map[string]any{"x": []float64{1, 1}}, http.StatusConflict)

	for tt := 1; tt <= 3; tt++ {
		h.do("POST", "/v1/streams/k/items", labeledBatch(tt, 30), http.StatusOK, nil)
		h.do("POST", "/v1/streams/k/advance", nil, http.StatusOK, nil)
	}
	resp := h.predict("k", []map[string]any{{"x": []float64{0.2, 0.3}}, {"x": []float64{10.4, 10.1}}}, http.StatusOK)
	if len(resp.Predictions) != 2 || resp.Predictions[0] != 0 || resp.Predictions[1] != 1 {
		t.Fatalf("predictions = %v, want [0 1]", resp.Predictions)
	}
	if resp.Learner != "knn" || resp.TrainSize == 0 {
		t.Fatalf("predict response = %+v", resp)
	}

	st := h.modelStats("k").Stats
	if !st.HasModel || st.Retrains != 3 || st.Batches != 3 {
		t.Fatalf("stats = %+v, want hasModel retrains=3 batches=3", st)
	}
	// Batch 1 was scored without a model (NaN); batches 2 and 3 scored.
	if st.ScoredBatches != 2 {
		t.Fatalf("scoredBatches = %d, want 2", st.ScoredBatches)
	}
	if st.LastBatchErr == nil || *st.LastBatchErr != 0 {
		t.Fatalf("lastBatchErr = %v, want 0 on separable data", st.LastBatchErr)
	}

	// Unlabeled traffic coexists: opaque items are sampled, not scored.
	h.do("POST", "/v1/streams/k/items", []map[string]any{{"note": "unlabeled"}}, http.StatusOK, nil)

	// Detach and confirm the model endpoints go away.
	h.do("DELETE", "/v1/streams/k/model", nil, http.StatusOK, nil)
	h.do("GET", "/v1/streams/k/model/stats", nil, http.StatusNotFound, nil)
}

// TestModelLinreg: the regression learner reports MSE and predicts real
// values.
func TestModelLinreg(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(9)})
	h.attachModel("r", map[string]any{"learner": "linreg", "policy": "always"})
	// y = 2*x0 + 3*x1 + 1, exactly.
	for tt := 1; tt <= 2; tt++ {
		rows := make([]map[string]any, 20)
		for i := range rows {
			x0, x1 := float64((tt*7+i)%10), float64((tt*3+i*2)%10)
			rows[i] = map[string]any{"x": []float64{x0, x1}, "y": 2*x0 + 3*x1 + 1}
		}
		h.do("POST", "/v1/streams/r/items", rows, http.StatusOK, nil)
		h.do("POST", "/v1/streams/r/advance", nil, http.StatusOK, nil)
	}
	resp := h.predict("r", map[string]any{"x": []float64{4, 5}}, http.StatusOK)
	if got := resp.Predictions[0]; got < 23.9 || got > 24.1 {
		t.Fatalf("linreg predict(4,5) = %v, want ≈24", got)
	}
	st := h.modelStats("r").Stats
	if st.LastBatchErr == nil || *st.LastBatchErr > 1e-9 {
		t.Fatalf("linreg lastBatchErr = %v, want ≈0 (MSE on exact data)", st.LastBatchErr)
	}
}

// TestModelNaiveBayes: the text learner reads word-id features.
func TestModelNaiveBayes(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(11)})
	h.attachModel("nb", map[string]any{"learner": "nb", "policy": "always"})
	for tt := 1; tt <= 2; tt++ {
		rows := make([]map[string]any, 24)
		for i := range rows {
			class := i % 2
			base := class * 4 // class 0 uses words 0–3, class 1 words 4–7
			rows[i] = map[string]any{
				"x": []float64{float64(base + (i+tt)%4), float64(base + (i+2*tt)%4)},
				"y": class,
			}
		}
		h.do("POST", "/v1/streams/nb/items", rows, http.StatusOK, nil)
		h.do("POST", "/v1/streams/nb/advance", nil, http.StatusOK, nil)
	}
	resp := h.predict("nb", []map[string]any{{"x": []float64{0, 1}}, {"x": []float64{5, 6}}}, http.StatusOK)
	if resp.Predictions[0] != 0 || resp.Predictions[1] != 1 {
		t.Fatalf("nb predictions = %v, want [0 1]", resp.Predictions)
	}
}

// TestModelSpecValidation: malformed specs are rejected with 400 and a
// structured code.
func TestModelSpecValidation(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(1)})
	for _, spec := range []map[string]any{
		{"learner": "forest"},
		{"learner": ""},
		{"learner": "knn", "k": -1},
		{"learner": "knn", "policy": "every:0"},
		{"learner": "knn", "policy": "sometimes"},
		{"learner": "knn", "policy": "drift", "drift": map[string]any{"factor": -2}},
		{"learner": "knn", "bogus": true},
	} {
		h.do("PUT", "/v1/streams/v/model", spec, http.StatusBadRequest, nil)
	}
	// Model routes on a stream that was never created 404.
	h.do("GET", "/v1/streams/ghost/model", nil, http.StatusNotFound, nil)
	h.do("POST", "/v1/streams/ghost/model/predict", map[string]any{"x": []float64{1}}, http.StatusNotFound, nil)
}

// TestModelTrainFailureKeepsDeployed: a retrain that cannot fit (here: a
// sample with no labeled rows after attach on unlabeled-only traffic)
// surfaces as trainFailures while serving continues (no model — 409, not
// 500). Then labeled data arrives and training succeeds.
func TestModelTrainFailureRecovers(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(13)})
	h.attachModel("f", map[string]any{"learner": "knn", "policy": "always"})
	h.do("POST", "/v1/streams/f/items", []map[string]any{{"opaque": 1}, {"opaque": 2}}, http.StatusOK, nil)
	h.do("POST", "/v1/streams/f/advance", nil, http.StatusOK, nil)
	st := h.modelStats("f").Stats
	if st.HasModel || st.TrainFailures == 0 || st.LastTrainErr == "" {
		t.Fatalf("stats after unlabeled-only training = %+v, want a surfaced train failure", st)
	}
	h.predict("f", map[string]any{"x": []float64{1, 1}}, http.StatusConflict)

	h.do("POST", "/v1/streams/f/items", labeledBatch(1, 20), http.StatusOK, nil)
	h.do("POST", "/v1/streams/f/advance", nil, http.StatusOK, nil)
	st = h.modelStats("f").Stats
	if !st.HasModel || st.Retrains != 1 {
		t.Fatalf("stats after labeled training = %+v, want a deployed model", st)
	}
}

// TestModelHostileRowsSurfaceAsTrainFailures: labels, word ids and
// feature widths come from client rows and size the fitters' allocations
// — a hostile row must produce a surfaced train failure, never an OOM on
// the background worker.
func TestModelHostileRowsSurfaceAsTrainFailures(t *testing.T) {
	h := newHarness(t, Options{Sampler: rtbsConfig(19)})
	cases := []struct {
		key  string
		spec map[string]any
		row  map[string]any
	}{
		{"huge-label", map[string]any{"learner": "nb", "policy": "always"},
			map[string]any{"x": []float64{0}, "y": 1e15}},
		{"huge-word", map[string]any{"learner": "nb", "policy": "always"},
			map[string]any{"x": []float64{1e15}, "y": 0}},
		// Each axis individually under its cap, but the product would be
		// 2³² table cells: the joint cap must catch it.
		{"huge-product", map[string]any{"learner": "nb", "policy": "always"},
			map[string]any{"x": []float64{float64(maxModelVocab - 1)}, "y": maxModelClasses - 1}},
		{"negative-label", map[string]any{"learner": "knn", "policy": "always"},
			map[string]any{"x": []float64{1}, "y": -3}},
		{"wide-row", map[string]any{"learner": "linreg", "policy": "always"},
			map[string]any{"x": make([]float64, maxModelFeatures+1), "y": 1.0}},
	}
	for _, tc := range cases {
		h.attachModel(tc.key, tc.spec)
		h.do("POST", "/v1/streams/"+tc.key+"/items", []map[string]any{tc.row}, http.StatusOK, nil)
		h.do("POST", "/v1/streams/"+tc.key+"/advance", nil, http.StatusOK, nil)
		st := h.modelStats(tc.key).Stats
		if st.HasModel || st.TrainFailures == 0 || st.LastTrainErr == "" {
			t.Errorf("%s: stats = %+v, want a surfaced train failure", tc.key, st)
		}
	}
	// Spec-level caps are rejected up front.
	h.do("PUT", "/v1/streams/x/model",
		map[string]any{"learner": "nb", "classes": maxModelClasses + 1}, http.StatusBadRequest, nil)
	h.do("PUT", "/v1/streams/x/model",
		map[string]any{"learner": "nb", "vocab": 1 << 30}, http.StatusBadRequest, nil)
	h.do("PUT", "/v1/streams/x/model",
		map[string]any{"learner": "nb", "classes": maxModelClasses, "vocab": maxModelVocab},
		http.StatusBadRequest, nil)
}

// TestModelKillRestartDeterminism is the PR's acceptance test: with a
// model under a drift policy attached, kill + restart must restore the
// model, the policy state and the counters exactly — post-restore stats
// and predictions match the pre-kill reads, and continuing the stream
// matches an uninterrupted reference run.
func TestModelKillRestartDeterminism(t *testing.T) {
	driftSpec := map[string]any{
		"learner": "knn", "policy": "drift",
		"drift": map[string]any{"window": 5, "factor": 1, "minObs": 2, "maxStale": 4},
	}
	queries := []map[string]any{
		{"x": []float64{0.4, 0.4}}, {"x": []float64{10.2, 10.3}}, {"x": []float64{5, 5}},
	}
	drive := func(h *harness, from, to int) {
		for tt := from; tt <= to; tt++ {
			batch := labeledBatch(tt, 24)
			if tt > 6 {
				// Concept drift: classes swap, so the drift policy has
				// something real to detect.
				for _, row := range batch {
					row["y"] = 1 - row["y"].(int)
				}
			}
			h.do("POST", "/v1/streams/m/items", batch, http.StatusOK, nil)
			h.do("POST", "/v1/streams/m/advance", nil, http.StatusOK, nil)
		}
	}
	opts := func(dir string) Options {
		return Options{Sampler: rtbsConfig(21), Shards: 4, CheckpointDir: dir}
	}

	// Interrupted run: batches 1–5, read stats+predictions, kill.
	dir := t.TempDir()
	h1 := newHarness(t, opts(dir))
	h1.attachModel("m", driftSpec)
	drive(h1, 1, 5)
	preStats := h1.modelStats("m")
	prePred := h1.predict("m", queries, http.StatusOK)
	h1.close()

	// Restart: the restored model must answer identically before any new
	// traffic, and stats (retrain count, policy state) must round-trip.
	h2 := newHarness(t, opts(dir))
	postPred := h2.predict("m", queries, http.StatusOK)
	if !reflect.DeepEqual(postPred, prePred) {
		t.Fatalf("post-restore predictions diverge:\n got %+v\nwant %+v", postPred, prePred)
	}
	postStats := h2.modelStats("m")
	if !reflect.DeepEqual(postStats, preStats) {
		t.Fatalf("post-restore model stats diverge:\n got %+v\nwant %+v", postStats, preStats)
	}
	if postStats.Stats.Retrains == 0 {
		t.Fatal("no retrains recorded before the kill — the test is vacuous")
	}
	drive(h2, 6, 10)
	resumedStats := h2.modelStats("m")
	resumedPred := h2.predict("m", queries, http.StatusOK)
	resumedSample := h2.sample("m")

	// Uninterrupted reference run with the same request sequence.
	ref := newHarness(t, Options{Sampler: rtbsConfig(21), Shards: 4})
	ref.attachModel("m", driftSpec)
	drive(ref, 1, 5)
	ref.modelStats("m")
	ref.predict("m", queries, http.StatusOK)
	drive(ref, 6, 10)

	if want := ref.modelStats("m"); !reflect.DeepEqual(resumedStats, want) {
		t.Errorf("resumed model stats diverge from uninterrupted run:\n got %+v\nwant %+v", resumedStats, want)
	}
	if want := ref.predict("m", queries, http.StatusOK); !reflect.DeepEqual(resumedPred, want) {
		t.Errorf("resumed predictions diverge from uninterrupted run:\n got %+v\nwant %+v", resumedPred, want)
	}
	if want := ref.sample("m"); !reflect.DeepEqual(resumedSample, want) {
		t.Errorf("resumed sample diverges from uninterrupted run")
	}
	if resumedStats.Stats.Retrains <= postStats.Stats.Retrains {
		t.Errorf("drift policy never fired after the restart: %d retrains", resumedStats.Stats.Retrains)
	}
}

// TestPredictDuringRetrainRace is the -race workout for the atomic model
// swap: readers hammer predict and stats while boundaries retrain the
// model under policy "always", concurrently with checkpoint passes.
func TestPredictDuringRetrainRace(t *testing.T) {
	h := newHarness(t, Options{
		Sampler:            rtbsConfig(17),
		Shards:             2,
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: 2 * time.Millisecond,
	})
	h.attachModel("hot", map[string]any{"learner": "knn", "policy": "always"})
	// Deploy the first model so readers see 200s.
	h.do("POST", "/v1/streams/hot/items", labeledBatch(0, 20), http.StatusOK, nil)
	h.do("POST", "/v1/streams/hot/advance", nil, http.StatusOK, nil)

	stop := make(chan struct{})
	var served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, _ := json.Marshal(map[string]any{"x": []float64{float64(g), float64(g)}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(h.ts.URL+"/v1/streams/hot/model/predict", "application/json", bytes.NewReader(q))
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict status %d mid-retrain", resp.StatusCode)
					return
				}
				served.Add(1)
			}
		}()
	}
	// Writer: 30 boundaries, each retraining (policy always) on the
	// background lane while the readers run.
	for tt := 1; tt <= 30; tt++ {
		h.do("POST", "/v1/streams/hot/items", labeledBatch(tt, 15), http.StatusOK, nil)
		h.do("POST", "/v1/streams/hot/advance", nil, http.StatusOK, nil)
	}
	st := h.modelStats("hot").Stats
	close(stop)
	wg.Wait()
	if st.Retrains != 31 {
		t.Errorf("retrains = %d, want 31 (one per boundary)", st.Retrains)
	}
	if served.Load() == 0 {
		t.Error("no predictions served during the retrain storm")
	}
}
