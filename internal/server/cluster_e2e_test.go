package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// This file is the clustered acceptance test: three tbsd nodes behind a
// consistent-hash router, NDJSON ingest through the router, a live
// stream migration, a kill -9 of one node, and a full cluster restart —
// with every surviving stream's state compared byte-for-byte against a
// single-node control server that saw the same traffic. Placement is
// keyed on node names, so the restarted cluster (new ports, same names)
// routes every key exactly as before.

// e2eCluster is three harness nodes, a router over them, and the
// lockstep control node.
type e2eCluster struct {
	t       *testing.T
	names   []string
	nodes   map[string]*harness
	dirs    map[string]string
	ring    *cluster.Ring
	router  *cluster.Router
	routeTS *httptest.Server
	ctl     *harness
}

func nodeAddr(h *harness) string { return strings.TrimPrefix(h.ts.URL, "http://") }

func (c *e2eCluster) buildRouter() {
	c.t.Helper()
	var members []cluster.Node
	for _, name := range c.names {
		members = append(members, cluster.Node{Name: name, Addr: nodeAddr(c.nodes[name])})
	}
	ring, err := cluster.NewRing(members, 64)
	if err != nil {
		c.t.Fatal(err)
	}
	c.ring = ring
	c.router, err = cluster.NewRouter(cluster.RouterOptions{
		Ring:          ring,
		ProbeInterval: 5 * time.Millisecond,
		FailThreshold: 2,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.router.Start()
	c.routeTS = httptest.NewServer(c.router.Handler())
	c.t.Cleanup(func() { c.routeTS.Close(); c.router.Stop() })
}

func newE2ECluster(t *testing.T) *e2eCluster {
	t.Helper()
	c := &e2eCluster{
		t:     t,
		names: []string{"a", "b", "c"},
		nodes: make(map[string]*harness),
		dirs:  make(map[string]string),
	}
	for _, name := range c.names {
		dir := t.TempDir()
		c.dirs[name] = dir
		c.nodes[name] = newHarness(t, handoffOpts(dir, 5))
	}
	c.buildRouter()
	c.ctl = newHarness(t, handoffOpts(t.TempDir(), 5))
	return c
}

// via issues one request through the router and decodes the JSON answer.
func (c *e2eCluster) via(method, path, contentType, body string, wantStatus int) map[string]any {
	c.t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, c.routeTS.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s via router: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s via router: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, data)
	}
	var out map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			c.t.Fatalf("%s %s via router: decode %q: %v", method, path, data, err)
		}
	}
	return out
}

// ndjsonPhase is one deterministic NDJSON round for (key, t): 25 lines,
// pipelined boundary every 10, final advance.
func ndjsonPhase(key string, t int) string {
	var b strings.Builder
	for i := 0; i < 25; i++ {
		fmt.Fprintf(&b, `{"k":%q,"t":%d,"i":%d}`+"\n", key, t, i)
	}
	return b.String()
}

// drive pushes phases [from, to] for every key through the router AND
// through the control in lockstep.
func (c *e2eCluster) drive(keys []string, from, to int) {
	c.t.Helper()
	for t := from; t <= to; t++ {
		for _, key := range keys {
			body := ndjsonPhase(key, t)
			path := "/v1/streams/" + key + "/items?batch=10&advance=true"
			c.via("POST", path, "application/x-ndjson", body, http.StatusOK)
			c.ctl.mustNDJSON(key, "?batch=10&advance=true", body)
		}
	}
}

// sampleVia fetches one realized sample through the router, decoding the
// raw body (no map round-trip, which would reorder item JSON keys).
func (c *e2eCluster) sampleVia(key string) sampleResp {
	c.t.Helper()
	resp, err := http.Get(c.routeTS.URL + "/v1/streams/" + key + "/sample")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("sample %s via router: status %d: %s", key, resp.StatusCode, data)
	}
	var s sampleResp
	if err := json.Unmarshal(data, &s); err != nil {
		c.t.Fatal(err)
	}
	return s
}

func TestClusterEndToEnd(t *testing.T) {
	c := newE2ECluster(t)

	// Enough keys that every node owns at least one (placement is
	// deterministic, so this assertion cannot flake).
	var keys []string
	for i := 0; i < 24; i++ {
		keys = append(keys, fmt.Sprintf("e2e-%02d", i))
	}
	owned := map[string]int{}
	for _, k := range keys {
		owned[c.ring.Owner(k).Name]++
	}
	for _, name := range c.names {
		if owned[name] == 0 {
			t.Fatalf("node %s owns no keys; placement degenerate (%v)", name, owned)
		}
	}

	// Phase 1: NDJSON ingest through the router, mirrored to control.
	c.drive(keys, 1, 4)

	// The routed view lists every key exactly once.
	list := c.via("GET", "/v1/streams", "", "", http.StatusOK)
	if got := int(list["count"].(float64)); got != len(keys) {
		t.Fatalf("router lists %d streams, want %d", got, len(keys))
	}

	// Phase 2: live migration of one of node a's keys to node b.
	migKey := ""
	for _, k := range keys {
		if c.ring.Owner(k).Name == "a" {
			migKey = k
			break
		}
	}
	out := c.via("POST", "/cluster/handoff?key="+migKey+"&to=b", "", "", http.StatusOK)
	if out["moved"] != true {
		t.Fatalf("handoff response %v", out)
	}
	// The old owner now answers 421 for the key when asked directly...
	c.nodes["a"].do("GET", "/v1/streams/"+migKey+"/stats", nil, http.StatusMisdirectedRequest, nil)
	// ...but the router override keeps the key serving, and acknowledged
	// traffic keeps flowing to its new home.
	c.drive(keys, 5, 6)

	// Byte-identical check across the whole cluster, migration included:
	// every key's realized sample equals the control's.
	for _, k := range keys {
		got, want := c.sampleVia(k), c.ctl.sample(k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q sample diverged from control after migration:\n  cluster: %+v\n  control: %+v", k, got, want)
		}
	}

	// Phase 3: kill -9 node c. Its keys answer structured 503s naming
	// the dead owner; everyone else's keys (including the migrated one)
	// keep serving.
	c.nodes["c"].kill()
	waitForCond(t, "c marked down", func() bool { return !c.router.Prober().Healthy("c") })
	var deadKey, aliveKey string
	for _, k := range keys {
		switch c.ring.Owner(k).Name {
		case "c":
			deadKey = k
		case "a":
			if k != migKey {
				aliveKey = k
			}
		}
	}
	errBody := c.via("GET", "/v1/streams/"+deadKey+"/stats", "", "", http.StatusServiceUnavailable)
	if errBody["code"] != "node_down" || errBody["node"] != "c" {
		t.Fatalf("dead node error body %v, want code node_down for node c", errBody)
	}
	c.via("GET", "/v1/streams/"+aliveKey+"/stats", "", "", http.StatusOK)
	c.via("GET", "/v1/streams/"+migKey+"/stats", "", "", http.StatusOK)

	// Phase 4: full cluster restart — every node killed (no graceful
	// checkpoint) and rebooted from its own disk, new ports, same names;
	// fresh ring and router. The control restarts the same way.
	preStats := c.nodes["b"].stats(migKey)
	ctlDir := c.ctl.srv.opts.CheckpointDir
	c.nodes["a"].kill()
	c.nodes["b"].kill()
	c.ctl.kill()
	for _, name := range c.names {
		c.nodes[name] = newHarness(t, handoffOpts(c.dirs[name], 5))
	}
	c.buildRouter()
	c.ctl = newHarness(t, handoffOpts(ctlDir, 5))

	// The migrated stream must NOT resurrect at the source (tombstone)…
	c.nodes["a"].do("GET", "/v1/streams/"+migKey+"/stats", nil, http.StatusNotFound, nil)
	// …and must resume on the target with the exact pre-kill state.
	if got := c.nodes["b"].stats(migKey); !reflect.DeepEqual(got, preStats) {
		t.Fatalf("migrated stream after restart %+v, want %+v", got, preStats)
	}
	if got, want := c.nodes["b"].sample(migKey), c.ctl.sample(migKey); !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated stream sample after restart diverged:\n  target:  %+v\n  control: %+v", got, want)
	}

	// Every unmigrated key routes to its original owner (names pin
	// placement) and matches the control byte-for-byte.
	for _, k := range keys {
		if k == migKey {
			continue
		}
		got, want := c.sampleVia(k), c.ctl.sample(k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q diverged from control after cluster restart:\n  cluster: %+v\n  control: %+v", k, got, want)
		}
	}
}

// waitForCond polls until cond holds or a 5s deadline passes.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
