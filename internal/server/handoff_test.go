package server

import (
	"net/http"
	"reflect"
	"testing"
)

// handoffOpts is the migration test configuration: WAL + checkpoints on,
// background checkpointer effectively off, so what moves in a handoff is
// exactly what the envelope carries.
func handoffOpts(dir string, seed uint64) Options {
	o := walOpts(dir, seed)
	o.Advertise = "http://" + dir // any stable identity string
	return o
}

// handoff drives POST /v1/streams/{key}/handoff and returns the decoded
// response.
func (h *harness) handoff(key, targetURL string, wantStatus int) map[string]any {
	h.t.Helper()
	var out map[string]any
	h.do("POST", "/v1/streams/"+key+"/handoff?target="+targetURL, nil, wantStatus, &out)
	return out
}

// TestHandoffMovesStreamByteIdentical is the migration acceptance test:
// after a handoff the target must continue the stream's exact stochastic
// process — counters, sampler state and RNG trajectory — which is proven
// by lockstep comparison against a control server that ran the same
// traffic without ever migrating.
func TestHandoffMovesStreamByteIdentical(t *testing.T) {
	src := newHarness(t, handoffOpts(t.TempDir(), 5))
	dst := newHarness(t, handoffOpts(t.TempDir(), 5))
	ctl := newHarness(t, handoffOpts(t.TempDir(), 5))

	const key = "mig-k"
	src.driveStream(key, 1, 8)
	ctl.driveStream(key, 1, 8)
	preStats := src.stats(key)

	out := src.handoff(key, dst.ts.URL, http.StatusOK)
	if out["handedOff"] != true {
		t.Fatalf("handoff response %v", out)
	}
	if got := uint64(out["ingested"].(float64)); got != preStats.Ingested {
		t.Errorf("envelope carried ingested=%d, source had %d", got, preStats.Ingested)
	}

	// The source now refuses the key with 421 + the new home.
	var moved map[string]any
	src.do("GET", "/v1/streams/"+key+"/stats", nil, http.StatusMisdirectedRequest, &moved)
	if moved["code"] != "stream_moved" || moved["target"] != dst.ts.URL {
		t.Errorf("source 421 body %v must carry code stream_moved and the target", moved)
	}
	src.do("POST", "/v1/streams/"+key+"/items", itemBatch(key, 9, 5), http.StatusMisdirectedRequest, nil)

	// The target serves the stream with the source's exact counters.
	if got, want := dst.stats(key), preStats; !reflect.DeepEqual(got, want) {
		t.Fatalf("target stats %+v, want source's pre-handoff %+v", got, want)
	}

	// Continue identical traffic on target and control, then compare the
	// realized samples — byte-identical items prove the RNG trajectory
	// and reservoir state moved intact.
	dst.driveStream(key, 9, 12)
	ctl.driveStream(key, 9, 12)
	ds, cs := dst.sample(key), ctl.sample(key)
	if !reflect.DeepEqual(ds, cs) {
		t.Fatalf("post-handoff sample diverged from control:\n  target:  %+v\n  control: %+v", ds, cs)
	}

	// And the stream is gone from the source's listing but present on the
	// target's.
	var list struct {
		Streams []string `json:"streams"`
	}
	src.do("GET", "/v1/streams", nil, http.StatusOK, &list)
	for _, k := range list.Streams {
		if k == key {
			t.Errorf("source still lists %q after handoff", key)
		}
	}
}

// TestHandoffMovesModel: a stream with a managed model migrates with its
// deployed model bytes and policy clock — the target predicts exactly
// like the control.
func TestHandoffMovesModel(t *testing.T) {
	src := newHarness(t, handoffOpts(t.TempDir(), 9))
	dst := newHarness(t, handoffOpts(t.TempDir(), 9))
	ctl := newHarness(t, handoffOpts(t.TempDir(), 9))

	const key = "model-mig"
	spec := map[string]any{"learner": "knn", "policy": "every:2"}
	for _, h := range []*harness{src, ctl} {
		h.attachModel(key, spec)
		for tt := 1; tt <= 4; tt++ {
			h.do("POST", "/v1/streams/"+key+"/items", labeledBatch(tt, 30), http.StatusOK, nil)
			h.do("POST", "/v1/streams/"+key+"/advance", nil, http.StatusOK, nil)
		}
	}
	src.handoff(key, dst.ts.URL, http.StatusOK)

	queries := []map[string]any{{"x": []float64{0.3, 0.4}}, {"x": []float64{10.2, 10.3}}}
	got := dst.predict(key, queries, http.StatusOK)
	want := ctl.predict(key, queries, http.StatusOK)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adopted model predicts %+v, control %+v", got, want)
	}
	if gs, ws := dst.modelStats(key), ctl.modelStats(key); !reflect.DeepEqual(gs, ws) {
		t.Fatalf("adopted model stats %+v, control %+v", gs, ws)
	}
}

// TestHandoffSurvivesRestart: a migrated stream must stay migrated
// across a full cluster restart — the source's tombstone prevents
// resurrection, the target's persisted adoption checkpoint brings the
// stream back, and the state still matches a control run killed and
// restarted at the same point.
func TestHandoffSurvivesRestart(t *testing.T) {
	srcDir, dstDir, ctlDir := t.TempDir(), t.TempDir(), t.TempDir()
	src := newHarness(t, handoffOpts(srcDir, 5))
	dst := newHarness(t, handoffOpts(dstDir, 5))
	ctl := newHarness(t, handoffOpts(ctlDir, 5))

	const key = "restart-mig"
	src.driveStream(key, 1, 6)
	ctl.driveStream(key, 1, 6)
	src.driveStream("stays-home", 1, 3)
	src.handoff(key, dst.ts.URL, http.StatusOK)

	// Acknowledged post-handoff traffic on the target must survive too.
	dst.driveStream(key, 7, 9)
	ctl.driveStream(key, 7, 9)
	preStats := dst.stats(key)

	// kill -9 everything; restart each node from its own disk.
	src.kill()
	dst.kill()
	ctl.kill()
	src2 := newHarness(t, handoffOpts(srcDir, 5))
	dst2 := newHarness(t, handoffOpts(dstDir, 5))
	ctl2 := newHarness(t, handoffOpts(ctlDir, 5))

	// The source must NOT resurrect the migrated stream (tombstone), but
	// must keep its other stream.
	src2.do("GET", "/v1/streams/"+key+"/stats", nil, http.StatusNotFound, nil)
	if st := src2.stats("stays-home"); st.Batches != 3 {
		t.Errorf("unmigrated stream lost by restart: %+v", st)
	}

	// The target resumes the adopted stream exactly where it was killed.
	if got := dst2.stats(key); !reflect.DeepEqual(got, preStats) {
		t.Fatalf("restarted target stats %+v, want %+v", got, preStats)
	}
	ds, cs := dst2.sample(key), ctl2.sample(key)
	if !reflect.DeepEqual(ds, cs) {
		t.Fatalf("post-restart sample diverged from control:\n  target:  %+v\n  control: %+v", ds, cs)
	}
}

// TestHandoffErrorPaths covers the structured failures: unknown stream,
// bad target, unreachable target, and a target that already owns the
// key — and that every failure leaves the source stream unfrozen and
// serving.
func TestHandoffErrorPaths(t *testing.T) {
	src := newHarness(t, handoffOpts(t.TempDir(), 5))
	dst := newHarness(t, handoffOpts(t.TempDir(), 5))

	// Unknown stream.
	src.handoff("ghost", dst.ts.URL, http.StatusNotFound)

	const key = "err-k"
	src.driveStream(key, 1, 2)

	// Missing / malformed target.
	var out map[string]any
	src.do("POST", "/v1/streams/"+key+"/handoff", nil, http.StatusBadRequest, &out)
	if out["code"] != "bad_request" {
		t.Errorf("missing target: code = %v", out["code"])
	}
	src.handoff(key, "not-a-url", http.StatusBadRequest)

	// Unreachable target: structured 502, stream stays home and usable.
	out = src.handoff(key, "http://127.0.0.1:1", http.StatusBadGateway)
	if out["code"] != "target_unreachable" {
		t.Errorf("unreachable target: code = %v", out["code"])
	}
	src.driveStream(key, 3, 3) // not frozen, not moved

	// Target already owns the key: the target's 409 is relayed as a
	// structured 502 and the source stream again stays usable.
	dst.driveStream(key, 1, 1)
	out = src.handoff(key, dst.ts.URL, http.StatusBadGateway)
	if out["code"] != "handoff_rejected" {
		t.Errorf("occupied target: code = %v", out["code"])
	}
	if got := out["targetStatus"].(float64); got != http.StatusConflict {
		t.Errorf("targetStatus = %v, want 409", got)
	}
	src.driveStream(key, 4, 4)
	if st := src.stats(key); st.Batches != 4 {
		t.Errorf("source stream corrupted by failed handoffs: %+v", st)
	}
}

// TestAdoptRejectsBadEnvelopes: the adopt endpoint validates key match
// and envelope shape.
func TestAdoptRejectsBadEnvelopes(t *testing.T) {
	h := newHarness(t, handoffOpts(t.TempDir(), 5))
	var out map[string]any
	h.do("POST", "/v1/streams/k/adopt", map[string]any{"state": map[string]any{"key": "other"}},
		http.StatusBadRequest, &out)
	if out["code"] != "bad_envelope" {
		t.Errorf("key mismatch: code = %v", out["code"])
	}
	h.do("POST", "/v1/streams/k/adopt", "not an envelope", http.StatusBadRequest, nil)
}

// TestDeleteClearsMovedMarker: DELETE on a moved key is the operator
// explicitly discarding the forwarding memory — afterwards the key 404s
// and fresh ingest recreates it locally.
func TestDeleteClearsMovedMarker(t *testing.T) {
	src := newHarness(t, handoffOpts(t.TempDir(), 5))
	dst := newHarness(t, handoffOpts(t.TempDir(), 5))
	const key = "del-k"
	src.driveStream(key, 1, 2)
	src.handoff(key, dst.ts.URL, http.StatusOK)
	src.do("GET", "/v1/streams/"+key+"/stats", nil, http.StatusMisdirectedRequest, nil)
	src.do("DELETE", "/v1/streams/"+key, nil, http.StatusOK, nil)
	src.do("GET", "/v1/streams/"+key+"/stats", nil, http.StatusNotFound, nil)
	src.driveStream(key, 1, 1) // recreated fresh, no 421
	if st := src.stats(key); st.Batches != 1 {
		t.Errorf("recreated stream stats %+v", st)
	}
}
