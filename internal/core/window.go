package core

import "fmt"

// SlidingWindow is the count-based sliding-window baseline ("SW" in the
// paper's experiments): the sample is exactly the last n items seen. It
// adapts instantly to distribution changes but forgets old data completely,
// which is what causes the large error spikes the paper documents when old
// patterns reassert themselves (Sections 1 and 6).
type SlidingWindow[T any] struct {
	n     int
	buf   []T // ring buffer, len(buf) == n once full
	start int // index of the oldest item
	size  int
}

// NewSlidingWindow returns a window over the last n items.
func NewSlidingWindow[T any](n int) (*SlidingWindow[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: window size must be positive, got %d", n)
	}
	return &SlidingWindow[T]{n: n, buf: make([]T, n)}, nil
}

// Advance appends the batch, evicting the oldest items beyond capacity.
func (s *SlidingWindow[T]) Advance(batch []T) {
	for _, x := range batch {
		idx := (s.start + s.size) % s.n
		if s.size == s.n {
			// Overwrite the oldest item.
			s.buf[s.start] = x
			s.start = (s.start + 1) % s.n
		} else {
			s.buf[idx] = x
			s.size++
		}
	}
}

// Sample returns the window contents, oldest first.
func (s *SlidingWindow[T]) Sample() []T {
	return s.AppendSample(make([]T, 0, s.size))
}

// AppendSample appends the window contents, oldest first, to dst; see
// core.AppendSampler.
func (s *SlidingWindow[T]) AppendSample(dst []T) []T {
	for i := 0; i < s.size; i++ {
		dst = append(dst, s.buf[(s.start+i)%s.n])
	}
	return dst
}

// Size returns the number of items currently held.
func (s *SlidingWindow[T]) Size() int { return s.size }

// ExpectedSize returns the exact current size.
func (s *SlidingWindow[T]) ExpectedSize() float64 { return float64(s.size) }

// Capacity returns n.
func (s *SlidingWindow[T]) Capacity() int { return s.n }

// TimeWindow is the wall-clock-time sliding-window baseline: the sample is
// every item that arrived within the last horizon time units. Its size is
// unbounded when the arrival rate is high and decays to zero when the
// stream dries up (Section 1's discussion of time-based windows).
type TimeWindow[T any] struct {
	horizon float64
	now     float64
	items   []T
	times   []float64
}

// NewTimeWindow returns a window keeping items with age < horizon.
func NewTimeWindow[T any](horizon float64) (*TimeWindow[T], error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("core: window horizon must be positive, got %v", horizon)
	}
	return &TimeWindow[T]{horizon: horizon}, nil
}

// Advance processes the batch arriving at time Now()+1.
func (s *TimeWindow[T]) Advance(batch []T) { s.AdvanceAt(s.now+1, batch) }

// AdvanceAt processes a batch at real-valued time t > Now().
func (s *TimeWindow[T]) AdvanceAt(t float64, batch []T) {
	if t <= s.now {
		panic(fmt.Sprintf("core: TimeWindow.AdvanceAt time %v not after current time %v", t, s.now))
	}
	s.now = t
	// Items are stored in arrival order, so expired items form a prefix.
	cut := 0
	for cut < len(s.times) && s.times[cut] <= t-s.horizon {
		cut++
	}
	if cut > 0 {
		s.items = append(s.items[:0], s.items[cut:]...)
		s.times = append(s.times[:0], s.times[cut:]...)
	}
	for _, x := range batch {
		s.items = append(s.items, x)
		s.times = append(s.times, t)
	}
}

// Sample returns the window contents, oldest first.
func (s *TimeWindow[T]) Sample() []T {
	return s.AppendSample(make([]T, 0, len(s.items)))
}

// AppendSample appends the window contents, oldest first, to dst; see
// core.AppendSampler.
func (s *TimeWindow[T]) AppendSample(dst []T) []T { return append(dst, s.items...) }

// Size returns the number of items currently held.
func (s *TimeWindow[T]) Size() int { return len(s.items) }

// ExpectedSize returns the exact current size.
func (s *TimeWindow[T]) ExpectedSize() float64 { return float64(len(s.items)) }

// Now returns the time of the most recent batch.
func (s *TimeWindow[T]) Now() float64 { return s.now }
