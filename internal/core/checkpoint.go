package core

import (
	"fmt"

	"repro/internal/xrand"
)

// This file implements checkpoint/restore for the samplers. Section 5.1 of
// the paper requires the distributed implementations to "periodically
// checkpoint the sample as well as other system state variables to ensure
// fault tolerance"; the same mechanism lets single-node samplers survive
// process restarts. Snapshots capture the complete sampler state —
// including the RNG — so a restored sampler continues the exact same
// stochastic process: feeding identical future batches yields identical
// samples. Snapshot types have only exported fields and serialize cleanly
// with encoding/gob or encoding/json (items of type T must themselves be
// serializable).

// RTBSSnapshot is the full state of an RTBS sampler.
type RTBSSnapshot[T any] struct {
	Lambda  float64
	N       int
	Full    []T
	Partial []T // 0 or 1 elements
	C       float64
	W       float64
	Now     float64
	RNG     xrand.State
}

// Snapshot captures the sampler's complete state. The item slices are
// copied.
func (s *RTBS[T]) Snapshot() RTBSSnapshot[T] {
	return RTBSSnapshot[T]{
		Lambda:  s.lambda,
		N:       s.n,
		Full:    append([]T(nil), s.latent.full...),
		Partial: append([]T(nil), s.latent.partial...),
		C:       s.latent.weight,
		W:       s.w,
		Now:     s.now,
		RNG:     s.rng.State(),
	}
}

// RestoreRTBS reconstructs a sampler from a snapshot, validating its
// structural invariants.
func RestoreRTBS[T any](snap RTBSSnapshot[T]) (*RTBS[T], error) {
	if !ValidateLambda(snap.Lambda) || snap.N <= 0 {
		return nil, fmt.Errorf("core: invalid snapshot parameters λ=%v n=%d", snap.Lambda, snap.N)
	}
	if snap.C < 0 || snap.W < 0 || snap.C > snap.W+1e-9 || snap.C > float64(snap.N)+1e-9 {
		return nil, fmt.Errorf("core: inconsistent snapshot weights C=%v W=%v n=%d", snap.C, snap.W, snap.N)
	}
	if float64(len(snap.Full)) != snap.C-frac(snap.C) {
		// Exactly ⌊C⌋ full items required.
		return nil, fmt.Errorf("core: snapshot has %d full items, want ⌊C⌋ = %v",
			len(snap.Full), snap.C-frac(snap.C))
	}
	wantPartial := 0
	if frac(snap.C) > 0 {
		wantPartial = 1
	}
	if len(snap.Partial) != wantPartial {
		return nil, fmt.Errorf("core: snapshot has %d partial items, want %d", len(snap.Partial), wantPartial)
	}
	rng, err := xrand.FromState(snap.RNG)
	if err != nil {
		return nil, err
	}
	return &RTBS[T]{
		lambda: snap.Lambda,
		n:      snap.N,
		rng:    rng,
		latent: &Latent[T]{
			full:    append([]T(nil), snap.Full...),
			partial: append(make([]T, 0, 1), snap.Partial...),
			weight:  snap.C,
		},
		w:   snap.W,
		now: snap.Now,
	}, nil
}

// TTBSSnapshot is the full state of a TTBS sampler.
type TTBSSnapshot[T any] struct {
	Lambda float64
	N      int
	B      float64
	Sample []T
	Now    float64
	RNG    xrand.State
}

// Snapshot captures the sampler's complete state.
func (s *TTBS[T]) Snapshot() TTBSSnapshot[T] {
	return TTBSSnapshot[T]{
		Lambda: s.lambda,
		N:      s.n,
		B:      s.b,
		Sample: append([]T(nil), s.sample...),
		Now:    s.now,
		RNG:    s.rng.State(),
	}
}

// RestoreTTBS reconstructs a sampler from a snapshot.
func RestoreTTBS[T any](snap TTBSSnapshot[T]) (*TTBS[T], error) {
	rng, err := xrand.FromState(snap.RNG)
	if err != nil {
		return nil, err
	}
	s, err := NewTTBSFrom(snap.Lambda, snap.N, snap.B, snap.Sample, rng)
	if err != nil {
		return nil, err
	}
	s.now = snap.Now
	return s, nil
}

// BRSSnapshot is the full state of a BRS sampler.
type BRSSnapshot[T any] struct {
	N      int
	Sample []T
	Seen   int
	RNG    xrand.State
}

// Snapshot captures the sampler's complete state.
func (s *BRS[T]) Snapshot() BRSSnapshot[T] {
	return BRSSnapshot[T]{
		N:      s.n,
		Sample: append([]T(nil), s.sample...),
		Seen:   s.w,
		RNG:    s.rng.State(),
	}
}

// RestoreBRS reconstructs a sampler from a snapshot.
func RestoreBRS[T any](snap BRSSnapshot[T]) (*BRS[T], error) {
	if snap.Seen < len(snap.Sample) {
		return nil, fmt.Errorf("core: snapshot claims %d seen < %d sampled", snap.Seen, len(snap.Sample))
	}
	rng, err := xrand.FromState(snap.RNG)
	if err != nil {
		return nil, err
	}
	s, err := NewBRSFrom(snap.N, snap.Sample, rng)
	if err != nil {
		return nil, err
	}
	s.w = snap.Seen
	return s, nil
}
