package core

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/xrand"
)

// feedRTBS runs a deterministic batch schedule against a sampler.
func feedRTBS(s *RTBS[int], from, to int) [][]int {
	var outputs [][]int
	id := from * 1000
	for t := from; t < to; t++ {
		b := (t*17)%60 + 1
		batch := make([]int, b)
		for i := range batch {
			batch[i] = id
			id++
		}
		s.Advance(batch)
		outputs = append(outputs, s.Sample())
	}
	return outputs
}

// TestRTBSSnapshotContinuation: restoring from a snapshot and continuing
// the stream must yield bit-identical samples to the uninterrupted run.
func TestRTBSSnapshotContinuation(t *testing.T) {
	full, err := NewRTBS[int](0.15, 40, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	feedRTBS(full, 0, 25)
	snap := full.Snapshot()
	wantTail := feedRTBS(full, 25, 50)

	restored, err := RestoreRTBS(snap)
	if err != nil {
		t.Fatal(err)
	}
	gotTail := feedRTBS(restored, 25, 50)

	if len(gotTail) != len(wantTail) {
		t.Fatalf("tail lengths differ")
	}
	for step := range wantTail {
		if len(gotTail[step]) != len(wantTail[step]) {
			t.Fatalf("step %d: sizes %d vs %d", step, len(gotTail[step]), len(wantTail[step]))
		}
		for i := range wantTail[step] {
			if gotTail[step][i] != wantTail[step][i] {
				t.Fatalf("step %d item %d: %d vs %d", step, i, gotTail[step][i], wantTail[step][i])
			}
		}
	}
}

// TestRTBSSnapshotGobRoundtrip: the snapshot must survive gob and json
// encoding (the realistic checkpoint media).
func TestRTBSSnapshotGobRoundtrip(t *testing.T) {
	s, err := NewRTBS[int](0.2, 20, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	feedRTBS(s, 0, 10)
	snap := s.Snapshot()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	var back RTBSSnapshot[int]
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreRTBS(back); err != nil {
		t.Fatalf("gob roundtrip restore: %v", err)
	}

	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back2 RTBSSnapshot[int]
	if err := json.Unmarshal(js, &back2); err != nil {
		t.Fatal(err)
	}
	r2, err := RestoreRTBS(back2)
	if err != nil {
		t.Fatalf("json roundtrip restore: %v", err)
	}
	if math.Abs(r2.TotalWeight()-s.TotalWeight()) > 1e-9 {
		t.Errorf("W mismatch after roundtrip: %v vs %v", r2.TotalWeight(), s.TotalWeight())
	}
}

func TestRestoreRTBSValidation(t *testing.T) {
	good := func() RTBSSnapshot[int] {
		s, _ := NewRTBS[int](0.1, 10, xrand.New(9))
		feedRTBS(s, 0, 5)
		return s.Snapshot()
	}
	cases := map[string]func(*RTBSSnapshot[int]){
		"negative lambda": func(s *RTBSSnapshot[int]) { s.Lambda = -1 },
		"zero n":          func(s *RTBSSnapshot[int]) { s.N = 0 },
		"C > W":           func(s *RTBSSnapshot[int]) { s.W = s.C - 1 },
		"C > n":           func(s *RTBSSnapshot[int]) { s.C = float64(s.N) + 2; s.W = s.C + 5 },
		"wrong full count": func(s *RTBSSnapshot[int]) {
			s.Full = append(s.Full, 999)
		},
		"wrong partial count": func(s *RTBSSnapshot[int]) {
			s.Partial = append(s.Partial, 999, 998)
		},
		"zero rng": func(s *RTBSSnapshot[int]) { s.RNG = xrand.State{} },
	}
	for name, corrupt := range cases {
		snap := good()
		corrupt(&snap)
		if _, err := RestoreRTBS(snap); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", name)
		}
	}
	if _, err := RestoreRTBS(good()); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

func TestTTBSSnapshotContinuation(t *testing.T) {
	s, err := NewTTBS[int](0.1, 50, 60, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int, 60)
	for i := 0; i < 20; i++ {
		s.Advance(batch)
	}
	snap := s.Snapshot()
	var want [][]int
	for i := 0; i < 20; i++ {
		s.Advance(batch)
		want = append(want, s.Sample())
	}
	r, err := RestoreTTBS(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Now() != 20 {
		t.Errorf("restored Now = %v", r.Now())
	}
	for i := 0; i < 20; i++ {
		r.Advance(batch)
		got := r.Sample()
		if len(got) != len(want[i]) {
			t.Fatalf("step %d: size %d vs %d", i, len(got), len(want[i]))
		}
	}
}

func TestBRSSnapshotContinuation(t *testing.T) {
	s, err := NewBRS[int](30, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Advance(make([]int, 20))
	}
	snap := s.Snapshot()
	r, err := RestoreBRS(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seen() != s.Seen() || r.Size() != s.Size() {
		t.Errorf("restored Seen=%d Size=%d, want %d/%d", r.Seen(), r.Size(), s.Seen(), s.Size())
	}
	// Continuations must coincide exactly.
	s.Advance(make([]int, 25))
	r.Advance(make([]int, 25))
	if s.Seen() != r.Seen() || s.Size() != r.Size() {
		t.Error("continuations diverged")
	}
	// Invalid snapshot.
	bad := snap
	bad.Seen = 1
	if _, err := RestoreBRS(bad); err == nil {
		t.Error("inconsistent BRS snapshot accepted")
	}
}

func TestXrandStateRoundtrip(t *testing.T) {
	r := xrand.New(42)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	_ = r.NormFloat64() // populate the spare
	st := r.State()
	clone, err := xrand.FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if r.Uint64() != clone.Uint64() {
			t.Fatalf("restored RNG diverged at step %d", i)
		}
	}
	if r.NormFloat64() != clone.NormFloat64() {
		t.Error("normal spares diverged")
	}
	if _, err := xrand.FromState(xrand.State{}); err == nil {
		t.Error("all-zero state accepted")
	}
}
