package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestBChaoValidation(t *testing.T) {
	if _, err := NewBChao[int](-1, 10, xrand.New(1)); err == nil {
		t.Error("negative λ accepted")
	}
	if _, err := NewBChao[int](0.1, 0, xrand.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewBChao[int](0.1, 5, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestBChaoSizeIsMinSeenN(t *testing.T) {
	const n = 50
	c, err := NewBChao[int](0.2, n, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	rng := xrand.New(3)
	for i := 0; i < 200; i++ {
		b := rng.Intn(20)
		batch := make([]int, b)
		c.Advance(batch)
		seen += b
		want := seen
		if want > n {
			want = n
		}
		if c.Size() != want {
			t.Fatalf("step %d: size %d, want %d (seen %d)", i, c.Size(), want, seen)
		}
		if got := len(c.Sample()); got != want {
			t.Fatalf("step %d: |Sample()| = %d, want %d", i, got, want)
		}
	}
}

// TestBChaoOverweightUnderSlowArrivals reproduces the Appendix D failure
// mode: with a high decay rate and slow arrivals, newly arrived items become
// "overweight" and are pinned in the sample with probability one, violating
// property (1). We check that V is indeed nonempty in that regime.
func TestBChaoOverweightUnderSlowArrivals(t *testing.T) {
	const n = 20
	c, err := NewBChao[int](1.0, n, xrand.New(4)) // aggressive decay
	if err != nil {
		t.Fatal(err)
	}
	// Fill the reservoir.
	fill := make([]int, n)
	c.Advance(fill)
	// Now a long quiet period followed by single-item batches: each
	// arriving item's weight (1) dwarfs the decayed aggregate, so it must
	// be classified overweight.
	for i := 0; i < 10; i++ {
		c.Advance([]int{100 + i})
	}
	if c.Overweight() == 0 {
		t.Error("expected overweight items under slow arrivals with high λ")
	}
	if c.Size() != n {
		t.Errorf("size %d, want %d (B-Chao never shrinks)", c.Size(), n)
	}
}

// TestBChaoSteadyStateDecay checks that in a fast-arrival steady state
// (no overweight items) the inclusion probabilities do follow the
// exponential-decay profile, matching Chao's design goal.
func TestBChaoSteadyStateDecay(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.1
		n        = 20
		b        = 40
		batches  = 10
		replicas = 30000
	)
	perBatch := make([]float64, batches)
	for rep := 0; rep < replicas; rep++ {
		c, err := NewBChao[int](lambda, n, xrand.New(uint64(rep)+11000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for bi := 0; bi < batches; bi++ {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			c.Advance(batch)
		}
		if c.Overweight() != 0 {
			t.Fatalf("unexpected overweight items in fast-arrival regime")
		}
		for _, item := range c.Sample() {
			perBatch[item/b]++
		}
	}
	// Check relative decay between consecutive non-initial batches (skip
	// the fill-up phase, where property (1) is knowingly violated).
	p := make([]float64, batches)
	for i := range p {
		p[i] = perBatch[i] / (replicas * b)
	}
	for bi := 3; bi < batches-1; bi++ {
		ratio := p[bi] / p[bi+1]
		want := math.Exp(-lambda)
		if math.Abs(ratio-want) > 0.06 {
			t.Errorf("batch %d/%d ratio = %v, want %v", bi+1, bi+2, ratio, want)
		}
	}
}

// TestBChaoFillUpViolation quantifies the Appendix D claim that B-Chao
// violates property (1) during fill-up: items arriving in the first and
// second batches end up with identical inclusion probabilities even though
// the second batch is one decay unit younger.
func TestBChaoFillUpViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		lambda   = 0.5
		n        = 40
		b        = 10
		replicas = 20000
	)
	// Two batches of 10 into a reservoir of 40: still filling up, so all
	// 20 items are retained with probability 1 — ratio 1 instead of e^−λ.
	var older, newer float64
	for rep := 0; rep < replicas; rep++ {
		c, err := NewBChao[int](lambda, n, xrand.New(uint64(rep)+12000))
		if err != nil {
			t.Fatal(err)
		}
		batch1 := make([]int, b)
		batch2 := make([]int, b)
		for i := range batch1 {
			batch1[i] = i
			batch2[i] = b + i
		}
		c.Advance(batch1)
		c.Advance(batch2)
		for _, item := range c.Sample() {
			if item < b {
				older++
			} else {
				newer++
			}
		}
	}
	ratio := older / newer
	if math.Abs(ratio-1) > 0.02 {
		t.Fatalf("fill-up ratio = %v; expected ≈ 1 (the violation)", ratio)
	}
	// And e^{−0.5} ≈ 0.61, so the correct ratio would be far from 1 —
	// document the gap explicitly.
	if want := math.Exp(-lambda); math.Abs(ratio-want) < 0.1 {
		t.Fatalf("ratio %v unexpectedly satisfies property (1)", ratio)
	}
}

func TestBChaoDecayBookkeeping(t *testing.T) {
	// With λ = 0 and steady batches, B-Chao degenerates to plain Chao /
	// uniform sampling: W counts items seen.
	c, err := NewBChao[int](0, 10, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Advance(make([]int, 7))
	}
	if math.Abs(c.TotalWeight()-70) > 1e-9 {
		t.Errorf("W = %v, want 70", c.TotalWeight())
	}
	if c.Overweight() != 0 {
		t.Errorf("overweight = %d", c.Overweight())
	}
}

func TestBChaoAdvanceAtPanicsOnPast(t *testing.T) {
	c, err := NewBChao[int](0.1, 5, xrand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	c.AdvanceAt(2, []int{1})
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-increasing time")
		}
	}()
	c.AdvanceAt(2, []int{2})
}
