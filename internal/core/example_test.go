package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/xrand"
)

// ExampleRTBS shows the basic sampling loop: the reservoir accepts
// everything while unsaturated, then enforces the bound exactly.
func ExampleRTBS() {
	sampler, err := core.NewRTBS[int](0.1, 100, xrand.New(1))
	if err != nil {
		panic(err)
	}
	for t := 0; t < 10; t++ {
		batch := make([]int, 50)
		sampler.Advance(batch)
	}
	fmt.Printf("bounded at %d: |S| = %d\n", sampler.MaxSize(), len(sampler.Sample()))
	fmt.Printf("saturated: %v\n", sampler.Saturated())
	// Output:
	// bounded at 100: |S| = 100
	// saturated: true
}

// ExampleRTBS_unsaturated shows the fractional-sample regime: when the
// total decayed weight W stays below the bound, the expected sample size
// equals W exactly and the sample shrinks if the stream dries up.
func ExampleRTBS_unsaturated() {
	sampler, err := core.NewRTBS[string](0.5, 1000, xrand.New(2))
	if err != nil {
		panic(err)
	}
	sampler.Advance([]string{"a", "b", "c", "d"})
	fmt.Printf("after one batch: C = %.2f\n", sampler.ExpectedSize())
	sampler.Advance(nil) // a quiet tick decays the sample weight by e^-0.5
	fmt.Printf("after silence:   C = %.2f\n", sampler.ExpectedSize())
	// Output:
	// after one batch: C = 4.00
	// after silence:   C = 2.43
}

// ExampleRTBS_snapshot demonstrates checkpointing: a restored sampler
// continues the exact same stochastic process.
func ExampleRTBS_snapshot() {
	s, _ := core.NewRTBS[int](0.2, 10, xrand.New(3))
	s.Advance([]int{1, 2, 3, 4, 5})
	snap := s.Snapshot()

	restored, err := core.RestoreRTBS(snap)
	if err != nil {
		panic(err)
	}
	s.Advance([]int{6, 7})
	restored.Advance([]int{6, 7})
	fmt.Println(s.TotalWeight() == restored.TotalWeight())
	fmt.Println(len(s.Sample()) == len(restored.Sample()))
	// Output:
	// true
	// true
}

// ExampleLambdaForRetention reproduces the paper's Section 1 rule of
// thumb for choosing the decay rate.
func ExampleLambdaForRetention() {
	lambda := core.LambdaForRetention(40, 0.10)
	fmt.Printf("keep 10%% of items for 40 batches: λ ≈ %.3f\n", lambda)
	// Output:
	// keep 10% of items for 40 batches: λ ≈ 0.058
}

// ExampleTTBS shows targeted-size sampling: the sample size hovers around
// the target when the mean batch size matches the assumption.
func ExampleTTBS() {
	sampler, err := core.NewTTBS[int](0.1, 200, 100, xrand.New(4))
	if err != nil {
		panic(err)
	}
	for t := 0; t < 200; t++ {
		sampler.Advance(make([]int, 100))
	}
	size := sampler.Size()
	fmt.Println(size > 150 && size < 250)
	// Output:
	// true
}
