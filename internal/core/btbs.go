package core

import (
	"fmt"

	"repro/internal/xrand"
)

// BTBS is plain Bernoulli time-biased sampling (Appendix A, Algorithm 4),
// the scheme of Xie et al. [32]: accept every arriving item, then retain
// each sample item with probability e^−λ at every tick. Property (1) holds
// — Pr[x ∈ Sₜ′] = exp(−λ(t′−t)) for x ∈ Bₜ — but the user cannot control
// the sample size independently of λ: it fluctuates around b/(1−e^−λ)
// (Remark 1) and grows without bound if batch sizes grow.
type BTBS[T any] struct {
	lambda float64
	rng    *xrand.RNG
	sample []T
	now    float64
}

// NewBTBS returns a B-TBS sampler with decay rate lambda (> 0).
func NewBTBS[T any](lambda float64, rng *xrand.RNG) (*BTBS[T], error) {
	switch {
	case !ValidateLambda(lambda) || lambda == 0:
		return nil, fmt.Errorf("core: B-TBS requires a positive decay rate, got λ = %v", lambda)
	case rng == nil:
		return nil, fmt.Errorf("core: nil RNG")
	}
	return &BTBS[T]{lambda: lambda, rng: rng}, nil
}

// Advance processes the batch arriving at time Now()+1.
func (s *BTBS[T]) Advance(batch []T) { s.AdvanceAt(s.now+1, batch) }

// AdvanceAt processes a batch at real-valued time t > Now().
func (s *BTBS[T]) AdvanceAt(t float64, batch []T) {
	if t <= s.now {
		panic(fmt.Sprintf("core: BTBS.AdvanceAt time %v not after current time %v", t, s.now))
	}
	p := decayFactor(s.lambda, t-s.now)
	s.now = t
	m := s.rng.Binomial(len(s.sample), p)
	s.sample = xrand.SampleInPlace(s.rng, s.sample, m)
	s.sample = append(s.sample, batch...)
}

// Sample returns a copy of the current sample.
func (s *BTBS[T]) Sample() []T {
	return s.AppendSample(make([]T, 0, len(s.sample)))
}

// AppendSample appends the current sample to dst; see core.AppendSampler.
func (s *BTBS[T]) AppendSample(dst []T) []T { return append(dst, s.sample...) }

// Size returns the exact current sample size.
func (s *BTBS[T]) Size() int { return len(s.sample) }

// ExpectedSize returns the exact current size.
func (s *BTBS[T]) ExpectedSize() float64 { return float64(len(s.sample)) }

// DecayRate returns λ.
func (s *BTBS[T]) DecayRate() float64 { return s.lambda }

// TotalWeight returns the current sample size (B-TBS keeps every surviving
// item, so its sample is its weight).
func (s *BTBS[T]) TotalWeight() float64 { return float64(len(s.sample)) }

// Now returns the time of the most recent batch.
func (s *BTBS[T]) Now() float64 { return s.now }
