package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestRTBSInclusionProbabilityInvariant is a property test of equation (4):
// under a randomly generated sequence of real-valued batch times and batch
// sizes, every surviving item's empirical inclusion frequency must match
// InclusionProbability(arrival) = (Cₜ/Wₜ)·exp(−λ(t−arrival)). The arrival
// schedule is drawn once from a meta-RNG and replayed across many
// independent sampler trajectories; realization goes through the
// AppendSample path, so the test also pins that the zero-allocation read
// path draws correct realizations.
func TestRTBSInclusionProbabilityInvariant(t *testing.T) {
	const (
		lambda = 0.3
		n      = 30
		steps  = 14
		trials = 4000
	)
	meta := xrand.New(20260729)

	// One random real-valued schedule shared by every trial.
	times := make([]float64, steps)
	sizes := make([]int, steps)
	tm := 0.0
	for j := range times {
		tm += 0.1 + 2.9*meta.Float64() // irregular positive gaps
		times[j] = tm
		sizes[j] = 5 + meta.Intn(21) // 5..25 items per batch
	}

	// Items are tagged batchIndex*1000+position, so a realized item maps
	// back to its arrival time.
	included := make([]int, steps) // per batch: realized-item count over all trials
	var predicted []float64
	var buf []int
	for trial := 0; trial < trials; trial++ {
		s, err := NewRTBS[int](lambda, n, xrand.New(uint64(trial)+1))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < steps; j++ {
			batch := make([]int, sizes[j])
			for i := range batch {
				batch[i] = j*1000 + i
			}
			s.AdvanceAt(times[j], batch)
		}
		buf = s.AppendSample(buf[:0])
		for _, v := range buf {
			included[v/1000]++
		}
		if trial == 0 {
			for j := 0; j < steps; j++ {
				predicted = append(predicted, s.InclusionProbability(times[j]))
			}
			// The schedule is deterministic, so C, W and the predictions are
			// identical in every trial; sanity-check the prediction range.
			for j, p := range predicted {
				if p < 0 || p > 1 {
					t.Fatalf("predicted inclusion probability %v for batch %d out of [0,1]", p, j)
				}
			}
		}
	}

	var sumAbs float64
	for j := 0; j < steps; j++ {
		emp := float64(included[j]) / float64(sizes[j]*trials)
		diff := math.Abs(emp - predicted[j])
		sumAbs += diff
		// Per-batch tolerance: items within one trial are negatively
		// correlated, so the binomial σ bound is conservative; allow 5σ of
		// the independent-draw approximation plus slack for tiny p.
		sigma := math.Sqrt(predicted[j] * (1 - predicted[j]) / float64(sizes[j]*trials))
		tol := 5*sigma + 0.004
		if diff > tol {
			t.Errorf("batch %d (t=%.2f): empirical %.4f vs predicted %.4f (|Δ|=%.4f > tol %.4f)",
				j, times[j], emp, predicted[j], diff, tol)
		}
	}
	if mean := sumAbs / steps; mean > 0.01 {
		t.Errorf("mean |empirical−predicted| = %.4f, want ≤ 0.01", mean)
	}

	// Equation (3) corollary: the expected realized size equals Cₜ.
	s, _ := NewRTBS[int](lambda, n, xrand.New(1))
	for j := 0; j < steps; j++ {
		s.AdvanceAt(times[j], make([]int, sizes[j]))
	}
	var expected float64
	for j := 0; j < steps; j++ {
		expected += float64(sizes[j]) * s.InclusionProbability(times[j])
	}
	if c := s.ExpectedSize(); math.Abs(expected-c) > 1e-6 {
		t.Errorf("Σ sizes·Pr = %v but sample weight C = %v", expected, c)
	}
}
