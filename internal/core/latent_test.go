package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func latentInvariantOK[T any](l *Latent[T]) bool {
	wantFull := int(math.Floor(l.Weight()))
	wantPartial := 0
	if frac(l.Weight()) > 0 {
		wantPartial = 1
	}
	return l.NumFull() == wantFull && len(l.partial) == wantPartial
}

func TestNewLatent(t *testing.T) {
	l := NewLatent([]int{1, 2, 3})
	if l.Weight() != 3 {
		t.Errorf("weight = %v", l.Weight())
	}
	if l.NumFull() != 3 || l.HasPartial() {
		t.Errorf("full=%d partial=%v", l.NumFull(), l.HasPartial())
	}
	if l.Footprint() != 3 {
		t.Errorf("footprint = %d", l.Footprint())
	}
	if !latentInvariantOK(l) {
		t.Error("invariant violated")
	}
}

func TestRealizeExpectedSize(t *testing.T) {
	rng := xrand.New(100)
	l := NewLatent([]int{1, 2, 3, 4})
	l.Downsample(rng, 3.6)
	if !latentInvariantOK(l) {
		t.Fatal("invariant violated after downsample")
	}
	const trials = 100000
	var sizes float64
	for i := 0; i < trials; i++ {
		s := l.Realize(rng)
		if len(s) != 3 && len(s) != 4 {
			t.Fatalf("realized size %d, want 3 or 4", len(s))
		}
		sizes += float64(len(s))
	}
	mean := sizes / trials
	if math.Abs(mean-3.6) > 0.01 {
		t.Errorf("mean realized size = %v, want 3.6 (equation (3))", mean)
	}
}

func TestDownsampleEdges(t *testing.T) {
	rng := xrand.New(101)
	l := NewLatent([]int{1, 2, 3})

	// target == C is a no-op.
	l.Downsample(rng, 3)
	if l.Weight() != 3 || l.NumFull() != 3 {
		t.Error("no-op downsample changed state")
	}

	// target == 0 empties.
	l.Downsample(rng, 0)
	if l.Weight() != 0 || l.Footprint() != 0 {
		t.Error("downsample to 0 did not empty the sample")
	}
}

func TestDownsamplePanicsOutOfRange(t *testing.T) {
	for _, target := range []float64{-0.5, 3.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Downsample(%v) did not panic", target)
				}
			}()
			NewLatent([]int{1, 2, 3}).Downsample(xrand.New(1), target)
		}()
	}
}

// measureInclusion runs `trials` independent downsample+realize experiments
// starting from weight C over items 0..ceil(C)-1 (item ceil(C)-1 partial if
// frac(C)>0) and returns the empirical inclusion frequency of each item
// after downsampling to target.
func measureInclusion(t *testing.T, c, target float64, trials int, seed uint64) []float64 {
	t.Helper()
	rng := xrand.New(seed)
	nItems := int(math.Ceil(c))
	counts := make([]float64, nItems)
	for i := 0; i < trials; i++ {
		l := buildLatent(rng, c)
		l.Downsample(rng, target)
		if !latentInvariantOK(l) {
			t.Fatalf("invariant violated: C=%v→%v full=%d partial=%v weight=%v",
				c, target, l.NumFull(), l.HasPartial(), l.Weight())
		}
		if l.Weight() != target {
			t.Fatalf("weight after downsample = %v, want %v", l.Weight(), target)
		}
		for _, item := range l.Realize(rng) {
			counts[item]++
		}
	}
	for i := range counts {
		counts[i] /= float64(trials)
	}
	return counts
}

// buildLatent constructs a latent sample of weight c whose full items are
// 0..⌊c⌋-1 and whose partial item (if frac(c) > 0) is ⌈c⌉-1.
func buildLatent(rng *xrand.RNG, c float64) *Latent[int] {
	n := int(math.Floor(c))
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	l := NewLatent(items)
	if frac(c) > 0 {
		l.partial = append(l.partial, n)
		l.weight = c
	}
	return l
}

// TestDownsampleScaling verifies Theorem 4.1: downsampling from weight C to
// C′ scales every item's inclusion probability by exactly C′/C. The cases
// cover every branch of Algorithm 3, including the paper's Figure 4
// examples.
func TestDownsampleScaling(t *testing.T) {
	cases := []struct{ c, target float64 }{
		{3, 1.5},   // Fig. 4(a): integral C, items deleted
		{3.2, 1.6}, // Fig. 4(b): fractional C, items deleted
		{2.4, 0.4}, // Fig. 4(c): no full items retained
		{2.4, 2.1}, // Fig. 4(d): no items deleted
		{4.7, 4.2}, // no items deleted, larger sample
		{3.2, 2.0}, // integral target: partial must vanish
		{5, 4},     // integral to integral
		{1.8, 0.9}, // ⌊C′⌋ = 0 with fractional C
		{0.7, 0.3}, // all-partial corner
	}
	const trials = 200000
	for ci, tc := range cases {
		probs := measureInclusion(t, tc.c, tc.target, trials, uint64(7000+ci))
		scale := tc.target / tc.c
		nFull := int(math.Floor(tc.c))
		for item, got := range probs {
			before := 1.0
			if item >= nFull {
				before = frac(tc.c)
			}
			want := scale * before
			se := math.Sqrt(want*(1-want)/trials) + 1e-9
			if math.Abs(got-want) > 6*se {
				t.Errorf("C=%v→%v item %d: inclusion %v, want %v (±%v)",
					tc.c, tc.target, item, got, want, 6*se)
			}
		}
	}
}

// TestDownsampleChainInvariant drives random chains of downsamples and
// checks the structural invariants (quick.Check-style property test).
func TestDownsampleChainInvariant(t *testing.T) {
	rng := xrand.New(500)
	f := func(startRaw uint8, steps []uint16) bool {
		c := float64(startRaw%40) + 0.99*float64(startRaw%97)/97
		if c <= 0 {
			c = 1.5
		}
		l := buildLatent(rng, c)
		for _, s := range steps {
			target := l.Weight() * float64(s%1000) / 1000
			if target >= l.Weight() {
				continue
			}
			l.Downsample(rng, target)
			if !latentInvariantOK(l) || l.Weight() != target {
				return false
			}
			if l.Weight() == 0 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAppendFull(t *testing.T) {
	rng := xrand.New(501)
	l := buildLatent(rng, 2.5)
	l.appendFull([]int{10, 11, 12})
	if l.Weight() != 5.5 {
		t.Errorf("weight = %v, want 5.5", l.Weight())
	}
	if l.NumFull() != 5 || !l.HasPartial() {
		t.Errorf("full=%d partial=%v", l.NumFull(), l.HasPartial())
	}
	if !latentInvariantOK(l) {
		t.Error("invariant violated")
	}
}

func TestSwap1AndMove1(t *testing.T) {
	rng := xrand.New(502)
	// swap1 with empty partial moves a full item out.
	l := NewLatent([]int{1, 2, 3})
	l.swap1(rng)
	if l.NumFull() != 2 || !l.HasPartial() {
		t.Errorf("swap1 empty-π: full=%d partial=%v", l.NumFull(), l.HasPartial())
	}
	// swap1 with a partial exchanges; footprint unchanged.
	before := l.Footprint()
	l.swap1(rng)
	if l.Footprint() != before || l.NumFull() != 2 || !l.HasPartial() {
		t.Error("swap1 with partial should preserve footprint")
	}
	// move1 replaces the partial, shrinking A by one.
	l.move1(rng)
	if l.NumFull() != 1 || !l.HasPartial() {
		t.Errorf("move1: full=%d partial=%v", l.NumFull(), l.HasPartial())
	}
}

func TestFullAccessorZeroCopy(t *testing.T) {
	l := NewLatent([]int{4, 5, 6})
	got := l.Full()
	if len(got) != 3 {
		t.Fatalf("Full() len = %d", len(got))
	}
}
