package core

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/xrand"
)

// ARes is a time-biased bounded sampler built from the A-Res weighted
// reservoir scheme of Efraimidis and Spirakis [16] combined with the
// forward-decay technique of Cormode et al. [13] — the design the paper
// discusses in Section 7 (and names as future work) as the closest
// bounded-sample alternative to R-TBS.
//
// Each arriving item receives the forward-decay weight w(i) = exp(λ·tᵢ)
// (weights grow with arrival time instead of decaying, which avoids
// rescaling stored state) and the key u^{1/w(i)} with u ~ Uniform(0,1);
// the sample is the n items with the largest keys. Keys are kept in log
// space — ln(key) = ln(u)·exp(−λ·tᵢ) — so the scheme is numerically stable
// for arbitrarily long streams.
//
// A-Res biases *acceptance* probabilities rather than *appearance*
// probabilities: as the paper argues (citing Efraimidis [15]), the
// resulting appearance probabilities are neither equal to nor proportional
// to exp(−λ·age), so property (1) fails — most visibly while the reservoir
// fills and when arrivals are slow. The `ares-violation` experiment
// quantifies the gap against R-TBS. ARes is provided as a baseline and as
// a starting point for the forward-decay extension of R-TBS.
type ARes[T any] struct {
	lambda float64
	n      int
	rng    *xrand.RNG
	h      aresHeap[T]
	now    float64
}

type aresEntry[T any] struct {
	item   T
	logKey float64 // ln(u)·exp(−λ·t) ≤ 0
}

// aresHeap is a min-heap on logKey, so the root is the eviction candidate.
type aresHeap[T any] []aresEntry[T]

func (h aresHeap[T]) Len() int              { return len(h) }
func (h aresHeap[T]) Less(i, j int) bool    { return h[i].logKey < h[j].logKey }
func (h aresHeap[T]) Swap(i, j int)         { h[i], h[j] = h[j], h[i] }
func (h *aresHeap[T]) Push(x any)           { *h = append(*h, x.(aresEntry[T])) }
func (h *aresHeap[T]) Pop() any             { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h aresHeap[T]) peekMin() aresEntry[T] { return h[0] }

// NewARes returns an A-Res forward-decay sampler with decay rate lambda
// and sample bound n.
func NewARes[T any](lambda float64, n int, rng *xrand.RNG) (*ARes[T], error) {
	switch {
	case !ValidateLambda(lambda):
		return nil, fmt.Errorf("core: invalid decay rate λ = %v", lambda)
	case n <= 0:
		return nil, fmt.Errorf("core: sample size must be positive, got %d", n)
	case rng == nil:
		return nil, fmt.Errorf("core: nil RNG")
	}
	return &ARes[T]{lambda: lambda, n: n, rng: rng}, nil
}

// Advance processes the batch arriving at time Now()+1.
func (s *ARes[T]) Advance(batch []T) { s.AdvanceAt(s.now+1, batch) }

// AdvanceAt processes a batch at real-valued time t > Now().
func (s *ARes[T]) AdvanceAt(t float64, batch []T) {
	if t <= s.now {
		panic(fmt.Sprintf("core: ARes.AdvanceAt time %v not after current time %v", t, s.now))
	}
	s.now = t
	// ln(key) = ln(u) / w = ln(u)·exp(−λ·t). Larger is better; all values
	// are negative and later arrivals have keys nearer zero.
	scale := math.Exp(-s.lambda * t)
	for _, x := range batch {
		lk := math.Log(s.rng.Float64Open()) * scale
		if len(s.h) < s.n {
			heap.Push(&s.h, aresEntry[T]{item: x, logKey: lk})
			continue
		}
		if lk > s.h.peekMin().logKey {
			s.h[0] = aresEntry[T]{item: x, logKey: lk}
			heap.Fix(&s.h, 0)
		}
	}
}

// Sample returns a copy of the current sample.
func (s *ARes[T]) Sample() []T {
	return s.AppendSample(make([]T, 0, len(s.h)))
}

// AppendSample appends the current sample to dst; see core.AppendSampler.
func (s *ARes[T]) AppendSample(dst []T) []T {
	for i := range s.h {
		dst = append(dst, s.h[i].item)
	}
	return dst
}

// Size returns the exact current sample size.
func (s *ARes[T]) Size() int { return len(s.h) }

// ExpectedSize returns the exact current size.
func (s *ARes[T]) ExpectedSize() float64 { return float64(len(s.h)) }

// DecayRate returns λ.
func (s *ARes[T]) DecayRate() float64 { return s.lambda }

// Now returns the time of the most recent batch.
func (s *ARes[T]) Now() float64 { return s.now }
