package core

import (
	"fmt"

	"repro/internal/xrand"
)

// RTBS is Reservoir-based Time-Biased Sampling (Algorithm 2), the paper's
// primary contribution. It maintains the invariant (equation (4))
//
//	Pr[i ∈ Sₜ] = (Cₜ / Wₜ) · wₜ(i),
//
// where wₜ(i) = exp(−λ(t − arrival(i))) is the item's decayed weight,
// Wₜ is the total decayed weight of all items seen, and Cₜ = min(n, Wₜ) is
// the sample weight. This yields exponential decay of appearance
// probabilities (property (1)) together with a hard sample-size bound n,
// for arbitrary, unknown batch-size sequences. Among all bounded
// exponential-decay schemes it maximizes the expected sample size when
// unsaturated (Theorem 4.3) and minimizes sample-size variance
// (Theorem 4.4).
type RTBS[T any] struct {
	lambda float64
	n      int
	rng    *xrand.RNG

	latent *Latent[T]
	w      float64 // total weight Wₜ
	now    float64 // time of the most recent batch

	// Scratch buffers for the saturated-case victim/insert index draws.
	// They are derived state (never serialized) and let AdvanceAt run
	// allocation-free once grown to the reservoir size.
	victimScratch []int
	insertScratch []int
}

// NewRTBS returns an R-TBS sampler with decay rate lambda (≥ 0), maximum
// sample size n (> 0), and the given random source. The sample starts empty
// at time 0; use NewRTBSFrom to start from an initial sample S₀.
func NewRTBS[T any](lambda float64, n int, rng *xrand.RNG) (*RTBS[T], error) {
	return NewRTBSFrom[T](lambda, n, nil, rng)
}

// NewRTBSFrom is NewRTBS with a nonempty initial sample S₀ (|S₀| ≤ n),
// whose items are treated as arriving at time 0 with weight 1 each.
func NewRTBSFrom[T any](lambda float64, n int, initial []T, rng *xrand.RNG) (*RTBS[T], error) {
	switch {
	case !ValidateLambda(lambda):
		return nil, fmt.Errorf("core: invalid decay rate λ = %v", lambda)
	case n <= 0:
		return nil, fmt.Errorf("core: maximum sample size must be positive, got %d", n)
	case len(initial) > n:
		return nil, fmt.Errorf("core: initial sample size %d exceeds maximum %d", len(initial), n)
	case rng == nil:
		return nil, fmt.Errorf("core: nil RNG")
	}
	return &RTBS[T]{
		lambda: lambda,
		n:      n,
		rng:    rng,
		latent: NewLatent(initial),
		w:      float64(len(initial)),
	}, nil
}

// Advance processes the batch arriving at time Now()+1.
func (s *RTBS[T]) Advance(batch []T) { s.AdvanceAt(s.now+1, batch) }

// AdvanceAt processes a batch arriving at real-valued time t > Now(),
// decaying all weights by exp(−λ(t − Now())) first. This is the real-valued
// time extension described in Section 2 of the paper.
func (s *RTBS[T]) AdvanceAt(t float64, batch []T) {
	if t <= s.now {
		panic(fmt.Sprintf("core: RTBS.AdvanceAt time %v not after current time %v", t, s.now))
	}
	d := decayFactor(s.lambda, t-s.now)
	s.now = t
	nf := float64(s.n)
	b := float64(len(batch))

	if s.w < nf {
		// Previously unsaturated: Cₜ₋₁ = Wₜ₋₁ (lines 5–12).
		s.w *= d
		if s.w > 0 && s.w < s.latent.Weight() {
			s.latent.Downsample(s.rng, s.w)
		}
		s.latent.appendFull(batch)
		s.w += b
		if s.w > nf {
			// Overshoot: bring the sample weight back down to n (line 12).
			s.latent.Downsample(s.rng, nf)
		}
		return
	}

	// Previously saturated: Cₜ₋₁ = n and π = ∅ (lines 13–20).
	s.w = s.w*d + b
	if s.w >= nf {
		// Still saturated: accept a stochastically rounded number of batch
		// items, replacing random victims (lines 15–17).
		m := s.rng.StochasticRound(b * nf / s.w)
		if m > s.n {
			m = s.n
		}
		if m > len(batch) {
			m = len(batch)
		}
		if m == 0 {
			return
		}
		victims := s.rng.SampleIndicesInto(s.victimScratch, len(s.latent.full), m)
		inserts := s.rng.SampleIndicesInto(s.insertScratch, len(batch), m)
		s.victimScratch, s.insertScratch = victims, inserts
		for i := 0; i < m; i++ {
			s.latent.full[victims[i]] = batch[inserts[i]]
		}
		return
	}
	// Undershoot: the decayed weight plus the whole batch no longer fills
	// the reservoir. Downsample the old items to their decayed weight and
	// accept every batch item as full (lines 19–20).
	s.latent.Downsample(s.rng, s.w-b)
	s.latent.appendFull(batch)
}

// Sample realizes and returns the current sample Sₜ (equation (2)).
func (s *RTBS[T]) Sample() []T { return s.latent.Realize(s.rng) }

// AppendSample realizes the current sample into a caller-owned buffer; see
// core.AppendSampler. It consumes the same RNG draws as Sample.
//
//tbs:zeroalloc
func (s *RTBS[T]) AppendSample(dst []T) []T { return s.latent.AppendRealize(s.rng, dst) }

// Latent exposes the internal latent sample for read-only inspection
// (tests, distributed merging, and footprint accounting).
func (s *RTBS[T]) Latent() *Latent[T] { return s.latent }

// ExpectedSize returns the sample weight Cₜ = min(n, Wₜ).
func (s *RTBS[T]) ExpectedSize() float64 { return s.latent.Weight() }

// TotalWeight returns Wₜ.
func (s *RTBS[T]) TotalWeight() float64 { return s.w }

// DecayRate returns λ.
func (s *RTBS[T]) DecayRate() float64 { return s.lambda }

// MaxSize returns the hard sample-size bound n.
func (s *RTBS[T]) MaxSize() int { return s.n }

// Saturated reports whether Wₜ ≥ n, i.e. whether the reservoir is full.
func (s *RTBS[T]) Saturated() bool { return s.w >= float64(s.n) }

// Now returns the time of the most recent batch.
func (s *RTBS[T]) Now() float64 { return s.now }

// InclusionProbability returns the theoretical Pr[i ∈ Sₜ] for an item that
// arrived at time arrival ≤ Now(): (Cₜ/Wₜ)·exp(−λ(Now()−arrival))
// (equation (4)). It returns 0 when no items have arrived.
func (s *RTBS[T]) InclusionProbability(arrival float64) float64 {
	if s.w == 0 {
		return 0
	}
	return s.latent.Weight() / s.w * decayFactor(s.lambda, s.now-arrival)
}
