package core

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// TTBS is Targeted-size Time-Biased Sampling (Algorithm 1). Each update
// retains every current sample item with probability p = exp(−λ) and accepts
// each new batch item with probability q = n(1−e^−λ)/b, making n the
// equilibrium sample size when the mean batch size is b. The inclusion
// property (1) holds exactly, but the sample size is controlled only
// probabilistically (Theorem 3.1): E[Cₜ] → n, the time-average converges to
// n, deviations have exponential tails, yet every level is exceeded
// infinitely often, and a drifting mean batch size derails the size entirely
// (Figure 1).
type TTBS[T any] struct {
	lambda float64
	n      int
	b      float64
	q      float64
	rng    *xrand.RNG

	sample []T
	now    float64

	// idxScratch backs the batch-acceptance index draw so steady-state
	// AdvanceAt does not allocate; derived state, never serialized.
	idxScratch []int
}

// NewTTBS returns a T-TBS sampler with decay rate lambda (> 0), target
// sample size n, and assumed mean batch size b, which must satisfy
// b ≥ n(1−e^−λ) so that, at the target size, items arrive at least as fast
// as they decay (Section 3).
func NewTTBS[T any](lambda float64, n int, b float64, rng *xrand.RNG) (*TTBS[T], error) {
	return NewTTBSFrom[T](lambda, n, b, nil, rng)
}

// NewTTBSFrom is NewTTBS starting from an initial sample S₀.
func NewTTBSFrom[T any](lambda float64, n int, b float64, initial []T, rng *xrand.RNG) (*TTBS[T], error) {
	switch {
	case !ValidateLambda(lambda) || lambda == 0:
		return nil, fmt.Errorf("core: T-TBS requires a positive decay rate, got λ = %v", lambda)
	case n <= 0:
		return nil, fmt.Errorf("core: target sample size must be positive, got %d", n)
	case b <= 0:
		return nil, fmt.Errorf("core: mean batch size must be positive, got %v", b)
	case rng == nil:
		return nil, fmt.Errorf("core: nil RNG")
	}
	q := float64(n) * (1 - math.Exp(-lambda)) / b
	if q > 1 {
		return nil, fmt.Errorf(
			"core: T-TBS requires b ≥ n(1−e^−λ): b = %v < %v", b, float64(n)*(1-math.Exp(-lambda)))
	}
	s := &TTBS[T]{lambda: lambda, n: n, b: b, q: q, rng: rng}
	s.sample = append(s.sample, initial...)
	return s, nil
}

// Advance processes the batch arriving at time Now()+1 (Algorithm 1,
// lines 6–10): binomially thin the current sample at rate p = e^−λ, then
// accept a binomially thinned subset of the batch at rate q.
func (s *TTBS[T]) Advance(batch []T) { s.AdvanceAt(s.now+1, batch) }

// AdvanceAt processes a batch at real-valued time t > Now(). The retention
// probability becomes exp(−λ(t−Now())); the acceptance rate q is unchanged,
// preserving property (1) for any inter-arrival spacing.
func (s *TTBS[T]) AdvanceAt(t float64, batch []T) {
	if t <= s.now {
		panic(fmt.Sprintf("core: TTBS.AdvanceAt time %v not after current time %v", t, s.now))
	}
	p := decayFactor(s.lambda, t-s.now)
	s.now = t

	m := s.rng.Binomial(len(s.sample), p)
	s.sample = xrand.SampleInPlace(s.rng, s.sample, m)

	k := s.rng.Binomial(len(batch), s.q)
	idx := s.rng.SampleIndicesInto(s.idxScratch, len(batch), k)
	s.idxScratch = idx
	for _, j := range idx {
		s.sample = append(s.sample, batch[j])
	}
}

// Sample returns a copy of the current sample.
func (s *TTBS[T]) Sample() []T {
	return s.AppendSample(make([]T, 0, len(s.sample)))
}

// AppendSample appends the current sample to dst; see core.AppendSampler.
//
//tbs:zeroalloc
func (s *TTBS[T]) AppendSample(dst []T) []T { return append(dst, s.sample...) }

// Size returns the exact current sample size Cₜ.
func (s *TTBS[T]) Size() int { return len(s.sample) }

// ExpectedSize returns the exact current size (T-TBS samples are integral).
func (s *TTBS[T]) ExpectedSize() float64 { return float64(len(s.sample)) }

// DecayRate returns λ.
func (s *TTBS[T]) DecayRate() float64 { return s.lambda }

// TotalWeight is unavailable for T-TBS (it does not track aggregate weight);
// it returns the current sample size for interface compatibility.
func (s *TTBS[T]) TotalWeight() float64 { return float64(len(s.sample)) }

// AcceptRate returns the batch down-sampling rate q = n(1−e^−λ)/b.
func (s *TTBS[T]) AcceptRate() float64 { return s.q }

// Target returns the target sample size n.
func (s *TTBS[T]) Target() int { return s.n }

// Now returns the time of the most recent batch.
func (s *TTBS[T]) Now() float64 { return s.now }
