package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestPriorityTimeWindowValidation(t *testing.T) {
	if _, err := NewPriorityTimeWindow[int](0, 5, xrand.New(1)); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewPriorityTimeWindow[int](1, 0, xrand.New(1)); err == nil {
		t.Error("zero n accepted")
	}
	if _, err := NewPriorityTimeWindow[int](1, 5, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestPriorityTimeWindowSizeAndExpiry(t *testing.T) {
	s, err := NewPriorityTimeWindow[int](3.5, 10, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	s.AdvanceAt(1, make([]int, 4))
	if s.Size() != 4 {
		t.Fatalf("size %d, want 4", s.Size())
	}
	s.AdvanceAt(2, make([]int, 4))
	if s.Size() != 8 {
		t.Fatalf("size %d, want 8", s.Size())
	}
	s.AdvanceAt(3, make([]int, 4))
	if s.Size() != 10 {
		t.Fatalf("size %d, want 10 (bounded)", s.Size())
	}
	if got := len(s.Sample()); got != 10 {
		t.Fatalf("|Sample| = %d", got)
	}
	// At t=5 the batch from t=1 expires (5 − 3.5 = 1.5 > 1).
	s.AdvanceAt(5, nil)
	if s.Size() != 8 {
		t.Fatalf("size after expiry %d, want 8", s.Size())
	}
	// Long silence empties the window entirely.
	s.AdvanceAt(100, nil)
	if s.Size() != 0 || len(s.Sample()) != 0 {
		t.Fatal("window should be empty after silence")
	}
}

// TestPriorityTimeWindowUniform verifies that the sample is a uniform
// sample of the unexpired items: every unexpired item has equal empirical
// inclusion probability n/W.
func TestPriorityTimeWindowUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		horizon  = 10.0 // nothing expires within the experiment
		n        = 5
		batches  = 4
		b        = 10
		replicas = 40000
	)
	counts := make([]float64, batches*b)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewPriorityTimeWindow[int](horizon, n, xrand.New(uint64(rep)+60000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for bi := 0; bi < batches; bi++ {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			counts[item]++
		}
	}
	want := float64(n) / float64(batches*b)
	se := math.Sqrt(want * (1 - want) / replicas)
	for id, c := range counts {
		got := c / replicas
		if math.Abs(got-want) > 6*se {
			t.Errorf("item %d inclusion %v, want %v", id, got, want)
		}
	}
}

// TestPriorityTimeWindowUniformAfterExpiry: uniformity must hold over the
// *surviving* population after some items expire — the property that makes
// bounded-space candidate retention nontrivial.
func TestPriorityTimeWindowUniformAfterExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		horizon  = 2.5 // at t=4, batches 1 expired; 2,3,4 alive... (4-2.5=1.5)
		n        = 4
		b        = 8
		replicas = 40000
	)
	counts := make([]float64, 4*b)
	for rep := 0; rep < replicas; rep++ {
		s, err := NewPriorityTimeWindow[int](horizon, n, xrand.New(uint64(rep)+70000))
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		for bi := 0; bi < 4; bi++ {
			batch := make([]int, b)
			for j := range batch {
				batch[j] = id
				id++
			}
			s.Advance(batch)
		}
		for _, item := range s.Sample() {
			counts[item]++
		}
	}
	// Batch 1 (items 0..7) expired; items 8..31 must be uniform at n/24.
	for id := 0; id < b; id++ {
		if counts[id] != 0 {
			t.Fatalf("expired item %d appeared %v times", id, counts[id])
		}
	}
	want := float64(n) / float64(3*b)
	se := math.Sqrt(want * (1 - want) / replicas)
	for id := b; id < 4*b; id++ {
		got := counts[id] / replicas
		if math.Abs(got-want) > 6*se {
			t.Errorf("item %d inclusion %v, want %v", id, got, want)
		}
	}
}

// TestPriorityTimeWindowCandidateBound: the retained candidate set should
// stay near the O(n·log(W/n)) expectation, far below the window
// population.
func TestPriorityTimeWindowCandidateBound(t *testing.T) {
	const (
		horizon = 50.0
		n       = 20
		b       = 200
		steps   = 50
	)
	s, err := NewPriorityTimeWindow[int](horizon, n, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		s.Advance(make([]int, b))
	}
	pop := float64(b * steps) // W = 10000 unexpired items
	bound := float64(n) * (math.Log(pop/float64(n)) + 3)
	if got := float64(s.Candidates()); got > 3*bound {
		t.Errorf("candidate set %v far exceeds expected O(n log(W/n)) ≈ %v", got, bound)
	}
	if s.Candidates() >= b*steps/2 {
		t.Errorf("candidate set %d not meaningfully smaller than population %d",
			s.Candidates(), b*steps)
	}
}

func TestPriorityTimeWindowPanicsOnPast(t *testing.T) {
	s, err := NewPriorityTimeWindow[int](1, 2, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	s.AdvanceAt(1, []int{1})
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-increasing time")
		}
	}()
	s.AdvanceAt(0.5, nil)
}
