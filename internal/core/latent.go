package core

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Latent is the paper's latent fractional sample L = (A, π, C)
// (Section 4.1): a set A of ⌊C⌋ "full" items that belong to every realized
// sample, at most one "partial" item π that belongs to a realized sample
// with probability frac(C), and the real-valued sample weight C ≥ 0. The
// invariant |π| = 1 ⇔ frac(C) > 0 is maintained by every operation, so the
// memory footprint never exceeds ⌊C⌋ + 1 items.
type Latent[T any] struct {
	full    []T
	partial []T // 0 or 1 elements
	weight  float64
}

// NewLatent returns a latent sample containing the given items as full
// items, with weight len(items). The slice is copied. The one-slot partial
// buffer is pre-allocated so that swap1/move1 never allocate, keeping the
// steady-state Advance path allocation-free.
func NewLatent[T any](items []T) *Latent[T] {
	l := &Latent[T]{weight: float64(len(items)), partial: make([]T, 0, 1)}
	l.full = append(l.full, items...)
	return l
}

// Weight returns the sample weight C, which is also the expected size of a
// realized sample (equation (3)).
func (l *Latent[T]) Weight() float64 { return l.weight }

// NumFull returns |A| = ⌊C⌋.
func (l *Latent[T]) NumFull() int { return len(l.full) }

// HasPartial reports whether a partial item is present.
func (l *Latent[T]) HasPartial() bool { return len(l.partial) == 1 }

// Footprint returns the number of items physically stored, |A ∪ π|.
func (l *Latent[T]) Footprint() int { return len(l.full) + len(l.partial) }

// Full returns the underlying full-item slice. The caller must not modify
// it; it is exposed for zero-copy iteration by models that retrain on the
// sample.
func (l *Latent[T]) Full() []T { return l.full }

// Realize draws a sample S from the latent state according to equation (2):
// every full item is included, and the partial item is included with
// probability frac(C). The returned slice is a fresh copy.
func (l *Latent[T]) Realize(rng *xrand.RNG) []T {
	return l.AppendRealize(rng, make([]T, 0, l.Footprint()))
}

// AppendRealize is Realize into a caller-owned buffer: the realized sample
// is appended to dst and the extended slice returned. A caller that reuses
// the returned slice (dst = l.AppendRealize(rng, dst[:0])) realizes without
// allocating once the buffer has grown to the sample footprint — the
// append-side half of the zero-allocation ingest path. It consumes exactly
// the same RNG draws as Realize.
//
//tbs:zeroalloc
func (l *Latent[T]) AppendRealize(rng *xrand.RNG, dst []T) []T {
	dst = append(dst, l.full...)
	if len(l.partial) == 1 && rng.Bernoulli(frac(l.weight)) {
		dst = append(dst, l.partial[0])
	}
	return dst
}

// appendFull adds items to A with weight 1 each, increasing C by len(items).
// It implements the "accept all items in Bₜ" steps of Algorithm 2 (lines 9
// and 20).
//
//tbs:zeroalloc
func (l *Latent[T]) appendFull(items []T) {
	l.full = append(l.full, items...)
	l.weight += float64(len(items))
}

// swap1 moves a random full item to π and moves the current partial item
// (if any) into A — the Swap1(A, π) subroutine of Algorithm 3.
//
//tbs:zeroalloc
func (l *Latent[T]) swap1(rng *xrand.RNG) {
	if len(l.full) == 0 {
		return
	}
	i := rng.Intn(len(l.full))
	picked := l.full[i]
	if len(l.partial) == 1 {
		l.full[i] = l.partial[0]
		l.partial[0] = picked
	} else {
		last := len(l.full) - 1
		l.full[i] = l.full[last]
		l.full = l.full[:last]
		l.partial = append(l.partial, picked)
	}
}

// move1 moves a random full item to π, replacing the current partial item —
// the Move1(A, π) subroutine of Algorithm 3.
//
//tbs:zeroalloc
func (l *Latent[T]) move1(rng *xrand.RNG) {
	if len(l.full) == 0 {
		return
	}
	i := rng.Intn(len(l.full))
	picked := l.full[i]
	last := len(l.full) - 1
	l.full[i] = l.full[last]
	l.full = l.full[:last]
	if len(l.partial) == 1 {
		l.partial[0] = picked
	} else {
		l.partial = append(l.partial, picked)
	}
}

// retainFull keeps a uniform random subset of m full items, discarding the
// rest — Sample(A, m) used as the new A.
func (l *Latent[T]) retainFull(rng *xrand.RNG, m int) {
	l.full = xrand.SampleInPlace(rng, l.full, m)
}

// Downsample reduces the latent sample's weight from C to target, scaling
// every item's inclusion probability by exactly target/C — Algorithm 3 of
// the paper (Theorem 4.1). It requires 0 ≤ target ≤ C; target = C is a
// no-op and target = 0 empties the sample.
func (l *Latent[T]) Downsample(rng *xrand.RNG, target float64) {
	c := l.weight
	switch {
	case target < 0 || target > c || math.IsNaN(target):
		panic(fmt.Sprintf("core: Downsample target %v out of range [0, %v]", target, c))
	case target == c:
		return
	case target == 0:
		l.full = l.full[:0]
		l.partial = l.partial[:0]
		l.weight = 0
		return
	}

	u := rng.Float64()
	floorT := math.Floor(target)
	floorC := math.Floor(c)
	switch {
	case floorT == 0:
		// No full items retained (lines 5–8): the surviving partial item of
		// L′ is the old partial with probability frac(C)/C, otherwise a
		// uniformly chosen full item.
		if u > frac(c)/c {
			l.swap1(rng)
		}
		l.full = l.full[:0]
	case floorT == floorC:
		// No items deleted (lines 9–11): with probability 1 − ρ the partial
		// item is promoted to full and a random full item becomes partial.
		rho := (1 - (target/c)*frac(c)) / (1 - frac(target))
		if u > rho {
			l.swap1(rng)
		}
	default:
		// Items deleted, 0 < ⌊C′⌋ < ⌊C⌋ (lines 12–18). The first branch can
		// only retain an existing partial item, hence the HasPartial guard
		// (it fires with probability frac(C)·C′/C, which is 0 when π = ∅).
		if l.HasPartial() && u <= (target/c)*frac(c) {
			// Retain the old partial item by promoting it to full.
			l.retainFull(rng, int(floorT))
			l.swap1(rng)
		} else {
			// Eject the old partial; a retained full item becomes partial.
			l.retainFull(rng, int(floorT)+1)
			l.move1(rng)
		}
	}
	if target == floorT {
		// No fractional mass remains (lines 19–20).
		l.partial = l.partial[:0]
	}
	l.weight = target
}
